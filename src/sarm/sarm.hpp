// SARM: StrongARM-like 5-stage pipelined processor modeled with OSMs —
// the paper's first case study (Fig. 5, Fig. 6, §5.1).
//
// Pipeline: F (fetch), D (decode), E (execute), B (buffer / memory),
// W (write-back); state I is the unused-OSM state.  Hardware layer:
// I-cache + ITLB and D-cache + DTLB over a shared bus to memory, a
// combined register file + forwarding network per register file (GPR,
// FPR), a multiplier unit, and a reset manager for control hazards.
//
// Every behaviour the paper walks through in §4 is expressed exactly as
// described there:
//   structure hazards — stage occupancy tokens (one unit manager each);
//   data hazards      — register value/update tokens with forwarding;
//   variable latency  — cache misses refuse the fetch/buffer token release;
//   control hazards   — m_reset + prioritized reset edges kill wrong-path
//                       operations after a taken branch redirects fetch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"
#include "isa/iss.hpp"
#include "stats/stats.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "mem/write_buffer.hpp"
#include "uarch/register_file.hpp"
#include "uarch/reset.hpp"

namespace osm::sarm {

/// Static model configuration.
struct sarm_config {
    bool forwarding = true;         ///< bypass network present (ablation knob)
    bool director_restart = false;  ///< paper §5: age rank needs no restart
    bool director_batch = false;    ///< skip blocked OSMs via generation memos
    bool deadlock_check = false;
    unsigned num_osms = 8;          ///< OSM pool size (>= in-flight max + idle)
    unsigned mem_latency = 12;      ///< DRAM cycles
    unsigned mul_extra = 0;         ///< extra multiplier/divider cycles (silicon-revision knob)
    bool write_buffer = false;      ///< SA-110-style store buffer hides store miss latency
    bool decode_cache = true;       ///< cache pre-decoded instructions by (pc, word)
    unsigned decode_cache_entries = 4096;
    mem::write_buffer_config wbuf{};
    mem::bus_config bus{};
    mem::cache_config icache{"icache", 16 * 1024, 32, 32,
                             mem::replacement::lru, mem::write_policy::write_back, 1};
    mem::cache_config dcache{"dcache", 16 * 1024, 32, 32,
                             mem::replacement::lru, mem::write_policy::write_back, 1};
    mem::tlb_config itlb{32, 12, 18};
    mem::tlb_config dtlb{32, 12, 18};
};

/// Run statistics.
struct sarm_stats {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t redirects = 0;
    std::uint64_t kills = 0;
    // Stall attribution (cycles a stage token was held for extra latency).
    std::uint64_t fetch_hold_cycles = 0;  ///< I-cache / ITLB misses
    std::uint64_t mem_hold_cycles = 0;    ///< D-cache / DTLB misses
    std::uint64_t exec_hold_cycles = 0;   ///< multi-cycle execute (mul/div/FP)

    double ipc() const {
        return cycles == 0 ? 0.0 : static_cast<double>(retired) / static_cast<double>(cycles);
    }
};

/// An in-flight operation: the OSM instance plus its decoded instruction
/// and dataflow context (the paper's operation-layer object).
class sarm_op final : public core::osm {
public:
    sarm_op(const core::osm_graph& g, std::string name) : core::osm(g, std::move(name)) {}

    isa::decoded_inst di{};
    std::uint32_t pc = 0;
    std::uint32_t epoch = 0;
    isa::exec_out ex{};
};

/// The complete StrongARM-like micro-architecture simulator.
class sarm_model {
public:
    sarm_model(const sarm_config& cfg, mem::main_memory& memory);

    /// Load a program and reset all machine state.
    void load(const isa::program_image& img);

    /// Adopt checkpointed architectural state.  Call after load() (which
    /// resets the pipeline); this overwrites registers, fetch pc, halt flag
    /// and console so execution resumes from the quiesced boundary.
    void restore_arch(const isa::arch_state& st, const std::string& console);

    /// Simulate until halt or `max_cycles`.  Returns cycles executed.
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool halted() const noexcept { return halted_; }
    const sarm_stats& stats() const noexcept { return stats_; }

    /// Architectural state after (or during) simulation.
    std::uint32_t gpr(unsigned r) const { return m_r_.arch_read(r); }
    std::uint32_t fpr(unsigned r) const { return m_fr_.arch_read(r); }
    /// Next-fetch pc (speculative: may point past the halt after the end).
    std::uint32_t fetch_pc() const noexcept { return fetch_pc_; }
    const std::string& console() const { return host_.console(); }

    /// Structured report of every counter (JSON-renderable).
    stats::report make_report() const;

    core::director& dir() noexcept { return dir_; }
    core::sim_kernel& kernel() noexcept { return kern_; }
    const core::osm_graph& graph() const noexcept { return graph_; }
    const mem::cache& icache() const noexcept { return icache_; }
    const mem::cache& dcache() const noexcept { return dcache_; }
    const mem::write_buffer& store_buffer() const noexcept { return wbuf_; }
    const uarch::register_file_manager& gpr_file() const noexcept { return m_r_; }
    const isa::decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

private:
    void build_graph();
    void on_cycle();

    // Edge actions.
    void act_fetch(sarm_op& o);
    void act_execute(sarm_op& o);
    void act_mem(sarm_op& o);
    void act_buffer_exit(sarm_op& o);
    void act_retire(sarm_op& o);

    sarm_config cfg_;
    mem::main_memory& mem_;

    // Timing hierarchy: caches -> shared bus -> DRAM.
    mem::fixed_latency_mem dram_t_;
    mem::bus bus_;
    mem::cache icache_;
    mem::cache dcache_;
    mem::tlb itlb_;
    mem::tlb dtlb_;
    mem::write_buffer wbuf_;
    isa::decode_cache dcode_;

    // Token managers (the hardware layer's TMIs).
    core::unit_token_manager m_f_, m_d_, m_e_, m_b_, m_w_, m_mul_;
    uarch::register_file_manager m_r_;
    uarch::register_file_manager m_fr_;
    uarch::reset_manager m_reset_;

    core::osm_graph graph_;
    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<sarm_op>> ops_;

    isa::syscall_host host_;

    // Fetch engine state.
    std::uint32_t fetch_pc_ = 0;
    std::uint32_t epoch_ = 0;
    bool redirect_pending_ = false;
    std::uint32_t redirect_target_ = 0;

    bool halted_ = false;
    sarm_stats stats_;
    std::uint64_t kills_at_load_ = 0;
    std::uint64_t cycles_at_load_ = 0;
};

/// Identifier slot layout shared by the SARM graph and its actions.
enum sarm_slot : std::int32_t {
    slot_gpr_s1 = 0,
    slot_gpr_s2 = 1,
    slot_fpr_s1 = 2,
    slot_fpr_s2 = 3,
    slot_gpr_dst = 4,
    slot_fpr_dst = 5,
    slot_mul = 6,
    sarm_slot_count = 7,
};

}  // namespace osm::sarm
