#include "sarm/sarm.hpp"

#include <cassert>

#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::sarm {

using core::ident_expr;
using core::k_null_ident;
using isa::op;
using uarch::reg_update_ident;
using uarch::reg_value_ident;

sarm_model::sarm_model(const sarm_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dram_t_(cfg.mem_latency),
      bus_(cfg.bus, dram_t_),
      icache_(cfg.icache, bus_),
      dcache_(cfg.dcache, bus_),
      itlb_(cfg.itlb),
      dtlb_(cfg.dtlb),
      wbuf_(cfg.wbuf),
      dcode_(cfg.decode_cache_entries),
      m_f_("m_f"),
      m_d_("m_d"),
      m_e_("m_e"),
      m_b_("m_b"),
      m_w_("m_w"),
      m_mul_("m_mul"),
      m_r_("m_r", isa::num_gprs, /*reg0_is_zero=*/true, cfg.forwarding),
      m_fr_("m_fr", isa::num_fprs, /*reg0_is_zero=*/false, cfg.forwarding),
      m_reset_("m_reset"),
      graph_("sarm"),
      kern_(dir_) {
    build_graph();

    dir_.cfg().restart_on_transition = cfg_.director_restart;
    dir_.cfg().deadlock_check = cfg_.deadlock_check;
    dir_.cfg().skip_blocked = cfg_.director_batch;

    ops_.reserve(cfg_.num_osms);
    for (unsigned i = 0; i < cfg_.num_osms; ++i) {
        ops_.push_back(std::make_unique<sarm_op>(graph_, "op" + std::to_string(i)));
        dir_.add(*ops_.back());
    }

    // Control hazards: wrong-path operations are those fetched in an older
    // epoch.  The manager stays armed forever; the predicate keeps it
    // harmless for current-epoch operations.
    m_reset_.arm([this](const core::osm& m) {
        return static_cast<const sarm_op&>(m).epoch != epoch_;
    });
    // The predicate reads epoch_ (touched on every redirect and at load)
    // and o.epoch (written only in the op's own fetch action, covered by
    // the OSM stamp), so generation tracking is sound.
    m_reset_.set_generation_tracked(true);

    kern_.on_cycle([this] { on_cycle(); });
}

void sarm_model::build_graph() {
    graph_.set_ident_slots(sarm_slot_count);

    const auto I = graph_.add_state("I");
    const auto F = graph_.add_state("F");
    const auto D = graph_.add_state("D");
    const auto E = graph_.add_state("E");
    const auto B = graph_.add_state("B");
    const auto W = graph_.add_state("W");
    graph_.set_initial(I);

    const auto slot = ident_expr::from_slot;
    const auto fix = ident_expr::value;

    // e0: I -> F  (paper Fig. 6): claim the fetch stage; fetch + decode.
    {
        const auto e = graph_.add_edge(I, F);
        graph_.edge_allocate(e, m_f_, fix(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_fetch(static_cast<sarm_op&>(m));
        });
    }
    // Reset edges (higher priority than the normal path, paper §4).
    {
        const auto e = graph_.add_edge(F, I, /*priority=*/10);
        graph_.edge_inquire(e, m_reset_, fix(0));
        graph_.edge_discard_all(e);
    }
    {
        const auto e = graph_.add_edge(D, I, /*priority=*/10);
        graph_.edge_inquire(e, m_reset_, fix(0));
        graph_.edge_discard_all(e);
    }
    // e1: F -> D: hand the fetch stage to the next op, claim decode.
    {
        const auto e = graph_.add_edge(F, D);
        graph_.edge_release(e, m_f_, fix(0));
        graph_.edge_allocate(e, m_d_, fix(0));
    }
    // e2: D -> E: source operands must be available (value tokens), the
    // destination write port is claimed (update token), the execute stage
    // and — for multiplies — the multiplier are claimed.
    {
        const auto e = graph_.add_edge(D, E);
        graph_.edge_release(e, m_d_, fix(0));
        graph_.edge_allocate(e, m_e_, fix(0));
        graph_.edge_inquire(e, m_r_, slot(slot_gpr_s1));
        graph_.edge_inquire(e, m_r_, slot(slot_gpr_s2));
        graph_.edge_inquire(e, m_fr_, slot(slot_fpr_s1));
        graph_.edge_inquire(e, m_fr_, slot(slot_fpr_s2));
        graph_.edge_allocate(e, m_r_, slot(slot_gpr_dst));
        graph_.edge_allocate(e, m_fr_, slot(slot_fpr_dst));
        graph_.edge_allocate(e, m_mul_, slot(slot_mul));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_execute(static_cast<sarm_op&>(m));
        });
    }
    // e3: E -> B: memory access happens on entering the buffer stage.
    {
        const auto e = graph_.add_edge(E, B);
        graph_.edge_release(e, m_e_, fix(0));
        graph_.edge_release(e, m_mul_, slot(slot_mul));
        graph_.edge_allocate(e, m_b_, fix(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_mem(static_cast<sarm_op&>(m));
        });
    }
    // e4: B -> W: loads forward their data from here.
    {
        const auto e = graph_.add_edge(B, W);
        graph_.edge_release(e, m_b_, fix(0));
        graph_.edge_allocate(e, m_w_, fix(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_buffer_exit(static_cast<sarm_op&>(m));
        });
    }
    // e5: W -> I: retire — commit register updates, return to the pool.
    {
        const auto e = graph_.add_edge(W, I);
        graph_.edge_release(e, m_w_, fix(0));
        graph_.edge_release(e, m_r_, slot(slot_gpr_dst));
        graph_.edge_release(e, m_fr_, slot(slot_fpr_dst));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_retire(static_cast<sarm_op&>(m));
        });
    }

    graph_.finalize();
}

void sarm_model::load(const isa::program_image& img) {
    img.load_into(mem_);
    fetch_pc_ = img.entry;
    epoch_ = 0;
    m_reset_.touch();
    redirect_pending_ = false;
    halted_ = false;
    stats_ = {};
    host_.clear();
    wbuf_.clear();
    wbuf_.reset_stats();
    dcode_.invalidate_all();
    dcode_.reset_stats();
    kern_.clear_stop();
    kills_at_load_ = m_reset_.kills();
    cycles_at_load_ = kern_.cycles();
    for (auto& o : ops_) o->hard_reset();
}

void sarm_model::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < 32; ++r) {
        m_r_.arch_write(r, st.gpr[r]);
        m_fr_.arch_write(r, st.fpr[r]);
    }
    fetch_pc_ = st.pc;
    halted_ = st.halted;
    host_.seed(console);
}

void sarm_model::on_cycle() {
    if (cfg_.write_buffer) wbuf_.tick();
    if (m_f_.hold_remaining() > 0) ++stats_.fetch_hold_cycles;
    if (m_b_.hold_remaining() > 0) ++stats_.mem_hold_cycles;
    if (m_e_.hold_remaining() > 0) ++stats_.exec_hold_cycles;
    m_f_.tick();
    m_d_.tick();
    m_e_.tick();
    m_b_.tick();
    m_w_.tick();
    m_mul_.tick();
    if (redirect_pending_) {
        // The redirect becomes architecturally visible at the next clock
        // edge: fetch restarts from the target and every operation fetched
        // in the old epoch becomes a reset victim.
        ++epoch_;
        m_reset_.touch();  // predicate input changed: wrong-path ops wake
        fetch_pc_ = redirect_target_;
        redirect_pending_ = false;
        ++stats_.redirects;
    }
}

std::uint64_t sarm_model::run(std::uint64_t max_cycles) {
    std::uint64_t executed = 0;
    while (!halted_ && executed < max_cycles) {
        const std::uint64_t chunk = std::min<std::uint64_t>(max_cycles - executed, 1024);
        executed += kern_.run(chunk);
        if (kern_.stop_requested()) break;
    }
    stats_.cycles = kern_.cycles() - cycles_at_load_;
    stats_.kills = m_reset_.kills() - kills_at_load_;
    return executed;
}

stats::report sarm_model::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("sarm"));
    r.put("run", "cycles", stats_.cycles);
    r.put("run", "retired", stats_.retired);
    r.put("run", "ipc", stats_.ipc());
    r.put("branches", "executed", stats_.branches);
    r.put("branches", "taken", stats_.taken_branches);
    r.put("branches", "redirects", stats_.redirects);
    r.put("branches", "squashed_ops", stats_.kills);
    r.put("stalls", "fetch_hold_cycles", stats_.fetch_hold_cycles);
    r.put("stalls", "mem_hold_cycles", stats_.mem_hold_cycles);
    r.put("stalls", "exec_hold_cycles", stats_.exec_hold_cycles);
    r.put("icache", "accesses", icache_.stats().accesses);
    r.put("icache", "hit_ratio", icache_.stats().hit_ratio());
    r.put("dcache", "accesses", dcache_.stats().accesses);
    r.put("dcache", "hit_ratio", dcache_.stats().hit_ratio());
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "evictions", dcode_.stats().evictions);
    r.put("decode_cache", "smc_redecodes", dcode_.stats().smc_redecodes);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    r.put("director", "control_steps", dir_.stats().control_steps);
    r.put("director", "transitions", dir_.stats().transitions);
    r.put("director", "conditions_evaluated", dir_.stats().conditions_evaluated);
    r.put("director", "primitives_evaluated", dir_.stats().primitives_evaluated);
    r.put("director", "skipped_visits", dir_.stats().skipped_visits);
    return r;
}

// ---- edge actions -----------------------------------------------------------

void sarm_model::act_fetch(sarm_op& o) {
    o.pc = fetch_pc_;
    o.epoch = epoch_;
    fetch_pc_ += 4;

    // Timed fetch: ITLB + I-cache; a miss refuses the fetch-token release
    // until the line arrives (paper §4 "Variable latency").
    unsigned latency = itlb_.translate(o.pc);
    latency += icache_.access(o.pc, false, 4).latency;
    if (latency > 1) m_f_.hold_for(latency);

    // Decode and initialize all transaction identifiers (paper §4).  The
    // word read feeds the decode cache's word tag, so stores to fetched
    // code re-decode naturally (self-modifying code needs no invalidation).
    const std::uint32_t word = mem_.read32(o.pc);
    o.di = cfg_.decode_cache ? dcode_.lookup(o.pc, word).di : isa::decode(word);
    o.ex = {};

    for (std::int32_t s = 0; s < sarm_slot_count; ++s) o.set_ident(s, k_null_ident);

    const op c = o.di.code;
    if (isa::uses_rs1(c)) {
        o.set_ident(isa::rs1_is_fpr(c) ? slot_fpr_s1 : slot_gpr_s1,
                    reg_value_ident(o.di.rs1));
    }
    if (isa::uses_rs2(c)) {
        o.set_ident(isa::rs2_is_fpr(c) ? slot_fpr_s2 : slot_gpr_s2,
                    reg_value_ident(o.di.rs2));
    }
    if (c == op::syscall_op) {
        // Syscalls read a0..a1; wait for pending writers of a0.
        o.set_ident(slot_gpr_s1, reg_value_ident(4));
    }
    if (isa::writes_rd(c)) {
        o.set_ident(isa::rd_is_fpr(c) ? slot_fpr_dst : slot_gpr_dst,
                    reg_update_ident(o.di.rd));
    }
    if (isa::is_mul_div(c)) o.set_ident(slot_mul, 0);
}

void sarm_model::act_execute(sarm_op& o) {
    const op c = o.di.code;

    // Multi-cycle execute: occupy E (and the multiplier) for the extra
    // cycles by refusing the stage-token release.
    unsigned extra = isa::extra_exec_cycles(c);
    if (isa::is_mul_div(c) && extra > 0) extra += cfg_.mul_extra;
    if (extra > 0) {
        m_e_.hold_for(extra + 1);
        if (isa::is_mul_div(c)) m_mul_.hold_for(extra + 1);
    }

    if (c == op::halt || c == op::invalid) {
        // Serialize: refetch the halt itself so no younger operation can
        // reach the memory stage with side effects.
        redirect_pending_ = true;
        redirect_target_ = o.pc;
        return;
    }
    if (c == op::syscall_op) {
        // Serializing instruction: flush and refetch the successor.
        redirect_pending_ = true;
        redirect_target_ = o.pc + 4;
        return;
    }

    const std::uint32_t a = isa::rs1_is_fpr(c) ? m_fr_.read(o.di.rs1) : m_r_.read(o.di.rs1);
    const std::uint32_t b = isa::rs2_is_fpr(c) ? m_fr_.read(o.di.rs2) : m_r_.read(o.di.rs2);
    o.ex = isa::compute(o.di, o.pc, a, b);

    // Non-load results are known at the end of E: publish for forwarding.
    if (isa::writes_rd(c) && !isa::is_load(c)) {
        if (isa::rd_is_fpr(c)) {
            m_fr_.publish(o.di.rd, o.ex.value);
        } else {
            m_r_.publish(o.di.rd, o.ex.value);
        }
    }

    if (isa::is_branch(c)) {
        ++stats_.branches;
        if (o.ex.redirect) ++stats_.taken_branches;
    }
    if (o.ex.redirect) {
        // Taken branch / jump: redirect fetch at the next clock edge.
        redirect_pending_ = true;
        redirect_target_ = o.ex.next_pc;
    }
}

void sarm_model::act_mem(sarm_op& o) {
    const op c = o.di.code;
    if (!isa::is_mem(c)) return;

    unsigned latency = dtlb_.translate(o.ex.mem_addr);
    const auto res = dcache_.access(o.ex.mem_addr, isa::is_store(c),
                                    c == op::sb ? 1u : (c == op::sh ? 2u : 4u));
    if (cfg_.write_buffer && isa::is_store(c)) {
        // The write buffer absorbs the store: the pipeline pays only the
        // TLB and a possible buffer-full stall; the (miss) traffic drains
        // in the background.
        latency += 1 + wbuf_.push_store();
    } else {
        latency += res.latency;
    }
    if (latency > 1) m_b_.hold_for(latency);

    if (isa::is_load(c)) {
        o.ex.value = isa::do_load(c, mem_, o.ex.mem_addr);
    } else {
        isa::do_store(c, mem_, o.ex.mem_addr, o.ex.store_data);
    }
}

void sarm_model::act_buffer_exit(sarm_op& o) {
    // Load data is available once the buffer stage completes.
    if (isa::is_load(o.di.code)) {
        if (isa::rd_is_fpr(o.di.code)) {
            m_fr_.publish(o.di.rd, o.ex.value);
        } else {
            m_r_.publish(o.di.rd, o.ex.value);
        }
    }
}

void sarm_model::act_retire(sarm_op& o) {
    ++stats_.retired;
    const op c = o.di.code;
    if (c == op::syscall_op) {
        isa::arch_state st;
        for (unsigned r = 0; r < isa::num_gprs; ++r) st.gpr[r] = m_r_.arch_read(r);
        host_.handle(static_cast<std::uint16_t>(o.di.imm), st);
        if (st.halted) {
            halted_ = true;
            kern_.request_stop();
        }
    } else if (c == op::halt || c == op::invalid) {
        halted_ = true;
        kern_.request_stop();
    }
}

}  // namespace osm::sarm
