#include "isa/disasm.hpp"

#include <cstdio>

#include "isa/arch.hpp"

namespace osm::isa {

namespace {
std::string reg(const decoded_inst& di, bool fpr, unsigned index) {
    (void)di;
    return std::string(fpr ? fpr_name(index) : gpr_name(index));
}
}  // namespace

std::string disassemble(const decoded_inst& di, std::uint32_t pc) {
    const std::string name(op_name(di.code));
    char buf[96];
    const op c = di.code;

    if (c == op::invalid) {
        std::snprintf(buf, sizeof buf, ".word 0x%08X", di.raw);
        return buf;
    }
    if (c == op::halt) return "halt";
    if (c == op::syscall_op) {
        std::snprintf(buf, sizeof buf, "syscall %d", di.imm);
        return buf;
    }
    // Branch/jal targets print as the *absolute* address: the assembler
    // reads a numeric branch operand as an absolute target, so this is
    // what makes disassemble -> assemble round-trip word-identical.
    // (The old form printed the raw displacement, which re-assembled to
    // a different word whenever pc+4+disp != disp.)
    if (is_branch(c)) {
        std::snprintf(buf, sizeof buf, "%s %s, %s, 0x%X  ; disp %d", name.c_str(),
                      reg(di, false, di.rs1).c_str(), reg(di, false, di.rs2).c_str(),
                      pc + 4 + static_cast<std::uint32_t>(di.imm), di.imm);
        return buf;
    }
    if (c == op::jal) {
        std::snprintf(buf, sizeof buf, "jal %s, 0x%X  ; disp %d",
                      reg(di, false, di.rd).c_str(),
                      pc + 4 + static_cast<std::uint32_t>(di.imm), di.imm);
        return buf;
    }
    if (c == op::jalr) {
        std::snprintf(buf, sizeof buf, "jalr %s, %s, %d", reg(di, false, di.rd).c_str(),
                      reg(di, false, di.rs1).c_str(), di.imm);
        return buf;
    }
    if (is_load(c)) {
        std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", name.c_str(),
                      reg(di, rd_is_fpr(c), di.rd).c_str(), di.imm,
                      reg(di, false, di.rs1).c_str());
        return buf;
    }
    if (is_store(c)) {
        std::snprintf(buf, sizeof buf, "%s %s, %d(%s)", name.c_str(),
                      reg(di, rs2_is_fpr(c), di.rs2).c_str(), di.imm,
                      reg(di, false, di.rs1).c_str());
        return buf;
    }
    if (c == op::lui || c == op::auipc) {
        std::snprintf(buf, sizeof buf, "%s %s, 0x%X", name.c_str(),
                      reg(di, false, di.rd).c_str(),
                      static_cast<unsigned>(di.imm));
        return buf;
    }
    if (is_fence(c)) return name;
    if (is_amo(c)) {
        // RISC-V-style operand order: destination, store data, (address).
        // lr.w has no store-data operand.
        if (c == op::lr_w) {
            std::snprintf(buf, sizeof buf, "%s %s, (%s)", name.c_str(),
                          reg(di, false, di.rd).c_str(),
                          reg(di, false, di.rs1).c_str());
        } else {
            std::snprintf(buf, sizeof buf, "%s %s, %s, (%s)", name.c_str(),
                          reg(di, false, di.rd).c_str(),
                          reg(di, false, di.rs2).c_str(),
                          reg(di, false, di.rs1).c_str());
        }
        return buf;
    }
    if (uses_rs2(c)) {  // R-type
        std::snprintf(buf, sizeof buf, "%s %s, %s, %s", name.c_str(),
                      reg(di, rd_is_fpr(c), di.rd).c_str(),
                      reg(di, rs1_is_fpr(c), di.rs1).c_str(),
                      reg(di, rs2_is_fpr(c), di.rs2).c_str());
        return buf;
    }
    if (uses_rs1(c) && writes_rd(c)) {
        if (is_fp(c)) {  // unary FP / converts / moves
            std::snprintf(buf, sizeof buf, "%s %s, %s", name.c_str(),
                          reg(di, rd_is_fpr(c), di.rd).c_str(),
                          reg(di, rs1_is_fpr(c), di.rs1).c_str());
            return buf;
        }
        std::snprintf(buf, sizeof buf, "%s %s, %s, %d", name.c_str(),
                      reg(di, false, di.rd).c_str(),
                      reg(di, false, di.rs1).c_str(), di.imm);
        return buf;
    }
    return name;
}

}  // namespace osm::isa
