// Decoded-instruction cache: the shared fetch/decode fast path.
//
// Every execution engine in the repository re-decoded the raw instruction
// word on every fetch.  Decode itself is a wide switch plus field
// extraction, and the engines follow it with half a dozen out-of-line
// classification calls (is_load, writes_rd, ...) — together a significant
// slice of the per-instruction budget of the functional ISS and the
// hand-coded baselines.  Caching the *pre-decoded* instruction (fields plus
// classification flags resolved once) is the standard cycle-accurate
// simulator optimization (Reshadi & Dutt, "Generic Pipelined Processor
// Modeling and High Performance Cycle-Accurate Simulator Generation").
//
// Organization: direct-mapped, indexed by pc, tagged by (pc, raw word).
// Tagging by the raw word makes self-modifying code correct by
// construction: a store that changes an instruction word causes a tag
// mismatch on the next fetch of that pc and the entry is re-decoded — no
// invalidation protocol between the store path and the cache is needed.
// The cache is a pure software lookup structure; it models no timing and
// is architecturally invisible (cycle counts are bit-identical on/off).
#pragma once

#include <cstdint>
#include <vector>

#include "isa/decoded_inst.hpp"

namespace osm::isa {

/// Software-cache counters (exported through stats::report by the models).
struct decode_cache_stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;       ///< misses that displaced another pc
    std::uint64_t smc_redecodes = 0;   ///< same pc, changed word (self-modifying code)

    double hit_ratio() const noexcept {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// A decoded instruction plus every classification the engines would
/// otherwise recompute per fetch.  `make` is the single decode entry point
/// used on the miss path (and by engines running with the cache disabled),
/// so cached and uncached execution see identical values.
struct predecoded_inst {
    enum : std::uint16_t {
        f_load = 1u << 0,
        f_store = 1u << 1,
        f_branch = 1u << 2,
        f_jump = 1u << 3,
        f_writes_rd = 1u << 4,
        f_rd_fpr = 1u << 5,
        f_uses_rs1 = 1u << 6,
        f_rs1_fpr = 1u << 7,
        f_uses_rs2 = 1u << 8,
        f_rs2_fpr = 1u << 9,
        f_mul_div = 1u << 10,
        f_system = 1u << 11,
    };

    decoded_inst di{};
    std::uint16_t flags = 0;
    std::uint8_t extra_cycles = 0;  ///< extra_exec_cycles(di.code)

    bool load() const noexcept { return flags & f_load; }
    bool store() const noexcept { return flags & f_store; }
    bool mem() const noexcept { return flags & (f_load | f_store); }
    bool branch() const noexcept { return flags & f_branch; }
    bool jump() const noexcept { return flags & f_jump; }
    bool writes_rd() const noexcept { return flags & f_writes_rd; }
    bool rd_fpr() const noexcept { return flags & f_rd_fpr; }
    bool uses_rs1() const noexcept { return flags & f_uses_rs1; }
    bool rs1_fpr() const noexcept { return flags & f_rs1_fpr; }
    bool uses_rs2() const noexcept { return flags & f_uses_rs2; }
    bool rs2_fpr() const noexcept { return flags & f_rs2_fpr; }
    bool mul_div() const noexcept { return flags & f_mul_div; }
    bool system() const noexcept { return flags & f_system; }

    /// Decode `word` and resolve all classifications.
    static predecoded_inst make(std::uint32_t word);
};

/// Direct-mapped, pc-indexed cache of pre-decoded instructions tagged by
/// the raw word.  `entries` is rounded up to a power of two.
class decode_cache {
public:
    static constexpr std::size_t k_default_entries = 4096;

    explicit decode_cache(std::size_t entries = k_default_entries);

    /// Return the pre-decoded form of (`pc`, `word`), decoding on miss.
    /// The reference stays valid until the next lookup that maps to the
    /// same line (callers copy or consume immediately).
    const predecoded_inst& lookup(std::uint32_t pc, std::uint32_t word) {
        line& l = lines_[(pc >> 2) & mask_];
        if (l.valid && l.pc == pc && l.word == word) {
            ++stats_.hits;
            return l.pd;
        }
        return fill(l, pc, word);
    }

    /// Drop every entry (counters are preserved; see reset_stats).
    void invalidate_all();

    void reset_stats() noexcept { stats_ = {}; }

    std::size_t entries() const noexcept { return lines_.size(); }
    const decode_cache_stats& stats() const noexcept { return stats_; }

private:
    struct line {
        std::uint32_t pc = 0;
        std::uint32_t word = 0;
        bool valid = false;
        predecoded_inst pd{};
    };

    const predecoded_inst& fill(line& l, std::uint32_t pc, std::uint32_t word);

    std::vector<line> lines_;
    std::uint32_t mask_;
    decode_cache_stats stats_;
};

}  // namespace osm::isa
