// Disassembler: decoded_inst -> assembly text (round-trips through the
// assembler, which the test suite checks as a property).
#pragma once

#include <string>

#include "isa/decoded_inst.hpp"

namespace osm::isa {

/// Render `di` in the assembler's input syntax.  `pc` is used to print
/// absolute branch/jump targets as comments.
std::string disassemble(const decoded_inst& di, std::uint32_t pc = 0);

}  // namespace osm::isa
