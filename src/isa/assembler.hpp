// Two-pass text assembler for VR32.
//
// Syntax summary (one statement per line, ';' or '#' starts a comment):
//
//   label:                     bind a label
//   add  rd, rs1, rs2          R-type
//   addi rd, rs1, imm          I-type (imm: decimal or 0x hex, may be -ve)
//   lw   rd, disp(base)        loads (also flw)
//   sw   rs, disp(base)        stores (also fsw)
//   beq  rs1, rs2, target      branches (target: label or numeric address)
//   jal  rd, target            jump and link
//   jalr rd, rs1, imm
//   lui  rd, imm16             upper immediate
//   syscall code / halt
//
// Pseudo-instructions: nop, li rd, imm32, mv rd, rs, j target,
// call target, ret.
//
// Directives: .text [addr], .data [addr], .word v[, v...], .byte v[, ...],
// .space n, .align n.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "isa/program.hpp"

namespace osm::isa {

/// Raised on any syntax or range error; carries the 1-based line number.
class asm_error : public std::runtime_error {
public:
    asm_error(unsigned line, const std::string& message)
        : std::runtime_error("line " + std::to_string(line) + ": " + message),
          line_(line) {}

    unsigned line() const noexcept { return line_; }

private:
    unsigned line_;
};

/// Assemble `source` into a loadable image.
/// `text_base`/`data_base` set the default section bases (overridable with
/// .text/.data directives).
program_image assemble(std::string_view source,
                       std::uint32_t text_base = 0x1000,
                       std::uint32_t data_base = 0x00100000);

}  // namespace osm::isa
