#include "isa/program.hpp"

#include <stdexcept>

#include "common/bits.hpp"
#include "isa/encoding.hpp"

namespace osm::isa {

void program_image::load_into(mem::memory_if& m) const {
    for (const segment& s : segments) {
        for (std::size_t i = 0; i < s.bytes.size(); ++i) {
            m.write8(s.base + static_cast<std::uint32_t>(i), s.bytes[i]);
        }
    }
}

std::size_t program_image::total_bytes() const {
    std::size_t n = 0;
    for (const segment& s : segments) n += s.bytes.size();
    return n;
}

std::size_t program_image::text_words() const {
    for (const segment& s : segments) {
        if (entry >= s.base && entry < s.base + s.bytes.size()) {
            return s.bytes.size() / 4;
        }
    }
    return 0;
}

program_builder::program_builder(std::uint32_t text_base, std::uint32_t data_base)
    : text_base_(text_base), data_base_(data_base) {}

program_builder::label program_builder::new_label() {
    label_pos_.push_back(-1);
    return label_pos_.size() - 1;
}

void program_builder::bind(label l) {
    if (label_pos_.at(l) != -1) throw std::logic_error("label bound twice");
    label_pos_[l] = static_cast<std::int64_t>(text_.size());
}

program_builder::label program_builder::here() {
    const label l = new_label();
    bind(l);
    return l;
}

std::uint32_t program_builder::text_pos() const {
    return text_base_ + static_cast<std::uint32_t>(text_.size()) * 4;
}

std::uint32_t program_builder::emit(const decoded_inst& di) {
    const std::uint32_t addr = text_pos();
    text_.push_back(di);
    return addr;
}

std::uint32_t program_builder::emit_r(op code, unsigned rd, unsigned rs1, unsigned rs2) {
    decoded_inst di;
    di.code = code;
    di.rd = static_cast<std::uint8_t>(rd);
    di.rs1 = static_cast<std::uint8_t>(rs1);
    di.rs2 = static_cast<std::uint8_t>(rs2);
    return emit(di);
}

std::uint32_t program_builder::emit_i(op code, unsigned rd, unsigned rs1, std::int32_t imm) {
    decoded_inst di;
    di.code = code;
    di.rd = static_cast<std::uint8_t>(rd);
    di.rs1 = static_cast<std::uint8_t>(rs1);
    di.imm = imm;
    return emit(di);
}

std::uint32_t program_builder::emit_load(op code, unsigned rd, unsigned base, std::int32_t disp) {
    return emit_i(code, rd, base, disp);
}

std::uint32_t program_builder::emit_store(op code, unsigned src, unsigned base, std::int32_t disp) {
    decoded_inst di;
    di.code = code;
    di.rs2 = static_cast<std::uint8_t>(src);
    di.rs1 = static_cast<std::uint8_t>(base);
    di.imm = disp;
    return emit(di);
}

std::uint32_t program_builder::emit_branch(op code, unsigned rs1, unsigned rs2, label target) {
    decoded_inst di;
    di.code = code;
    di.rs1 = static_cast<std::uint8_t>(rs1);
    di.rs2 = static_cast<std::uint8_t>(rs2);
    fixups_.push_back({text_.size(), target});
    return emit(di);
}

std::uint32_t program_builder::emit_jal(unsigned rd, label target) {
    decoded_inst di;
    di.code = op::jal;
    di.rd = static_cast<std::uint8_t>(rd);
    fixups_.push_back({text_.size(), target});
    return emit(di);
}

std::uint32_t program_builder::emit_jalr(unsigned rd, unsigned rs1, std::int32_t imm) {
    return emit_i(op::jalr, rd, rs1, imm);
}

void program_builder::li(unsigned rd, std::uint32_t value) {
    const auto sv = static_cast<std::int32_t>(value);
    if (sv >= -32768 && sv <= 32767) {
        emit_i(op::addi, rd, 0, sv);
        return;
    }
    emit_i(op::lui, rd, 0, static_cast<std::int32_t>(value >> 16));
    if ((value & 0xFFFFu) != 0) {
        emit_i(op::ori, rd, rd, static_cast<std::int32_t>(value & 0xFFFFu));
    }
}

std::uint32_t program_builder::data_word(std::uint32_t value) {
    data_align(4);
    const std::uint32_t addr = data_base_ + static_cast<std::uint32_t>(data_.size());
    for (unsigned i = 0; i < 4; ++i) {
        data_.push_back(static_cast<std::uint8_t>(value >> (8 * i)));
    }
    return addr;
}

std::uint32_t program_builder::data_bytes(std::span<const std::uint8_t> bytes) {
    const std::uint32_t addr = data_base_ + static_cast<std::uint32_t>(data_.size());
    data_.insert(data_.end(), bytes.begin(), bytes.end());
    return addr;
}

std::uint32_t program_builder::data_reserve(std::size_t n) {
    const std::uint32_t addr = data_base_ + static_cast<std::uint32_t>(data_.size());
    data_.resize(data_.size() + n, 0);
    return addr;
}

void program_builder::data_align(std::uint32_t a) {
    while ((data_base_ + data_.size()) % a != 0) data_.push_back(0);
}

program_image program_builder::finish() {
    if (finished_) throw std::logic_error("program_builder::finish called twice");
    finished_ = true;

    for (const fixup& f : fixups_) {
        const std::int64_t pos = label_pos_.at(f.target);
        if (pos < 0) throw std::logic_error("unbound label in program");
        const auto inst_addr =
            text_base_ + static_cast<std::uint32_t>(f.text_index) * 4;
        const auto target_addr = text_base_ + static_cast<std::uint32_t>(pos) * 4;
        const std::int64_t disp = static_cast<std::int64_t>(target_addr) -
                                  (static_cast<std::int64_t>(inst_addr) + 4);
        decoded_inst& di = text_[f.text_index];
        if (!immediate_fits(di.code, disp)) {
            throw std::logic_error("branch displacement out of range");
        }
        di.imm = static_cast<std::int32_t>(disp);
    }

    program_image img;
    img.entry = text_base_;
    program_image::segment text_seg;
    text_seg.base = text_base_;
    text_seg.bytes.reserve(text_.size() * 4);
    for (const decoded_inst& di : text_) {
        const std::uint32_t w = encode(di);
        for (unsigned i = 0; i < 4; ++i) {
            text_seg.bytes.push_back(static_cast<std::uint8_t>(w >> (8 * i)));
        }
    }
    img.segments.push_back(std::move(text_seg));
    if (!data_.empty()) {
        img.segments.push_back({data_base_, data_});
    }
    return img;
}

}  // namespace osm::isa
