#include "isa/mh_iss.hpp"

#include "isa/decode_cache.hpp"
#include "isa/semantics.hpp"

namespace osm::isa {

mh_iss::mh_iss(mem::main_memory& m, unsigned harts, mem::memory_model model,
               std::uint64_t sched_seed)
    : shared_(m, harts == 0 ? 1 : (harts > max_harts ? max_harts : harts), model),
      rng_(sched_seed),
      states_(shared_.harts()),
      instret_(shared_.harts(), 0) {}

void mh_iss::load(const program_image& img) {
    img.load_into(shared_.backing());
    for (unsigned h = 0; h < harts(); ++h) {
        states_[h] = arch_state{};
        states_[h].pc = h < img.hart_entries.size() ? img.hart_entries[h] : img.entry;
        instret_[h] = 0;
        shared_.set_buffer(h, {});
        shared_.clear_reservation(h);
    }
    host_.clear();
}

std::uint64_t mh_iss::total_retired() const noexcept {
    std::uint64_t n = 0;
    for (const std::uint64_t r : instret_) n += r;
    return n;
}

bool mh_iss::all_halted() const noexcept {
    for (const arch_state& st : states_) {
        if (!st.halted) return false;
    }
    return true;
}

bool mh_iss::step() {
    // Collect runnable harts in hart order so the PRNG draw sequence — and
    // therefore the schedule — depends only on (seed, machine state).
    unsigned runnable[max_harts];
    unsigned n = 0;
    for (unsigned h = 0; h < harts(); ++h) {
        if (!states_[h].halted) runnable[n++] = h;
    }
    if (n == 0) return false;

    if (shared_.model() == mem::memory_model::tso) {
        // Asynchronous store-buffer drain: with probability 1/4 commit the
        // oldest store of a randomly chosen buffered hart before executing.
        // This is what surfaces TSO-only outcomes (e.g. SB's 0/0): a store
        // can stay buffered while the other hart's load reads stale memory,
        // or commit early relative to its hart's later loads — never
        // reordered against the hart's *own* stores (FIFO drain).
        unsigned buffered[max_harts];
        unsigned m = 0;
        for (unsigned h = 0; h < harts(); ++h) {
            if (!shared_.buffer_empty(h)) buffered[m++] = h;
        }
        if (m != 0 && rng_.chance(1, 4)) {
            shared_.drain_one(buffered[rng_.next_below(m)]);
        }
    }

    step_hart(runnable[rng_.next_below(n)]);
    return true;
}

std::uint64_t mh_iss::run(std::uint64_t max_insts) {
    std::uint64_t done = 0;
    while (done < max_insts && step()) ++done;
    return done;
}

void mh_iss::step_hart(unsigned h) {
    arch_state& st = states_[h];
    mem::hart_port& port = shared_.port(h);

    const std::uint32_t word = port.read32(st.pc);
    const predecoded_inst pd = predecoded_inst::make(word);
    const decoded_inst& di = pd.di;

    if (di.code == op::invalid || di.code == op::halt) {
        // Quiesce the hart: its buffered stores become visible before it
        // leaves the machine, so final memory never depends on whether a
        // drain happened to be scheduled after the halt.
        shared_.drain_all(h);
        st.halted = true;
        ++instret_[h];
        return;
    }
    if (di.code == op::syscall_op) {
        // Syscalls are ordering points too (console output must reflect
        // committed memory, and exit must quiesce like halt).
        shared_.drain_all(h);
        host_.handle(static_cast<std::uint16_t>(di.imm), st);
        st.pc += 4;
        ++instret_[h];
        return;
    }
    if (is_atomic_or_fence(di.code)) {
        step_amo(h, di);
        st.pc += 4;
        ++instret_[h];
        return;
    }

    const std::uint32_t a = pd.rs1_fpr() ? st.fpr[di.rs1] : st.gpr[di.rs1];
    const std::uint32_t b = pd.rs2_fpr() ? st.fpr[di.rs2] : st.gpr[di.rs2];
    exec_out out = compute(di, st.pc, a, b);

    if (pd.load()) {
        out.value = do_load(di.code, port, out.mem_addr);
    } else if (pd.store()) {
        do_store(di.code, port, out.mem_addr, out.store_data);
    }

    if (pd.writes_rd()) {
        if (pd.rd_fpr()) {
            st.fpr[di.rd] = out.value;
        } else {
            st.set_gpr(di.rd, out.value);
        }
    }
    st.pc = out.redirect ? out.next_pc : st.pc + 4;
    ++instret_[h];
}

void mh_iss::step_amo(unsigned h, const decoded_inst& di) {
    arch_state& st = states_[h];
    // Every op here is an ordering point: older stores commit first, in
    // FIFO order.  Under SC the buffer is always empty and this is a no-op.
    shared_.drain_all(h);
    const std::uint32_t addr = st.gpr[di.rs1] & ~3u;
    switch (di.code) {
        case op::lr_w:
            st.set_gpr(di.rd, shared_.backing().read32(addr));
            shared_.set_reservation(h, addr);
            break;
        case op::sc_w: {
            const bool ok = shared_.reservation_holds(h, addr);
            if (ok) shared_.commit_direct(h, addr, 4, st.gpr[di.rs2]);
            // Any sc.w consumes the reservation, success or not.
            shared_.clear_reservation(h);
            st.set_gpr(di.rd, ok ? 0u : 1u);
            break;
        }
        case op::amoadd_w:
        case op::amoswap_w: {
            const std::uint32_t old = shared_.backing().read32(addr);
            const std::uint32_t rs2 = st.gpr[di.rs2];
            shared_.commit_direct(h, addr, 4,
                                  di.code == op::amoadd_w ? old + rs2 : rs2);
            st.set_gpr(di.rd, old);
            break;
        }
        default:  // fence: the drain above *is* the barrier
            break;
    }
}

}  // namespace osm::isa
