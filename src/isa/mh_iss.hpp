// Multi-hart instruction-set simulator.
//
// N copies of the VR32 architectural state execute over one shared-memory
// subsystem (mem/shared_mem.hpp) under a seeded, deterministic scheduler:
// each scheduler step picks one runnable hart with the PRNG and retires one
// instruction on it, and — under TSO — sometimes commits a buffered store
// from a randomly chosen hart first.  The whole run is a pure function of
// (program, hart count, memory model, schedule seed), which is what lets
// the litmus harness enumerate/replay interleavings and lets two runs be
// compared byte-for-byte.
//
// This is deliberately the plain interpretive core (no decode/block
// caches): multi-hart workloads are small racy kernels where schedule
// coverage matters more than single-hart throughput, and the single-hart
// ISS remains the fast path for everything else.
#pragma once

#include <cstdint>
#include <vector>

#include "common/xrandom.hpp"
#include "isa/arch.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "mem/shared_mem.hpp"

namespace osm::isa {

/// Deterministic N-hart interpreter over a shared memory.
class mh_iss {
public:
    /// Scheduler bookkeeping uses fixed-size scratch arrays; far above any
    /// realistic litmus/fuzz configuration (the generators use 2-4).
    static constexpr unsigned max_harts = 64;

    /// `harts` is clamped to [1, max_harts].  `sched_seed` seeds the scheduler PRNG;
    /// the same seed always produces the same interleaving.
    mh_iss(mem::main_memory& m, unsigned harts, mem::memory_model model,
           std::uint64_t sched_seed);

    /// Load `img` and reset every hart.  Hart h starts at
    /// img.hart_entries[h] when provided, else at img.entry.
    void load(const program_image& img);

    unsigned harts() const noexcept { return shared_.harts(); }
    mem::memory_model model() const noexcept { return shared_.model(); }

    arch_state& state(unsigned h) noexcept { return states_[h]; }
    const arch_state& state(unsigned h) const noexcept { return states_[h]; }
    std::uint64_t instret(unsigned h) const noexcept { return instret_[h]; }
    std::uint64_t total_retired() const noexcept;
    bool all_halted() const noexcept;

    syscall_host& host() noexcept { return host_; }
    const syscall_host& host() const noexcept { return host_; }
    mem::shared_memory& shared() noexcept { return shared_; }
    const mem::shared_memory& shared() const noexcept { return shared_; }
    xrandom& sched_rng() noexcept { return rng_; }
    const xrandom& sched_rng() const noexcept { return rng_; }

    /// One scheduler step: possibly drain one buffered store (TSO), then
    /// retire one instruction on a PRNG-chosen runnable hart.  Returns
    /// false when every hart has halted (no step taken).
    bool step();

    /// Step until all harts halt or `max_insts` instructions retire;
    /// returns instructions executed by this call.
    std::uint64_t run(std::uint64_t max_insts = ~0ull);

    /// Checkpoint restore: adopt hart `h`'s registers and retired count.
    /// Store buffers, reservations and the scheduler PRNG are restored
    /// separately through shared() / sched_rng().
    void restore_hart(unsigned h, const arch_state& st, std::uint64_t instret) {
        states_[h] = st;
        instret_[h] = instret;
    }

private:
    /// Retire one instruction on hart `h`.
    void step_hart(unsigned h);
    /// lr.w/sc.w/amo*/fence: ordering point — drain own buffer, then
    /// operate on committed memory.
    void step_amo(unsigned h, const decoded_inst& di);

    mem::shared_memory shared_;
    syscall_host host_;
    xrandom rng_;
    std::vector<arch_state> states_;
    std::vector<std::uint64_t> instret_;
};

}  // namespace osm::isa
