// Instruction-set simulator: the functional golden model.
//
// Both case-study micro-architecture models in the paper are "based on
// existing ISSs"; this class plays that role.  It also provides the shared
// syscall host used by every engine so console output and halting behave
// identically everywhere.
//
// Two host-side fast paths, both architecturally invisible:
//   * decode cache — (pc, word)-tagged pre-decoded instructions (PR 2);
//   * block cache  — translated basic blocks executed by a threaded-code
//     dispatch loop that never re-enters fetch/decode between
//     instructions (see block_cache.hpp and exec_block in iss.cpp).
#pragma once

#include <cstdint>
#include <string>

#include "isa/arch.hpp"
#include "isa/block_cache.hpp"
#include "isa/decode_cache.hpp"
#include "isa/program.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_if.hpp"
#include "stats/stats.hpp"

namespace osm::isa {

/// Console + exit behaviour shared by all execution engines.
class syscall_host {
public:
    /// Execute syscall `code` against `st` (reads a0..a3); may set
    /// st.halted and append to the console stream.
    void handle(std::uint16_t code, arch_state& st);

    const std::string& console() const noexcept { return console_; }
    void clear() { console_.clear(); }
    /// Replace the stream wholesale (checkpoint restore: the restored
    /// machine continues appending after the checkpointed output).
    void seed(std::string s) { console_ = std::move(s); }

private:
    std::string console_;
};

/// Functional simulator: interpretive stepping plus a translated-block
/// fast path.
class iss {
public:
    explicit iss(mem::memory_if& m, bool use_decode_cache = true,
                 bool use_block_cache = true)
        : mem_(m),
          decode_cache_on_(use_decode_cache),
          block_cache_on_(use_block_cache) {}

    /// Load `img` into memory and point pc at its entry.
    void load(const program_image& img);

    /// Adopt a previously captured architectural state: registers, pc and
    /// halt flag from `st`, retired counter `instret`, console stream
    /// `console`.  Memory is restored separately by the caller (the ISS
    /// does not own its memory).  Both caches are flushed: the restored
    /// image may hold different program bytes at cached pcs, so stale
    /// decodes or translated blocks must never survive a restore.
    void restore_arch(const arch_state& st, std::uint64_t instret,
                      const std::string& console);

    arch_state& state() noexcept { return state_; }
    const arch_state& state() const noexcept { return state_; }
    syscall_host& host() noexcept { return host_; }
    const syscall_host& host() const noexcept { return host_; }

    /// Retired instruction count.
    std::uint64_t instret() const noexcept { return instret_; }

    /// Execute one instruction interpretively.  Returns false when already
    /// halted.  An `invalid` opcode halts the machine (modeling an
    /// undefined-instruction trap).
    bool step();

    /// Run until halt or `max_steps`; returns instructions executed by
    /// this call (not the lifetime total — see instret()).  With the block
    /// cache enabled, runs translated blocks through the threaded dispatch
    /// loop and falls back to step() when the remaining budget is smaller
    /// than the next block.
    std::uint64_t run(std::uint64_t max_steps = ~0ull);

    /// Toggle the decoded-instruction cache (architecturally invisible;
    /// load() clears the cache either way).
    void set_decode_cache(bool on) noexcept { decode_cache_on_ = on; }
    bool decode_cache_enabled() const noexcept { return decode_cache_on_; }
    const decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

    /// Toggle the translated-block cache.  Toggling flushes the blocks:
    /// while disabled the store path performs no SMC screening, so blocks
    /// built earlier can go stale.
    void set_block_cache(bool on) noexcept {
        if (on != block_cache_on_) bcache_.invalidate_all();
        block_cache_on_ = on;
    }
    bool block_cache_enabled() const noexcept { return block_cache_on_; }
    const block_cache_stats& block_stats() const noexcept { return bcache_.stats(); }

    /// Structured report (retired count + cache counters).
    stats::report make_report() const;

    /// LR/SC reservation (single hart: only this hart's lr.w sets it and
    /// only its sc.w consumes it).  Exposed so checkpoints can carry an
    /// in-flight reservation across save/restore.
    bool reservation_valid() const noexcept { return resv_valid_; }
    std::uint32_t reservation_addr() const noexcept { return resv_addr_; }
    void set_reservation(bool valid, std::uint32_t addr) noexcept {
        resv_valid_ = valid;
        resv_addr_ = addr;
    }

private:
    bool step_with(const predecoded_inst& pd);
    /// lr.w/sc.w/amoadd.w/amoswap.w/fence: the interpretive-path handler
    /// (step_with dispatches here on one compare; pc/instret advance there).
    void step_amo(const decoded_inst& di);
    /// Execute `blk` to its terminator (or SMC abort) with the threaded
    /// dispatch loop; returns instructions retired (adds them to instret_).
    std::uint64_t exec_block(const basic_block& blk);

    mem::memory_if& mem_;
    arch_state state_;
    syscall_host host_;
    std::uint64_t instret_ = 0;
    decode_cache dcode_;
    block_cache bcache_;
    bool decode_cache_on_ = true;
    bool block_cache_on_ = true;
    bool resv_valid_ = false;        ///< lr.w reservation held
    std::uint32_t resv_addr_ = 0;    ///< reserved word address (aligned)
};

}  // namespace osm::isa
