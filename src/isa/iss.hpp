// Instruction-set simulator: the functional golden model.
//
// Both case-study micro-architecture models in the paper are "based on
// existing ISSs"; this class plays that role.  It also provides the shared
// syscall host used by every engine so console output and halting behave
// identically everywhere.
#pragma once

#include <cstdint>
#include <string>

#include "isa/arch.hpp"
#include "isa/decode_cache.hpp"
#include "isa/program.hpp"
#include "isa/semantics.hpp"
#include "mem/memory_if.hpp"
#include "stats/stats.hpp"

namespace osm::isa {

/// Console + exit behaviour shared by all execution engines.
class syscall_host {
public:
    /// Execute syscall `code` against `st` (reads a0..a3); may set
    /// st.halted and append to the console stream.
    void handle(std::uint16_t code, arch_state& st);

    const std::string& console() const noexcept { return console_; }
    void clear() { console_.clear(); }
    /// Replace the stream wholesale (checkpoint restore: the restored
    /// machine continues appending after the checkpointed output).
    void seed(std::string s) { console_ = std::move(s); }

private:
    std::string console_;
};

/// Interpreted functional simulator.
class iss {
public:
    explicit iss(mem::memory_if& m, bool use_decode_cache = true)
        : mem_(m), decode_cache_on_(use_decode_cache) {}

    /// Load `img` into memory and point pc at its entry.
    void load(const program_image& img);

    /// Adopt a previously captured architectural state: registers, pc and
    /// halt flag from `st`, retired counter `instret`, console stream
    /// `console`.  Memory is restored separately by the caller (the ISS
    /// does not own its memory).  Decode-cache contents and counters reset.
    void restore_arch(const arch_state& st, std::uint64_t instret,
                      const std::string& console);

    arch_state& state() noexcept { return state_; }
    const arch_state& state() const noexcept { return state_; }
    syscall_host& host() noexcept { return host_; }
    const syscall_host& host() const noexcept { return host_; }

    /// Retired instruction count.
    std::uint64_t instret() const noexcept { return instret_; }

    /// Execute one instruction.  Returns false when already halted.
    /// An `invalid` opcode halts the machine (modeling an undefined-
    /// instruction trap).
    bool step();

    /// Run until halt or `max_steps`; returns instructions executed by
    /// this call (not the lifetime total — see instret()).
    std::uint64_t run(std::uint64_t max_steps = ~0ull);

    /// Toggle the decoded-instruction cache (architecturally invisible;
    /// load() clears the cache either way).
    void set_decode_cache(bool on) noexcept { decode_cache_on_ = on; }
    bool decode_cache_enabled() const noexcept { return decode_cache_on_; }
    const decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

    /// Structured report (retired count + decode-cache counters).
    stats::report make_report() const;

private:
    bool step_with(const predecoded_inst& pd);

    mem::memory_if& mem_;
    arch_state state_;
    syscall_host host_;
    std::uint64_t instret_ = 0;
    decode_cache dcode_;
    bool decode_cache_on_ = true;
};

}  // namespace osm::isa
