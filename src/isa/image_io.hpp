// On-disk format for program images ("VRI": VR32 image).
//
// Layout (little endian):
//   u32 magic 'VRI1'   u32 entry   u32 segment_count
//   per segment: u32 base, u32 size, size bytes
//
// Deliberately minimal — the framework's loader equivalent of a stripped
// ELF — so assembled programs can move between the CLI tools and embedded
// uses without a text round-trip.
#pragma once

#include <string>

#include "isa/program.hpp"

namespace osm::isa {

inline constexpr std::uint32_t k_image_magic = 0x31495256;  // "VRI1"

/// Serialize `img` to `path`.  Throws std::runtime_error on I/O failure.
void save_image(const std::string& path, const program_image& img);

/// Load an image previously written by save_image.  Throws
/// std::runtime_error on I/O failure or a malformed file.
program_image load_image(const std::string& path);

}  // namespace osm::isa
