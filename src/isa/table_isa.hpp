// Generic, ISA-agnostic decode/encode table runtime.
//
// An ISA is described once in a declarative bit-pattern spec
// (`src/isa/specs/<isa>.spec`); `tools/osm-decgen` compiles it into the
// constexpr data structures below (committed under `src/isa/gen/`).  Every
// front-end layer — decoder, field extraction, encoder, immediate range
// checks, the assembler's mnemonic table and the disassembler's operand
// classification — is a thin shim over one `isa_tables` instance, so adding
// an ISA means writing one spec file, not four hand-kept switch statements.
//
// Decode is a two-level lookup: the primary opcode field selects a bucket,
// and a bucket either names a single candidate, a dense sub-table indexed
// by a contiguous span of secondary opcode bits (e.g. VR32 funct, PPC32
// XO), or a short linear list.  Every candidate is confirmed with a final
// `(word & mask) == match` check, so the index structure is purely an
// accelerator and can never change decode semantics.
#pragma once

#include <cstdint>

namespace osm::isa::tbl {

/// Operand-slot register-file kind (architectural use, not extraction:
/// a field can be extracted by decode yet unused, e.g. VR32 fabs rs2).
enum kind : std::uint8_t { k_none = 0, k_gpr = 1, k_fpr = 2 };

/// Instruction class driving the shared predicates/disassembler layout.
enum cls : std::uint8_t {
    c_alu = 0,    ///< single-cycle integer ALU (reg or imm forms)
    c_muldiv,     ///< long-latency integer multiply/divide
    c_load,       ///< memory load (any register file)
    c_store,      ///< memory store (any register file)
    c_branch,     ///< conditional pc-relative branch
    c_jump,       ///< unconditional jump / jump-and-link
    c_fpc,        ///< FP computational (FPU-executed arithmetic)
    c_fpx,        ///< FP compare / convert / cross-file move
    c_sys,        ///< syscall / halt / system
    c_amo,        ///< atomic memory operation (lr/sc/amo*: read-modify-write)
    c_sync,       ///< memory ordering barrier (fence)
};

/// One non-immediate operand field in the instruction word.
/// `enc_only` fields are inserted on encode (and so participate in
/// bit-identical re-encoding) but ignored by decode — they model
/// reserved/ignored spans that the hand-written encoders populated.
struct field_desc {
    char letter;          ///< spec letter, lowercase canonical ('d','a','b',...)
    std::uint8_t shift;   ///< low bit position
    std::uint8_t width;   ///< field width in bits
    bool enc_only;        ///< encode-side only (decode ignores)
};

/// Immediate field description (at most one per instruction).
struct imm_desc {
    bool present;         ///< instruction has an immediate field at all
    bool in_decode;       ///< decode extracts it (false => encode-only)
    bool sign;            ///< sign-extended (else zero-extended)
    std::uint8_t shift;
    std::uint8_t width;
    std::uint8_t scale;   ///< encoded value is imm/scale (1 or 4)
};

/// One instruction: fixed-bit pattern plus operand/attribute metadata.
struct inst_desc {
    std::uint16_t id;          ///< ISA op-enum value (0 reserved for invalid)
    const char* mnemonic;
    std::uint32_t match;       ///< fixed bits ('x'/fields contribute 0)
    std::uint32_t mask;        ///< 1 where the bit is fixed on decode
    const field_desc* fields;  ///< non-imm fields, `nfields` long
    std::uint8_t nfields;
    imm_desc imm;
    std::uint8_t cls;          ///< enum cls
    std::uint8_t rd_kind;      ///< enum kind
    std::uint8_t rs1_kind;
    std::uint8_t rs2_kind;
    std::uint8_t lat;          ///< extra execute cycles beyond the first
};

/// Decode accelerator bucket, selected by the primary opcode field.
struct bucket_desc {
    std::uint8_t sub_shift;    ///< low bit of the dense sub-index span
    std::uint8_t sub_bits;     ///< span width; 0 => use the linear list
    std::uint32_t sub_off;     ///< offset into isa_tables::sub
    std::uint16_t first;       ///< offset into isa_tables::order (linear)
    std::uint16_t count;       ///< linear-list length (0 => empty bucket)
};

inline constexpr std::uint16_t no_inst = 0xFFFF;

/// A complete generated ISA description.
struct isa_tables {
    const char* isa_name;
    const inst_desc* insts;       ///< in op-enum order; insts[i].id == i+1
    std::uint16_t ninsts;
    std::uint8_t primary_shift;   ///< primary opcode field position
    std::uint8_t primary_bits;
    const bucket_desc* buckets;   ///< 1 << primary_bits entries
    const std::uint16_t* sub;     ///< dense sub-tables (no_inst = miss)
    const std::uint16_t* order;   ///< linear candidate lists
};

/// Decode lookup: the matching instruction descriptor, or nullptr.
const inst_desc* lookup(const isa_tables& t, std::uint32_t word) noexcept;

/// Descriptor for an op-enum value (nullptr for invalid/out-of-range).
inline const inst_desc* desc_for(const isa_tables& t, unsigned id) noexcept {
    return (id >= 1 && id <= t.ninsts) ? &t.insts[id - 1] : nullptr;
}

/// Extract a non-immediate field value from an instruction word.
std::uint32_t extract_field(const field_desc& f, std::uint32_t word) noexcept;

/// Extract the (extended, scaled) immediate.  Precondition: imm.in_decode.
std::int32_t extract_imm(const imm_desc& im, std::uint32_t word) noexcept;

/// Insert a field value into a word under construction.
std::uint32_t insert_field(std::uint32_t w, const field_desc& f,
                           std::uint32_t value) noexcept;

/// Insert the immediate (divides by scale, masks to width).
std::uint32_t insert_imm(std::uint32_t w, const imm_desc& im,
                         std::int32_t imm) noexcept;

/// True when `imm` is representable in the instruction's immediate field
/// (instructions without one require imm == 0).
bool imm_fits(const inst_desc& d, std::int64_t imm) noexcept;

}  // namespace osm::isa::tbl
