#include "isa/table_isa.hpp"

#include "common/bits.hpp"

namespace osm::isa::tbl {

const inst_desc* lookup(const isa_tables& t, std::uint32_t word) noexcept {
    const std::uint32_t primary = bits(word, t.primary_shift, t.primary_bits);
    const bucket_desc& b = t.buckets[primary];
    if (b.count == 0) return nullptr;
    if (b.sub_bits != 0) {
        const std::uint32_t v = bits(word, b.sub_shift, b.sub_bits);
        const std::uint16_t idx = t.sub[b.sub_off + v];
        if (idx == no_inst) return nullptr;
        const inst_desc& d = t.insts[idx];
        return (word & d.mask) == d.match ? &d : nullptr;
    }
    for (std::uint16_t i = 0; i < b.count; ++i) {
        const inst_desc& d = t.insts[t.order[b.first + i]];
        if ((word & d.mask) == d.match) return &d;
    }
    return nullptr;
}

std::uint32_t extract_field(const field_desc& f, std::uint32_t word) noexcept {
    return bits(word, f.shift, f.width);
}

std::int32_t extract_imm(const imm_desc& im, std::uint32_t word) noexcept {
    const std::uint32_t raw = bits(word, im.shift, im.width);
    const std::int32_t v =
        im.sign ? sign_extend(raw, im.width) : static_cast<std::int32_t>(raw);
    return v * static_cast<std::int32_t>(im.scale);
}

std::uint32_t insert_field(std::uint32_t w, const field_desc& f,
                           std::uint32_t value) noexcept {
    return insert_bits(w, value, f.shift, f.width);
}

std::uint32_t insert_imm(std::uint32_t w, const imm_desc& im,
                         std::int32_t imm) noexcept {
    const auto scaled = static_cast<std::uint32_t>(
        imm / static_cast<std::int32_t>(im.scale));
    return insert_bits(w, scaled, im.shift, im.width);
}

bool imm_fits(const inst_desc& d, std::int64_t imm) noexcept {
    if (!d.imm.present) return imm == 0;
    const auto scale = static_cast<std::int64_t>(d.imm.scale);
    if (imm % scale != 0) return false;
    const std::int64_t v = imm / scale;
    if (d.imm.sign) {
        const std::int64_t half = std::int64_t{1} << (d.imm.width - 1);
        return v >= -half && v < half;
    }
    const std::int64_t top = std::int64_t{1} << d.imm.width;
    return v >= 0 && v < top;
}

}  // namespace osm::isa::tbl
