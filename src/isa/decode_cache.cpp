#include "isa/decode_cache.hpp"

#include "common/bits.hpp"
#include "isa/encoding.hpp"

namespace osm::isa {

predecoded_inst predecoded_inst::make(std::uint32_t word) {
    predecoded_inst pd;
    pd.di = decode(word);
    const op c = pd.di.code;
    std::uint16_t f = 0;
    // The classification predicates are namespace-scope functions; the
    // member accessors of the same name shadow them here, so qualify.
    if (osm::isa::is_load(c)) f |= f_load;
    if (osm::isa::is_store(c)) f |= f_store;
    if (osm::isa::is_branch(c)) f |= f_branch;
    if (osm::isa::is_jump(c)) f |= f_jump;
    if (osm::isa::writes_rd(c)) f |= f_writes_rd;
    if (osm::isa::rd_is_fpr(c)) f |= f_rd_fpr;
    if (osm::isa::uses_rs1(c)) f |= f_uses_rs1;
    if (osm::isa::rs1_is_fpr(c)) f |= f_rs1_fpr;
    if (osm::isa::uses_rs2(c)) f |= f_uses_rs2;
    if (osm::isa::rs2_is_fpr(c)) f |= f_rs2_fpr;
    if (osm::isa::is_mul_div(c)) f |= f_mul_div;
    if (osm::isa::is_system(c)) f |= f_system;
    pd.flags = f;
    pd.extra_cycles = static_cast<std::uint8_t>(extra_exec_cycles(c));
    return pd;
}

decode_cache::decode_cache(std::size_t entries) {
    std::size_t n = 1;
    while (n < entries) n <<= 1;
    lines_.resize(n);
    mask_ = static_cast<std::uint32_t>(n - 1);
}

const predecoded_inst& decode_cache::fill(line& l, std::uint32_t pc,
                                          std::uint32_t word) {
    ++stats_.misses;
    if (l.valid) {
        if (l.pc == pc) {
            ++stats_.smc_redecodes;  // same location, rewritten word
        } else {
            ++stats_.evictions;
        }
    }
    l.pd = predecoded_inst::make(word);
    l.pc = pc;
    l.word = word;
    l.valid = true;
    return l.pd;
}

void decode_cache::invalidate_all() {
    for (line& l : lines_) l.valid = false;
}

}  // namespace osm::isa
