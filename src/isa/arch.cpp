#include "isa/arch.hpp"

#include <string>

namespace osm::isa {

namespace {
constexpr std::array<std::string_view, num_gprs> k_gpr_names = {
    "x0",  "x1",  "x2",  "x3",  "x4",  "x5",  "x6",  "x7",
    "x8",  "x9",  "x10", "x11", "x12", "x13", "x14", "x15",
    "x16", "x17", "x18", "x19", "x20", "x21", "x22", "x23",
    "x24", "x25", "x26", "x27", "x28", "x29", "x30", "x31"};

constexpr std::array<std::string_view, num_fprs> k_fpr_names = {
    "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
    "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
    "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
    "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};

struct alias {
    std::string_view name;
    int index;
};

constexpr alias k_aliases[] = {
    {"zero", 0}, {"ra", 1}, {"sp", 2},  {"gp", 3},
    {"a0", 4},   {"a1", 5}, {"a2", 6},  {"a3", 7},
    {"a4", 8},   {"a5", 9}, {"a6", 10}, {"a7", 11},
    {"t0", 12},  {"t1", 13}, {"t2", 14}, {"t3", 15},
    {"t4", 16},  {"t5", 17}, {"t6", 18}, {"t7", 19},
    {"t8", 20},  {"t9", 21},
    {"s0", 22},  {"s1", 23}, {"s2", 24}, {"s3", 25},
    {"s4", 26},  {"s5", 27}, {"s6", 28}, {"s7", 29},
    {"s8", 30},  {"s9", 31},
};

int parse_indexed(std::string_view name, char prefix, unsigned limit) {
    if (name.size() < 2 || name.size() > 3 || name[0] != prefix) return -1;
    unsigned value = 0;
    for (std::size_t i = 1; i < name.size(); ++i) {
        if (name[i] < '0' || name[i] > '9') return -1;
        value = value * 10 + static_cast<unsigned>(name[i] - '0');
    }
    return value < limit ? static_cast<int>(value) : -1;
}
}  // namespace

std::string_view gpr_name(unsigned index) { return k_gpr_names.at(index); }
std::string_view fpr_name(unsigned index) { return k_fpr_names.at(index); }

int parse_gpr(std::string_view name) {
    const int direct = parse_indexed(name, 'x', num_gprs);
    if (direct >= 0) return direct;
    for (const alias& a : k_aliases) {
        if (a.name == name) return a.index;
    }
    return -1;
}

int parse_fpr(std::string_view name) { return parse_indexed(name, 'f', num_fprs); }

}  // namespace osm::isa
