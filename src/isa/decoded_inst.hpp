// Post-decode instruction representation and classification predicates.
#pragma once

#include <cstdint>
#include <string_view>

namespace osm::isa {

/// Mnemonic-level operation.  This is the alphabet every execution engine
/// (ISS, OSM models, hardwired baseline, port model) agrees on.
enum class op : std::uint8_t {
    invalid = 0,
    // R-type integer ALU
    add_r, sub_r, and_r, or_r, xor_r, nor_r, sll_r, srl_r, sra_r, slt_r, sltu_r,
    // R-type multiply/divide
    mul, mulh, mulhu, div_s, div_u, rem_s, rem_u,
    // I-type ALU
    addi, andi, ori, xori, slti, sltiu, slli, srli, srai, lui, auipc,
    // Loads / stores
    lb, lbu, lh, lhu, lw, sb, sh, sw,
    // Branches
    beq, bne, blt, bge, bltu, bgeu,
    // Jumps
    jal, jalr,
    // FP computational (single precision)
    fadd, fsub, fmul, fdiv, fmin, fmax, fabs_f, fneg_f,
    // FP compare / convert / move (cross register files)
    feq, flt_f, fle, fcvt_w_s, fcvt_s_w, fmv_x_w, fmv_w_x,
    // FP memory
    flw, fsw,
    // System
    syscall_op, halt,
    count_
};

/// Human-readable mnemonic ("add", "lw", ...).
std::string_view op_name(op code);

/// A decoded instruction.  Field meanings are normalized:
///   rd  — destination register (GPR or FPR depending on op);
///   rs1 — first source / base address register;
///   rs2 — second source / store data register;
///   imm — sign-extended immediate (byte displacement for memory ops;
///         *byte* offset from pc+4 for branches/jal; raw for ALU).
struct decoded_inst {
    op code = op::invalid;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
    std::int32_t imm = 0;
    std::uint32_t raw = 0;

    bool operator==(const decoded_inst&) const = default;
};

// ---- classification -------------------------------------------------------

bool is_branch(op code);        ///< conditional branches
bool is_jump(op code);          ///< jal / jalr
inline bool is_cti(op code) { return is_branch(code) || is_jump(code); }
bool is_load(op code);          ///< lb..lw, flw
bool is_store(op code);         ///< sb..sw, fsw
inline bool is_mem(op code) { return is_load(code) || is_store(code); }
bool is_mul_div(op code);       ///< long-latency integer ops
bool is_fp(op code);            ///< any op touching the FP register file
bool is_fp_compute(op code);    ///< fadd..fneg (FPU-executed arithmetic)
bool is_system(op code);        ///< syscall / halt

bool writes_rd(op code);        ///< has a destination register
bool rd_is_fpr(op code);        ///< destination is an FPR
bool uses_rs1(op code);
bool rs1_is_fpr(op code);
bool uses_rs2(op code);
bool rs2_is_fpr(op code);

/// Default execute-stage latency class used by the models (cycles the
/// operation occupies its function unit beyond the first).
unsigned extra_exec_cycles(op code);

}  // namespace osm::isa
