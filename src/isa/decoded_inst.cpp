#include "isa/decoded_inst.hpp"

namespace osm::isa {

std::string_view op_name(op code) {
    switch (code) {
        case op::invalid: return "invalid";
        case op::add_r: return "add";
        case op::sub_r: return "sub";
        case op::and_r: return "and";
        case op::or_r: return "or";
        case op::xor_r: return "xor";
        case op::nor_r: return "nor";
        case op::sll_r: return "sll";
        case op::srl_r: return "srl";
        case op::sra_r: return "sra";
        case op::slt_r: return "slt";
        case op::sltu_r: return "sltu";
        case op::mul: return "mul";
        case op::mulh: return "mulh";
        case op::mulhu: return "mulhu";
        case op::div_s: return "div";
        case op::div_u: return "divu";
        case op::rem_s: return "rem";
        case op::rem_u: return "remu";
        case op::addi: return "addi";
        case op::andi: return "andi";
        case op::ori: return "ori";
        case op::xori: return "xori";
        case op::slti: return "slti";
        case op::sltiu: return "sltiu";
        case op::slli: return "slli";
        case op::srli: return "srli";
        case op::srai: return "srai";
        case op::lui: return "lui";
        case op::auipc: return "auipc";
        case op::lb: return "lb";
        case op::lbu: return "lbu";
        case op::lh: return "lh";
        case op::lhu: return "lhu";
        case op::lw: return "lw";
        case op::sb: return "sb";
        case op::sh: return "sh";
        case op::sw: return "sw";
        case op::beq: return "beq";
        case op::bne: return "bne";
        case op::blt: return "blt";
        case op::bge: return "bge";
        case op::bltu: return "bltu";
        case op::bgeu: return "bgeu";
        case op::jal: return "jal";
        case op::jalr: return "jalr";
        case op::fadd: return "fadd";
        case op::fsub: return "fsub";
        case op::fmul: return "fmul";
        case op::fdiv: return "fdiv";
        case op::fmin: return "fmin";
        case op::fmax: return "fmax";
        case op::fabs_f: return "fabs";
        case op::fneg_f: return "fneg";
        case op::feq: return "feq";
        case op::flt_f: return "flt";
        case op::fle: return "fle";
        case op::fcvt_w_s: return "fcvt.w.s";
        case op::fcvt_s_w: return "fcvt.s.w";
        case op::fmv_x_w: return "fmv.x.w";
        case op::fmv_w_x: return "fmv.w.x";
        case op::flw: return "flw";
        case op::fsw: return "fsw";
        case op::syscall_op: return "syscall";
        case op::halt: return "halt";
        case op::count_: break;
    }
    return "?";
}

bool is_branch(op code) {
    switch (code) {
        case op::beq: case op::bne: case op::blt:
        case op::bge: case op::bltu: case op::bgeu:
            return true;
        default:
            return false;
    }
}

bool is_jump(op code) { return code == op::jal || code == op::jalr; }

bool is_load(op code) {
    switch (code) {
        case op::lb: case op::lbu: case op::lh: case op::lhu: case op::lw:
        case op::flw:
            return true;
        default:
            return false;
    }
}

bool is_store(op code) {
    switch (code) {
        case op::sb: case op::sh: case op::sw: case op::fsw:
            return true;
        default:
            return false;
    }
}

bool is_mul_div(op code) {
    switch (code) {
        case op::mul: case op::mulh: case op::mulhu:
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
            return true;
        default:
            return false;
    }
}

bool is_fp_compute(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
            return true;
        default:
            return false;
    }
}

bool is_fp(op code) {
    if (is_fp_compute(code)) return true;
    switch (code) {
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fcvt_s_w:
        case op::fmv_x_w: case op::fmv_w_x:
        case op::flw: case op::fsw:
            return true;
        default:
            return false;
    }
}

bool is_system(op code) { return code == op::syscall_op || code == op::halt; }

bool writes_rd(op code) {
    if (is_store(code) || is_branch(code) || is_system(code) ||
        code == op::invalid) {
        return false;
    }
    return true;
}

bool rd_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
        case op::fcvt_s_w: case op::fmv_w_x: case op::flw:
            return true;
        default:
            return false;
    }
}

bool uses_rs1(op code) {
    switch (code) {
        case op::lui: case op::auipc: case op::jal:
        case op::syscall_op: case op::halt: case op::invalid:
            return false;
        default:
            return true;
    }
}

bool rs1_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fmv_x_w:
            return true;
        default:
            return false;
    }
}

bool uses_rs2(op code) {
    switch (code) {
        case op::add_r: case op::sub_r: case op::and_r: case op::or_r:
        case op::xor_r: case op::nor_r: case op::sll_r: case op::srl_r:
        case op::sra_r: case op::slt_r: case op::sltu_r:
        case op::mul: case op::mulh: case op::mulhu:
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
        case op::sb: case op::sh: case op::sw: case op::fsw:
        case op::beq: case op::bne: case op::blt: case op::bge:
        case op::bltu: case op::bgeu:
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax:
        case op::feq: case op::flt_f: case op::fle:
            return true;
        default:
            return false;
    }
}

bool rs2_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax:
        case op::feq: case op::flt_f: case op::fle:
        case op::fsw:
            return true;
        default:
            return false;
    }
}

unsigned extra_exec_cycles(op code) {
    switch (code) {
        case op::mul: case op::mulh: case op::mulhu:
            return 2;  // 3-cycle multiplier
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
            return 11;  // 12-cycle iterative divider
        case op::fadd: case op::fsub: case op::fmin: case op::fmax:
        case op::fabs_f: case op::fneg_f:
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fcvt_s_w:
            return 2;  // 3-cycle FP pipeline
        case op::fmul:
            return 3;
        case op::fdiv:
            return 17;
        default:
            return 0;
    }
}

}  // namespace osm::isa
