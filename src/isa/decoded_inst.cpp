// Classification attributes folded from the generated VR32 tables.
// The per-instruction attributes (class, operand register files, latency
// class) are declared once in src/isa/specs/vr32.spec; this file packs
// them into the flat constexpr array behind the inline predicates in
// decoded_inst.hpp.  The generated .inc is included here (again, besides
// vr32_tables.cpp) so the packing happens at compile time — the hot
// predicates must not depend on static-initialization order.
#include "isa/decoded_inst.hpp"

#include "isa/vr32_tables.hpp"

namespace osm::isa {

namespace {
#include "isa/gen/vr32_tables.inc"

static_assert(detail::k_num_ops == std::size_t{k_vr32_tables.ninsts} + 1,
              "op enum and generated tables disagree — regenerate src/isa/gen");

constexpr std::array<detail::op_attrs, detail::k_num_ops> build_attrs() {
    std::array<detail::op_attrs, detail::k_num_ops> a{};
    a[0] = {0xFF, 0, 0};  // op::invalid
    for (std::uint16_t i = 0; i < k_vr32_tables.ninsts; ++i) {
        const tbl::inst_desc& d = k_vr32_tables.insts[i];
        std::uint8_t f = 0;
        if (d.rd_kind != tbl::k_none) f |= detail::f_writes_rd;
        if (d.rd_kind == tbl::k_fpr) f |= detail::f_rd_fpr;
        if (d.rs1_kind != tbl::k_none) f |= detail::f_uses_rs1;
        if (d.rs1_kind == tbl::k_fpr) f |= detail::f_rs1_fpr;
        if (d.rs2_kind != tbl::k_none) f |= detail::f_uses_rs2;
        if (d.rs2_kind == tbl::k_fpr) f |= detail::f_rs2_fpr;
        if (d.cls == tbl::c_fpc || d.cls == tbl::c_fpx ||
            d.rd_kind == tbl::k_fpr || d.rs1_kind == tbl::k_fpr ||
            d.rs2_kind == tbl::k_fpr) {
            f |= detail::f_any_fp;
        }
        a[d.id] = {d.cls, f, d.lat};
    }
    return a;
}

}  // namespace

namespace detail {
constexpr std::array<op_attrs, k_num_ops> k_op_attrs = build_attrs();
}  // namespace detail

std::string_view op_name(op code) {
    if (code == op::invalid) return "invalid";
    const tbl::inst_desc* d =
        tbl::desc_for(vr32_tables(), static_cast<unsigned>(code));
    return d != nullptr ? d->mnemonic : "?";
}

}  // namespace osm::isa
