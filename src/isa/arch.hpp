// VR32: the framework's 32-bit RISC instruction set architecture.
//
// The OSM model is ISA-agnostic; VR32 exists so the whole stack (ISS,
// assembler, micro-architecture models, workloads) is self-contained and
// license-free.  It is deliberately RISC-V-flavoured in semantics (familiar
// to readers) with a custom fixed 32-bit encoding documented in
// encoding.hpp.  Integer, multiply/divide and a single-precision FP subset
// are provided so that every hazard class the paper discusses (multi-cycle
// units, separate register files, load-use, control) can be exercised.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

namespace osm::isa {

inline constexpr unsigned num_gprs = 32;
inline constexpr unsigned num_fprs = 32;
inline constexpr std::uint32_t inst_bytes = 4;

/// Canonical GPR names: x0 is hard-wired to zero.
/// ABI aliases: zero, ra(x1), sp(x2), gp(x3), a0-a7(x4-x11), t0-t9(x12-x21),
/// s0-s9(x22-x31).
std::string_view gpr_name(unsigned index);

/// FPR names f0..f31.
std::string_view fpr_name(unsigned index);

/// Parse a register name ("x7", "a0", "zero", ...).  Returns the index or
/// -1 when the name is not a GPR.
int parse_gpr(std::string_view name);

/// Parse an FPR name ("f3").  Returns the index or -1.
int parse_fpr(std::string_view name);

/// Architectural state shared by the ISS and all micro-architecture models.
struct arch_state {
    std::uint32_t pc = 0;
    std::array<std::uint32_t, num_gprs> gpr{};
    std::array<std::uint32_t, num_fprs> fpr{};  // IEEE-754 single bit patterns
    bool halted = false;

    /// Write a GPR, preserving the x0-is-zero invariant.
    void set_gpr(unsigned index, std::uint32_t value) {
        if (index != 0) gpr[index] = value;
    }
};

/// Syscall numbers understood by every execution engine.
enum class syscall_code : std::uint16_t {
    exit = 0,      ///< stop simulation
    putchar = 1,   ///< append (a0 & 0xff) to the console stream
    putuint = 2,   ///< append decimal a0 to the console stream
    putnl = 3,     ///< append '\n'
};

}  // namespace osm::isa
