#include "isa/image_io.hpp"

#include <fstream>
#include <stdexcept>

namespace osm::isa {

namespace {

void put_u32(std::ostream& os, std::uint32_t v) {
    char b[4] = {static_cast<char>(v), static_cast<char>(v >> 8),
                 static_cast<char>(v >> 16), static_cast<char>(v >> 24)};
    os.write(b, 4);
}

std::uint32_t get_u32(std::istream& is) {
    unsigned char b[4];
    is.read(reinterpret_cast<char*>(b), 4);
    if (!is) throw std::runtime_error("truncated image file");
    return static_cast<std::uint32_t>(b[0]) | static_cast<std::uint32_t>(b[1]) << 8 |
           static_cast<std::uint32_t>(b[2]) << 16 |
           static_cast<std::uint32_t>(b[3]) << 24;
}

}  // namespace

void save_image(const std::string& path, const program_image& img) {
    std::ofstream os(path, std::ios::binary);
    if (!os) throw std::runtime_error("cannot write " + path);
    put_u32(os, k_image_magic);
    put_u32(os, img.entry);
    put_u32(os, static_cast<std::uint32_t>(img.segments.size()));
    for (const auto& seg : img.segments) {
        put_u32(os, seg.base);
        put_u32(os, static_cast<std::uint32_t>(seg.bytes.size()));
        os.write(reinterpret_cast<const char*>(seg.bytes.data()),
                 static_cast<std::streamsize>(seg.bytes.size()));
    }
    if (!os) throw std::runtime_error("write failed: " + path);
}

program_image load_image(const std::string& path) {
    std::ifstream is(path, std::ios::binary);
    if (!is) throw std::runtime_error("cannot read " + path);
    if (get_u32(is) != k_image_magic) {
        throw std::runtime_error(path + ": not a VRI image");
    }
    program_image img;
    img.entry = get_u32(is);
    const std::uint32_t nseg = get_u32(is);
    if (nseg > 1024) throw std::runtime_error(path + ": implausible segment count");
    for (std::uint32_t i = 0; i < nseg; ++i) {
        program_image::segment seg;
        seg.base = get_u32(is);
        const std::uint32_t size = get_u32(is);
        if (size > (1u << 28)) throw std::runtime_error(path + ": oversized segment");
        seg.bytes.resize(size);
        is.read(reinterpret_cast<char*>(seg.bytes.data()),
                static_cast<std::streamsize>(size));
        if (!is) throw std::runtime_error("truncated image file");
        img.segments.push_back(std::move(seg));
    }
    return img;
}

}  // namespace osm::isa
