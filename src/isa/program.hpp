// Program images and the programmatic builder API.
//
// A program_image is the loader format shared by every execution engine: a
// set of byte segments plus an entry point.  The builder emits VR32
// instructions directly (no text round-trip), which is what the workload
// generators and the random-program property tests use.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "isa/decoded_inst.hpp"
#include "mem/memory_if.hpp"

namespace osm::isa {

/// A loadable program: segments of bytes plus the entry pc.
struct program_image {
    struct segment {
        std::uint32_t base = 0;
        std::vector<std::uint8_t> bytes;
    };

    std::uint32_t entry = 0;
    std::vector<segment> segments;

    /// Per-hart entry points for multi-hart programs.  Empty means every
    /// hart starts at `entry`; otherwise hart h starts at hart_entries[h]
    /// (hart 0's entry conventionally equals `entry`, so single-hart
    /// engines run hart 0's program unchanged).
    std::vector<std::uint32_t> hart_entries;

    /// Copy all segments into `m`.
    void load_into(mem::memory_if& m) const;

    /// Total bytes across segments.
    std::size_t total_bytes() const;

    /// Number of instruction words in the segment containing `entry`
    /// (diagnostic; assumes text is one segment).
    std::size_t text_words() const;
};

/// Incremental program construction with labels and branch fixups.
class program_builder {
public:
    /// Label handle; forward references are resolved at finish().
    using label = std::size_t;

    explicit program_builder(std::uint32_t text_base = 0x1000,
                             std::uint32_t data_base = 0x00100000);

    // ---- labels ----
    label new_label();
    /// Bind `l` to the current text position.
    void bind(label l);
    /// Create a label bound to the current text position.
    label here();

    /// Address of the next instruction to be emitted.
    std::uint32_t text_pos() const;

    // ---- raw emission ----
    /// Append `di` to the text segment.  Returns its address.
    std::uint32_t emit(const decoded_inst& di);

    // ---- convenience emitters (mirror the ISA formats) ----
    std::uint32_t emit_r(op code, unsigned rd, unsigned rs1, unsigned rs2);
    std::uint32_t emit_i(op code, unsigned rd, unsigned rs1, std::int32_t imm);
    std::uint32_t emit_load(op code, unsigned rd, unsigned base, std::int32_t disp);
    std::uint32_t emit_store(op code, unsigned src, unsigned base, std::int32_t disp);
    std::uint32_t emit_branch(op code, unsigned rs1, unsigned rs2, label target);
    std::uint32_t emit_jal(unsigned rd, label target);
    std::uint32_t emit_jalr(unsigned rd, unsigned rs1, std::int32_t imm);

    // ---- pseudo instructions ----
    /// Load an arbitrary 32-bit constant (1 or 2 instructions).
    void li(unsigned rd, std::uint32_t value);
    void mv(unsigned rd, unsigned rs) { emit_i(op::addi, rd, rs, 0); }
    void nop() { emit_i(op::addi, 0, 0, 0); }
    void jmp(label target) { emit_jal(0, target); }
    void call(label target) { emit_jal(1, target); }
    void ret() { emit_jalr(0, 1, 0); }
    void halt_op() { emit(decoded_inst{op::halt}); }
    void syscall(std::uint16_t code) {
        decoded_inst di;
        di.code = op::syscall_op;
        di.imm = code;
        emit(di);
    }

    // ---- data segment ----
    /// Append one word to the data segment; returns its address.
    std::uint32_t data_word(std::uint32_t value);
    /// Append raw bytes; returns the base address.
    std::uint32_t data_bytes(std::span<const std::uint8_t> bytes);
    /// Reserve `n` zeroed bytes; returns the base address.
    std::uint32_t data_reserve(std::size_t n);
    /// Align the data cursor to a multiple of `a` (power of two).
    void data_align(std::uint32_t a);

    /// Resolve fixups and produce the final image.  The builder may not be
    /// used afterwards.  Throws std::logic_error on unbound labels or
    /// out-of-range branch displacements.
    program_image finish();

private:
    struct fixup {
        std::size_t text_index;  // instruction index in text_
        label target;
    };

    std::uint32_t text_base_;
    std::uint32_t data_base_;
    std::vector<decoded_inst> text_;
    std::vector<std::uint8_t> data_;
    std::vector<std::int64_t> label_pos_;  // -1 = unbound; else instruction index
    std::vector<fixup> fixups_;
    bool finished_ = false;
};

}  // namespace osm::isa
