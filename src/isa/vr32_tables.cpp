#include "isa/vr32_tables.hpp"

#include <cstdint>

namespace osm::isa {
namespace {
#include "isa/gen/vr32_tables.inc"
}  // namespace

const tbl::isa_tables& vr32_tables() { return k_vr32_tables; }

}  // namespace osm::isa
