#include "isa/assembler.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "isa/arch.hpp"
#include "isa/encoding.hpp"
#include "isa/vr32_tables.hpp"

namespace osm::isa {

namespace {

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

std::string lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

/// One source statement after lexing.
struct statement {
    unsigned line = 0;
    std::string label;              // bound at this statement, may be alone
    std::string mnem;               // empty when label-only / blank
    std::vector<std::string> args;  // comma-separated operands
};

std::vector<statement> lex(std::string_view source) {
    std::vector<statement> out;
    unsigned line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
        const std::size_t eol = source.find('\n', pos);
        std::string_view line = source.substr(
            pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
        pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
        ++line_no;

        // Strip comments.
        for (const char c : {';', '#'}) {
            const std::size_t cpos = line.find(c);
            if (cpos != std::string_view::npos) line = line.substr(0, cpos);
        }
        line = trim(line);
        if (line.empty()) continue;

        statement st;
        st.line = line_no;

        // Leading label?
        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            line.substr(0, colon).find_first_of(" \t,()") == std::string_view::npos) {
            st.label = std::string(trim(line.substr(0, colon)));
            line = trim(line.substr(colon + 1));
        }

        if (!line.empty()) {
            const std::size_t sp = line.find_first_of(" \t");
            st.mnem = lower(line.substr(0, sp));
            if (sp != std::string_view::npos) {
                std::string_view rest = trim(line.substr(sp));
                std::size_t start = 0;
                while (start <= rest.size()) {
                    std::size_t comma = rest.find(',', start);
                    if (comma == std::string_view::npos) comma = rest.size();
                    const std::string_view piece = trim(rest.substr(start, comma - start));
                    if (!piece.empty()) st.args.emplace_back(piece);
                    start = comma + 1;
                }
            }
        }
        if (!st.label.empty() || !st.mnem.empty()) out.push_back(std::move(st));
    }
    return out;
}

bool parse_int(std::string_view s, std::int64_t& out) {
    s = trim(s);
    if (s.empty()) return false;
    bool neg = false;
    if (s.front() == '-') {
        neg = true;
        s.remove_prefix(1);
    } else if (s.front() == '+') {
        s.remove_prefix(1);
    }
    if (s.empty()) return false;
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    }
    std::int64_t v = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = 10 + c - 'a';
        else if (base == 16 && c >= 'A' && c <= 'F') digit = 10 + c - 'A';
        else return false;
        v = v * base + digit;
    }
    out = neg ? -v : v;
    return true;
}

/// Mnemonic -> op mapping, built from the generated ISA tables so the
/// assembler's vocabulary can never drift from the spec.
const std::map<std::string, op, std::less<>>& mnemonic_table() {
    static const std::map<std::string, op, std::less<>> table = [] {
        std::map<std::string, op, std::less<>> t;
        const tbl::isa_tables& tabs = vr32_tables();
        for (unsigned i = 0; i < tabs.ninsts; ++i) {
            t.emplace(tabs.insts[i].mnemonic, static_cast<op>(tabs.insts[i].id));
        }
        return t;
    }();
    return table;
}

struct section {
    std::uint32_t base = 0;
    std::vector<std::uint8_t> bytes;  // pass 2 only; pass 1 uses size
    std::size_t size = 0;
    bool base_locked = false;
};

class assembler {
public:
    assembler(std::string_view source, std::uint32_t text_base, std::uint32_t data_base)
        : statements_(lex(source)) {
        text_.base = text_base;
        data_.base = data_base;
    }

    program_image run() {
        pass(/*emit=*/false);
        // Reset cursors for pass 2.
        text_.size = 0;
        data_.size = 0;
        pass(/*emit=*/true);

        program_image img;
        img.entry = symbols_.count("_start") ? symbols_.at("_start") : text_.base;
        if (!text_.bytes.empty()) img.segments.push_back({text_.base, text_.bytes});
        if (!data_.bytes.empty()) img.segments.push_back({data_.base, data_.bytes});
        return img;
    }

private:
    std::vector<statement> statements_;
    section text_;
    section data_;
    std::map<std::string, std::uint32_t, std::less<>> symbols_;

    std::uint32_t cursor(const section& s) const {
        return s.base + static_cast<std::uint32_t>(s.size);
    }

    void append_byte(section& s, bool emit, std::uint8_t b) {
        if (emit) s.bytes.push_back(b);
        ++s.size;
    }

    void append_word(section& s, bool emit, std::uint32_t w) {
        for (unsigned i = 0; i < 4; ++i) {
            append_byte(s, emit, static_cast<std::uint8_t>(w >> (8 * i)));
        }
    }

    [[noreturn]] static void fail(const statement& st, const std::string& msg) {
        throw asm_error(st.line, msg);
    }

    std::int64_t value_of(const statement& st, std::string_view operand, bool emit) const {
        std::int64_t v;
        if (parse_int(operand, v)) return v;
        const auto it = symbols_.find(operand);
        if (it != symbols_.end()) return it->second;
        if (emit) fail(st, "undefined symbol '" + std::string(operand) + "'");
        return 0;  // pass 1: forward reference
    }

    static unsigned gpr_of(const statement& st, std::string_view name) {
        const int r = parse_gpr(name);
        if (r < 0) fail(st, "bad register '" + std::string(name) + "'");
        return static_cast<unsigned>(r);
    }

    static unsigned fpr_of(const statement& st, std::string_view name) {
        const int r = parse_fpr(name);
        if (r < 0) fail(st, "bad FP register '" + std::string(name) + "'");
        return static_cast<unsigned>(r);
    }

    static unsigned reg_of(const statement& st, std::string_view name, bool fpr) {
        return fpr ? fpr_of(st, name) : gpr_of(st, name);
    }

    /// Parse "disp(base)".
    void mem_operand(const statement& st, std::string_view s,
                     std::int64_t& disp, unsigned& base, bool emit) const {
        const std::size_t open = s.find('(');
        const std::size_t close = s.rfind(')');
        if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
            fail(st, "expected disp(base) operand");
        }
        const std::string_view d = trim(s.substr(0, open));
        disp = d.empty() ? 0 : value_of(st, d, emit);
        base = gpr_of(st, trim(s.substr(open + 1, close - open - 1)));
    }

    void require_args(const statement& st, std::size_t n) const {
        if (st.args.size() != n) {
            fail(st, "expected " + std::to_string(n) + " operands, got " +
                         std::to_string(st.args.size()));
        }
    }

    void pass(bool emit) {
        section* cur = &text_;
        for (const statement& st : statements_) {
            if (!st.label.empty()) {
                if (!emit) {
                    if (symbols_.count(st.label)) fail(st, "duplicate label");
                    symbols_[st.label] = cursor(*cur);
                }
            }
            if (st.mnem.empty()) continue;
            if (st.mnem[0] == '.') {
                directive(st, cur, emit);
            } else {
                instruction(st, *cur, emit);
            }
        }
    }

    void directive(const statement& st, section*& cur, bool emit) {
        if (st.mnem == ".text" || st.mnem == ".data") {
            section& target = (st.mnem == ".text") ? text_ : data_;
            if (!st.args.empty()) {
                std::int64_t v;
                if (!parse_int(st.args[0], v)) fail(st, "bad section base");
                if (target.size != 0 && static_cast<std::uint32_t>(v) != target.base) {
                    fail(st, "cannot rebase non-empty section");
                }
                target.base = static_cast<std::uint32_t>(v);
            }
            cur = &target;
        } else if (st.mnem == ".word") {
            if (st.args.empty()) fail(st, ".word needs at least one value");
            while (cursor(*cur) % 4 != 0) append_byte(*cur, emit, 0);
            for (const std::string& a : st.args) {
                append_word(*cur, emit,
                            static_cast<std::uint32_t>(value_of(st, a, emit)));
            }
        } else if (st.mnem == ".byte") {
            if (st.args.empty()) fail(st, ".byte needs at least one value");
            for (const std::string& a : st.args) {
                append_byte(*cur, emit,
                            static_cast<std::uint8_t>(value_of(st, a, emit)));
            }
        } else if (st.mnem == ".space") {
            require_args(st, 1);
            std::int64_t n;
            if (!parse_int(st.args[0], n) || n < 0) fail(st, "bad .space size");
            for (std::int64_t i = 0; i < n; ++i) append_byte(*cur, emit, 0);
        } else if (st.mnem == ".align") {
            require_args(st, 1);
            std::int64_t a;
            if (!parse_int(st.args[0], a) || a <= 0) fail(st, "bad .align");
            while (cursor(*cur) % static_cast<std::uint32_t>(a) != 0) {
                append_byte(*cur, emit, 0);
            }
        } else {
            fail(st, "unknown directive '" + st.mnem + "'");
        }
    }

    void emit_inst(section& s, bool emit, const decoded_inst& di,
                   const statement& st) {
        if (emit && !immediate_fits(di.code, di.imm)) {
            fail(st, "immediate out of range");
        }
        append_word(s, emit, emit ? encode(di) : 0u);
    }

    std::int32_t branch_disp(const statement& st, std::string_view target,
                             std::uint32_t inst_addr, bool emit) const {
        const std::int64_t abs_target = value_of(st, target, emit);
        return static_cast<std::int32_t>(abs_target -
                                         (static_cast<std::int64_t>(inst_addr) + 4));
    }

    void instruction(const statement& st, section& s, bool emit) {
        // Pseudo-instructions first.
        if (st.mnem == "nop") {
            emit_inst(s, emit, decoded_inst{op::addi}, st);
            return;
        }
        if (st.mnem == "mv") {
            require_args(st, 2);
            decoded_inst di{op::addi};
            di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            di.rs1 = static_cast<std::uint8_t>(gpr_of(st, st.args[1]));
            emit_inst(s, emit, di, st);
            return;
        }
        if (st.mnem == "li") {
            require_args(st, 2);
            const unsigned rd = gpr_of(st, st.args[0]);
            std::int64_t v64;
            if (!parse_int(st.args[1], v64)) fail(st, "li needs a numeric constant");
            const auto value = static_cast<std::uint32_t>(v64);
            const auto sv = static_cast<std::int32_t>(value);
            if (sv >= -32768 && sv <= 32767) {
                decoded_inst di{op::addi};
                di.rd = static_cast<std::uint8_t>(rd);
                di.imm = sv;
                emit_inst(s, emit, di, st);
            } else {
                decoded_inst hi{op::lui};
                hi.rd = static_cast<std::uint8_t>(rd);
                hi.imm = static_cast<std::int32_t>(value >> 16);
                emit_inst(s, emit, hi, st);
                if ((value & 0xFFFFu) != 0) {
                    decoded_inst lo{op::ori};
                    lo.rd = static_cast<std::uint8_t>(rd);
                    lo.rs1 = static_cast<std::uint8_t>(rd);
                    lo.imm = static_cast<std::int32_t>(value & 0xFFFFu);
                    emit_inst(s, emit, lo, st);
                }
            }
            return;
        }
        if (st.mnem == "j" || st.mnem == "call") {
            require_args(st, 1);
            decoded_inst di{op::jal};
            di.rd = st.mnem == "call" ? 1 : 0;
            di.imm = branch_disp(st, st.args[0], cursor(s), emit);
            emit_inst(s, emit, di, st);
            return;
        }
        if (st.mnem == "ret") {
            decoded_inst di{op::jalr};
            di.rs1 = 1;
            emit_inst(s, emit, di, st);
            return;
        }

        const auto& table = mnemonic_table();
        const auto it = table.find(st.mnem);
        if (it == table.end()) fail(st, "unknown mnemonic '" + st.mnem + "'");
        const op code = it->second;

        decoded_inst di;
        di.code = code;

        if (code == op::halt) {
            emit_inst(s, emit, di, st);
            return;
        }
        if (code == op::syscall_op) {
            require_args(st, 1);
            di.imm = static_cast<std::int32_t>(value_of(st, st.args[0], emit));
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_fence(code)) {
            require_args(st, 0);
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_amo(code)) {
            // lr.w rd, (rs1) / {sc,amoadd,amoswap}.w rd, rs2, (rs1) — the
            // address operand is bare "(base)" (no displacement field).
            const bool has_data = code != op::lr_w;
            require_args(st, has_data ? 3 : 2);
            di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            if (has_data) di.rs2 = static_cast<std::uint8_t>(gpr_of(st, st.args[1]));
            std::int64_t disp;
            unsigned base;
            mem_operand(st, st.args[has_data ? 2 : 1], disp, base, emit);
            if (disp != 0) fail(st, "atomics take no displacement");
            di.rs1 = static_cast<std::uint8_t>(base);
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_load(code)) {
            require_args(st, 2);
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0], rd_is_fpr(code)));
            std::int64_t disp;
            unsigned base;
            mem_operand(st, st.args[1], disp, base, emit);
            di.rs1 = static_cast<std::uint8_t>(base);
            di.imm = static_cast<std::int32_t>(disp);
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_store(code)) {
            require_args(st, 2);
            di.rs2 = static_cast<std::uint8_t>(reg_of(st, st.args[0], rs2_is_fpr(code)));
            std::int64_t disp;
            unsigned base;
            mem_operand(st, st.args[1], disp, base, emit);
            di.rs1 = static_cast<std::uint8_t>(base);
            di.imm = static_cast<std::int32_t>(disp);
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_branch(code)) {
            require_args(st, 3);
            di.rs1 = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            di.rs2 = static_cast<std::uint8_t>(gpr_of(st, st.args[1]));
            di.imm = branch_disp(st, st.args[2], cursor(s), emit);
            emit_inst(s, emit, di, st);
            return;
        }
        if (code == op::jal) {
            require_args(st, 2);
            di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            di.imm = branch_disp(st, st.args[1], cursor(s), emit);
            emit_inst(s, emit, di, st);
            return;
        }
        if (code == op::jalr) {
            require_args(st, 3);
            di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            di.rs1 = static_cast<std::uint8_t>(gpr_of(st, st.args[1]));
            di.imm = static_cast<std::int32_t>(value_of(st, st.args[2], emit));
            emit_inst(s, emit, di, st);
            return;
        }
        if (code == op::lui || code == op::auipc) {
            require_args(st, 2);
            di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
            di.imm = static_cast<std::int32_t>(value_of(st, st.args[1], emit));
            emit_inst(s, emit, di, st);
            return;
        }
        if (uses_rs2(code)) {  // three-register forms
            require_args(st, 3);
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0], rd_is_fpr(code)));
            di.rs1 = static_cast<std::uint8_t>(reg_of(st, st.args[1], rs1_is_fpr(code)));
            di.rs2 = static_cast<std::uint8_t>(reg_of(st, st.args[2], rs2_is_fpr(code)));
            emit_inst(s, emit, di, st);
            return;
        }
        if (is_fp(code)) {  // unary FP forms: fabs/fneg/converts/moves
            require_args(st, 2);
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0], rd_is_fpr(code)));
            di.rs1 = static_cast<std::uint8_t>(reg_of(st, st.args[1], rs1_is_fpr(code)));
            emit_inst(s, emit, di, st);
            return;
        }
        // Remaining: I-type ALU.
        require_args(st, 3);
        di.rd = static_cast<std::uint8_t>(gpr_of(st, st.args[0]));
        di.rs1 = static_cast<std::uint8_t>(gpr_of(st, st.args[1]));
        di.imm = static_cast<std::int32_t>(value_of(st, st.args[2], emit));
        emit_inst(s, emit, di, st);
    }
};

}  // namespace

program_image assemble(std::string_view source, std::uint32_t text_base,
                       std::uint32_t data_base) {
    return assembler(source, text_base, data_base).run();
}

}  // namespace osm::isa
