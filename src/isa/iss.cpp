#include "isa/iss.hpp"

#include "isa/encoding.hpp"

namespace osm::isa {

void syscall_host::handle(std::uint16_t code, arch_state& st) {
    switch (static_cast<syscall_code>(code)) {
        case syscall_code::exit:
            st.halted = true;
            break;
        case syscall_code::putchar:
            console_.push_back(static_cast<char>(st.gpr[4] & 0xFFu));
            break;
        case syscall_code::putuint:
            console_ += std::to_string(st.gpr[4]);
            break;
        case syscall_code::putnl:
            console_.push_back('\n');
            break;
        default:
            // Unknown syscalls are ignored (matches "interpretation of
            // system calls in the ISS" slack the paper mentions).
            break;
    }
}

void iss::load(const program_image& img) {
    img.load_into(mem_);
    state_ = arch_state{};
    state_.pc = img.entry;
    instret_ = 0;
    host_.clear();
    dcode_.invalidate_all();
    dcode_.reset_stats();
}

void iss::restore_arch(const arch_state& st, std::uint64_t instret,
                       const std::string& console) {
    state_ = st;
    instret_ = instret;
    host_.seed(console);
    dcode_.invalidate_all();
    dcode_.reset_stats();
}

bool iss::step() {
    if (state_.halted) return false;
    // The word is always fetched from memory, even on a cache hit: the
    // cache line's word tag is compared against it, which is what makes
    // self-modifying code re-decode without an invalidation protocol.
    const std::uint32_t word = mem_.read32(state_.pc);
    if (decode_cache_on_) return step_with(dcode_.lookup(state_.pc, word));
    return step_with(predecoded_inst::make(word));
}

bool iss::step_with(const predecoded_inst& pd) {
    const decoded_inst& di = pd.di;

    if (di.code == op::invalid || di.code == op::halt) {
        state_.halted = true;
        ++instret_;
        return false;
    }
    if (di.code == op::syscall_op) {
        host_.handle(static_cast<std::uint16_t>(di.imm), state_);
        state_.pc += 4;
        ++instret_;
        return !state_.halted;
    }

    const std::uint32_t a = pd.rs1_fpr() ? state_.fpr[di.rs1] : state_.gpr[di.rs1];
    const std::uint32_t b = pd.rs2_fpr() ? state_.fpr[di.rs2] : state_.gpr[di.rs2];
    exec_out out = compute(di, state_.pc, a, b);

    if (pd.load()) {
        out.value = do_load(di.code, mem_, out.mem_addr);
    } else if (pd.store()) {
        do_store(di.code, mem_, out.mem_addr, out.store_data);
    }

    if (pd.writes_rd()) {
        if (pd.rd_fpr()) {
            state_.fpr[di.rd] = out.value;
        } else {
            state_.set_gpr(di.rd, out.value);
        }
    }
    state_.pc = out.redirect ? out.next_pc : state_.pc + 4;
    ++instret_;
    return true;
}

stats::report iss::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("iss"));
    r.put("run", "retired", instret_);
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(decode_cache_on_ ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "evictions", dcode_.stats().evictions);
    r.put("decode_cache", "smc_redecodes", dcode_.stats().smc_redecodes);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    return r;
}

std::uint64_t iss::run(std::uint64_t max_steps) {
    const std::uint64_t before = instret_;
    std::uint64_t n = 0;
    while (n < max_steps && step()) ++n;
    // step() returns false on the halting instruction itself but still
    // counts it, so report retirements, not loop iterations.
    return instret_ - before;
}

}  // namespace osm::isa
