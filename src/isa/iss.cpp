#include "isa/iss.hpp"

#include "isa/encoding.hpp"

namespace osm::isa {

void syscall_host::handle(std::uint16_t code, arch_state& st) {
    switch (static_cast<syscall_code>(code)) {
        case syscall_code::exit:
            st.halted = true;
            break;
        case syscall_code::putchar:
            console_.push_back(static_cast<char>(st.gpr[4] & 0xFFu));
            break;
        case syscall_code::putuint:
            console_ += std::to_string(st.gpr[4]);
            break;
        case syscall_code::putnl:
            console_.push_back('\n');
            break;
        default:
            // Unknown syscalls are ignored (matches "interpretation of
            // system calls in the ISS" slack the paper mentions).
            break;
    }
}

void iss::load(const program_image& img) {
    img.load_into(mem_);
    state_ = arch_state{};
    state_.pc = img.entry;
    instret_ = 0;
    host_.clear();
}

bool iss::step() {
    if (state_.halted) return false;
    const std::uint32_t word = mem_.read32(state_.pc);
    const decoded_inst di = decode(word);

    if (di.code == op::invalid || di.code == op::halt) {
        state_.halted = true;
        ++instret_;
        return false;
    }
    if (di.code == op::syscall_op) {
        host_.handle(static_cast<std::uint16_t>(di.imm), state_);
        state_.pc += 4;
        ++instret_;
        return !state_.halted;
    }

    const std::uint32_t a = rs1_is_fpr(di.code) ? state_.fpr[di.rs1] : state_.gpr[di.rs1];
    const std::uint32_t b = rs2_is_fpr(di.code) ? state_.fpr[di.rs2] : state_.gpr[di.rs2];
    exec_out out = compute(di, state_.pc, a, b);

    if (is_load(di.code)) {
        out.value = do_load(di.code, mem_, out.mem_addr);
    } else if (is_store(di.code)) {
        do_store(di.code, mem_, out.mem_addr, out.store_data);
    }

    if (writes_rd(di.code)) {
        if (rd_is_fpr(di.code)) {
            state_.fpr[di.rd] = out.value;
        } else {
            state_.set_gpr(di.rd, out.value);
        }
    }
    state_.pc = out.redirect ? out.next_pc : state_.pc + 4;
    ++instret_;
    return true;
}

std::uint64_t iss::run(std::uint64_t max_steps) {
    std::uint64_t n = 0;
    while (n < max_steps && step()) ++n;
    if (n < max_steps && !state_.halted) {
        // step() returned false on the halting instruction itself.
    }
    return instret_;
}

}  // namespace osm::isa
