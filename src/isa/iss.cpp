#include "isa/iss.hpp"

#include "isa/encoding.hpp"

namespace osm::isa {

void syscall_host::handle(std::uint16_t code, arch_state& st) {
    switch (static_cast<syscall_code>(code)) {
        case syscall_code::exit:
            st.halted = true;
            break;
        case syscall_code::putchar:
            console_.push_back(static_cast<char>(st.gpr[4] & 0xFFu));
            break;
        case syscall_code::putuint:
            console_ += std::to_string(st.gpr[4]);
            break;
        case syscall_code::putnl:
            console_.push_back('\n');
            break;
        default:
            // Unknown syscalls are ignored (matches "interpretation of
            // system calls in the ISS" slack the paper mentions).
            break;
    }
}

void iss::load(const program_image& img) {
    img.load_into(mem_);
    state_ = arch_state{};
    state_.pc = img.entry;
    instret_ = 0;
    resv_valid_ = false;
    resv_addr_ = 0;
    host_.clear();
    dcode_.invalidate_all();
    dcode_.reset_stats();
    bcache_.invalidate_all();
    bcache_.reset_stats();
}

void iss::restore_arch(const arch_state& st, std::uint64_t instret,
                       const std::string& console) {
    state_ = st;
    instret_ = instret;
    resv_valid_ = false;
    resv_addr_ = 0;
    host_.seed(console);
    // The caller may have restored memory holding different program bytes
    // at cached pcs.  The decode cache's word tags would catch that per
    // instruction, but translated blocks carry no per-instruction tags, so
    // both caches must forget everything derived from the old image.
    dcode_.invalidate_all();
    dcode_.reset_stats();
    bcache_.invalidate_all();
    bcache_.reset_stats();
}

bool iss::step() {
    if (state_.halted) return false;
    // The word is always fetched from memory, even on a cache hit: the
    // cache line's word tag is compared against it, which is what makes
    // self-modifying code re-decode without an invalidation protocol.
    const std::uint32_t word = mem_.read32(state_.pc);
    if (decode_cache_on_) return step_with(dcode_.lookup(state_.pc, word));
    return step_with(predecoded_inst::make(word));
}

bool iss::step_with(const predecoded_inst& pd) {
    const decoded_inst& di = pd.di;

    if (di.code == op::invalid || di.code == op::halt) {
        state_.halted = true;
        ++instret_;
        return false;
    }
    if (di.code == op::syscall_op) {
        host_.handle(static_cast<std::uint16_t>(di.imm), state_);
        state_.pc += 4;
        ++instret_;
        return !state_.halted;
    }
    if (is_atomic_or_fence(di.code)) {  // one compare: ids appended after halt
        step_amo(di);
        state_.pc += 4;
        ++instret_;
        return true;
    }

    const std::uint32_t a = pd.rs1_fpr() ? state_.fpr[di.rs1] : state_.gpr[di.rs1];
    const std::uint32_t b = pd.rs2_fpr() ? state_.fpr[di.rs2] : state_.gpr[di.rs2];
    exec_out out = compute(di, state_.pc, a, b);

    if (pd.load()) {
        out.value = do_load(di.code, mem_, out.mem_addr);
    } else if (pd.store()) {
        do_store(di.code, mem_, out.mem_addr, out.store_data);
        // Interpretive steps can interleave with block execution (budget
        // fallback, mixed run()/step() callers), so their stores must also
        // police translated blocks.
        if (block_cache_on_ && bcache_.store_may_hit(out.mem_addr)) {
            bcache_.notify_store(out.mem_addr, 4);
        }
    }

    if (pd.writes_rd()) {
        if (pd.rd_fpr()) {
            state_.fpr[di.rd] = out.value;
        } else {
            state_.set_gpr(di.rd, out.value);
        }
    }
    state_.pc = out.redirect ? out.next_pc : state_.pc + 4;
    ++instret_;
    return true;
}

void iss::step_amo(const decoded_inst& di) {
    const std::uint32_t addr = state_.gpr[di.rs1] & ~3u;
    switch (di.code) {
        case op::lr_w:
            state_.set_gpr(di.rd, mem_.read32(addr));
            resv_valid_ = true;
            resv_addr_ = addr;
            break;
        case op::sc_w: {
            const bool ok = resv_valid_ && resv_addr_ == addr;
            if (ok) {
                mem_.write32(addr, state_.gpr[di.rs2]);
                if (block_cache_on_ && bcache_.store_may_hit(addr)) {
                    bcache_.notify_store(addr, 4);
                }
            }
            // Any sc.w consumes the reservation, success or not.
            resv_valid_ = false;
            state_.set_gpr(di.rd, ok ? 0u : 1u);
            break;
        }
        case op::amoadd_w:
        case op::amoswap_w: {
            const std::uint32_t old = mem_.read32(addr);
            const std::uint32_t rs2 = state_.gpr[di.rs2];
            mem_.write32(addr, di.code == op::amoadd_w ? old + rs2 : rs2);
            if (block_cache_on_ && bcache_.store_may_hit(addr)) {
                bcache_.notify_store(addr, 4);
            }
            state_.set_gpr(di.rd, old);
            break;
        }
        default:  // fence: no store buffer on a single hart — pure barrier
            break;
    }
}

// ---- translated-block dispatch ---------------------------------------------
//
// One handler body per op kind, shared between two dispatch strategies:
//   * computed-goto threading (GNU C extension): each handler jumps
//     straight into the next handler through a label table — no central
//     loop, one indirect branch per instruction;
//   * a portable switch loop for other compilers.
//
// Handler invariants:
//   * st.pc is NOT advanced per instruction — every pc the semantics need
//     comes from o->pc recorded at build time.  Terminators and the
//     fall-through tail write the final st.pc exactly once per block.
//   * Non-FPR destinations are guaranteed rd != 0 for kinds the builder
//     can remap to k_nop, so those handlers write gpr[rd] directly; loads
//     and jumps keep set_gpr (x0 pin).
//   * Stores screen the written address against the block cache's watch
//     range; a store that kills any block aborts the current block after
//     the store (its own remaining ops may be stale) and resumes
//     interpretively at the following pc.
//
// The X-macro list below MUST stay in exact `enum op` order: the computed
// goto table is indexed by the raw kind byte.  The static_asserts pin the
// enum size and several anchors so a reorder fails the build instead of
// dispatching the wrong handler.

static_assert(static_cast<int>(op::count_) == 70,
              "op enum changed: update OSM_BLOCK_OPS in iss.cpp");
static_assert(static_cast<int>(op::invalid) == 0 &&
                  static_cast<int>(op::add_r) == 1 &&
                  static_cast<int>(op::addi) == 19 &&
                  static_cast<int>(op::lb) == 30 &&
                  static_cast<int>(op::beq) == 38 &&
                  static_cast<int>(op::fadd) == 46 &&
                  static_cast<int>(op::halt) == 64 &&
                  static_cast<int>(op::lr_w) == 65 &&
                  static_cast<int>(op::fence) == 69,
              "op enum reordered: update OSM_BLOCK_OPS in iss.cpp");

#if defined(__GNUC__) || defined(__clang__)
#define OSM_DIRECT_THREADED 1
#endif

// Store handler tail: screen `addr_` against the watch range; on a
// confirmed code-page hit the overlapping blocks are dead — possibly
// including this one — so abort after the store.  Index and pc are captured
// before notify_store because invalidation may clear this block's op array.
#define OSM_SMC_CHECK(addr_, bytes_)                                     \
    if (bcache_.store_may_hit(addr_)) {                                  \
        const std::uint32_t spc_ = o->pc;                                \
        const std::uint64_t idx_ = static_cast<std::uint64_t>(o - base); \
        if (bcache_.notify_store((addr_), (bytes_))) {                   \
            st.pc = spc_ + 4;                                            \
            executed = idx_ + 1;                                         \
            goto finish;                                                 \
        }                                                                \
    }

#define OSM_BLOCK_OPS(X)                                                      \
    X(invalid, {                                                              \
        st.halted = true;                                                     \
        st.pc = o->pc;                                                        \
        goto term_done;                                                       \
    })                                                                        \
    X(add_r, { st.gpr[o->rd] = st.gpr[o->rs1] + st.gpr[o->rs2]; })            \
    X(sub_r, { st.gpr[o->rd] = st.gpr[o->rs1] - st.gpr[o->rs2]; })            \
    X(and_r, { st.gpr[o->rd] = st.gpr[o->rs1] & st.gpr[o->rs2]; })            \
    X(or_r, { st.gpr[o->rd] = st.gpr[o->rs1] | st.gpr[o->rs2]; })             \
    X(xor_r, { st.gpr[o->rd] = st.gpr[o->rs1] ^ st.gpr[o->rs2]; })            \
    X(nor_r, { st.gpr[o->rd] = ~(st.gpr[o->rs1] | st.gpr[o->rs2]); })         \
    X(sll_r, { st.gpr[o->rd] = st.gpr[o->rs1] << (st.gpr[o->rs2] & 31u); })   \
    X(srl_r, { st.gpr[o->rd] = st.gpr[o->rs1] >> (st.gpr[o->rs2] & 31u); })   \
    X(sra_r, {                                                                \
        st.gpr[o->rd] = static_cast<std::uint32_t>(                          \
            static_cast<std::int32_t>(st.gpr[o->rs1]) >>                     \
            (st.gpr[o->rs2] & 31u));                                          \
    })                                                                        \
    X(slt_r, {                                                                \
        st.gpr[o->rd] = static_cast<std::int32_t>(st.gpr[o->rs1]) <          \
                                static_cast<std::int32_t>(st.gpr[o->rs2])    \
                            ? 1u                                              \
                            : 0u;                                             \
    })                                                                        \
    X(sltu_r, { st.gpr[o->rd] = st.gpr[o->rs1] < st.gpr[o->rs2] ? 1u : 0u; }) \
    X(mul, { st.gpr[o->rd] = st.gpr[o->rs1] * st.gpr[o->rs2]; })              \
    X(mulh, {                                                                 \
        st.gpr[o->rd] = sem::mul_hi_s(st.gpr[o->rs1], st.gpr[o->rs2]);        \
    })                                                                        \
    X(mulhu, {                                                                \
        st.gpr[o->rd] = sem::mul_hi_u(st.gpr[o->rs1], st.gpr[o->rs2]);        \
    })                                                                        \
    X(div_s, {                                                                \
        st.gpr[o->rd] = sem::div_signed(st.gpr[o->rs1], st.gpr[o->rs2]);      \
    })                                                                        \
    X(div_u, {                                                                \
        const std::uint32_t b_ = st.gpr[o->rs2];                              \
        st.gpr[o->rd] = b_ == 0 ? ~0u : st.gpr[o->rs1] / b_;                  \
    })                                                                        \
    X(rem_s, {                                                                \
        st.gpr[o->rd] = sem::rem_signed(st.gpr[o->rs1], st.gpr[o->rs2]);      \
    })                                                                        \
    X(rem_u, {                                                                \
        const std::uint32_t b_ = st.gpr[o->rs2];                              \
        st.gpr[o->rd] = b_ == 0 ? st.gpr[o->rs1] : st.gpr[o->rs1] % b_;       \
    })                                                                        \
    X(addi, {                                                                 \
        st.gpr[o->rd] = st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);  \
    })                                                                        \
    X(andi, {                                                                 \
        st.gpr[o->rd] = st.gpr[o->rs1] & static_cast<std::uint32_t>(o->imm);  \
    })                                                                        \
    X(ori, {                                                                  \
        st.gpr[o->rd] = st.gpr[o->rs1] | static_cast<std::uint32_t>(o->imm);  \
    })                                                                        \
    X(xori, {                                                                 \
        st.gpr[o->rd] = st.gpr[o->rs1] ^ static_cast<std::uint32_t>(o->imm);  \
    })                                                                        \
    X(slti, {                                                                 \
        st.gpr[o->rd] =                                                       \
            static_cast<std::int32_t>(st.gpr[o->rs1]) < o->imm ? 1u : 0u;     \
    })                                                                        \
    X(sltiu, {                                                                \
        st.gpr[o->rd] =                                                       \
            st.gpr[o->rs1] < static_cast<std::uint32_t>(o->imm) ? 1u : 0u;    \
    })                                                                        \
    X(slli, {                                                                 \
        st.gpr[o->rd] = st.gpr[o->rs1]                                        \
                        << (static_cast<std::uint32_t>(o->imm) & 31u);        \
    })                                                                        \
    X(srli, {                                                                 \
        st.gpr[o->rd] =                                                       \
            st.gpr[o->rs1] >> (static_cast<std::uint32_t>(o->imm) & 31u);     \
    })                                                                        \
    X(srai, {                                                                 \
        st.gpr[o->rd] = static_cast<std::uint32_t>(                          \
            static_cast<std::int32_t>(st.gpr[o->rs1]) >>                     \
            (static_cast<std::uint32_t>(o->imm) & 31u));                      \
    })                                                                        \
    X(lui, { st.gpr[o->rd] = static_cast<std::uint32_t>(o->imm) << 16; })     \
    X(auipc, {                                                                \
        st.gpr[o->rd] = o->pc + (static_cast<std::uint32_t>(o->imm) << 16);   \
    })                                                                        \
    X(lb, {                                                                   \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        st.set_gpr(o->rd,                                                     \
                   static_cast<std::uint32_t>(static_cast<std::int32_t>(      \
                       static_cast<std::int8_t>(mem_.read8(a_)))));           \
    })                                                                        \
    X(lbu, {                                                                  \
        st.set_gpr(o->rd, mem_.read8(st.gpr[o->rs1] +                         \
                                     static_cast<std::uint32_t>(o->imm)));    \
    })                                                                        \
    X(lh, {                                                                   \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        st.set_gpr(o->rd,                                                     \
                   static_cast<std::uint32_t>(static_cast<std::int32_t>(      \
                       static_cast<std::int16_t>(mem_.read16(a_)))));         \
    })                                                                        \
    X(lhu, {                                                                  \
        st.set_gpr(o->rd, mem_.read16(st.gpr[o->rs1] +                        \
                                      static_cast<std::uint32_t>(o->imm)));   \
    })                                                                        \
    X(lw, {                                                                   \
        st.set_gpr(o->rd, mem_.read32(st.gpr[o->rs1] +                        \
                                      static_cast<std::uint32_t>(o->imm)));   \
    })                                                                        \
    X(sb, {                                                                   \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        mem_.write8(a_, static_cast<std::uint8_t>(st.gpr[o->rs2]));           \
        OSM_SMC_CHECK(a_, 1)                                                  \
    })                                                                        \
    X(sh, {                                                                   \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        mem_.write16(a_, static_cast<std::uint16_t>(st.gpr[o->rs2]));         \
        OSM_SMC_CHECK(a_, 2)                                                  \
    })                                                                        \
    X(sw, {                                                                   \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        mem_.write32(a_, st.gpr[o->rs2]);                                     \
        OSM_SMC_CHECK(a_, 4)                                                  \
    })                                                                        \
    /* Conditional branches are superblock side exits: taken leaves the   */ \
    /* block through term_done, not taken falls through to the next op    */ \
    /* (the cap-cut path supplies pc when the branch is the last op).     */ \
    X(beq, {                                                                  \
        if (st.gpr[o->rs1] == st.gpr[o->rs2]) {                               \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(bne, {                                                                  \
        if (st.gpr[o->rs1] != st.gpr[o->rs2]) {                               \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(blt, {                                                                  \
        if (static_cast<std::int32_t>(st.gpr[o->rs1]) <                       \
            static_cast<std::int32_t>(st.gpr[o->rs2])) {                      \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(bge, {                                                                  \
        if (static_cast<std::int32_t>(st.gpr[o->rs1]) >=                      \
            static_cast<std::int32_t>(st.gpr[o->rs2])) {                      \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(bltu, {                                                                 \
        if (st.gpr[o->rs1] < st.gpr[o->rs2]) {                                \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(bgeu, {                                                                 \
        if (st.gpr[o->rs1] >= st.gpr[o->rs2]) {                               \
            st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);           \
            goto term_done;                                                   \
        }                                                                     \
    })                                                                        \
    X(jal, {                                                                  \
        st.set_gpr(o->rd, o->pc + 4);                                         \
        st.pc = o->pc + 4 + static_cast<std::uint32_t>(o->imm);               \
        goto term_done;                                                       \
    })                                                                        \
    X(jalr, {                                                                 \
        const std::uint32_t t_ = st.gpr[o->rs1];                              \
        st.set_gpr(o->rd, o->pc + 4);                                         \
        st.pc = (t_ + static_cast<std::uint32_t>(o->imm)) & ~3u;              \
        goto term_done;                                                       \
    })                                                                        \
    X(fadd, {                                                                 \
        st.fpr[o->rd] = sem::as_u(sem::as_f(st.fpr[o->rs1]) +                 \
                                  sem::as_f(st.fpr[o->rs2]));                 \
    })                                                                        \
    X(fsub, {                                                                 \
        st.fpr[o->rd] = sem::as_u(sem::as_f(st.fpr[o->rs1]) -                 \
                                  sem::as_f(st.fpr[o->rs2]));                 \
    })                                                                        \
    X(fmul, {                                                                 \
        st.fpr[o->rd] = sem::as_u(sem::as_f(st.fpr[o->rs1]) *                 \
                                  sem::as_f(st.fpr[o->rs2]));                 \
    })                                                                        \
    X(fdiv, {                                                                 \
        st.fpr[o->rd] = sem::as_u(sem::as_f(st.fpr[o->rs1]) /                 \
                                  sem::as_f(st.fpr[o->rs2]));                 \
    })                                                                        \
    X(fmin, {                                                                 \
        st.fpr[o->rd] = sem::as_u(std::fmin(sem::as_f(st.fpr[o->rs1]),        \
                                            sem::as_f(st.fpr[o->rs2])));      \
    })                                                                        \
    X(fmax, {                                                                 \
        st.fpr[o->rd] = sem::as_u(std::fmax(sem::as_f(st.fpr[o->rs1]),        \
                                            sem::as_f(st.fpr[o->rs2])));      \
    })                                                                        \
    X(fabs_f, { st.fpr[o->rd] = st.fpr[o->rs1] & 0x7FFFFFFFu; })              \
    X(fneg_f, { st.fpr[o->rd] = st.fpr[o->rs1] ^ 0x80000000u; })              \
    X(feq, {                                                                  \
        st.gpr[o->rd] =                                                       \
            sem::as_f(st.fpr[o->rs1]) == sem::as_f(st.fpr[o->rs2]) ? 1u : 0u; \
    })                                                                        \
    X(flt_f, {                                                                \
        st.gpr[o->rd] =                                                       \
            sem::as_f(st.fpr[o->rs1]) < sem::as_f(st.fpr[o->rs2]) ? 1u : 0u;  \
    })                                                                        \
    X(fle, {                                                                  \
        st.gpr[o->rd] =                                                       \
            sem::as_f(st.fpr[o->rs1]) <= sem::as_f(st.fpr[o->rs2]) ? 1u : 0u; \
    })                                                                        \
    X(fcvt_w_s, { st.gpr[o->rd] = sem::cvt_w_s(st.fpr[o->rs1]); })            \
    X(fcvt_s_w, {                                                             \
        st.fpr[o->rd] = sem::as_u(                                            \
            static_cast<float>(static_cast<std::int32_t>(st.gpr[o->rs1])));   \
    })                                                                        \
    X(fmv_x_w, { st.gpr[o->rd] = st.fpr[o->rs1]; })                           \
    X(fmv_w_x, { st.fpr[o->rd] = st.gpr[o->rs1]; })                           \
    X(flw, {                                                                  \
        st.fpr[o->rd] = mem_.read32(st.gpr[o->rs1] +                          \
                                    static_cast<std::uint32_t>(o->imm));      \
    })                                                                        \
    X(fsw, {                                                                  \
        const std::uint32_t a_ =                                              \
            st.gpr[o->rs1] + static_cast<std::uint32_t>(o->imm);              \
        mem_.write32(a_, st.fpr[o->rs2]);                                     \
        OSM_SMC_CHECK(a_, 4)                                                  \
    })                                                                        \
    X(syscall_op, {                                                           \
        host_.handle(static_cast<std::uint16_t>(o->imm), st);                 \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })                                                                        \
    X(halt, {                                                                 \
        st.halted = true;                                                     \
        st.pc = o->pc;                                                        \
        goto term_done;                                                       \
    })                                                                        \
    /* Atomics/fence are block terminators (see is_terminator): each is    */ \
    /* the final op of its block, so setting pc and leaving via term_done  */ \
    /* keeps the "ordering point at a block boundary" invariant.           */ \
    X(lr_w, {                                                                 \
        const std::uint32_t a_ = st.gpr[o->rs1] & ~3u;                        \
        st.set_gpr(o->rd, mem_.read32(a_));                                   \
        resv_valid_ = true;                                                   \
        resv_addr_ = a_;                                                      \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })                                                                        \
    X(sc_w, {                                                                 \
        const std::uint32_t a_ = st.gpr[o->rs1] & ~3u;                        \
        const bool ok_ = resv_valid_ && resv_addr_ == a_;                     \
        resv_valid_ = false;                                                  \
        if (ok_) {                                                            \
            mem_.write32(a_, st.gpr[o->rs2]);                                 \
            st.set_gpr(o->rd, 0u);                                            \
            OSM_SMC_CHECK(a_, 4)                                              \
        } else {                                                              \
            st.set_gpr(o->rd, 1u);                                            \
        }                                                                     \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })                                                                        \
    X(amoadd_w, {                                                             \
        const std::uint32_t a_ = st.gpr[o->rs1] & ~3u;                        \
        const std::uint32_t old_ = mem_.read32(a_);                           \
        mem_.write32(a_, old_ + st.gpr[o->rs2]);                              \
        st.set_gpr(o->rd, old_);                                              \
        OSM_SMC_CHECK(a_, 4)                                                  \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })                                                                        \
    X(amoswap_w, {                                                            \
        const std::uint32_t a_ = st.gpr[o->rs1] & ~3u;                        \
        const std::uint32_t old_ = mem_.read32(a_);                           \
        mem_.write32(a_, st.gpr[o->rs2]);                                     \
        st.set_gpr(o->rd, old_);                                              \
        OSM_SMC_CHECK(a_, 4)                                                  \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })                                                                        \
    X(fence, {                                                                \
        st.pc = o->pc + 4;                                                    \
        goto term_done;                                                       \
    })

std::uint64_t iss::exec_block(const basic_block& blk) {
    arch_state& st = state_;
    const block_op* const base = blk.ops.data();
    const block_op* const last = base + (blk.n - 1);
    const block_op* o = base;
    std::uint64_t executed = 0;

#ifdef OSM_DIRECT_THREADED

#define OSM_TBL_ENTRY(name, ...) &&lbl_##name,
    static const void* const tbl[] = {OSM_BLOCK_OPS(OSM_TBL_ENTRY) &&lbl_nop};
#undef OSM_TBL_ENTRY
    static_assert(sizeof(tbl) / sizeof(tbl[0]) ==
                      static_cast<std::size_t>(op::count_) + 1,
                  "dispatch table out of sync with enum op");

#define OSM_NEXT()                        \
    do {                                  \
        if (o == last) goto fall_through; \
        ++o;                              \
        goto* tbl[o->kind];               \
    } while (0)

    goto* tbl[o->kind];

#define OSM_LABEL(name, ...) \
    lbl_##name : __VA_ARGS__ OSM_NEXT();
    OSM_BLOCK_OPS(OSM_LABEL)
#undef OSM_LABEL
lbl_nop:
    OSM_NEXT();
#undef OSM_NEXT

#else  // portable switch dispatch

    for (;;) {
        switch (o->kind) {
#define OSM_CASE(name, ...)                     \
    case static_cast<std::uint8_t>(op::name): { \
        __VA_ARGS__                             \
    } break;
            OSM_BLOCK_OPS(OSM_CASE)
#undef OSM_CASE
            default:  // block_cache::k_nop
                break;
        }
        if (o == last) goto fall_through;
        ++o;
    }

#endif

term_done:
    executed = static_cast<std::uint64_t>(o - base) + 1;
    goto finish;

fall_through:
    // Cap-cut block: all n ops executed, control falls to the next pc.
    st.pc = blk.entry_pc + 4u * blk.n;
    executed = blk.n;

finish:
    instret_ += executed;
    bcache_.mutable_stats().block_insts += executed;
    return executed;
}

#undef OSM_BLOCK_OPS
#undef OSM_SMC_CHECK

stats::report iss::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("iss"));
    r.put("run", "retired", instret_);
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(decode_cache_on_ ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "evictions", dcode_.stats().evictions);
    r.put("decode_cache", "smc_redecodes", dcode_.stats().smc_redecodes);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    r.put("block_cache", "enabled", static_cast<std::uint64_t>(block_cache_on_ ? 1 : 0));
    r.put("block_cache", "hits", bcache_.stats().hits);
    r.put("block_cache", "misses", bcache_.stats().misses);
    r.put("block_cache", "blocks_built", bcache_.stats().blocks_built);
    r.put("block_cache", "evictions", bcache_.stats().evictions);
    r.put("block_cache", "invalidations", bcache_.stats().invalidations);
    r.put("block_cache", "smc_stores", bcache_.stats().smc_stores);
    r.put("block_cache", "block_insts", bcache_.stats().block_insts);
    r.put("block_cache", "hit_ratio", bcache_.stats().hit_ratio());
    return r;
}

std::uint64_t iss::run(std::uint64_t max_steps) {
    const std::uint64_t before = instret_;
    if (!block_cache_on_) {
        std::uint64_t n = 0;
        while (n < max_steps && step()) ++n;
        // step() returns false on the halting instruction itself but still
        // counts it, so report retirements, not loop iterations.
        return instret_ - before;
    }

    std::uint64_t left = max_steps;
    while (left > 0 && !state_.halted) {
        const basic_block* b = bcache_.lookup(state_.pc);
        if (b == nullptr) {
            b = &bcache_.build(state_.pc, mem_,
                               decode_cache_on_ ? &dcode_ : nullptr);
        }
        if (b->n > left) {
            // Remaining budget smaller than the block: single-step so the
            // step count stays exact (run(1) callers keep per-instruction
            // semantics for lockstep and bisection).
            if (!step()) break;
            --left;
            continue;
        }
        left -= exec_block(*b);
    }
    return instret_ - before;
}

}  // namespace osm::isa
