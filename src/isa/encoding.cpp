// VR32 encode/decode as thin shims over the generated ISA tables.
// The bit patterns, immediate ranges and field layouts all live in
// src/isa/specs/vr32.spec; this file only maps spec field letters onto
// decoded_inst members.
#include "isa/encoding.hpp"

#include <cassert>

#include "isa/vr32_tables.hpp"

namespace osm::isa {

namespace {

std::uint32_t field_value(const decoded_inst& di, char letter) {
    switch (letter) {
        case 'd': return di.rd;
        case 'a': return di.rs1;
        case 'b': return di.rs2;
        default: return 0;
    }
}

void set_field(decoded_inst& di, char letter, std::uint32_t v) {
    switch (letter) {
        case 'd': di.rd = static_cast<std::uint8_t>(v); break;
        case 'a': di.rs1 = static_cast<std::uint8_t>(v); break;
        case 'b': di.rs2 = static_cast<std::uint8_t>(v); break;
        default: break;
    }
}

}  // namespace

bool immediate_fits(op code, std::int64_t imm) {
    const tbl::inst_desc* d =
        tbl::desc_for(vr32_tables(), static_cast<unsigned>(code));
    return d != nullptr && tbl::imm_fits(*d, imm);
}

std::uint32_t encode(const decoded_inst& di) {
    const tbl::inst_desc* d =
        tbl::desc_for(vr32_tables(), static_cast<unsigned>(di.code));
    assert(d != nullptr && "cannot encode invalid op");
    assert(immediate_fits(di.code, di.imm));
    std::uint32_t w = d->match;
    for (unsigned i = 0; i < d->nfields; ++i) {
        w = tbl::insert_field(w, d->fields[i], field_value(di, d->fields[i].letter));
    }
    if (d->imm.present) w = tbl::insert_imm(w, d->imm, di.imm);
    return w;
}

decoded_inst decode(std::uint32_t word) {
    decoded_inst di;
    di.raw = word;
    const tbl::inst_desc* d = tbl::lookup(vr32_tables(), word);
    if (d == nullptr) return di;  // op::invalid
    di.code = static_cast<op>(d->id);
    for (unsigned i = 0; i < d->nfields; ++i) {
        const tbl::field_desc& f = d->fields[i];
        if (!f.enc_only) set_field(di, f.letter, tbl::extract_field(f, word));
    }
    if (d->imm.in_decode) di.imm = tbl::extract_imm(d->imm, word);
    return di;
}

}  // namespace osm::isa
