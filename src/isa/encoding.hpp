// VR32 binary encoding.
//
// Fixed 32-bit instructions, little-endian in memory.  The primary opcode
// lives in bits [31:26]; the remaining formats are:
//
//   R  : op | rd[25:21]  | rs1[20:16] | rs2[15:11] | funct[10:0]
//   I  : op | rd[25:21]  | rs1[20:16] | imm16[15:0]          (sign-extended)
//   S  : op | rs2[25:21] | rs1[20:16] | imm16[15:0]          (store data in rd slot)
//   B  : op | rs1[25:21] | rs2[20:16] | off16[15:0]          (word offset from pc+4)
//   J  : op | rd[25:21]  | off21[20:0]                       (word offset from pc+4)
//   SYS: op | code16[15:0]
//
// Integer R-type ops share primary opcode 0x00 and are selected by funct;
// FP computational ops share 0x20 the same way.
#pragma once

#include <cstdint>
#include <optional>

#include "isa/decoded_inst.hpp"

namespace osm::isa {

/// Encode `di` into its 32-bit instruction word.
/// Preconditions: the immediate fits the format's field; registers < 32.
std::uint32_t encode(const decoded_inst& di);

/// Decode a 32-bit instruction word.  Unknown opcodes/functs yield
/// `op::invalid` with `raw` preserved (models treat it as a trap/halt).
decoded_inst decode(std::uint32_t word);

/// True when `imm` is representable in the format used by `code`.
bool immediate_fits(op code, std::int64_t imm);

}  // namespace osm::isa
