#include "isa/block_cache.hpp"

#include <algorithm>

namespace osm::isa {

namespace {

std::size_t round_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}

// Superblock formation: *forward* conditional branches do not terminate
// translation — the dispatch loop treats them as side exits (taken ->
// leave the block, not taken -> fall through to the next op in the same
// block), so if/then-dense code still forms long blocks.  Backward
// conditional branches DO terminate: they close loops and are usually
// taken, and extending past one would translate whatever follows the loop
// — often in-program data tables, whose ordinary data stores would then
// keep killing the block through the SMC watch.  Words past a not-taken
// forward branch are decoded speculatively; that is safe because memory
// reads are side-effect free (unmapped reads return 0) and a bogus tail op
// executes only if control actually falls onto it — exactly when the
// interpretive path would execute the same word.
bool is_terminator(const predecoded_inst& pd) {
    if (pd.jump() || pd.system() || pd.di.code == op::invalid) return true;
    // Atomics and fences close the block: they are ordering points the
    // multi-hart scheduler must observe at an instruction boundary, and
    // keeping them block-final means their handlers can treat "store
    // buffer drained / reservation updated" as a block-exit invariant.
    if (is_atomic_or_fence(pd.di.code)) return true;
    return pd.branch() && pd.di.imm < 0;
}

}  // namespace

block_cache::block_cache(std::size_t entries)
    : blocks_(round_pow2(entries == 0 ? 1 : entries)),
      mask_(static_cast<std::uint32_t>(blocks_.size() - 1)) {}

const basic_block& block_cache::build(std::uint32_t pc, mem::memory_if& m,
                                      decode_cache* dcode) {
    ++stats_.misses;
    ++stats_.blocks_built;
    basic_block& b = blocks_[(pc >> 2) & mask_];
    if (b.valid) {
        drop_block(b);
        ++stats_.evictions;
    }

    b.entry_pc = pc;
    b.ops.clear();
    std::uint32_t p = pc;
    for (unsigned i = 0; i < k_max_block_len; ++i) {
        const std::uint32_t word = m.read32(p);
        const predecoded_inst& pd =
            dcode != nullptr ? dcode->lookup(p, word) : predecoded_inst::make(word);
        block_op o;
        o.pc = p;
        o.imm = pd.di.imm;
        o.rd = pd.di.rd;
        o.rs1 = pd.di.rs1;
        o.rs2 = pd.di.rs2;
        o.kind = static_cast<std::uint8_t>(pd.di.code);
        // Pure writes to x0 are architectural no-ops (set_gpr pins x0):
        // prove them dead at build time so the dispatch handlers can write
        // gpr[rd] directly.  Loads keep their memory access; jumps keep
        // their redirect; FP destinations have no zero pin.
        if (pd.writes_rd() && !pd.rd_fpr() && pd.di.rd == 0 && !pd.load() &&
            !pd.jump() && !is_amo(pd.di.code)) {
            o.kind = k_nop;
        }
        b.ops.push_back(o);
        if (is_terminator(pd)) break;
        p += 4;
        if (p == 0) break;  // pc wraparound: cut the block
    }
    b.n = static_cast<std::uint16_t>(b.ops.size());
    b.valid = true;

    // Register the span with the SMC watch structures.
    const std::uint32_t lo = b.entry_pc;
    const std::uint32_t hi = b.entry_pc + 4u * b.n;  // exclusive
    for (std::uint32_t pg = lo >> k_page_shift; pg <= (hi - 1) >> k_page_shift;
         ++pg) {
        ++code_pages_[pg];
    }
    if (watch_span_ == 0) {
        watch_lo_ = lo;
        watch_span_ = hi - lo;
    } else {
        const std::uint32_t old_hi = watch_lo_ + watch_span_;
        const std::uint32_t new_lo = std::min(watch_lo_, lo);
        const std::uint32_t new_hi = std::max(old_hi, hi);
        watch_lo_ = new_lo;
        watch_span_ = new_hi - new_lo;
    }
    return b;
}

void block_cache::drop_block(basic_block& b) {
    const std::uint32_t lo = b.entry_pc;
    const std::uint32_t hi = b.entry_pc + 4u * b.n;
    for (std::uint32_t pg = lo >> k_page_shift; pg <= (hi - 1) >> k_page_shift;
         ++pg) {
        const auto it = code_pages_.find(pg);
        if (it != code_pages_.end() && --it->second == 0) code_pages_.erase(it);
    }
    b.valid = false;
    b.n = 0;
    b.ops.clear();
}

void block_cache::recompute_watch() {
    std::uint32_t lo = ~0u;
    std::uint32_t hi = 0;
    bool any = false;
    for (const basic_block& b : blocks_) {
        if (!b.valid) continue;
        any = true;
        lo = std::min(lo, b.entry_pc);
        hi = std::max(hi, b.entry_pc + 4u * b.n);
    }
    if (!any) {
        watch_lo_ = 0;
        watch_span_ = 0;
    } else {
        watch_lo_ = lo;
        watch_span_ = hi - lo;
    }
}

bool block_cache::notify_store(std::uint32_t addr, std::uint32_t bytes) {
    const std::uint32_t pg0 = addr >> k_page_shift;
    const std::uint32_t pg1 = (addr + bytes - 1) >> k_page_shift;
    bool page_hit = false;
    for (std::uint32_t pg = pg0; pg <= pg1; ++pg) {
        if (code_pages_.count(pg) != 0) {
            page_hit = true;
            break;
        }
    }
    if (!page_hit) return false;  // watch-range false positive (data page)

    // Scoped invalidation: kill every block overlapping a written page.
    // SMC is rare, so the full-table scan is off the fast path.
    std::uint64_t killed = 0;
    for (basic_block& b : blocks_) {
        if (!b.valid) continue;
        const std::uint32_t bpg0 = b.entry_pc >> k_page_shift;
        const std::uint32_t bpg1 = (b.entry_pc + 4u * b.n - 1) >> k_page_shift;
        if (bpg1 < pg0 || bpg0 > pg1) continue;
        drop_block(b);
        ++killed;
    }
    if (killed == 0) return false;  // page held other blocks' spans only

    stats_.invalidations += killed;
    ++stats_.smc_stores;
    ++gen_;
    recompute_watch();
    return true;
}

void block_cache::invalidate_all() {
    for (basic_block& b : blocks_) {
        b.valid = false;
        b.n = 0;
        b.ops.clear();
    }
    code_pages_.clear();
    watch_lo_ = 0;
    watch_span_ = 0;
    ++gen_;
}

}  // namespace osm::isa
