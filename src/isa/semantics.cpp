#include "isa/semantics.hpp"

namespace osm::isa {

using sem::as_f;
using sem::as_u;
using sem::cvt_w_s;
using sem::div_signed;
using sem::mul_hi_s;
using sem::mul_hi_u;
using sem::rem_signed;

exec_out compute(const decoded_inst& di, std::uint32_t pc,
                 std::uint32_t a, std::uint32_t b) {
    exec_out out;
    out.next_pc = pc + 4;
    const std::uint32_t imm = static_cast<std::uint32_t>(di.imm);
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);

    switch (di.code) {
        case op::add_r: out.value = a + b; break;
        case op::sub_r: out.value = a - b; break;
        case op::and_r: out.value = a & b; break;
        case op::or_r: out.value = a | b; break;
        case op::xor_r: out.value = a ^ b; break;
        case op::nor_r: out.value = ~(a | b); break;
        case op::sll_r: out.value = a << (b & 31u); break;
        case op::srl_r: out.value = a >> (b & 31u); break;
        case op::sra_r: out.value = static_cast<std::uint32_t>(sa >> (b & 31u)); break;
        case op::slt_r: out.value = sa < sb ? 1u : 0u; break;
        case op::sltu_r: out.value = a < b ? 1u : 0u; break;
        case op::mul: out.value = a * b; break;
        case op::mulh: out.value = mul_hi_s(a, b); break;
        case op::mulhu: out.value = mul_hi_u(a, b); break;
        case op::div_s: out.value = div_signed(a, b); break;
        case op::div_u: out.value = b == 0 ? ~0u : a / b; break;
        case op::rem_s: out.value = rem_signed(a, b); break;
        case op::rem_u: out.value = b == 0 ? a : a % b; break;

        case op::addi: out.value = a + imm; break;
        case op::andi: out.value = a & imm; break;
        case op::ori: out.value = a | imm; break;
        case op::xori: out.value = a ^ imm; break;
        case op::slti: out.value = sa < di.imm ? 1u : 0u; break;
        case op::sltiu: out.value = a < imm ? 1u : 0u; break;
        case op::slli: out.value = a << (imm & 31u); break;
        case op::srli: out.value = a >> (imm & 31u); break;
        case op::srai: out.value = static_cast<std::uint32_t>(sa >> (imm & 31u)); break;
        case op::lui: out.value = imm << 16; break;
        case op::auipc: out.value = pc + (imm << 16); break;

        case op::lb: case op::lbu: case op::lh: case op::lhu: case op::lw:
        case op::flw:
            out.mem_addr = a + imm;
            break;
        case op::sb: case op::sh: case op::sw: case op::fsw:
            out.mem_addr = a + imm;
            out.store_data = b;
            break;

        case op::beq: out.redirect = (a == b); break;
        case op::bne: out.redirect = (a != b); break;
        case op::blt: out.redirect = (sa < sb); break;
        case op::bge: out.redirect = (sa >= sb); break;
        case op::bltu: out.redirect = (a < b); break;
        case op::bgeu: out.redirect = (a >= b); break;

        case op::jal:
            out.value = pc + 4;  // link
            out.redirect = true;
            out.next_pc = pc + 4 + static_cast<std::uint32_t>(di.imm);
            break;
        case op::jalr:
            out.value = pc + 4;
            out.redirect = true;
            out.next_pc = (a + imm) & ~3u;
            break;

        case op::fadd: out.value = as_u(as_f(a) + as_f(b)); break;
        case op::fsub: out.value = as_u(as_f(a) - as_f(b)); break;
        case op::fmul: out.value = as_u(as_f(a) * as_f(b)); break;
        case op::fdiv: out.value = as_u(as_f(a) / as_f(b)); break;
        case op::fmin: out.value = as_u(std::fmin(as_f(a), as_f(b))); break;
        case op::fmax: out.value = as_u(std::fmax(as_f(a), as_f(b))); break;
        case op::fabs_f: out.value = a & 0x7FFFFFFFu; break;
        case op::fneg_f: out.value = a ^ 0x80000000u; break;
        case op::feq: out.value = as_f(a) == as_f(b) ? 1u : 0u; break;
        case op::flt_f: out.value = as_f(a) < as_f(b) ? 1u : 0u; break;
        case op::fle: out.value = as_f(a) <= as_f(b) ? 1u : 0u; break;
        case op::fcvt_w_s: out.value = cvt_w_s(a); break;
        case op::fcvt_s_w: out.value = as_u(static_cast<float>(sa)); break;
        case op::fmv_x_w: out.value = a; break;
        case op::fmv_w_x: out.value = a; break;

        // Atomics address through rs1 with no displacement; the actual
        // read-modify-write is performed by the execution engine against
        // its memory system (plain or shared), not by compute().
        case op::lr_w:
            out.mem_addr = a;
            break;
        case op::sc_w:
        case op::amoadd_w:
        case op::amoswap_w:
            out.mem_addr = a;
            out.store_data = b;
            break;

        case op::fence:
        case op::syscall_op:
        case op::halt:
        case op::invalid:
        case op::count_:
            break;
    }

    if (is_branch(di.code) && out.redirect) {
        out.next_pc = pc + 4 + static_cast<std::uint32_t>(di.imm);
    }
    return out;
}

std::uint32_t do_load(op code, mem::memory_if& m, std::uint32_t addr) {
    switch (code) {
        case op::lb: {
            const auto v = static_cast<std::int8_t>(m.read8(addr));
            return static_cast<std::uint32_t>(static_cast<std::int32_t>(v));
        }
        case op::lbu: return m.read8(addr);
        case op::lh: {
            const auto v = static_cast<std::int16_t>(m.read16(addr));
            return static_cast<std::uint32_t>(static_cast<std::int32_t>(v));
        }
        case op::lhu: return m.read16(addr);
        case op::lw:
        case op::flw:
            return m.read32(addr);
        default:
            return 0;
    }
}

void do_store(op code, mem::memory_if& m, std::uint32_t addr, std::uint32_t data) {
    switch (code) {
        case op::sb: m.write8(addr, static_cast<std::uint8_t>(data)); break;
        case op::sh: m.write16(addr, static_cast<std::uint16_t>(data)); break;
        case op::sw:
        case op::fsw:
            m.write32(addr, data);
            break;
        default:
            break;
    }
}

}  // namespace osm::isa
