// VR32 operation semantics, factored into the phases micro-architecture
// models need:
//
//   compute()  — pure combinational result (ALU / address / branch decision);
//   do_load()  — memory read side of the access phase;
//   do_store() — memory write side of the access phase.
//
// Every execution engine in the repository (ISS, OSM models, hardwired
// baseline, port model) calls exactly these functions, so functional
// behaviour can never diverge between them — only timing can.
#pragma once

#include <cstdint>

#include "isa/decoded_inst.hpp"
#include "mem/memory_if.hpp"

namespace osm::isa {

/// Result of the combinational execute phase.
struct exec_out {
    std::uint32_t value = 0;       ///< rd result (for non-load ops)
    std::uint32_t mem_addr = 0;    ///< effective address for loads/stores
    std::uint32_t store_data = 0;  ///< value to store
    std::uint32_t next_pc = 0;     ///< pc+4, or target when `redirect`
    bool redirect = false;         ///< taken branch or jump
};

/// Evaluate `di` at `pc` with source values `a` (rs1) and `b` (rs2).
/// For FP-sourced operands, `a`/`b` carry the IEEE-754 bit pattern.
exec_out compute(const decoded_inst& di, std::uint32_t pc,
                 std::uint32_t a, std::uint32_t b);

/// Perform the load half of the memory phase; returns the rd value.
std::uint32_t do_load(op code, mem::memory_if& m, std::uint32_t addr);

/// Perform the store half of the memory phase.
void do_store(op code, mem::memory_if& m, std::uint32_t addr, std::uint32_t data);

}  // namespace osm::isa
