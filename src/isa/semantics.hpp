// VR32 operation semantics, factored into the phases micro-architecture
// models need:
//
//   compute()  — pure combinational result (ALU / address / branch decision);
//   do_load()  — memory read side of the access phase;
//   do_store() — memory write side of the access phase.
//
// Every execution engine in the repository (ISS, OSM models, hardwired
// baseline, port model) calls exactly these functions, so functional
// behaviour can never diverge between them — only timing can.
#pragma once

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "isa/decoded_inst.hpp"
#include "mem/memory_if.hpp"

namespace osm::isa {

/// Corner-case helpers shared by compute() and the block-cache dispatch
/// loop in the ISS.  Keeping a single definition (here, inlinable) is what
/// guarantees the translated fast path and the interpreter can never
/// disagree on division, conversion or FP-bit semantics.
namespace sem {

inline float as_f(std::uint32_t bits) { return std::bit_cast<float>(bits); }
inline std::uint32_t as_u(float f) { return std::bit_cast<std::uint32_t>(f); }

inline std::uint32_t mul_hi_s(std::uint32_t a, std::uint32_t b) {
    const std::int64_t p = static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                           static_cast<std::int64_t>(static_cast<std::int32_t>(b));
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(p) >> 32);
}

inline std::uint32_t mul_hi_u(std::uint32_t a, std::uint32_t b) {
    const std::uint64_t p = static_cast<std::uint64_t>(a) * b;
    return static_cast<std::uint32_t>(p >> 32);
}

// RISC-V-style division corner cases: no traps; x/0 = -1 (all ones),
// x%0 = x, INT_MIN/-1 = INT_MIN with remainder 0.
inline std::uint32_t div_signed(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return ~0u;
    if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1) return a;
    return static_cast<std::uint32_t>(sa / sb);
}

inline std::uint32_t rem_signed(std::uint32_t a, std::uint32_t b) {
    const auto sa = static_cast<std::int32_t>(a);
    const auto sb = static_cast<std::int32_t>(b);
    if (sb == 0) return a;
    if (sa == std::numeric_limits<std::int32_t>::min() && sb == -1) return 0;
    return static_cast<std::uint32_t>(sa % sb);
}

/// float -> int32 with RISC-V fcvt.w.s saturation/NaN behaviour.
inline std::uint32_t cvt_w_s(std::uint32_t fbits) {
    const float f = as_f(fbits);
    if (std::isnan(f)) return 0x7FFFFFFFu;
    if (f >= 2147483648.0f) return 0x7FFFFFFFu;
    if (f < -2147483648.0f) return 0x80000000u;
    return static_cast<std::uint32_t>(static_cast<std::int32_t>(f));
}

}  // namespace sem

/// Result of the combinational execute phase.
struct exec_out {
    std::uint32_t value = 0;       ///< rd result (for non-load ops)
    std::uint32_t mem_addr = 0;    ///< effective address for loads/stores
    std::uint32_t store_data = 0;  ///< value to store
    std::uint32_t next_pc = 0;     ///< pc+4, or target when `redirect`
    bool redirect = false;         ///< taken branch or jump
};

/// Evaluate `di` at `pc` with source values `a` (rs1) and `b` (rs2).
/// For FP-sourced operands, `a`/`b` carry the IEEE-754 bit pattern.
exec_out compute(const decoded_inst& di, std::uint32_t pc,
                 std::uint32_t a, std::uint32_t b);

/// Perform the load half of the memory phase; returns the rd value.
std::uint32_t do_load(op code, mem::memory_if& m, std::uint32_t addr);

/// Perform the store half of the memory phase.
void do_store(op code, mem::memory_if& m, std::uint32_t addr, std::uint32_t data);

}  // namespace osm::isa
