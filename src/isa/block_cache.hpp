// Basic-block / superblock translation cache: the compiled-simulation fast
// path layered over the decode cache (ROADMAP item 1).
//
// The decode cache removed the per-instruction decode cost but still pays a
// full fetch -> tag-check -> out-of-line compute() round trip per
// instruction.  Reshadi & Dutt ("Generic Pipelined Processor Modeling and
// High Performance Cycle-Accurate Simulator Generation") observe that the
// order-of-magnitude wins come from translating hot *regions*: this cache
// stores whole basic blocks — arrays of pre-decoded operations ending in a
// fused control-transfer terminator — keyed on entry pc, and the ISS
// executes a block with a threaded-code dispatch loop that never re-enters
// fetch/decode between instructions (see iss.cpp).
//
// Block formation: starting at the entry pc, fall-through decodes are
// appended until an unconditional control transfer (jump/system/invalid),
// a backward conditional branch (loop-closing, usually taken — extending
// past one would pull trailing data tables into the code watch), or the
// block-size cap.  Forward conditional branches do not end translation —
// they become superblock side exits, executed in place: taken leaves the
// block, not taken continues to the next op of the same block.  Formation
// goes through the decode cache when it is
// enabled, so the (pc, word) word tags — the property that makes the
// decode cache SMC-safe by construction — also police rebuilds: a store
// that changed a word forces an smc_redecode on the next build.
//
// Self-modifying-code invalidation: a block cannot re-check word tags per
// instruction, so the cache keeps a watch range (the union of all code
// spans with live blocks) plus a per-page live-block count.  Stores are
// screened against the range with one branch; a store that lands on a page
// holding code kills every block overlapping that page (per-page scoped
// invalidation rather than invalidate_all()) and bumps a generation
// counter, which the dispatch loop checks after stores so a block that
// mutates its own code aborts mid-block and resumes interpretively.
//
// Like the decode cache the structure is a pure host-side optimization:
// architecturally invisible, no simulated timing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/decode_cache.hpp"
#include "mem/memory_if.hpp"

namespace osm::isa {

/// Software-cache counters (exported through stats::report by the models).
struct block_cache_stats {
    std::uint64_t hits = 0;          ///< block lookups served from the cache
    std::uint64_t misses = 0;        ///< lookups that required a build
    std::uint64_t blocks_built = 0;  ///< blocks formed (== misses)
    std::uint64_t evictions = 0;     ///< builds that displaced another block
    std::uint64_t invalidations = 0; ///< blocks killed by stores to code
    std::uint64_t smc_stores = 0;    ///< store events that killed >= 1 block
    std::uint64_t block_insts = 0;   ///< instructions retired inside blocks

    double hit_ratio() const noexcept {
        const std::uint64_t total = hits + misses;
        return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
};

/// One pre-translated operation: the decoded fields the dispatch loop
/// needs, flattened so a block is a contiguous array of 16-byte records.
/// `kind` is the op enum value, or `k_nop` for writes to x0 that were
/// proven dead at build time.
struct block_op {
    std::uint32_t pc = 0;
    std::int32_t imm = 0;
    std::uint8_t kind = 0;
    std::uint8_t rd = 0;
    std::uint8_t rs1 = 0;
    std::uint8_t rs2 = 0;
};

/// A translated superblock: `n` ops covering [entry_pc, entry_pc + 4n).
/// The final op is the terminator (unconditional transfer / backward
/// branch / system / invalid) unless the block was cut by the size cap, in
/// which case execution falls through to entry_pc + 4n.  Forward
/// conditional branches inside the block are side exits; ops past one
/// execute only when it is not taken.
struct basic_block {
    std::uint32_t entry_pc = 0;
    std::uint16_t n = 0;
    bool valid = false;
    std::vector<block_op> ops;
};

/// Direct-mapped, entry-pc-keyed cache of translated basic blocks.
class block_cache {
public:
    static constexpr std::size_t k_default_entries = 2048;
    static constexpr unsigned k_max_block_len = 32;
    /// Pseudo-op kind for build-time-dead operations (pure writes to x0).
    static constexpr std::uint8_t k_nop = static_cast<std::uint8_t>(op::count_);

    /// `entries` is rounded up to a power of two.  `dcode` (optional) is
    /// consulted during block formation so its (pc, word) tags keep
    /// counting SMC re-decodes on rebuilds.
    explicit block_cache(std::size_t entries = k_default_entries);

    /// The block starting at `pc`, or nullptr on miss.  Counts hits only;
    /// the miss is counted by the build() the caller issues next.
    const basic_block* lookup(std::uint32_t pc) noexcept {
        basic_block& b = blocks_[(pc >> 2) & mask_];
        if (b.valid && b.entry_pc == pc) {
            ++stats_.hits;
            return &b;
        }
        return nullptr;
    }

    /// Translate the block starting at `pc` from `m` and insert it.  Reads
    /// go through memory_if::read32, which never materializes absent pages
    /// (checkpoint page sets stay undisturbed).  `dcode` non-null routes
    /// the per-word decode through the decode cache.
    const basic_block& build(std::uint32_t pc, mem::memory_if& m,
                             decode_cache* dcode);

    /// One-branch screen for the store path: may `addr` (up to 4 bytes
    /// wide) overlap code covered by a live block?  False positives are
    /// resolved by notify_store; false negatives cannot happen because the
    /// watch range is a superset of every live block's span.
    bool store_may_hit(std::uint32_t addr) const noexcept {
        return (addr + 3u - watch_lo_) < (watch_span_ + 3u);
    }

    /// Precise SMC check + scoped invalidation: kills every block
    /// overlapping the page(s) written at `addr`.  Returns true when at
    /// least one block died (the dispatch loop then aborts the running
    /// block — its own remaining ops may be stale).
    bool notify_store(std::uint32_t addr, std::uint32_t bytes);

    /// Drop every block (counters preserved; see reset_stats).
    void invalidate_all();

    void reset_stats() noexcept { stats_ = {}; }

    /// Bumped by every invalidation (scoped or full); the dispatch loop
    /// compares generations around stores to detect self-invalidation.
    std::uint64_t generation() const noexcept { return gen_; }

    std::size_t entries() const noexcept { return blocks_.size(); }
    const block_cache_stats& stats() const noexcept { return stats_; }
    block_cache_stats& mutable_stats() noexcept { return stats_; }

private:
    static constexpr std::uint32_t k_page_shift = 12;  // matches mem::main_memory

    void drop_block(basic_block& b);
    void recompute_watch();

    std::vector<basic_block> blocks_;
    std::uint32_t mask_;
    // Watch range [watch_lo_, watch_lo_ + watch_span_) — superset union of
    // live block spans; empty when span == 0.
    std::uint32_t watch_lo_ = 0;
    std::uint32_t watch_span_ = 0;
    // Page base -> number of live blocks overlapping it.
    std::unordered_map<std::uint32_t, std::uint32_t> code_pages_;
    std::uint64_t gen_ = 0;
    block_cache_stats stats_;
};

}  // namespace osm::isa
