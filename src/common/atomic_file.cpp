#include "common/atomic_file.hpp"

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include <unistd.h>

namespace osm::common {

void atomic_write_file(const std::string& path, const void* data, std::size_t size) {
    // Unique within the process (counter) and across processes (pid), and in
    // the same directory as the target so the rename cannot cross a
    // filesystem boundary.
    static std::atomic<unsigned> seq{0};
    const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                            std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
    {
        std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
        if (!f) throw std::runtime_error("cannot open " + tmp + " for writing");
        f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
        f.flush();
        if (!f) {
            f.close();
            std::remove(tmp.c_str());
            throw std::runtime_error("short write to " + tmp);
        }
    }
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec) {
        std::remove(tmp.c_str());
        throw std::runtime_error("cannot rename " + tmp + " to " + path + ": " +
                                 ec.message());
    }
}

void atomic_write_file(const std::string& path, const std::string& text) {
    atomic_write_file(path, text.data(), text.size());
}

}  // namespace osm::common
