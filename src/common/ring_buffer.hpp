// Fixed-capacity FIFO ring buffer.  Micro-architecture queues (fetch queue,
// completion queue, store buffer) are small and bounded, so a non-allocating
// ring avoids heap traffic on the simulator's hot path.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace osm {

/// Bounded FIFO with stable indices relative to the head.  `capacity` is
/// fixed at construction time.
template <typename T>
class ring_buffer {
public:
    explicit ring_buffer(std::size_t capacity)
        : slots_(capacity), head_(0), count_(0) {
        assert(capacity > 0);
    }

    std::size_t capacity() const noexcept { return slots_.size(); }
    std::size_t size() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }
    bool full() const noexcept { return count_ == slots_.size(); }

    /// Append to the tail.  Precondition: !full().
    void push_back(T value) {
        assert(!full());
        slots_[physical(count_)] = std::move(value);
        ++count_;
    }

    /// Remove from the head.  Precondition: !empty().
    T pop_front() {
        assert(!empty());
        T value = std::move(slots_[head_]);
        head_ = (head_ + 1) % slots_.size();
        --count_;
        return value;
    }

    /// Element `i` positions behind the head (0 == head).
    T& at(std::size_t i) {
        assert(i < count_);
        return slots_[physical(i)];
    }
    const T& at(std::size_t i) const {
        assert(i < count_);
        return slots_[physical(i)];
    }

    T& front() { return at(0); }
    const T& front() const { return at(0); }
    T& back() { return at(count_ - 1); }
    const T& back() const { return at(count_ - 1); }

    void clear() noexcept {
        head_ = 0;
        count_ = 0;
    }

private:
    std::size_t physical(std::size_t logical) const noexcept {
        return (head_ + logical) % slots_.size();
    }

    std::vector<T> slots_;
    std::size_t head_;
    std::size_t count_;
};

}  // namespace osm
