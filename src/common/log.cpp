#include "common/log.hpp"

#include <atomic>
#include <cstdio>

namespace osm {

namespace {
// Relaxed atomic: the level is a read-mostly tuning knob; serve workers
// read it concurrently and torn reads of a plain enum would be UB.
std::atomic<log_level> g_level{log_level::warn};

const char* level_name(log_level level) noexcept {
    switch (level) {
        case log_level::error: return "E";
        case log_level::warn: return "W";
        case log_level::info: return "I";
        case log_level::debug: return "D";
        case log_level::trace: return "T";
        case log_level::none: return "-";
    }
    return "?";
}
}  // namespace

void set_log_level(log_level level) noexcept {
    g_level.store(level, std::memory_order_relaxed);
}

log_level get_log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(log_level level) noexcept {
    return static_cast<int>(level) <= static_cast<int>(g_level.load(std::memory_order_relaxed));
}

void log_msg(log_level level, const char* tag, const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::fprintf(stderr, "[%s/%s] ", level_name(level), tag);
    std::vfprintf(stderr, fmt, args);
    std::fputc('\n', stderr);
    va_end(args);
}

}  // namespace osm
