// Bit-manipulation helpers shared by the ISA, memory and micro-architecture
// layers.  All helpers are constexpr and operate on explicit fixed-width
// types so that encodings are portable and unit-testable.
#pragma once

#include <cstdint>
#include <type_traits>

namespace osm {

/// Extract bits [lo, min(lo+len, 32)) of `value` (little-endian bit
/// numbering).  Contract: well-defined for every (lo, len) — a field that
/// reaches past bit 31 is truncated to the bits that exist, `lo >= 32` or
/// `len == 0` yields 0.  (The unguarded form computed `1u << len` with
/// `len >= 32` and `value >> lo` with `lo >= 32`, both shift UB.)
constexpr std::uint32_t bits(std::uint32_t value, unsigned lo, unsigned len) noexcept {
    if (lo >= 32u || len == 0u) return 0u;
    const std::uint32_t shifted = value >> lo;
    return (len >= 32u - lo) ? shifted : (shifted & ((1u << len) - 1u));
}

/// Extract a single bit of `value`; positions past 31 read as 0.
constexpr std::uint32_t bit(std::uint32_t value, unsigned pos) noexcept {
    return pos >= 32u ? 0u : ((value >> pos) & 1u);
}

/// Insert `field` (of `len` bits) into bits [lo, min(lo+len, 32)) of
/// `base`.  Same truncation contract as bits(): out-of-range positions are
/// dropped, `lo >= 32` or `len == 0` returns `base` unchanged.
constexpr std::uint32_t insert_bits(std::uint32_t base, std::uint32_t field,
                                    unsigned lo, unsigned len) noexcept {
    if (lo >= 32u || len == 0u) return base;
    const std::uint32_t mask = (len >= 32u - lo) ? (~0u >> lo) : ((1u << len) - 1u);
    return (base & ~(mask << lo)) | ((field & mask) << lo);
}

/// Sign-extend the low `len` bits of `value` to a signed 32-bit integer.
/// Contract: `len == 0` is an empty field and yields 0; `len >= 32` is the
/// identity.  (The unguarded form computed `1u << (len - 1)` — shift UB for
/// both `len == 0` and `len > 32`.)
constexpr std::int32_t sign_extend(std::uint32_t value, unsigned len) noexcept {
    if (len == 0u) return 0;
    if (len >= 32u) return static_cast<std::int32_t>(value);
    const std::uint32_t m = 1u << (len - 1);
    const std::uint32_t v = bits(value, 0, len);
    return static_cast<std::int32_t>((v ^ m) - m);
}

/// True when `value` is a power of two (zero is not).
constexpr bool is_pow2(std::uint64_t value) noexcept {
    return value != 0 && (value & (value - 1)) == 0;
}

/// log2 of a power of two.  Precondition: is_pow2(value).
constexpr unsigned log2_exact(std::uint64_t value) noexcept {
    unsigned n = 0;
    while ((value >> n) != 1u) ++n;
    return n;
}

/// Round `value` up to the next multiple of `align` (align must be pow2).
constexpr std::uint64_t align_up(std::uint64_t value, std::uint64_t align) noexcept {
    return (value + align - 1) & ~(align - 1);
}

/// Population count for 32-bit values (constexpr-friendly).
constexpr unsigned popcount32(std::uint32_t value) noexcept {
    unsigned n = 0;
    while (value != 0) {
        value &= value - 1;
        ++n;
    }
    return n;
}

}  // namespace osm
