// Deterministic xorshift-based pseudo random generator.  Simulation results
// must be bit-reproducible across runs and platforms, so we do not use
// std::mt19937's distribution functions (distribution output is not
// portable); all derived draws are implemented here explicitly.
#pragma once

#include <cstdint>

namespace osm {

/// Small, fast, deterministic PRNG (xorshift64*).  Never returns the same
/// sequence for two different seeds and is stable across platforms.
class xrandom {
public:
    explicit xrandom(std::uint64_t seed = 0x9E3779B97F4A7C15ull) noexcept;

    /// Next raw 64-bit draw.
    std::uint64_t next_u64() noexcept;

    /// Next 32-bit draw.
    std::uint32_t next_u32() noexcept;

    /// Uniform draw in [0, bound).  Precondition: bound > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform draw in [lo, hi] inclusive.  Precondition: lo <= hi.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Bernoulli draw with probability numerator/denominator.
    bool chance(std::uint32_t numerator, std::uint32_t denominator) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Raw generator state, for checkpointing a deterministic schedule
    /// mid-stream (the multi-hart scheduler saves/restores this so a
    /// restored run replays the exact schedule of an uninterrupted one).
    std::uint64_t state() const noexcept { return state_; }
    void set_state(std::uint64_t s) noexcept { state_ = s == 0 ? 1 : s; }

private:
    std::uint64_t state_;
};

}  // namespace osm
