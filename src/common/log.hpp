// Minimal leveled logging used across the framework.  Simulation kernels are
// performance sensitive, so logging is compiled to a cheap level check plus
// (only when enabled) printf-style formatting to stderr.
#pragma once

#include <cstdarg>
#include <string>

namespace osm {

enum class log_level { none = 0, error = 1, warn = 2, info = 3, debug = 4, trace = 5 };

/// Global log verbosity; defaults to `warn`.  The level itself is an atomic
/// so serve workers may read it concurrently, but message emission is plain
/// stderr printf — interleaving across threads is tolerated, not prevented.
void set_log_level(log_level level) noexcept;
log_level get_log_level() noexcept;

/// True when a message at `level` would be emitted.
bool log_enabled(log_level level) noexcept;

/// Emit a printf-formatted message at `level` with a subsystem tag.
void log_msg(log_level level, const char* tag, const char* fmt, ...)
#if defined(__GNUC__)
    __attribute__((format(printf, 3, 4)))
#endif
    ;

}  // namespace osm

#define OSM_LOG(level, tag, ...)                              \
    do {                                                      \
        if (::osm::log_enabled(level)) {                      \
            ::osm::log_msg(level, tag, __VA_ARGS__);          \
        }                                                     \
    } while (0)

#define OSM_ERROR(tag, ...) OSM_LOG(::osm::log_level::error, tag, __VA_ARGS__)
#define OSM_WARN(tag, ...) OSM_LOG(::osm::log_level::warn, tag, __VA_ARGS__)
#define OSM_INFO(tag, ...) OSM_LOG(::osm::log_level::info, tag, __VA_ARGS__)
#define OSM_DEBUG(tag, ...) OSM_LOG(::osm::log_level::debug, tag, __VA_ARGS__)
#define OSM_TRACE(tag, ...) OSM_LOG(::osm::log_level::trace, tag, __VA_ARGS__)
