#include "common/xrandom.hpp"

namespace osm {

xrandom::xrandom(std::uint64_t seed) noexcept : state_(seed ? seed : 1u) {}

std::uint64_t xrandom::next_u64() noexcept {
    std::uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1Dull;
}

std::uint32_t xrandom::next_u32() noexcept {
    return static_cast<std::uint32_t>(next_u64() >> 32);
}

std::uint64_t xrandom::next_below(std::uint64_t bound) noexcept {
    // Multiplicative range reduction; bias is negligible for simulation use
    // and the result remains fully deterministic.
    const std::uint64_t hi = next_u64() >> 32;
    return (hi * bound) >> 32;
}

std::int64_t xrandom::next_range(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1u;
    return lo + static_cast<std::int64_t>(next_below(span));
}

bool xrandom::chance(std::uint32_t numerator, std::uint32_t denominator) noexcept {
    return next_below(denominator) < numerator;
}

double xrandom::next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

}  // namespace osm
