// Atomic (write-temp-then-rename) file replacement.
//
// Campaign summaries, corpus reproducers, checkpoints and serve-cache
// entries are all consumed byte-exactly by later runs, so a writer killed
// mid-write (preempted worker, ctrl-C'd campaign) must never leave a torn
// file behind.  POSIX rename(2) within one directory is atomic: readers see
// either the old complete file or the new complete file, never a prefix.
#pragma once

#include <cstddef>
#include <string>

namespace osm::common {

/// Replace `path` with `size` bytes from `data` atomically: the bytes are
/// written to a unique sibling temp file which is then renamed over `path`.
/// Throws std::runtime_error (with the temp file removed) on any failure.
void atomic_write_file(const std::string& path, const void* data, std::size_t size);
void atomic_write_file(const std::string& path, const std::string& text);

}  // namespace osm::common
