// Intentionally (almost) empty: bits.hpp is constexpr-only.  This TU exists
// so the helpers get odr-used at least once under the library's own flags.
#include "common/bits.hpp"

namespace osm {

static_assert(bits(0xDEADBEEFu, 8, 8) == 0xBEu);
static_assert(bit(0x80000000u, 31) == 1u);
static_assert(sign_extend(0xFFFu, 12) == -1);
static_assert(sign_extend(0x7FFu, 12) == 2047);
static_assert(insert_bits(0u, 0x3u, 4, 2) == 0x30u);
static_assert(is_pow2(64) && !is_pow2(0) && !is_pow2(48));
static_assert(log2_exact(1024) == 10u);
static_assert(align_up(13, 8) == 16u);
static_assert(popcount32(0xF0F0u) == 8u);

}  // namespace osm
