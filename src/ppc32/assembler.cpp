#include "ppc32/assembler.hpp"

#include <cctype>
#include <map>
#include <vector>

#include "isa/table_isa.hpp"
#include "ppc32/decode.hpp"

namespace osm::ppc32 {

namespace {

namespace tbl = isa::tbl;
using isa::asm_error;

std::string_view trim(std::string_view s) {
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) s.remove_prefix(1);
    while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) s.remove_suffix(1);
    return s;
}

std::string lower(std::string_view s) {
    std::string out(s);
    for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

struct statement {
    unsigned line = 0;
    std::string label;
    std::string mnem;
    std::vector<std::string> args;
};

std::vector<statement> lex(std::string_view source) {
    std::vector<statement> out;
    unsigned line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
        const std::size_t eol = source.find('\n', pos);
        std::string_view line = source.substr(
            pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
        pos = eol == std::string_view::npos ? source.size() + 1 : eol + 1;
        ++line_no;

        for (const char c : {';', '#'}) {
            const std::size_t cpos = line.find(c);
            if (cpos != std::string_view::npos) line = line.substr(0, cpos);
        }
        line = trim(line);
        if (line.empty()) continue;

        statement st;
        st.line = line_no;

        const std::size_t colon = line.find(':');
        if (colon != std::string_view::npos &&
            line.substr(0, colon).find_first_of(" \t,()") == std::string_view::npos) {
            st.label = std::string(trim(line.substr(0, colon)));
            line = trim(line.substr(colon + 1));
        }

        if (!line.empty()) {
            const std::size_t sp = line.find_first_of(" \t");
            st.mnem = lower(line.substr(0, sp));
            if (sp != std::string_view::npos) {
                std::string_view rest = trim(line.substr(sp));
                std::size_t start = 0;
                while (start <= rest.size()) {
                    std::size_t comma = rest.find(',', start);
                    if (comma == std::string_view::npos) comma = rest.size();
                    const std::string_view piece = trim(rest.substr(start, comma - start));
                    if (!piece.empty()) st.args.emplace_back(piece);
                    start = comma + 1;
                }
            }
        }
        if (!st.label.empty() || !st.mnem.empty()) out.push_back(std::move(st));
    }
    return out;
}

bool parse_int(std::string_view s, std::int64_t& out) {
    s = trim(s);
    if (s.empty()) return false;
    bool neg = false;
    if (s.front() == '-') {
        neg = true;
        s.remove_prefix(1);
    } else if (s.front() == '+') {
        s.remove_prefix(1);
    }
    if (s.empty()) return false;
    int base = 10;
    if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
        base = 16;
        s.remove_prefix(2);
    }
    std::int64_t v = 0;
    for (const char c : s) {
        int digit;
        if (c >= '0' && c <= '9') digit = c - '0';
        else if (base == 16 && c >= 'a' && c <= 'f') digit = 10 + c - 'a';
        else if (base == 16 && c >= 'A' && c <= 'F') digit = 10 + c - 'A';
        else return false;
        v = v * base + digit;
    }
    out = neg ? -v : v;
    return true;
}

/// r0..r31 only (the subset has no FP or alternate register names).
int parse_reg(std::string_view s) {
    if (s.size() < 2 || s.size() > 3 || (s[0] != 'r' && s[0] != 'R')) return -1;
    int v = 0;
    for (const char c : s.substr(1)) {
        if (c < '0' || c > '9') return -1;
        v = v * 10 + (c - '0');
    }
    return v < 32 ? v : -1;
}

/// Mnemonic -> op mapping from the generated tables, so the assembler's
/// vocabulary can never drift from the spec.
const std::map<std::string, pop, std::less<>>& mnemonic_table() {
    static const std::map<std::string, pop, std::less<>> table = [] {
        std::map<std::string, pop, std::less<>> t;
        const tbl::isa_tables& tabs = tables();
        for (unsigned i = 0; i < tabs.ninsts; ++i) {
            t.emplace(tabs.insts[i].mnemonic, static_cast<pop>(tabs.insts[i].id));
        }
        return t;
    }();
    return table;
}

/// Which operand slots an instruction's fields populate.
struct slot_set {
    bool d = false, a = false, b = false;
};

slot_set slots_of(const tbl::inst_desc& d) {
    slot_set s;
    for (unsigned i = 0; i < d.nfields; ++i) {
        if (d.fields[i].enc_only) continue;
        switch (d.fields[i].letter) {
            case 'd': s.d = true; break;
            case 'a': s.a = true; break;
            case 'b': s.b = true; break;
            default: break;
        }
    }
    return s;
}

struct section {
    std::uint32_t base = 0;
    std::vector<std::uint8_t> bytes;
    std::size_t size = 0;
};

class assembler {
public:
    assembler(std::string_view source, std::uint32_t text_base, std::uint32_t data_base)
        : statements_(lex(source)) {
        text_.base = text_base;
        data_.base = data_base;
    }

    isa::program_image run() {
        pass(/*emit=*/false);
        text_.size = 0;
        data_.size = 0;
        pass(/*emit=*/true);

        isa::program_image img;
        img.entry = symbols_.count("_start") ? symbols_.at("_start") : text_.base;
        if (!text_.bytes.empty()) img.segments.push_back({text_.base, text_.bytes});
        if (!data_.bytes.empty()) img.segments.push_back({data_.base, data_.bytes});
        return img;
    }

private:
    std::vector<statement> statements_;
    section text_;
    section data_;
    std::map<std::string, std::uint32_t, std::less<>> symbols_;

    std::uint32_t cursor(const section& s) const {
        return s.base + static_cast<std::uint32_t>(s.size);
    }

    void append_byte(section& s, bool emit, std::uint8_t b) {
        if (emit) s.bytes.push_back(b);
        ++s.size;
    }

    /// Big-endian: PPC32 instruction and .word data order.
    void append_word(section& s, bool emit, std::uint32_t w) {
        for (int i = 3; i >= 0; --i) {
            append_byte(s, emit, static_cast<std::uint8_t>(w >> (8 * i)));
        }
    }

    [[noreturn]] static void fail(const statement& st, const std::string& msg) {
        throw asm_error(st.line, msg);
    }

    std::int64_t value_of(const statement& st, std::string_view operand, bool emit) const {
        std::int64_t v;
        if (parse_int(operand, v)) return v;
        const auto it = symbols_.find(operand);
        if (it != symbols_.end()) return it->second;
        if (emit) fail(st, "undefined symbol '" + std::string(operand) + "'");
        return 0;  // pass 1: forward reference
    }

    static unsigned reg_of(const statement& st, std::string_view name) {
        const int r = parse_reg(name);
        if (r < 0) fail(st, "bad register '" + std::string(name) + "'");
        return static_cast<unsigned>(r);
    }

    /// A small unsigned operand that is not a register (BO/BI/SH/MB/ME).
    std::uint8_t uint_of(const statement& st, std::string_view s, unsigned limit,
                         bool emit) const {
        const std::int64_t v = value_of(st, s, emit);
        if (v < 0 || v > limit) fail(st, "operand out of range");
        return static_cast<std::uint8_t>(v);
    }

    void mem_operand(const statement& st, std::string_view s,
                     std::int64_t& disp, unsigned& base, bool emit) const {
        const std::size_t open = s.find('(');
        const std::size_t close = s.rfind(')');
        if (open == std::string_view::npos || close == std::string_view::npos || close < open) {
            fail(st, "expected disp(base) operand");
        }
        const std::string_view d = trim(s.substr(0, open));
        disp = d.empty() ? 0 : value_of(st, d, emit);
        base = reg_of(st, trim(s.substr(open + 1, close - open - 1)));
    }

    void require_args(const statement& st, std::size_t n) const {
        if (st.args.size() != n) {
            fail(st, "expected " + std::to_string(n) + " operands, got " +
                         std::to_string(st.args.size()));
        }
    }

    void pass(bool emit) {
        section* cur = &text_;
        for (const statement& st : statements_) {
            if (!st.label.empty() && !emit) {
                if (symbols_.count(st.label)) fail(st, "duplicate label");
                symbols_[st.label] = cursor(*cur);
            }
            if (st.mnem.empty()) continue;
            if (st.mnem[0] == '.') {
                directive(st, cur, emit);
            } else {
                instruction(st, *cur, emit);
            }
        }
    }

    void directive(const statement& st, section*& cur, bool emit) {
        if (st.mnem == ".text" || st.mnem == ".data") {
            section& target = (st.mnem == ".text") ? text_ : data_;
            if (!st.args.empty()) {
                std::int64_t v;
                if (!parse_int(st.args[0], v)) fail(st, "bad section base");
                if (target.size != 0 && static_cast<std::uint32_t>(v) != target.base) {
                    fail(st, "cannot rebase non-empty section");
                }
                target.base = static_cast<std::uint32_t>(v);
            }
            cur = &target;
        } else if (st.mnem == ".word") {
            if (st.args.empty()) fail(st, ".word needs at least one value");
            while (cursor(*cur) % 4 != 0) append_byte(*cur, emit, 0);
            for (const std::string& a : st.args) {
                append_word(*cur, emit,
                            static_cast<std::uint32_t>(value_of(st, a, emit)));
            }
        } else if (st.mnem == ".byte") {
            if (st.args.empty()) fail(st, ".byte needs at least one value");
            for (const std::string& a : st.args) {
                append_byte(*cur, emit,
                            static_cast<std::uint8_t>(value_of(st, a, emit)));
            }
        } else if (st.mnem == ".space") {
            require_args(st, 1);
            std::int64_t n;
            if (!parse_int(st.args[0], n) || n < 0) fail(st, "bad .space size");
            for (std::int64_t i = 0; i < n; ++i) append_byte(*cur, emit, 0);
        } else if (st.mnem == ".align") {
            require_args(st, 1);
            std::int64_t a;
            if (!parse_int(st.args[0], a) || a <= 0) fail(st, "bad .align");
            while (cursor(*cur) % static_cast<std::uint32_t>(a) != 0) {
                append_byte(*cur, emit, 0);
            }
        } else {
            fail(st, "unknown directive '" + st.mnem + "'");
        }
    }

    void emit_inst(section& s, bool emit, const pinst& di, const statement& st) {
        if (emit) {
            const tbl::inst_desc* d = desc_of(di.code);
            if (d == nullptr) fail(st, "internal: bad opcode");
            if (!tbl::imm_fits(*d, di.imm)) fail(st, "immediate out of range");
        }
        append_word(s, emit, emit ? encode(di) : 0u);
    }

    /// PPC branch displacements are relative to the branch itself.
    std::int32_t branch_disp(const statement& st, std::string_view target,
                             std::uint32_t inst_addr, bool emit) const {
        const std::int64_t abs_target = value_of(st, target, emit);
        return static_cast<std::int32_t>(abs_target -
                                         static_cast<std::int64_t>(inst_addr));
    }

    /// Accept 0..65535 as well as signed for 16-bit sext fields (lis/li
    /// build upper halves from unsigned halfword values).
    static std::int32_t wrap16(const statement& st, std::int64_t v) {
        if (v < -32768 || v > 65535) fail(st, "16-bit immediate out of range");
        return static_cast<std::int32_t>(v >= 32768 ? v - 65536 : v);
    }

    void emit_bc(section& s, bool emit, const statement& st, unsigned bo, unsigned bi,
                 std::string_view target) {
        pinst di;
        di.code = pop::bc;
        di.rd = static_cast<std::uint8_t>(bo);
        di.ra = static_cast<std::uint8_t>(bi);
        di.imm = branch_disp(st, target, cursor(s), emit);
        emit_inst(s, emit, di, st);
    }

    bool pseudo(const statement& st, section& s, bool emit) {
        if (st.mnem == "nop") {  // canonical PPC nop: ori r0, r0, 0
            pinst di;
            di.code = pop::ori;
            emit_inst(s, emit, di, st);
            return true;
        }
        if (st.mnem == "mr") {  // mr rD, rS == or rD, rS, rS
            require_args(st, 2);
            pinst di;
            di.code = pop::or_x;
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0]));
            di.ra = di.rb = static_cast<std::uint8_t>(reg_of(st, st.args[1]));
            emit_inst(s, emit, di, st);
            return true;
        }
        if (st.mnem == "lis") {  // lis rD, v == addis rD, r0, v
            require_args(st, 2);
            pinst di;
            di.code = pop::addis;
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0]));
            di.imm = wrap16(st, value_of(st, st.args[1], emit));
            emit_inst(s, emit, di, st);
            return true;
        }
        if (st.mnem == "li") {  // 1 or 2 instructions for any 32-bit value
            require_args(st, 2);
            const unsigned rd = reg_of(st, st.args[0]);
            std::int64_t v64;
            if (!parse_int(st.args[1], v64)) fail(st, "li needs a numeric constant");
            const auto value = static_cast<std::uint32_t>(v64);
            const auto sv = static_cast<std::int32_t>(value);
            if (sv >= -32768 && sv <= 32767) {
                pinst di;
                di.code = pop::addi;
                di.rd = static_cast<std::uint8_t>(rd);
                di.imm = sv;
                emit_inst(s, emit, di, st);
            } else {
                pinst hi;
                hi.code = pop::addis;
                hi.rd = static_cast<std::uint8_t>(rd);
                hi.imm = wrap16(st, value >> 16);
                emit_inst(s, emit, hi, st);
                if ((value & 0xFFFFu) != 0) {
                    pinst lo;
                    lo.code = pop::ori;
                    lo.rd = static_cast<std::uint8_t>(rd);
                    lo.ra = static_cast<std::uint8_t>(rd);
                    lo.imm = static_cast<std::int32_t>(value & 0xFFFFu);
                    emit_inst(s, emit, lo, st);
                }
            }
            return true;
        }
        if (st.mnem == "blr" || st.mnem == "bctr") {  // BO=20: branch always
            pinst di;
            di.code = st.mnem == "blr" ? pop::bclr : pop::bcctr;
            di.rd = 20;
            emit_inst(s, emit, di, st);
            return true;
        }
        if (st.mnem == "bdnz") {  // BO=16: decrement CTR, branch if nonzero
            require_args(st, 1);
            emit_bc(s, emit, st, 16, 0, st.args[0]);
            return true;
        }
        // Conditional branches on cr0: BO 12 = true, 4 = false;
        // BI 0 = lt, 1 = gt, 2 = eq.
        struct cond {
            const char* name;
            unsigned bo, bi;
        };
        static constexpr cond conds[] = {
            {"beq", 12, 2}, {"bne", 4, 2}, {"blt", 12, 0},
            {"bge", 4, 0},  {"bgt", 12, 1}, {"ble", 4, 1},
        };
        for (const cond& c : conds) {
            if (st.mnem == c.name) {
                require_args(st, 1);
                emit_bc(s, emit, st, c.bo, c.bi, st.args[0]);
                return true;
            }
        }
        return false;
    }

    void instruction(const statement& st, section& s, bool emit) {
        if (pseudo(st, s, emit)) return;

        const auto& table = mnemonic_table();
        const auto it = table.find(st.mnem);
        if (it == table.end()) fail(st, "unknown mnemonic '" + st.mnem + "'");

        pinst di;
        di.code = it->second;
        const tbl::inst_desc& d = *desc_of(di.code);

        if (di.code == pop::rlwinm) {  // rlwinm rA, rS, SH, MB, ME
            require_args(st, 5);
            di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0]));
            di.ra = static_cast<std::uint8_t>(reg_of(st, st.args[1]));
            const unsigned sh = uint_of(st, st.args[2], 31, emit);
            const unsigned mb = uint_of(st, st.args[3], 31, emit);
            const unsigned me = uint_of(st, st.args[4], 31, emit);
            di.imm = static_cast<std::int32_t>((sh << 10) | (mb << 5) | me);
            emit_inst(s, emit, di, st);
            return;
        }

        switch (static_cast<tbl::cls>(d.cls)) {
            case tbl::c_load: {  // rD, d(rA)
                require_args(st, 2);
                di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[0]));
                std::int64_t disp;
                unsigned base;
                mem_operand(st, st.args[1], disp, base, emit);
                di.ra = static_cast<std::uint8_t>(base);
                di.imm = static_cast<std::int32_t>(disp);
                emit_inst(s, emit, di, st);
                return;
            }
            case tbl::c_store: {  // rS, d(rA)
                require_args(st, 2);
                di.rb = static_cast<std::uint8_t>(reg_of(st, st.args[0]));
                std::int64_t disp;
                unsigned base;
                mem_operand(st, st.args[1], disp, base, emit);
                di.ra = static_cast<std::uint8_t>(base);
                di.imm = static_cast<std::int32_t>(disp);
                emit_inst(s, emit, di, st);
                return;
            }
            case tbl::c_branch:  // bc BO, BI, target / bclr BO, BI / bcctr BO, BI
                if (d.imm.present) {
                    require_args(st, 3);
                    emit_bc(s, emit, st, uint_of(st, st.args[0], 31, emit),
                            uint_of(st, st.args[1], 31, emit), st.args[2]);
                } else {
                    require_args(st, 2);
                    di.rd = uint_of(st, st.args[0], 31, emit);
                    di.ra = uint_of(st, st.args[1], 31, emit);
                    emit_inst(s, emit, di, st);
                }
                return;
            case tbl::c_jump:  // b / bl target
                require_args(st, 1);
                di.imm = branch_disp(st, st.args[0], cursor(s), emit);
                emit_inst(s, emit, di, st);
                return;
            case tbl::c_sys:  // sc
                require_args(st, 0);
                emit_inst(s, emit, di, st);
                return;
            default:
                break;
        }

        // Everything else: register operands in slot order d, a, b, then
        // the immediate.  With PPC's destination-first syntax this yields
        // `addi rD, rA, simm`, `and rA, rS, rB`, `cmpw rA, rB`,
        // `srawi rA, rS, sh`, `mflr rD`, ...
        const slot_set slots = slots_of(d);
        const std::size_t nargs = static_cast<std::size_t>(slots.d) + slots.a +
                                  slots.b + (d.imm.present ? 1 : 0);
        require_args(st, nargs);
        std::size_t arg = 0;
        if (slots.d) di.rd = static_cast<std::uint8_t>(reg_of(st, st.args[arg++]));
        if (slots.a) di.ra = static_cast<std::uint8_t>(reg_of(st, st.args[arg++]));
        if (slots.b) di.rb = static_cast<std::uint8_t>(reg_of(st, st.args[arg++]));
        if (d.imm.present) {
            std::int64_t v = value_of(st, st.args[arg], emit);
            // Sign-extended 16-bit fields also accept unsigned halfwords
            // (addis pairs with ori to build 32-bit constants).
            if (d.imm.sign && d.imm.width == 16 && v >= 32768 && v <= 65535) {
                v -= 65536;
            }
            di.imm = static_cast<std::int32_t>(v);
        }
        emit_inst(s, emit, di, st);
    }
};

}  // namespace

isa::program_image assemble(std::string_view source, std::uint32_t text_base,
                            std::uint32_t data_base) {
    return assembler(source, text_base, data_base).run();
}

}  // namespace osm::ppc32
