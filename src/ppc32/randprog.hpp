// Random PPC32 program generator for differential tests.
//
// Same contract as workloads::make_random_program for VR32: generated
// programs are guaranteed to terminate (counted CTR loops, bounded
// forward branches, stores sandboxed to a private data region) and end by
// printing a checksum of the whole register file through `sc`, so any two
// correct PPC32 engines must produce identical final architectural state
// and console output.
#pragma once

#include <cstdint>

#include "isa/program.hpp"

namespace osm::ppc32 {

struct randprog_options {
    std::uint64_t seed = 1;
    unsigned blocks = 10;        ///< straight-line / loop blocks
    unsigned block_len = 8;      ///< instructions per block body
    bool with_mul_div = true;
    bool with_memory = true;
    bool with_loops = true;      ///< counted CTR loops (mtctr/bdnz)
    bool with_branches = true;   ///< cr0 compares + short forward branches
    unsigned loop_count = 3;     ///< trip count of counted loops

    bool operator==(const randprog_options&) const = default;
};

/// Generate a terminating random PPC32 program.
isa::program_image make_random_program(const randprog_options& opt);

/// The program text the image was assembled from (for reproducers).
std::string make_random_source(const randprog_options& opt);

}  // namespace osm::ppc32
