#include "ppc32/disasm.hpp"

#include <cstdio>

#include "isa/table_isa.hpp"
#include "ppc32/arch.hpp"

namespace osm::ppc32 {

namespace tbl = isa::tbl;

std::string disassemble(const pinst& di, std::uint32_t pc) {
    char buf[96];
    if (di.code == pop::invalid) {
        std::snprintf(buf, sizeof buf, ".word 0x%08X", di.raw);
        return buf;
    }
    const tbl::inst_desc& d = *desc_of(di.code);
    const std::string name(d.mnemonic);

    if (di.code == pop::rlwinm) {
        const auto uimm = static_cast<std::uint32_t>(di.imm);
        std::snprintf(buf, sizeof buf, "rlwinm r%u, r%u, %u, %u, %u", di.rd, di.ra,
                      (uimm >> 10) & 31u, (uimm >> 5) & 31u, uimm & 31u);
        return buf;
    }

    switch (static_cast<tbl::cls>(d.cls)) {
        case tbl::c_load:
            std::snprintf(buf, sizeof buf, "%s r%u, %d(r%u)", name.c_str(), di.rd,
                          di.imm, di.ra);
            return buf;
        case tbl::c_store:
            std::snprintf(buf, sizeof buf, "%s r%u, %d(r%u)", name.c_str(), di.rb,
                          di.imm, di.ra);
            return buf;
        case tbl::c_branch:
            // BO/BI occupy the d/a slots; targets print absolute (PPC
            // displacements anchor at the branch itself, not pc+4).
            if (d.imm.present) {
                std::snprintf(buf, sizeof buf, "%s %u, %u, 0x%X  ; disp %d",
                              name.c_str(), di.rd, di.ra,
                              pc + static_cast<std::uint32_t>(di.imm), di.imm);
            } else {
                std::snprintf(buf, sizeof buf, "%s %u, %u", name.c_str(), di.rd, di.ra);
            }
            return buf;
        case tbl::c_jump:
            std::snprintf(buf, sizeof buf, "%s 0x%X  ; disp %d", name.c_str(),
                          pc + static_cast<std::uint32_t>(di.imm), di.imm);
            return buf;
        case tbl::c_sys:
            return name;
        default:
            break;
    }

    // Generic: registers in slot order d, a, b, then the immediate —
    // matching the assembler's operand order exactly.
    bool has_d = false, has_a = false, has_b = false;
    for (unsigned i = 0; i < d.nfields; ++i) {
        if (d.fields[i].enc_only) continue;
        switch (d.fields[i].letter) {
            case 'd': has_d = true; break;
            case 'a': has_a = true; break;
            case 'b': has_b = true; break;
            default: break;
        }
    }
    std::string out = name;
    const char* sep = " ";
    const auto put_reg = [&](unsigned r) {
        out += sep;
        out += reg_name(r);
        sep = ", ";
    };
    if (has_d) put_reg(di.rd);
    if (has_a) put_reg(di.ra);
    if (has_b) put_reg(di.rb);
    if (d.imm.present) {
        std::snprintf(buf, sizeof buf, "%s%d", sep, di.imm);
        out += buf;
    }
    return out;
}

}  // namespace osm::ppc32
