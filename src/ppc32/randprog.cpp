#include "ppc32/randprog.hpp"

#include <cstdarg>
#include <cstdio>
#include <string>

#include "ppc32/assembler.hpp"

namespace osm::ppc32 {

namespace {

/// splitmix64: tiny, deterministic, seed-friendly.
class rng64 {
public:
    explicit rng64(std::uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ull) {}

    std::uint64_t next() {
        std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
        z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
        z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
        return z ^ (z >> 31);
    }

    std::uint32_t below(std::uint32_t n) {
        return static_cast<std::uint32_t>(next() % n);
    }

private:
    std::uint64_t state_;
};

constexpr unsigned k_base_reg = 31;  // data sandbox pointer, never clobbered
constexpr std::uint32_t k_data_base = 0x00100000;
constexpr std::uint32_t k_data_size = 256;

class generator {
public:
    explicit generator(const randprog_options& opt) : opt_(opt), rng_(opt.seed) {}

    std::string run() {
        line("# random PPC32 program, seed %llu",
             static_cast<unsigned long long>(opt_.seed));
        line(".data 0x%X", k_data_base);
        line(".space %u", k_data_size);
        line(".text 0x1000");
        line("_start:");
        // Sandbox pointer plus a randomly seeded working set.
        line("lis r%u, 0x%X", k_base_reg, k_data_base >> 16);
        for (unsigned r = 2; r <= 30; ++r) {
            line("li r%u, 0x%X", r, static_cast<std::uint32_t>(rng_.next()));
        }

        for (unsigned b = 0; b < opt_.blocks; ++b) {
            if (opt_.with_loops && rng_.below(4) == 0) {
                loop_block();
            } else {
                straight_block(opt_.block_len);
            }
        }

        checksum_and_exit();
        return std::move(out_);
    }

private:
    randprog_options opt_;
    rng64 rng_;
    std::string out_;
    unsigned label_ = 0;

    void line(const char* fmt, ...) __attribute__((format(printf, 2, 3))) {
        char buf[128];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof buf, fmt, ap);
        va_end(ap);
        out_ += buf;
        out_ += '\n';
    }

    unsigned reg() { return 2 + rng_.below(29); }  // r2..r30

    std::int32_t simm16() {
        return static_cast<std::int32_t>(static_cast<std::int16_t>(rng_.next()));
    }

    void rand_inst() {
        // Weighted pick across the integer subset; memory and mul/div
        // arms fall through to ALU when disabled.
        const unsigned pick = rng_.below(16);
        const unsigned d = reg(), a = reg(), b = reg();
        switch (pick) {
            case 0: line("addi r%u, r%u, %d", d, a, simm16()); return;
            case 1: line("addis r%u, r%u, %d", d, a, simm16()); return;
            case 2: line("ori r%u, r%u, 0x%X", d, a, rng_.below(0x10000)); return;
            case 3: line("xori r%u, r%u, 0x%X", d, a, rng_.below(0x10000)); return;
            case 4: {
                static const char* ops3[] = {"add",  "subf", "and", "or",
                                             "xor",  "nand", "nor", "slw",
                                             "srw",  "sraw"};
                line("%s r%u, r%u, r%u", ops3[rng_.below(10)], d, a, b);
                return;
            }
            case 5: {
                static const char* ops2[] = {"neg", "cntlzw", "extsb", "extsh"};
                line("%s r%u, r%u", ops2[rng_.below(4)], d, a);
                return;
            }
            case 6: line("srawi r%u, r%u, %u", d, a, rng_.below(32)); return;
            case 7: {
                const unsigned sh = rng_.below(32), mb = rng_.below(32),
                               me = rng_.below(32);
                line("rlwinm r%u, r%u, %u, %u, %u", d, a, sh, mb, me);
                return;
            }
            case 8: line("addic r%u, r%u, %d", d, a, simm16()); return;
            case 9: line("subfic r%u, r%u, %d", d, a, simm16()); return;
            case 10:
                if (opt_.with_mul_div) {
                    static const char* md[] = {"mullw", "mulhw", "mulhwu",
                                               "divw", "divwu"};
                    line("%s r%u, r%u, r%u", md[rng_.below(5)], d, a, b);
                    return;
                }
                break;
            case 11:
                if (opt_.with_mul_div) {
                    line("mulli r%u, r%u, %d", d, a, simm16());
                    return;
                }
                break;
            case 12:
            case 13:
                if (opt_.with_memory) {
                    // Sandboxed: (r31) + aligned offset inside the region.
                    static const struct {
                        const char* st;
                        const char* ld;
                        unsigned align;
                    } mem[] = {{"stw", "lwz", 4}, {"sth", "lhz", 2}, {"stb", "lbz", 1}};
                    const auto& mop = mem[rng_.below(3)];
                    const unsigned off =
                        rng_.below(k_data_size / mop.align) * mop.align;
                    if (pick == 12) {
                        line("%s r%u, %u(r%u)", mop.st, a, off, k_base_reg);
                    } else {
                        line("%s r%u, %u(r%u)", mop.ld, d, off, k_base_reg);
                    }
                    return;
                }
                break;
            case 14:
                if (opt_.with_memory) {
                    line("lha r%u, %u(r%u)", d, rng_.below(k_data_size / 2) * 2,
                         k_base_reg);
                    return;
                }
                break;
            default:
                break;
        }
        line("add r%u, r%u, r%u", d, a, b);
    }

    void straight_block(unsigned len) {
        for (unsigned i = 0; i < len; ++i) {
            if (opt_.with_branches && rng_.below(6) == 0) {
                forward_branch();
            } else {
                rand_inst();
            }
        }
    }

    /// cmp + conditional forward skip over a couple of instructions —
    /// forward-only, so it cannot affect termination.
    void forward_branch() {
        const unsigned l = label_++;
        static const char* bcond[] = {"beq", "bne", "blt", "bge", "bgt", "ble"};
        if (rng_.below(2) == 0) {
            line("cmpwi r%u, %d", reg(), simm16());
        } else {
            line("cmpw r%u, r%u", reg(), reg());
        }
        line("%s L%u", bcond[rng_.below(6)], l);
        const unsigned skip = 1 + rng_.below(3);
        for (unsigned i = 0; i < skip; ++i) rand_inst();
        line("L%u:", l);
    }

    /// Counted CTR loop: trip count is fixed, body is branch-free.
    void loop_block() {
        const unsigned l = label_++;
        const unsigned cnt = reg();
        line("li r%u, %u", cnt, 1 + rng_.below(opt_.loop_count));
        line("mtctr r%u", cnt);
        line("L%u:", l);
        for (unsigned i = 0; i < opt_.block_len; ++i) rand_inst();
        line("bdnz L%u", l);
    }

    void checksum_and_exit() {
        // Fold every register (including LR/CTR via mflr/mfctr) into r3,
        // print it, and exit.
        line("# checksum");
        line("mflr r3");
        line("mfctr r4");
        line("add r3, r3, r4");
        for (unsigned r = 0; r <= 31; ++r) {
            if (r == 3) continue;
            line("add r3, r3, r%u", r);
        }
        line("li r0, 2");  // putuint(r3)
        line("sc");
        line("li r0, 3");  // newline
        line("sc");
        line("li r0, 0");  // exit
        line("sc");
    }
};

}  // namespace

std::string make_random_source(const randprog_options& opt) {
    return generator(opt).run();
}

isa::program_image make_random_program(const randprog_options& opt) {
    return assemble(make_random_source(opt));
}

}  // namespace osm::ppc32
