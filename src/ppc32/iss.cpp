#include "ppc32/iss.hpp"

namespace osm::ppc32 {

void ppc_iss::load(const isa::program_image& img) {
    img.load_into(mem_);
    state_ = ppc_state{};
    state_.pc = img.entry;
    console_.clear();
    instret_ = 0;
}

std::uint64_t ppc_iss::run(std::uint64_t max_steps) {
    std::uint64_t done = 0;
    while (!state_.halted && done < max_steps) {
        step(state_, mem_, console_);
        ++done;
    }
    instret_ += done;
    return done;
}

stats::report ppc_iss::make_report() const {
    stats::report rep;
    rep.put("ppc32", "retired", instret_);
    return rep;
}

void ppc_750::load(const isa::program_image& img) {
    img.load_into(mem_);
    state_ = ppc_state{};
    state_.pc = img.entry;
    console_.clear();
    instret_ = 0;
    cycle_ = 0;
    cursor_ = 0;
    dual_issues_ = 0;
    issued_this_cycle_ = 0;
    for (auto& r : gpr_ready_) r = 0;
    lr_ready_ = ctr_ready_ = cr_ready_ = 0;
}

std::uint64_t ppc_750::run(std::uint64_t max_cycles) {
    const std::uint64_t start = cycle_;
    while (!state_.halted && cycle_ - start < max_cycles) {
        // Peek-decode for the scoreboard; step() re-decodes and executes.
        const pinst di = decode(read32be(mem_, state_.pc));
        const isa::tbl::inst_desc* d = desc_of(di.code);

        // Earliest issue: all operands ready.
        std::uint64_t t = cursor_;
        const auto need = [&t](std::uint64_t ready) { if (ready > t) t = ready; };
        if (d != nullptr) {
            // (RA|0) forms read the literal zero, not r0.
            const bool ra_literal0 =
                di.ra == 0 &&
                (di.code == pop::addi || di.code == pop::addis ||
                 d->cls == isa::tbl::c_load || d->cls == isa::tbl::c_store);
            if (d->rs1_kind != isa::tbl::k_none && !ra_literal0) need(gpr_ready_[di.ra]);
            if (d->rs2_kind != isa::tbl::k_none) need(gpr_ready_[di.rb]);
        }
        switch (di.code) {
            case pop::mtlr:
            case pop::mtctr: need(gpr_ready_[di.rd]); break;
            case pop::mflr: need(lr_ready_); break;
            case pop::mfctr: need(ctr_ready_); break;
            case pop::bc:
            case pop::bclr:
            case pop::bcctr:
                if ((di.rd & 16u) == 0) need(cr_ready_);   // BO tests a CR bit
                if ((di.rd & 4u) == 0) need(ctr_ready_);   // BO decrements CTR
                if (di.code == pop::bclr) need(lr_ready_);
                if (di.code == pop::bcctr) need(ctr_ready_);
                break;
            default: break;
        }

        // Dual issue: at most two instructions share an issue cycle.
        if (t == cursor_ && issued_this_cycle_ >= 2) ++t;
        if (t != cursor_) {
            cursor_ = t;
            issued_this_cycle_ = 0;
        }
        ++issued_this_cycle_;
        if (issued_this_cycle_ == 2) ++dual_issues_;

        const step_info info = step(state_, mem_, console_);
        ++instret_;

        // Writeback readiness (lat = extra execute cycles from the tables).
        const std::uint64_t done_at = t + 1 + (d != nullptr ? d->lat : 0);
        if (d != nullptr && d->rd_kind != isa::tbl::k_none) gpr_ready_[di.rd] = done_at;
        switch (di.code) {
            case pop::cmpwi:
            case pop::cmplwi:
            case pop::cmpw:
            case pop::cmplw:
            case pop::andi_rc:
            case pop::andis_rc: cr_ready_ = done_at; break;
            case pop::mtlr: lr_ready_ = done_at; break;
            case pop::mtctr: ctr_ready_ = done_at; break;
            case pop::bl: lr_ready_ = done_at; break;
            case pop::bc:
            case pop::bclr:
            case pop::bcctr:
                if ((di.rd & 4u) == 0) ctr_ready_ = done_at;
                break;
            default: break;
        }

        if (info.branch_taken) {
            // Redirect bubble: the front end restarts at the target.
            cursor_ = t + 2;
            issued_this_cycle_ = 0;
        }
        if (t + 1 > cycle_) cycle_ = t + 1;
    }
    return cycle_ - start;
}

stats::report ppc_750::make_report() const {
    stats::report rep;
    rep.put("ppc32", "retired", instret_);
    rep.put("ppc32", "cycles", cycle_);
    rep.put("ppc32", "dual_issues", dual_issues_);
    return rep;
}

}  // namespace osm::ppc32
