// PPC32 functional ISS and ppc32-750 timing model.
//
// Both drive the shared ppc32::step() semantics, so they retire one
// identical architectural trajectory; the timing model adds a dual-issue
// cycle account in the style of the VR32 p750 engine (issue-width 2,
// scoreboarded operand latencies from the generated tables, taken-branch
// redirect bubble).
#pragma once

#include <cstdint>
#include <string>

#include "isa/program.hpp"
#include "mem/memory_if.hpp"
#include "ppc32/arch.hpp"
#include "ppc32/exec.hpp"
#include "stats/stats.hpp"

namespace osm::ppc32 {

/// Functional golden model ("cycles" = retired instructions).
class ppc_iss {
public:
    explicit ppc_iss(mem::memory_if& m) : mem_(m) {}

    void load(const isa::program_image& img);
    /// Run until halt or `max_steps`; returns instructions executed now.
    std::uint64_t run(std::uint64_t max_steps = ~0ull);

    ppc_state& state() noexcept { return state_; }
    const ppc_state& state() const noexcept { return state_; }
    const std::string& console() const noexcept { return console_; }
    std::uint64_t instret() const noexcept { return instret_; }

    stats::report make_report() const;

private:
    mem::memory_if& mem_;
    ppc_state state_;
    std::string console_;
    std::uint64_t instret_ = 0;
};

/// Dual-issue in-order cycle model over the same semantics.
class ppc_750 {
public:
    explicit ppc_750(mem::memory_if& m) : mem_(m) {}

    void load(const isa::program_image& img);
    /// Run until halt or the cycle budget; returns cycles consumed now.
    std::uint64_t run(std::uint64_t max_cycles);

    ppc_state& state() noexcept { return state_; }
    const ppc_state& state() const noexcept { return state_; }
    const std::string& console() const noexcept { return console_; }
    std::uint64_t instret() const noexcept { return instret_; }
    std::uint64_t cycles() const noexcept { return cycle_; }
    std::uint64_t dual_issues() const noexcept { return dual_issues_; }

    stats::report make_report() const;

private:
    mem::memory_if& mem_;
    ppc_state state_;
    std::string console_;
    std::uint64_t instret_ = 0;
    std::uint64_t cycle_ = 0;   // elapsed cycles (last issue cycle + 1)
    std::uint64_t cursor_ = 0;  // issue cycle of the next instruction
    std::uint64_t dual_issues_ = 0;
    std::uint64_t issued_this_cycle_ = 0;
    // Scoreboard: first cycle each resource's new value is available.
    std::uint64_t gpr_ready_[num_gprs] = {};
    std::uint64_t lr_ready_ = 0, ctr_ready_ = 0, cr_ready_ = 0;
};

}  // namespace osm::ppc32
