#include "ppc32/exec.hpp"

#include <bit>

namespace osm::ppc32 {

std::uint32_t read32be(mem::memory_if& m, std::uint32_t addr) {
    return (static_cast<std::uint32_t>(m.read8(addr)) << 24) |
           (static_cast<std::uint32_t>(m.read8(addr + 1)) << 16) |
           (static_cast<std::uint32_t>(m.read8(addr + 2)) << 8) |
           static_cast<std::uint32_t>(m.read8(addr + 3));
}

std::uint16_t read16be(mem::memory_if& m, std::uint32_t addr) {
    return static_cast<std::uint16_t>((m.read8(addr) << 8) | m.read8(addr + 1));
}

void write32be(mem::memory_if& m, std::uint32_t addr, std::uint32_t v) {
    m.write8(addr, static_cast<std::uint8_t>(v >> 24));
    m.write8(addr + 1, static_cast<std::uint8_t>(v >> 16));
    m.write8(addr + 2, static_cast<std::uint8_t>(v >> 8));
    m.write8(addr + 3, static_cast<std::uint8_t>(v));
}

void write16be(mem::memory_if& m, std::uint32_t addr, std::uint16_t v) {
    m.write8(addr, static_cast<std::uint8_t>(v >> 8));
    m.write8(addr + 1, static_cast<std::uint8_t>(v));
}

namespace {

/// PPC MASK(MB,ME): ones from big-endian bit MB through ME, wrapping when
/// MB > ME.
std::uint32_t rlw_mask(unsigned mb, unsigned me) {
    const std::uint32_t from_mb = ~0u >> mb;          // BE bits mb..31
    const std::uint32_t to_me = ~0u << (31u - me);    // BE bits 0..me
    return mb <= me ? (from_mb & to_me) : (from_mb | to_me);
}

/// Generic bc/bclr/bcctr condition: decrements CTR when BO[2]=0, then
/// requires ctr_ok && cond_ok (PowerPC BO semantics, bits valued 16..1).
bool bc_taken(ppc_state& st, unsigned bo, unsigned bi) {
    if ((bo & 4u) == 0) st.ctr -= 1;
    const bool ctr_ok = (bo & 4u) != 0 || ((st.ctr != 0) != ((bo & 2u) != 0));
    const bool cond_ok = (bo & 16u) != 0 || (st.cr_test(bi) == ((bo & 8u) != 0));
    return ctr_ok && cond_ok;
}

void do_syscall(ppc_state& st, std::string& console) {
    switch (st.r[0]) {
        case sys_exit: st.halted = true; break;
        case sys_putchar: console.push_back(static_cast<char>(st.r[3] & 0xFFu)); break;
        case sys_putuint: console += std::to_string(st.r[3]); break;
        case sys_putnl: console.push_back('\n'); break;
        default: break;  // unknown syscalls are ignored, as in the VR32 host
    }
}

}  // namespace

step_info step(ppc_state& st, mem::memory_if& m, std::string& console) {
    step_info info;
    if (st.halted) return info;
    const std::uint32_t word = read32be(m, st.pc);
    pinst di = decode(word);
    info.di = di;
    if (di.code == pop::invalid) {
        st.halted = true;  // undefined-instruction trap
        return info;
    }

    std::uint32_t next = st.pc + 4;
    auto& r = st.r;
    const std::uint32_t a = r[di.ra];
    const std::uint32_t b = r[di.rb];
    const std::int32_t simm = di.imm;
    const std::uint32_t uimm = static_cast<std::uint32_t>(di.imm);
    // D-form addi/addis and load/store addressing read (RA|0): RA=0 means
    // the literal zero, not r0.
    const std::uint32_t a_or0 = di.ra == 0 ? 0u : a;

    switch (di.code) {
        case pop::addi: r[di.rd] = a_or0 + static_cast<std::uint32_t>(simm); break;
        case pop::addis: r[di.rd] = a_or0 + (static_cast<std::uint32_t>(simm) << 16); break;
        case pop::addic: {
            const std::uint64_t sum =
                static_cast<std::uint64_t>(a) + static_cast<std::uint32_t>(simm);
            r[di.rd] = static_cast<std::uint32_t>(sum);
            st.ca = (sum >> 32) != 0;
            break;
        }
        case pop::subfic: {
            const std::uint64_t sum = static_cast<std::uint64_t>(~a) +
                                      static_cast<std::uint32_t>(simm) + 1u;
            r[di.rd] = static_cast<std::uint32_t>(sum);
            st.ca = (sum >> 32) != 0;
            break;
        }
        case pop::mulli:
            r[di.rd] = a * static_cast<std::uint32_t>(simm);
            break;

        case pop::ori: r[di.rd] = a | uimm; break;
        case pop::oris: r[di.rd] = a | (uimm << 16); break;
        case pop::xori: r[di.rd] = a ^ uimm; break;
        case pop::xoris: r[di.rd] = a ^ (uimm << 16); break;
        case pop::andi_rc:
            r[di.rd] = a & uimm;
            st.set_cr0_signed(static_cast<std::int32_t>(r[di.rd]), 0);
            break;
        case pop::andis_rc:
            r[di.rd] = a & (uimm << 16);
            st.set_cr0_signed(static_cast<std::int32_t>(r[di.rd]), 0);
            break;

        case pop::cmpwi: st.set_cr0_signed(static_cast<std::int32_t>(a), simm); break;
        case pop::cmplwi: st.set_cr0_unsigned(a, uimm); break;
        case pop::cmpw:
            st.set_cr0_signed(static_cast<std::int32_t>(a), static_cast<std::int32_t>(b));
            break;
        case pop::cmplw: st.set_cr0_unsigned(a, b); break;

        case pop::lwz: r[di.rd] = read32be(m, a_or0 + static_cast<std::uint32_t>(simm)); break;
        case pop::lbz: r[di.rd] = m.read8(a_or0 + static_cast<std::uint32_t>(simm)); break;
        case pop::lhz: r[di.rd] = read16be(m, a_or0 + static_cast<std::uint32_t>(simm)); break;
        case pop::lha:
            r[di.rd] = static_cast<std::uint32_t>(static_cast<std::int32_t>(
                static_cast<std::int16_t>(read16be(m, a_or0 + static_cast<std::uint32_t>(simm)))));
            break;
        case pop::stw: write32be(m, a_or0 + static_cast<std::uint32_t>(simm), r[di.rb]); break;
        case pop::stb:
            m.write8(a_or0 + static_cast<std::uint32_t>(simm),
                     static_cast<std::uint8_t>(r[di.rb]));
            break;
        case pop::sth:
            write16be(m, a_or0 + static_cast<std::uint32_t>(simm),
                      static_cast<std::uint16_t>(r[di.rb]));
            break;

        case pop::bc:
            if (bc_taken(st, di.rd, di.ra)) {
                next = st.pc + static_cast<std::uint32_t>(simm);
                info.branch_taken = true;
            }
            break;
        case pop::b:
            next = st.pc + static_cast<std::uint32_t>(simm);
            info.branch_taken = true;
            break;
        case pop::bl:
            st.lr = st.pc + 4;
            next = st.pc + static_cast<std::uint32_t>(simm);
            info.branch_taken = true;
            break;
        case pop::bclr: {
            const std::uint32_t target = st.lr & ~3u;  // read before any CTR update
            if (bc_taken(st, di.rd, di.ra)) {
                next = target;
                info.branch_taken = true;
            }
            break;
        }
        case pop::bcctr:
            // BO[2]=0 (decrement) is architecturally invalid for bcctr; the
            // generic rule still applies here so behaviour is deterministic.
            if (bc_taken(st, di.rd, di.ra)) {
                next = st.ctr & ~3u;
                info.branch_taken = true;
            }
            break;

        case pop::sc: do_syscall(st, console); break;

        case pop::rlwinm: {
            const unsigned sh = (uimm >> 10) & 31u;
            const unsigned mb = (uimm >> 5) & 31u;
            const unsigned me = uimm & 31u;
            r[di.rd] = std::rotl(a, static_cast<int>(sh)) & rlw_mask(mb, me);
            break;
        }

        case pop::add: r[di.rd] = a + b; break;
        case pop::subf: r[di.rd] = b - a; break;
        case pop::neg: r[di.rd] = 0u - a; break;
        case pop::mullw: r[di.rd] = a * b; break;
        case pop::mulhw:
            r[di.rd] = static_cast<std::uint32_t>(
                (static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                 static_cast<std::int32_t>(b)) >> 32);
            break;
        case pop::mulhwu:
            r[di.rd] = static_cast<std::uint32_t>(
                (static_cast<std::uint64_t>(a) * b) >> 32);
            break;
        case pop::divw:
            // Division by zero and INT_MIN/-1 are boundedly-undefined in
            // the architecture; this model defines both as 0.
            if (b == 0 || (a == 0x80000000u && b == 0xFFFFFFFFu)) r[di.rd] = 0;
            else r[di.rd] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(a) / static_cast<std::int32_t>(b));
            break;
        case pop::divwu: r[di.rd] = b == 0 ? 0u : a / b; break;
        case pop::and_x: r[di.rd] = a & b; break;
        case pop::or_x: r[di.rd] = a | b; break;
        case pop::xor_x: r[di.rd] = a ^ b; break;
        case pop::nand: r[di.rd] = ~(a & b); break;
        case pop::nor: r[di.rd] = ~(a | b); break;
        case pop::slw: {
            const unsigned n = b & 0x3Fu;
            r[di.rd] = n > 31 ? 0u : a << n;
            break;
        }
        case pop::srw: {
            const unsigned n = b & 0x3Fu;
            r[di.rd] = n > 31 ? 0u : a >> n;
            break;
        }
        case pop::sraw: {
            const unsigned n = b & 0x3Fu;
            const std::int32_t s = static_cast<std::int32_t>(a);
            if (n > 31) {
                r[di.rd] = s < 0 ? 0xFFFFFFFFu : 0u;
                st.ca = s < 0;
            } else {
                r[di.rd] = static_cast<std::uint32_t>(s >> n);
                st.ca = s < 0 && n > 0 && (a & ((1u << n) - 1u)) != 0;
            }
            break;
        }
        case pop::srawi: {
            const unsigned n = uimm & 31u;
            const std::int32_t s = static_cast<std::int32_t>(a);
            r[di.rd] = static_cast<std::uint32_t>(s >> n);
            st.ca = s < 0 && n > 0 && (a & ((1u << n) - 1u)) != 0;
            break;
        }
        case pop::cntlzw: r[di.rd] = static_cast<std::uint32_t>(std::countl_zero(a)); break;
        case pop::extsb:
            r[di.rd] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int8_t>(a)));
            break;
        case pop::extsh:
            r[di.rd] = static_cast<std::uint32_t>(
                static_cast<std::int32_t>(static_cast<std::int16_t>(a)));
            break;

        case pop::mflr: r[di.rd] = st.lr; break;
        case pop::mfctr: r[di.rd] = st.ctr; break;
        case pop::mtlr: st.lr = r[di.rd]; break;
        case pop::mtctr: st.ctr = r[di.rd]; break;

        case pop::invalid:
        case pop::count_:
            break;
    }

    st.pc = next;  // an sc-exit advances past the sc, like the VR32 host
    return info;
}

}  // namespace osm::ppc32
