// PPC32 disassembler.
//
// Output uses the same operand orders the assembler accepts, and branch
// targets print as absolute addresses, so disassemble -> assemble is
// word-identical (the round-trip property the fuzz corpus checks).
#pragma once

#include <cstdint>
#include <string>

#include "ppc32/decode.hpp"

namespace osm::ppc32 {

/// Render `di` (fetched from address `pc`, which anchors branch targets).
std::string disassemble(const pinst& di, std::uint32_t pc);

/// Decode and render a raw big-endian instruction word.
inline std::string disassemble_word(std::uint32_t word, std::uint32_t pc) {
    return disassemble(decode(word), pc);
}

}  // namespace osm::ppc32
