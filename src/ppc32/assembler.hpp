// Two-pass text assembler for the PPC32 subset.
//
// Syntax (one statement per line, ';' or '#' starts a comment), using the
// standard PowerPC operand orders:
//
//   label:                      bind a label
//   addi  rD, rA, simm          D-form arithmetic
//   ori   rA, rS, uimm          D-form logical (destination first)
//   lwz   rD, d(rA)             loads
//   stw   rS, d(rA)             stores
//   cmpwi rA, simm / cmpw rA, rB
//   bc    BO, BI, target        conditional branch (target: label/address)
//   b / bl target               unconditional branch / branch-and-link
//   bclr  BO, BI                branch to LR (blr = bclr 20, 0)
//   rlwinm rA, rS, SH, MB, ME
//   mflr/mtlr/mfctr/mtctr rD
//   sc                          syscall: code in r0, argument in r3
//
// Simplified mnemonics: nop, li, lis, mr, blr, bctr, bdnz, beq, bne,
// blt, ble, bgt, bge (conditions test cr0).
//
// Directives: .text [addr], .data [addr], .word v[, ...] (big-endian),
// .byte v[, ...], .space n, .align n.
#pragma once

#include <string_view>

#include "isa/assembler.hpp"  // isa::asm_error
#include "isa/program.hpp"

namespace osm::ppc32 {

/// Assemble PPC32 `source` into a loadable image (instruction words and
/// .word data are stored big-endian).  Throws isa::asm_error on errors.
isa::program_image assemble(std::string_view source,
                            std::uint32_t text_base = 0x1000,
                            std::uint32_t data_base = 0x00100000);

}  // namespace osm::ppc32
