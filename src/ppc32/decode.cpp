#include "ppc32/decode.hpp"

#include "ppc32/arch.hpp"

namespace osm::ppc32 {

namespace {
#include "isa/gen/ppc32_tables.inc"
}  // namespace

const isa::tbl::isa_tables& tables() { return k_ppc32_tables; }

std::string reg_name(unsigned index) { return "r" + std::to_string(index); }

pinst decode(std::uint32_t word) {
    namespace tbl = isa::tbl;
    pinst di;
    di.raw = word;
    const tbl::inst_desc* d = tbl::lookup(k_ppc32_tables, word);
    if (d == nullptr) return di;
    di.code = static_cast<pop>(d->id);
    for (unsigned i = 0; i < d->nfields; ++i) {
        const tbl::field_desc& f = d->fields[i];
        if (f.enc_only) continue;
        const std::uint8_t v = static_cast<std::uint8_t>(tbl::extract_field(f, word));
        switch (f.letter) {
            case 'd': di.rd = v; break;
            case 'a': di.ra = v; break;
            case 'b': di.rb = v; break;
            default: break;
        }
    }
    if (d->imm.present && d->imm.in_decode) di.imm = tbl::extract_imm(d->imm, word);
    return di;
}

std::uint32_t encode(const pinst& di) {
    namespace tbl = isa::tbl;
    const tbl::inst_desc* d = desc_of(di.code);
    if (d == nullptr) return 0;
    std::uint32_t w = d->match;
    for (unsigned i = 0; i < d->nfields; ++i) {
        const tbl::field_desc& f = d->fields[i];
        std::uint32_t v = 0;
        switch (f.letter) {
            case 'd': v = di.rd; break;
            case 'a': v = di.ra; break;
            case 'b': v = di.rb; break;
            default: break;
        }
        w = tbl::insert_field(w, f, v);
    }
    if (d->imm.present) w = tbl::insert_imm(w, d->imm, di.imm);
    return w;
}

const char* op_name(pop code) {
    const isa::tbl::inst_desc* d = desc_of(code);
    return d != nullptr ? d->mnemonic : "invalid";
}

}  // namespace osm::ppc32
