// PPC32 architectural state for the second decode front-end.
//
// A user-mode integer PowerPC machine: 32 GPRs, LR/CTR, the condition
// register (only cr0 is architecturally produced by the supported
// subset), and the XER carry bit consumed by the carrying immediates.
// Instruction words and data are big-endian in memory.
#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace osm::ppc32 {

inline constexpr unsigned num_gprs = 32;

/// cr0 bit positions within the 32-bit CR (PPC numbering: CR bit 0 is the
/// most significant).  BI values 0..3 select lt/gt/eq/so of cr0.
enum cr_bit : unsigned { cr_lt = 0, cr_gt = 1, cr_eq = 2, cr_so = 3 };

struct ppc_state {
    std::uint32_t pc = 0;
    std::array<std::uint32_t, num_gprs> r{};
    std::uint32_t lr = 0;
    std::uint32_t ctr = 0;
    std::uint32_t cr = 0;
    bool ca = false;  ///< XER.CA (set by addic/subfic/sraw/srawi)
    bool halted = false;

    bool cr_test(unsigned bi) const { return ((cr >> (31u - bi)) & 1u) != 0; }

    /// Replace cr0 with a signed/unsigned comparison result (so = 0: the
    /// subset has no XER.SO producers).
    void set_cr0(bool lt, bool gt, bool eq) {
        cr = (cr & 0x0FFFFFFFu) | (lt ? 0x80000000u : 0u) |
             (gt ? 0x40000000u : 0u) | (eq ? 0x20000000u : 0u);
    }
    void set_cr0_signed(std::int32_t a, std::int32_t b) {
        set_cr0(a < b, a > b, a == b);
    }
    void set_cr0_unsigned(std::uint32_t a, std::uint32_t b) {
        set_cr0(a < b, a > b, a == b);
    }
};

/// "r0".."r31".
std::string reg_name(unsigned index);

}  // namespace osm::ppc32
