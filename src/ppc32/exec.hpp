// Shared PPC32 execution semantics.
//
// One instruction-step function used by both the functional ISS and the
// ppc32-750 timing model, so the two engines are architecturally
// identical by construction and their differential runs exercise the
// harness plumbing rather than duplicated semantics.
#pragma once

#include <cstdint>
#include <string>

#include "mem/memory_if.hpp"
#include "ppc32/arch.hpp"
#include "ppc32/decode.hpp"

namespace osm::ppc32 {

/// Syscall convention (via `sc`): code in r0, argument in r3.  The codes
/// mirror isa::syscall_code so console behaviour matches the VR32 host:
/// 0 = exit, 1 = putchar(r3), 2 = putuint(r3), 3 = newline.
inline constexpr std::uint32_t sys_exit = 0;
inline constexpr std::uint32_t sys_putchar = 1;
inline constexpr std::uint32_t sys_putuint = 2;
inline constexpr std::uint32_t sys_putnl = 3;

/// What step() did, for the timing model.
struct step_info {
    pinst di;
    bool branch_taken = false;  ///< a branch/jump redirected the pc
};

/// Fetch (big-endian), decode and execute one instruction at `st.pc`.
/// An invalid opcode halts the machine (undefined-instruction trap).
/// No-op when `st.halted` is already set.
step_info step(ppc_state& st, mem::memory_if& m, std::string& console);

// Big-endian memory accessors (memory_if is byte-addressed; VR32 models
// use its little-endian 16/32-bit entry points, PPC32 composes bytes).
std::uint32_t read32be(mem::memory_if& m, std::uint32_t addr);
std::uint16_t read16be(mem::memory_if& m, std::uint32_t addr);
void write32be(mem::memory_if& m, std::uint32_t addr, std::uint32_t v);
void write16be(mem::memory_if& m, std::uint32_t addr, std::uint16_t v);

}  // namespace osm::ppc32
