#include "sim/diff_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <utility>

#include "isa/arch.hpp"
#include "isa/encoding.hpp"
#include "sim/registry.hpp"

namespace osm::sim {

namespace {

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08X", v);
    return buf;
}

std::string printable(const std::string& s) {
    // Console streams can be long; show enough to localize the mismatch.
    constexpr std::size_t limit = 64;
    std::string out;
    for (char c : s.substr(0, limit)) {
        if (c == '\n') out += "\\n";
        else out += c;
    }
    if (s.size() > limit) out += "...";
    return out;
}

}  // namespace

end_state capture_end_state(const engine& e) {
    end_state s;
    s.halted = e.halted();
    s.cycles = e.cycles();
    s.retired = e.retired();
    for (unsigned r = 0; r < isa::num_gprs; ++r) s.gpr[r] = e.gpr(r);
    for (unsigned r = 0; r < isa::num_fprs; ++r) s.fpr[r] = e.fpr(r);
    s.console = e.console();
    return s;
}

std::optional<divergence> compare_end_states(const std::string& reference,
                                             const std::string& engine,
                                             const end_state& ref,
                                             const end_state& cand,
                                             bool compare_fp) {
    const auto make = [&](std::string kind, unsigned index, std::string expected,
                          std::string actual) {
        return divergence{reference, engine, std::move(kind), index,
                          std::move(expected), std::move(actual)};
    };
    if (cand.halted != ref.halted) {
        return make("halted", 0, std::to_string(ref.halted),
                    std::to_string(cand.halted));
    }
    for (unsigned r = 0; r < isa::num_gprs; ++r) {
        if (cand.gpr[r] != ref.gpr[r]) {
            return make("gpr", r, hex32(ref.gpr[r]), hex32(cand.gpr[r]));
        }
    }
    if (compare_fp) {
        for (unsigned r = 0; r < isa::num_fprs; ++r) {
            if (cand.fpr[r] != ref.fpr[r]) {
                return make("fpr", r, hex32(ref.fpr[r]), hex32(cand.fpr[r]));
            }
        }
    }
    if (cand.console != ref.console) {
        return make("console", 0, printable(ref.console), printable(cand.console));
    }
    if (cand.retired != ref.retired) {
        return make("retired", 0, std::to_string(ref.retired),
                    std::to_string(cand.retired));
    }
    return std::nullopt;
}

std::string divergence::to_string() const {
    std::string s = "engine " + engine + " diverges from " + reference + ": " + kind;
    if (kind == "gpr" || kind == "fpr") s += "[" + std::to_string(index) + "]";
    s += " expected " + expected + " actual " + actual;
    return s;
}

namespace {

/// Scan the text segment (the one containing `img.entry`) with `pred`.
template <typename Pred>
bool text_any_of(const isa::program_image& img, Pred pred) {
    for (const auto& seg : img.segments) {
        if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size()) continue;
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t word = static_cast<std::uint32_t>(seg.bytes[i]) |
                                       static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
            if (pred(isa::decode(word).code)) return true;
        }
    }
    return false;
}

}  // namespace

bool program_uses_fp(const isa::program_image& img) {
    return text_any_of(img, [](isa::op c) { return isa::is_fp(c); });
}

bool program_uses_atomics(const isa::program_image& img) {
    return text_any_of(img, [](isa::op c) { return isa::is_atomic_or_fence(c); });
}

diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img, const diff_options& opt) {
    if (names.size() < 2) {
        throw std::invalid_argument("diff_engines: need a reference and at least one engine");
    }
    auto& reg = engine_registry::instance();
    // Resolve every name up front so a typo fails before any simulation.
    for (const auto& n : names) {
        if (!reg.contains(n)) reg.create(n, opt.config);  // throws unknown_engine
    }

    diff_result result;

    // Engines are still instantiated on a cache hit (the skip decisions
    // need isa()/executes_fp()), but the load+run — the expensive part —
    // is replaced by the memoized terminal state.
    const auto terminal_state = [&](engine& e, const std::string& name) {
        if (opt.cache != nullptr) {
            if (auto hit = opt.cache->lookup(name, img, opt.max_cycles)) return *hit;
        }
        e.load(img);
        e.run(opt.max_cycles);
        end_state st = capture_end_state(e);
        if (opt.cache != nullptr) opt.cache->store(name, img, opt.max_cycles, st);
        return st;
    };

    auto ref = reg.create(names.front(), opt.config);
    // program_uses_fp decodes VR32 words; it is meaningless for other ISAs.
    const bool fp_program = ref->isa() == "vr32" && program_uses_fp(img);
    const bool amo_program = ref->isa() == "vr32" && program_uses_atomics(img);
    const bool ref_fp = ref->executes_fp();
    const end_state ref_state = terminal_state(*ref, names.front());
    result.runs.push_back({std::string(ref->name()), true, "", ref_state.halted,
                           ref_state.cycles, ref_state.retired});

    for (std::size_t i = 1; i < names.size(); ++i) {
        auto eng = reg.create(names[i], opt.config);
        if (eng->isa() != ref->isa()) {
            result.runs.push_back({names[i], false,
                                   "isa mismatch: " + std::string(eng->isa()) +
                                       " engine vs " + std::string(ref->isa()) +
                                       " reference",
                                   false, 0, 0});
            continue;
        }
        if (fp_program && !eng->executes_fp()) {
            result.runs.push_back({names[i], false, "no FP support, program uses FP",
                                   false, 0, 0});
            continue;
        }
        if (amo_program && !eng->executes_amo()) {
            result.runs.push_back({names[i], false,
                                   "no atomics support, program uses lr/sc/amo/fence",
                                   false, 0, 0});
            continue;
        }
        const end_state cand_state = terminal_state(*eng, names[i]);
        result.runs.push_back({names[i], true, "", cand_state.halted,
                               cand_state.cycles, cand_state.retired});

        if (auto d = compare_end_states(std::string(ref->name()), names[i], ref_state,
                                        cand_state, ref_fp && eng->executes_fp())) {
            result.divergences.push_back(std::move(*d));
        }
    }
    return result;
}

namespace {

/// Architectural-state compare at equal retirement counts (no cycle/pc
/// compare: timing legitimately differs, and pipelined fetch pcs run ahead).
std::optional<divergence> compare_state(const engine& ref, const engine& cand,
                                        bool compare_fp) {
    return compare_end_states(std::string(ref.name()), std::string(cand.name()),
                              capture_end_state(ref), capture_end_state(cand),
                              compare_fp);
}

}  // namespace

lockstep_result lockstep_diff(const std::string& candidate, const isa::program_image& img,
                              const lockstep_options& opt) {
    auto& reg = engine_registry::instance();
    auto ref = reg.create(opt.reference, opt.config);
    auto cand = reg.create(candidate, opt.config);

    lockstep_result result;
    if (cand->isa() != ref->isa()) {
        result.skip_reason = "isa mismatch: " + std::string(cand->isa()) +
                             " engine vs " + std::string(ref->isa()) + " reference";
        return result;
    }
    const bool fp_program = ref->isa() == "vr32" && program_uses_fp(img);
    if (fp_program && !cand->executes_fp()) {
        result.skip_reason = "no FP support, program uses FP";
        return result;
    }
    if (ref->isa() == "vr32" && program_uses_atomics(img) && !cand->executes_amo()) {
        result.skip_reason = "no atomics support, program uses lr/sc/amo/fence";
        return result;
    }
    result.ran = true;
    const bool compare_fp = ref->executes_fp() && cand->executes_fp();
    // Probes warm-boot both engines from the reference's checkpoint: at an
    // agreed boundary the architectural states are equal, so one snapshot
    // serves both, and the (exact-level) reference saves without replay.
    const bool use_ck = ref->supports_checkpoint() && cand->supports_checkpoint();

    ref->load(img);
    cand->load(img);

    checkpoint ck_lo;
    bool have_lo = false;
    std::uint64_t lo = 0;

    // Advance both engines to a shared retirement boundary >= `target`.
    // The reference steps exactly, so it absorbs any candidate overshoot
    // (a dual-retire engine can pass the boundary by one).
    const auto advance_to = [&](engine& r, engine& c, std::uint64_t target) {
        r.run_until_retired(target);
        c.run_until_retired(r.retired());
        while (c.retired() > r.retired() && !r.halted()) r.run_until_retired(c.retired());
        return std::max(r.retired(), c.retired());
    };

    for (;;) {
        const std::uint64_t boundary = advance_to(*ref, *cand, ref->retired() + opt.interval);
        ++result.compares;
        if (auto d = compare_state(*ref, *cand, compare_fp)) {
            result.diverged = true;
            result.div = *d;
            result.final_retired = boundary;
            if (opt.locate) {
                std::uint64_t hi = boundary;
                result.used_checkpoint_bisect = use_ck && have_lo;
                const auto probe = [&](std::uint64_t n) -> std::pair<std::uint64_t, bool> {
                    auto rp = reg.create(opt.reference, opt.config);
                    auto cp = reg.create(candidate, opt.config);
                    if (result.used_checkpoint_bisect) {
                        rp->restore_state(ck_lo);
                        cp->restore_state(ck_lo);
                        result.restores += 2;
                    } else {
                        rp->load(img);
                        cp->load(img);
                    }
                    const std::uint64_t m = advance_to(*rp, *cp, n);
                    return {m, !compare_state(*rp, *cp, compare_fp).has_value()};
                };
                while (hi - lo > 1) {
                    const std::uint64_t mid = lo + (hi - lo) / 2;
                    const auto [m, agree] = probe(mid);
                    if (agree) {
                        if (m >= hi) {  // overshot the divergent boundary while agreeing
                            lo = hi - 1;
                            break;
                        }
                        lo = m;
                    } else {
                        if (m >= hi) break;  // overshoot: cannot tighten further
                        hi = m;
                    }
                }
                result.first_divergent_retired = hi;
                result.located = true;
            }
            return result;
        }
        if (ref->halted() && cand->halted()) {
            result.final_retired = boundary;
            return result;
        }
        if (boundary == lo) {  // wedged: no forward progress and no halt
            result.hit_budget = true;
            result.final_retired = boundary;
            return result;
        }
        if (boundary >= opt.max_retired) {
            result.hit_budget = true;
            result.final_retired = boundary;
            return result;
        }
        lo = boundary;
        if (opt.locate && use_ck) {
            ck_lo = ref->save_state();
            have_lo = true;
            ++result.checkpoints;
        }
    }
}

}  // namespace osm::sim
