#include "sim/diff_runner.hpp"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <stdexcept>
#include <utility>

#include "isa/arch.hpp"
#include "isa/encoding.hpp"
#include "sim/registry.hpp"

namespace osm::sim {

namespace {

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08X", v);
    return buf;
}

std::string printable(const std::string& s) {
    // Console streams can be long; show enough to localize the mismatch.
    constexpr std::size_t limit = 64;
    std::string out;
    for (char c : s.substr(0, limit)) {
        if (c == '\n') out += "\\n";
        else out += c;
    }
    if (s.size() > limit) out += "...";
    return out;
}

}  // namespace

std::string divergence::to_string() const {
    std::string s = "engine " + engine + " diverges from " + reference + ": " + kind;
    if (kind == "gpr" || kind == "fpr") s += "[" + std::to_string(index) + "]";
    s += " expected " + expected + " actual " + actual;
    return s;
}

bool program_uses_fp(const isa::program_image& img) {
    for (const auto& seg : img.segments) {
        if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size()) continue;
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t word = static_cast<std::uint32_t>(seg.bytes[i]) |
                                       static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
            if (isa::is_fp(isa::decode(word).code)) return true;
        }
    }
    return false;
}

diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img, const diff_options& opt) {
    if (names.size() < 2) {
        throw std::invalid_argument("diff_engines: need a reference and at least one engine");
    }
    auto& reg = engine_registry::instance();
    // Resolve every name up front so a typo fails before any simulation.
    for (const auto& n : names) {
        if (!reg.contains(n)) reg.create(n, opt.config);  // throws unknown_engine
    }

    diff_result result;

    auto ref = reg.create(names.front(), opt.config);
    // program_uses_fp decodes VR32 words; it is meaningless for other ISAs.
    const bool fp_program = ref->isa() == "vr32" && program_uses_fp(img);
    ref->load(img);
    ref->run(opt.max_cycles);
    result.runs.push_back({std::string(ref->name()), true, "", ref->halted(),
                           ref->cycles(), ref->retired()});

    for (std::size_t i = 1; i < names.size(); ++i) {
        auto eng = reg.create(names[i], opt.config);
        if (eng->isa() != ref->isa()) {
            result.runs.push_back({names[i], false,
                                   "isa mismatch: " + std::string(eng->isa()) +
                                       " engine vs " + std::string(ref->isa()) +
                                       " reference",
                                   false, 0, 0});
            continue;
        }
        if (fp_program && !eng->executes_fp()) {
            result.runs.push_back({names[i], false, "no FP support, program uses FP",
                                   false, 0, 0});
            continue;
        }
        eng->load(img);
        eng->run(opt.max_cycles);
        result.runs.push_back({names[i], true, "", eng->halted(), eng->cycles(),
                               eng->retired()});

        auto diverged = [&](std::string kind, unsigned index, std::string expected,
                            std::string actual) {
            result.divergences.push_back({std::string(ref->name()), names[i],
                                          std::move(kind), index, std::move(expected),
                                          std::move(actual)});
        };

        // First divergence only: the earliest mismatch is the actionable one.
        if (eng->halted() != ref->halted()) {
            diverged("halted", 0, std::to_string(ref->halted()),
                     std::to_string(eng->halted()));
            continue;
        }
        bool mismatch = false;
        for (unsigned r = 0; r < isa::num_gprs && !mismatch; ++r) {
            if (eng->gpr(r) != ref->gpr(r)) {
                diverged("gpr", r, hex32(ref->gpr(r)), hex32(eng->gpr(r)));
                mismatch = true;
            }
        }
        if (mismatch) continue;
        if (ref->executes_fp() && eng->executes_fp()) {
            for (unsigned r = 0; r < isa::num_fprs && !mismatch; ++r) {
                if (eng->fpr(r) != ref->fpr(r)) {
                    diverged("fpr", r, hex32(ref->fpr(r)), hex32(eng->fpr(r)));
                    mismatch = true;
                }
            }
            if (mismatch) continue;
        }
        if (eng->console() != ref->console()) {
            diverged("console", 0, printable(ref->console()), printable(eng->console()));
            continue;
        }
        if (eng->retired() != ref->retired()) {
            diverged("retired", 0, std::to_string(ref->retired()),
                     std::to_string(eng->retired()));
        }
    }
    return result;
}

namespace {

/// Architectural-state compare at equal retirement counts (no cycle/pc
/// compare: timing legitimately differs, and pipelined fetch pcs run ahead).
std::optional<divergence> compare_state(const engine& ref, const engine& cand,
                                        bool compare_fp) {
    const auto make = [&](std::string kind, unsigned index, std::string expected,
                          std::string actual) {
        return divergence{std::string(ref.name()), std::string(cand.name()),
                          std::move(kind), index, std::move(expected), std::move(actual)};
    };
    if (cand.halted() != ref.halted()) {
        return make("halted", 0, std::to_string(ref.halted()),
                    std::to_string(cand.halted()));
    }
    for (unsigned r = 0; r < isa::num_gprs; ++r) {
        if (cand.gpr(r) != ref.gpr(r)) {
            return make("gpr", r, hex32(ref.gpr(r)), hex32(cand.gpr(r)));
        }
    }
    if (compare_fp) {
        for (unsigned r = 0; r < isa::num_fprs; ++r) {
            if (cand.fpr(r) != ref.fpr(r)) {
                return make("fpr", r, hex32(ref.fpr(r)), hex32(cand.fpr(r)));
            }
        }
    }
    if (cand.console() != ref.console()) {
        return make("console", 0, printable(ref.console()), printable(cand.console()));
    }
    if (cand.retired() != ref.retired()) {
        return make("retired", 0, std::to_string(ref.retired()),
                    std::to_string(cand.retired()));
    }
    return std::nullopt;
}

}  // namespace

lockstep_result lockstep_diff(const std::string& candidate, const isa::program_image& img,
                              const lockstep_options& opt) {
    auto& reg = engine_registry::instance();
    auto ref = reg.create(opt.reference, opt.config);
    auto cand = reg.create(candidate, opt.config);

    lockstep_result result;
    if (cand->isa() != ref->isa()) {
        result.skip_reason = "isa mismatch: " + std::string(cand->isa()) +
                             " engine vs " + std::string(ref->isa()) + " reference";
        return result;
    }
    const bool fp_program = ref->isa() == "vr32" && program_uses_fp(img);
    if (fp_program && !cand->executes_fp()) {
        result.skip_reason = "no FP support, program uses FP";
        return result;
    }
    result.ran = true;
    const bool compare_fp = ref->executes_fp() && cand->executes_fp();
    // Probes warm-boot both engines from the reference's checkpoint: at an
    // agreed boundary the architectural states are equal, so one snapshot
    // serves both, and the (exact-level) reference saves without replay.
    const bool use_ck = ref->supports_checkpoint() && cand->supports_checkpoint();

    ref->load(img);
    cand->load(img);

    checkpoint ck_lo;
    bool have_lo = false;
    std::uint64_t lo = 0;

    // Advance both engines to a shared retirement boundary >= `target`.
    // The reference steps exactly, so it absorbs any candidate overshoot
    // (a dual-retire engine can pass the boundary by one).
    const auto advance_to = [&](engine& r, engine& c, std::uint64_t target) {
        r.run_until_retired(target);
        c.run_until_retired(r.retired());
        while (c.retired() > r.retired() && !r.halted()) r.run_until_retired(c.retired());
        return std::max(r.retired(), c.retired());
    };

    for (;;) {
        const std::uint64_t boundary = advance_to(*ref, *cand, ref->retired() + opt.interval);
        ++result.compares;
        if (auto d = compare_state(*ref, *cand, compare_fp)) {
            result.diverged = true;
            result.div = *d;
            result.final_retired = boundary;
            if (opt.locate) {
                std::uint64_t hi = boundary;
                result.used_checkpoint_bisect = use_ck && have_lo;
                const auto probe = [&](std::uint64_t n) -> std::pair<std::uint64_t, bool> {
                    auto rp = reg.create(opt.reference, opt.config);
                    auto cp = reg.create(candidate, opt.config);
                    if (result.used_checkpoint_bisect) {
                        rp->restore_state(ck_lo);
                        cp->restore_state(ck_lo);
                        result.restores += 2;
                    } else {
                        rp->load(img);
                        cp->load(img);
                    }
                    const std::uint64_t m = advance_to(*rp, *cp, n);
                    return {m, !compare_state(*rp, *cp, compare_fp).has_value()};
                };
                while (hi - lo > 1) {
                    const std::uint64_t mid = lo + (hi - lo) / 2;
                    const auto [m, agree] = probe(mid);
                    if (agree) {
                        if (m >= hi) {  // overshot the divergent boundary while agreeing
                            lo = hi - 1;
                            break;
                        }
                        lo = m;
                    } else {
                        if (m >= hi) break;  // overshoot: cannot tighten further
                        hi = m;
                    }
                }
                result.first_divergent_retired = hi;
                result.located = true;
            }
            return result;
        }
        if (ref->halted() && cand->halted()) {
            result.final_retired = boundary;
            return result;
        }
        if (boundary == lo) {  // wedged: no forward progress and no halt
            result.hit_budget = true;
            result.final_retired = boundary;
            return result;
        }
        if (boundary >= opt.max_retired) {
            result.hit_budget = true;
            result.final_retired = boundary;
            return result;
        }
        lo = boundary;
        if (opt.locate && use_ck) {
            ck_lo = ref->save_state();
            have_lo = true;
            ++result.checkpoints;
        }
    }
}

}  // namespace osm::sim
