#include "sim/diff_runner.hpp"

#include <cstdio>
#include <stdexcept>

#include "isa/arch.hpp"
#include "isa/encoding.hpp"
#include "sim/registry.hpp"

namespace osm::sim {

namespace {

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "%08X", v);
    return buf;
}

std::string printable(const std::string& s) {
    // Console streams can be long; show enough to localize the mismatch.
    constexpr std::size_t limit = 64;
    std::string out;
    for (char c : s.substr(0, limit)) {
        if (c == '\n') out += "\\n";
        else out += c;
    }
    if (s.size() > limit) out += "...";
    return out;
}

}  // namespace

std::string divergence::to_string() const {
    std::string s = "engine " + engine + " diverges from " + reference + ": " + kind;
    if (kind == "gpr" || kind == "fpr") s += "[" + std::to_string(index) + "]";
    s += " expected " + expected + " actual " + actual;
    return s;
}

bool program_uses_fp(const isa::program_image& img) {
    for (const auto& seg : img.segments) {
        if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size()) continue;
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t word = static_cast<std::uint32_t>(seg.bytes[i]) |
                                       static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
                                       static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
            if (isa::is_fp(isa::decode(word).code)) return true;
        }
    }
    return false;
}

diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img, const diff_options& opt) {
    if (names.size() < 2) {
        throw std::invalid_argument("diff_engines: need a reference and at least one engine");
    }
    auto& reg = engine_registry::instance();
    // Resolve every name up front so a typo fails before any simulation.
    for (const auto& n : names) {
        if (!reg.contains(n)) reg.create(n, opt.config);  // throws unknown_engine
    }

    const bool fp_program = program_uses_fp(img);
    diff_result result;

    auto ref = reg.create(names.front(), opt.config);
    ref->load(img);
    ref->run(opt.max_cycles);
    result.runs.push_back({std::string(ref->name()), true, "", ref->halted(),
                           ref->cycles(), ref->retired()});

    for (std::size_t i = 1; i < names.size(); ++i) {
        auto eng = reg.create(names[i], opt.config);
        if (fp_program && !eng->executes_fp()) {
            result.runs.push_back({names[i], false, "no FP support, program uses FP",
                                   false, 0, 0});
            continue;
        }
        eng->load(img);
        eng->run(opt.max_cycles);
        result.runs.push_back({names[i], true, "", eng->halted(), eng->cycles(),
                               eng->retired()});

        auto diverged = [&](std::string kind, unsigned index, std::string expected,
                            std::string actual) {
            result.divergences.push_back({std::string(ref->name()), names[i],
                                          std::move(kind), index, std::move(expected),
                                          std::move(actual)});
        };

        // First divergence only: the earliest mismatch is the actionable one.
        if (eng->halted() != ref->halted()) {
            diverged("halted", 0, std::to_string(ref->halted()),
                     std::to_string(eng->halted()));
            continue;
        }
        bool mismatch = false;
        for (unsigned r = 0; r < isa::num_gprs && !mismatch; ++r) {
            if (eng->gpr(r) != ref->gpr(r)) {
                diverged("gpr", r, hex32(ref->gpr(r)), hex32(eng->gpr(r)));
                mismatch = true;
            }
        }
        if (mismatch) continue;
        if (ref->executes_fp() && eng->executes_fp()) {
            for (unsigned r = 0; r < isa::num_fprs && !mismatch; ++r) {
                if (eng->fpr(r) != ref->fpr(r)) {
                    diverged("fpr", r, hex32(ref->fpr(r)), hex32(eng->fpr(r)));
                    mismatch = true;
                }
            }
            if (mismatch) continue;
        }
        if (eng->console() != ref->console()) {
            diverged("console", 0, printable(ref->console()), printable(eng->console()));
            continue;
        }
        if (eng->retired() != ref->retired()) {
            diverged("retired", 0, std::to_string(ref->retired()),
                     std::to_string(eng->retired()));
        }
    }
    return result;
}

}  // namespace osm::sim
