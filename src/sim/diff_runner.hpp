// N-engine differential runner.
//
// Executes one program on every named engine (first name = reference) and
// reports the first architectural divergence per engine: register file,
// console stream, retired count, halt status.  This is the paper's
// retargetability claim turned into a push-button check — `osm-run --diff
// iss,sarm,p750,...` — and the registry makes any new engine diffable the
// moment it registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/engine.hpp"

namespace osm::sim {

struct diff_options {
    engine_config config{};
    std::uint64_t max_cycles = 2'000'000'000ull;
};

/// Per-engine execution summary (also covers engines that were skipped,
/// e.g. an FP program on an integer-only engine).
struct engine_run {
    std::string engine;
    bool ran = false;
    std::string skip_reason;
    bool halted = false;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
};

/// One observed architectural difference against the reference engine.
struct divergence {
    std::string reference;
    std::string engine;
    std::string kind;    ///< "halted" | "gpr" | "fpr" | "console" | "retired"
    unsigned index = 0;  ///< register number for gpr/fpr kinds
    std::string expected;
    std::string actual;

    /// "engine sarm diverges from iss: gpr[7] expected 00000010 actual ..."
    std::string to_string() const;
};

struct diff_result {
    std::vector<engine_run> runs;
    std::vector<divergence> divergences;
    bool ok() const { return divergences.empty(); }
};

/// True when the text segment (the one containing `img.entry`) holds any
/// FP-register opcode; used to skip engines with executes_fp() == false.
bool program_uses_fp(const isa::program_image& img);

/// Run `img` on every engine in `names` (first = reference, typically
/// "iss").  Requires at least two names; throws unknown_engine for
/// unregistered names before running anything.
diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img,
                         const diff_options& opt = {});

}  // namespace osm::sim
