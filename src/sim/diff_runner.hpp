// N-engine differential runner.
//
// Executes one program on every named engine (first name = reference) and
// reports the first architectural divergence per engine: register file,
// console stream, retired count, halt status.  This is the paper's
// retargetability claim turned into a push-button check — `osm-run --diff
// iss,sarm,p750,...` — and the registry makes any new engine diffable the
// moment it registers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/engine.hpp"

namespace osm::sim {

struct diff_options {
    engine_config config{};
    std::uint64_t max_cycles = 2'000'000'000ull;
};

/// Per-engine execution summary (also covers engines that were skipped,
/// e.g. an FP program on an integer-only engine).
struct engine_run {
    std::string engine;
    bool ran = false;
    std::string skip_reason;
    bool halted = false;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
};

/// One observed architectural difference against the reference engine.
struct divergence {
    std::string reference;
    std::string engine;
    std::string kind;    ///< "halted" | "gpr" | "fpr" | "console" | "retired"
    unsigned index = 0;  ///< register number for gpr/fpr kinds
    std::string expected;
    std::string actual;

    /// "engine sarm diverges from iss: gpr[7] expected 00000010 actual ..."
    std::string to_string() const;
};

struct diff_result {
    std::vector<engine_run> runs;
    std::vector<divergence> divergences;
    bool ok() const { return divergences.empty(); }
};

/// True when the text segment (the one containing `img.entry`) holds any
/// FP-register opcode; used to skip engines with executes_fp() == false.
bool program_uses_fp(const isa::program_image& img);

/// Run `img` on every engine in `names` (first = reference, typically
/// "iss").  Requires at least two names; throws unknown_engine for
/// unregistered names before running anything.
diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img,
                         const diff_options& opt = {});

// ---- lockstep mode with checkpointed divergence bisection ------------------

struct lockstep_options {
    std::string reference = "iss";  ///< should be cheap to checkpoint (exact)
    engine_config config{};
    std::uint64_t interval = 256;   ///< retirements between compare points
    std::uint64_t max_retired = 100'000'000ull;
    /// On divergence, binary-search the first divergent retirement.  Probes
    /// restore from the last-agreeing checkpoint when both engines support
    /// it, and re-run from zero otherwise.
    bool locate = true;
};

struct lockstep_result {
    bool ran = false;  ///< false = skipped (e.g. FP program, integer engine)
    std::string skip_reason;
    bool hit_budget = false;  ///< stopped at max_retired without divergence
    bool diverged = false;
    divergence div{};  ///< valid when diverged
    /// Smallest compare boundary whose state mismatches (valid when
    /// `located`); a dual-retire engine can blur this by one retirement.
    std::uint64_t first_divergent_retired = 0;
    bool located = false;
    bool used_checkpoint_bisect = false;
    std::uint64_t compares = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t final_retired = 0;
};

/// Run `candidate` against `opt.reference` in retirement lockstep: advance
/// both by `interval` retirements, compare architectural state (halt flag,
/// GPRs, FPRs when both execute FP, console), checkpoint each agreed
/// boundary, and on mismatch bisect to the first divergent retirement by
/// restoring the last-agreeing checkpoint instead of re-running from zero.
lockstep_result lockstep_diff(const std::string& candidate, const isa::program_image& img,
                              const lockstep_options& opt = {});

}  // namespace osm::sim
