// N-engine differential runner.
//
// Executes one program on every named engine (first name = reference) and
// reports the first architectural divergence per engine: register file,
// console stream, retired count, halt status.  This is the paper's
// retargetability claim turned into a push-button check — `osm-run --diff
// iss,sarm,p750,...` — and the registry makes any new engine diffable the
// moment it registers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/arch.hpp"
#include "isa/program.hpp"
#include "sim/engine.hpp"

namespace osm::sim {

struct end_state;

/// Memoization hook for terminal engine states.  When diff_options::cache
/// is set, diff_engines consults it before running each engine and stores
/// the captured state after a miss.  Implementations must be safe to call
/// from concurrent diff_engines invocations (the serve worker pool shares
/// one cache across workers).
class end_state_cache {
  public:
    virtual ~end_state_cache() = default;
    /// `max_cycles` is the run budget of the prospective execution — part
    /// of the cache key, since it can determine the terminal state.
    virtual std::optional<end_state> lookup(const std::string& engine,
                                            const isa::program_image& img,
                                            std::uint64_t max_cycles) = 0;
    virtual void store(const std::string& engine, const isa::program_image& img,
                       std::uint64_t max_cycles, const end_state& st) = 0;
};

struct diff_options {
    engine_config config{};
    std::uint64_t max_cycles = 2'000'000'000ull;
    /// Optional terminal-state memo (not owned).  Sound because the diff
    /// verdict is a pure function of the end states being cached; the cache
    /// implementation is responsible for keying on everything else that
    /// determines them (program bytes, engine config, cycle budget).
    end_state_cache* cache = nullptr;
};

/// Per-engine execution summary (also covers engines that were skipped,
/// e.g. an FP program on an integer-only engine).
struct engine_run {
    std::string engine;
    bool ran = false;
    std::string skip_reason;
    bool halted = false;
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
};

/// One observed architectural difference against the reference engine.
struct divergence {
    std::string reference;
    std::string engine;
    std::string kind;    ///< "halted" | "gpr" | "fpr" | "console" | "retired"
    unsigned index = 0;  ///< register number for gpr/fpr kinds
    std::string expected;
    std::string actual;

    /// "engine sarm diverges from iss: gpr[7] expected 00000010 actual ..."
    std::string to_string() const;
};

struct diff_result {
    std::vector<engine_run> runs;
    std::vector<divergence> divergences;
    bool ok() const { return divergences.empty(); }
};

/// Terminal architectural state of one engine run: everything the
/// differential comparison looks at.  Captured by capture_end_state() and
/// compared by compare_end_states(); the serve layer also serializes this
/// as the value of its content-addressed result cache, which is sound
/// precisely because the diff verdict is a pure function of it.
struct end_state {
    bool halted = false;
    std::uint64_t cycles = 0;  ///< informational only; never compared
    std::uint64_t retired = 0;
    std::array<std::uint32_t, isa::num_gprs> gpr{};
    std::array<std::uint32_t, isa::num_fprs> fpr{};
    std::string console;
};

/// Read the comparable architectural state out of a (finished) engine.
end_state capture_end_state(const engine& e);

/// The one differential comparison, in canonical order: halt flag, GPRs,
/// FPRs (when `compare_fp`), console, retired count.  Returns the first
/// mismatch only (the earliest is the actionable one), or nullopt when the
/// states agree.  Both diff_engines and the lockstep runner use exactly
/// this function, so a cached end state diffs identically to a live run.
std::optional<divergence> compare_end_states(const std::string& reference,
                                             const std::string& engine,
                                             const end_state& ref,
                                             const end_state& cand,
                                             bool compare_fp);

/// True when the text segment (the one containing `img.entry`) holds any
/// FP-register opcode; used to skip engines with executes_fp() == false.
bool program_uses_fp(const isa::program_image& img);

/// True when that segment holds any atomic/ordering opcode (lr.w, sc.w,
/// amo*, fence); used to skip engines with executes_amo() == false.
bool program_uses_atomics(const isa::program_image& img);

/// Run `img` on every engine in `names` (first = reference, typically
/// "iss").  Requires at least two names; throws unknown_engine for
/// unregistered names before running anything.
diff_result diff_engines(const std::vector<std::string>& names,
                         const isa::program_image& img,
                         const diff_options& opt = {});

// ---- lockstep mode with checkpointed divergence bisection ------------------

struct lockstep_options {
    std::string reference = "iss";  ///< should be cheap to checkpoint (exact)
    engine_config config{};
    std::uint64_t interval = 256;   ///< retirements between compare points
    std::uint64_t max_retired = 100'000'000ull;
    /// On divergence, binary-search the first divergent retirement.  Probes
    /// restore from the last-agreeing checkpoint when both engines support
    /// it, and re-run from zero otherwise.
    bool locate = true;
};

struct lockstep_result {
    bool ran = false;  ///< false = skipped (e.g. FP program, integer engine)
    std::string skip_reason;
    bool hit_budget = false;  ///< stopped at max_retired without divergence
    bool diverged = false;
    divergence div{};  ///< valid when diverged
    /// Smallest compare boundary whose state mismatches (valid when
    /// `located`); a dual-retire engine can blur this by one retirement.
    std::uint64_t first_divergent_retired = 0;
    bool located = false;
    bool used_checkpoint_bisect = false;
    std::uint64_t compares = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t restores = 0;
    std::uint64_t final_retired = 0;
};

/// Run `candidate` against `opt.reference` in retirement lockstep: advance
/// both by `interval` retirements, compare architectural state (halt flag,
/// GPRs, FPRs when both execute FP, console), checkpoint each agreed
/// boundary, and on mismatch bisect to the first divergent retirement by
/// restoring the last-agreeing checkpoint instead of re-running from zero.
lockstep_result lockstep_diff(const std::string& candidate, const isa::program_image& img,
                              const lockstep_options& opt = {});

}  // namespace osm::sim
