// Versioned, deterministic simulator snapshots.
//
// The paper's determinism argument (the director's sequential scheduling,
// Fig. 3, makes every control step reproducible) is what turns "simulator
// state" into a well-defined serializable object.  This module defines that
// object: architectural state (registers, pc, halt flag), the sparse memory
// image, console output and retirement/cycle counters, plus an opaque
// engine-private blob for engines that can resume bit-exactly.
//
// Determinism contract: serialize() is a pure function of the checkpoint
// value — field-by-field little-endian writes (no struct memcpy, so no
// padding bytes), memory pages sorted by base address with trailing zeros
// trimmed and all-zero pages omitted, and an fnv1a-64 checksum trailer.
// Saving the same machine state twice yields byte-identical files; the
// golden regressions in tests/golden/ rely on this.
//
// Two fidelity levels (checkpoint_level):
//   exact         — restore resumes bit-exactly, counters included (ISS);
//   architectural — restore resumes from the quiesced retirement boundary:
//                   registers/memory/console/retired match, but a timing
//                   engine re-fills its pipeline so post-restore cycle
//                   counts are not comparable to an uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/arch.hpp"
#include "mem/main_memory.hpp"
#include "mem/shared_mem.hpp"

namespace osm::sim {

/// What a restored engine guarantees relative to an uninterrupted run.
enum class checkpoint_level : std::uint8_t {
    none = 0,           ///< engine cannot checkpoint
    architectural = 1,  ///< registers/memory/console/retired resume exactly
    exact = 2,          ///< bit-exact resume including cycle counters
};

const char* to_string(checkpoint_level level);

/// Malformed or corrupt checkpoint data.
struct checkpoint_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// One resident memory page delta (trailing zeros trimmed; never empty).
struct checkpoint_page {
    std::uint32_t base = 0;
    std::vector<std::uint8_t> bytes;
};

/// Per-hart record in a multi-hart snapshot: the hart's architectural
/// state plus its shared-memory side state (LR/SC reservation and, under
/// TSO, the contents of its FIFO store buffer — checkpoints are taken at
/// scheduler-step boundaries, so buffered stores are real machine state).
struct checkpoint_hart {
    isa::arch_state arch{};
    std::uint64_t retired = 0;
    bool resv_valid = false;
    std::uint32_t resv_addr = 0;
    std::vector<mem::store_entry> stores;  ///< FIFO order, oldest first
};

/// A complete snapshot of one engine's state.
struct checkpoint {
    /// v2 (this release) appends the multi-hart section below; v1 files
    /// (single-hart only) are rejected with "unsupported checkpoint
    /// version 1" — regenerate with scripts/regen_golden_checkpoints.sh.
    static constexpr std::uint32_t format_version = 2;

    std::string engine;  ///< producer's registry name ("iss", "sarm", ...)
    checkpoint_level level = checkpoint_level::architectural;
    isa::arch_state arch{};
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    std::string console;
    std::vector<checkpoint_page> pages;  ///< ascending base address
    std::vector<std::uint8_t> micro;     ///< engine-private blob (exact level)

    // ---- multi-hart section (v2) ----
    /// mem::memory_model the producer ran under (0 = SC; meaningless when
    /// `harts` is empty).
    std::uint8_t memory_model = 0;
    /// Scheduler PRNG state at the snapshot, so a restored multi-hart run
    /// replays the exact schedule of an uninterrupted one.  0 = n/a.
    std::uint64_t sched_rng = 0;
    /// One record per hart for multi-hart producers (harts[0] mirrors
    /// `arch`/`retired`, which keep describing hart 0 so every single-hart
    /// consumer works unchanged).  Single-hart engines leave this empty —
    /// except the ISS, which emits one record to carry its LR/SC
    /// reservation across save/restore.
    std::vector<checkpoint_hart> harts;
};

/// Deterministic binary encoding (see header comment for the contract).
std::vector<std::uint8_t> serialize(const checkpoint& ck);

/// Decode; throws checkpoint_error on bad magic/version/truncation/checksum.
checkpoint deserialize(const std::uint8_t* data, std::size_t n);
checkpoint deserialize(const std::vector<std::uint8_t>& buf);

/// Human-readable JSON summary (field values, page/byte counts, checksum) —
/// written next to the binary as `<path>.json`.  Deterministic like the
/// binary encoding.
std::string sidecar_json(const checkpoint& ck);

/// Write `<path>` (binary) and `<path>.json` (sidecar).  Throws
/// checkpoint_error on I/O failure.
void save_checkpoint_file(const checkpoint& ck, const std::string& path);

/// Read and validate a binary checkpoint file.
checkpoint load_checkpoint_file(const std::string& path);

/// Deterministic snapshot of a sparse memory: pages in ascending base
/// order, trailing zeros trimmed, untouched/all-zero pages omitted.
std::vector<checkpoint_page> snapshot_memory(const mem::main_memory& m);

/// Load `pages` into `m` (callers clear() first for an exact image).
void restore_memory(mem::main_memory& m, const std::vector<checkpoint_page>& pages);

}  // namespace osm::sim
