// Versioned, deterministic simulator snapshots.
//
// The paper's determinism argument (the director's sequential scheduling,
// Fig. 3, makes every control step reproducible) is what turns "simulator
// state" into a well-defined serializable object.  This module defines that
// object: architectural state (registers, pc, halt flag), the sparse memory
// image, console output and retirement/cycle counters, plus an opaque
// engine-private blob for engines that can resume bit-exactly.
//
// Determinism contract: serialize() is a pure function of the checkpoint
// value — field-by-field little-endian writes (no struct memcpy, so no
// padding bytes), memory pages sorted by base address with trailing zeros
// trimmed and all-zero pages omitted, and an fnv1a-64 checksum trailer.
// Saving the same machine state twice yields byte-identical files; the
// golden regressions in tests/golden/ rely on this.
//
// Two fidelity levels (checkpoint_level):
//   exact         — restore resumes bit-exactly, counters included (ISS);
//   architectural — restore resumes from the quiesced retirement boundary:
//                   registers/memory/console/retired match, but a timing
//                   engine re-fills its pipeline so post-restore cycle
//                   counts are not comparable to an uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "isa/arch.hpp"
#include "mem/main_memory.hpp"

namespace osm::sim {

/// What a restored engine guarantees relative to an uninterrupted run.
enum class checkpoint_level : std::uint8_t {
    none = 0,           ///< engine cannot checkpoint
    architectural = 1,  ///< registers/memory/console/retired resume exactly
    exact = 2,          ///< bit-exact resume including cycle counters
};

const char* to_string(checkpoint_level level);

/// Malformed or corrupt checkpoint data.
struct checkpoint_error : std::runtime_error {
    using std::runtime_error::runtime_error;
};

/// One resident memory page delta (trailing zeros trimmed; never empty).
struct checkpoint_page {
    std::uint32_t base = 0;
    std::vector<std::uint8_t> bytes;
};

/// A complete snapshot of one engine's state.
struct checkpoint {
    static constexpr std::uint32_t format_version = 1;

    std::string engine;  ///< producer's registry name ("iss", "sarm", ...)
    checkpoint_level level = checkpoint_level::architectural;
    isa::arch_state arch{};
    std::uint64_t retired = 0;
    std::uint64_t cycles = 0;
    std::string console;
    std::vector<checkpoint_page> pages;  ///< ascending base address
    std::vector<std::uint8_t> micro;     ///< engine-private blob (exact level)
};

/// Deterministic binary encoding (see header comment for the contract).
std::vector<std::uint8_t> serialize(const checkpoint& ck);

/// Decode; throws checkpoint_error on bad magic/version/truncation/checksum.
checkpoint deserialize(const std::uint8_t* data, std::size_t n);
checkpoint deserialize(const std::vector<std::uint8_t>& buf);

/// Human-readable JSON summary (field values, page/byte counts, checksum) —
/// written next to the binary as `<path>.json`.  Deterministic like the
/// binary encoding.
std::string sidecar_json(const checkpoint& ck);

/// Write `<path>` (binary) and `<path>.json` (sidecar).  Throws
/// checkpoint_error on I/O failure.
void save_checkpoint_file(const checkpoint& ck, const std::string& path);

/// Read and validate a binary checkpoint file.
checkpoint load_checkpoint_file(const std::string& path);

/// Deterministic snapshot of a sparse memory: pages in ascending base
/// order, trailing zeros trimmed, untouched/all-zero pages omitted.
std::vector<checkpoint_page> snapshot_memory(const mem::main_memory& m);

/// Load `pages` into `m` (callers clear() first for an exact image).
void restore_memory(mem::main_memory& m, const std::vector<checkpoint_page>& pages);

}  // namespace osm::sim
