// Unified execution-engine interface.
//
// The paper's central claim is retargetability: one OSM substrate, many
// processor models.  This layer is the framework-side half of that claim —
// every execution engine (functional ISS, OSM models, hand-coded and
// port/wire baselines, the SMT pipeline, the OSM-DL elaborated machine)
// is driven through one abstract `sim::engine` contract: load an image,
// run under a cycle budget, observe architectural state (GPR/FPR/PC),
// console output, halt status and retirement/cycle counters, and emit a
// structured `stats::report` with a stable common schema.  Tools, tests
// and benches program against this interface and pick concrete engines
// from the name-keyed registry (registry.hpp), so adding an engine makes
// it runnable, diffable and benchable everywhere at once.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "isa/program.hpp"
#include "sim/checkpoint.hpp"
#include "stats/stats.hpp"

namespace osm::core {
class director;
class sim_kernel;
}  // namespace osm::core

namespace osm::sim {

/// Engine-independent construction knobs.  Each adapter maps the subset
/// that exists in its model's native config struct and ignores the rest
/// (the ISS has no forwarding network; the P750 always forwards).
struct engine_config {
    bool forwarding = true;        ///< bypass network (sarm/hw/smt)
    bool decode_cache = true;      ///< pre-decoded (pc, word)-tagged cache
    unsigned decode_cache_entries = 4096;
    /// Translated-basic-block cache + threaded dispatch (ISS fast path).
    bool block_cache = true;
    /// Director blocked-OSM skip memo (OSM timing engines).  Off by
    /// default: memo upkeep roughly cancels the skipped one-primitive
    /// condition walks in the bundled models (see director.hpp).
    bool director_batch = false;
    /// Hart count (multi-hart engines only; every single-hart engine
    /// ignores it, so harts=1 configurations are bit-identical to before
    /// the knob existed).
    unsigned harts = 1;
    /// Shared-memory consistency model for multi-hart engines.
    mem::memory_model memory_model = mem::memory_model::sc;
    /// Scheduler PRNG seed for multi-hart engines: the interleaving (and
    /// therefore the whole run) is a pure function of it.
    std::uint64_t sched_seed = 1;
};

/// Abstract execution engine: the adapter contract.
///
/// Lifecycle: construct (owns its own main memory), `load()` an image,
/// `run()` under a budget, then read state.  `load()` may be called again
/// to re-run a fresh program on the same engine instance where the
/// underlying model supports it (all built-ins do).
class engine {
public:
    virtual ~engine();

    /// Registry key ("iss", "sarm", ...).
    virtual std::string_view name() const = 0;

    /// Load `img` into the engine's memory and reset architectural state.
    virtual void load(const isa::program_image& img) = 0;

    /// Simulate until halt or `max_cycles` (instructions for the untimed
    /// ISS).  Returns cycles (steps) executed by this call.
    virtual std::uint64_t run(std::uint64_t max_cycles) = 0;

    // ---- architectural state ----
    virtual bool halted() const = 0;
    virtual std::uint32_t gpr(unsigned r) const = 0;
    virtual std::uint32_t fpr(unsigned r) const = 0;
    /// Next-fetch pc (informational: pipelined engines legitimately differ
    /// here after halt because of speculative fetch).
    virtual std::uint32_t pc() const = 0;
    virtual const std::string& console() const = 0;

    // ---- counters ----
    virtual std::uint64_t cycles() const = 0;
    virtual std::uint64_t retired() const = 0;
    double ipc() const {
        const auto c = cycles();
        return c == 0 ? 0.0 : static_cast<double>(retired()) / static_cast<double>(c);
    }

    // ---- capabilities ----
    /// Guest instruction set this engine executes.  Engines with different
    /// ISAs run different programs, so the differential harnesses only
    /// compare engines whose isa() strings match.
    virtual std::string_view isa() const { return "vr32"; }
    /// False for purely functional engines whose "cycles" are just retired
    /// instructions (the ISS); their timing must not be compared.
    virtual bool models_timing() const { return true; }
    /// False for engines without an FP register file (the SMT pipeline);
    /// FP programs are skipped / FPRs not compared for them.
    virtual bool executes_fp() const { return true; }
    /// True for engines that execute the atomic/ordering extension
    /// (lr.w/sc.w/amo*/fence); programs using it are skipped on the rest.
    virtual bool executes_amo() const { return false; }

    // ---- multi-hart view ----
    /// Number of harts this engine instance simulates (1 for every
    /// single-hart engine; the accessors below default to the single-hart
    /// state so callers can be hart-generic).
    virtual unsigned harts() const { return 1; }
    virtual std::uint32_t hart_gpr(unsigned /*hart*/, unsigned r) const { return gpr(r); }
    virtual std::uint32_t hart_fpr(unsigned /*hart*/, unsigned r) const { return fpr(r); }
    /// Next-fetch pc of one hart.
    virtual std::uint32_t hart_pc(unsigned /*hart*/) const { return pc(); }
    virtual std::uint64_t hart_retired(unsigned /*hart*/) const { return retired(); }
    virtual bool hart_halted(unsigned /*hart*/) const { return halted(); }

    // ---- checkpoint/restore ----
    /// What restore_state() guarantees: `exact` resumes bit-exactly
    /// (counters included), `architectural` resumes from the quiesced
    /// retirement boundary (registers/memory/console/retired match; a
    /// timing engine re-fills its pipeline, so cycle counts restart),
    /// `none` means save/restore throw.
    virtual checkpoint_level checkpoint_support() const { return checkpoint_level::none; }
    bool supports_checkpoint() const { return checkpoint_support() != checkpoint_level::none; }

    /// Snapshot the current state.  The engine itself is not disturbed:
    /// it continues from where it was.  Throws checkpoint_error when
    /// checkpoint_support() is none.
    virtual checkpoint save_state() const;

    /// Replace all state with `ck` (engine name need not match: any
    /// engine can warm-boot from another's architectural checkpoint).
    /// Throws checkpoint_error when unsupported or `ck` is unusable.
    virtual void restore_state(const checkpoint& ck);

    /// Step in 1-cycle increments until `retired() >= target` or halt.
    /// Returns retired() — superscalar engines may overshoot `target` by
    /// up to their retire bandwidth minus one.
    std::uint64_t run_until_retired(std::uint64_t target);

    /// Uniform statistics report.  Every engine's report carries the same
    /// core keys — engine.name, run.cycles, run.retired, run.ipc,
    /// run.halted, run.console_bytes — plus engine-specific sections, so
    /// `osm-run --json` has one stable schema regardless of engine.
    stats::report stats_report() const;

    /// OSM-framework hooks for the pipeline tracer; null for engines not
    /// built on the director/kernel (iss, hw, port).
    virtual core::director* director() { return nullptr; }
    virtual core::sim_kernel* kernel() { return nullptr; }

protected:
    /// Engine-specific report body; the uniform core keys are stamped on
    /// top by stats_report().
    virtual stats::report make_report() const;
};

}  // namespace osm::sim
