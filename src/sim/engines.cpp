// Adapters binding the built-in execution engines to the unified
// sim::engine contract, plus their registry registration.  Seven VR32
// engines, plus the two PPC32 front-end engines generated from
// src/isa/specs/ppc32.spec (isa() == "ppc32": the harnesses only diff
// them against each other).
//
// Each adapter owns its model *and* the main memory behind it, so an
// engine instance is a self-contained machine: tools and tests never
// juggle per-engine memory/config plumbing again.  Adding an eighth
// engine means writing one more adapter here (or registering one from
// user code) — see docs/engines.md.
//
// Checkpointing: the ISS snapshots directly (level `exact`).  The timing
// engines snapshot at the quiesced retirement boundary (level
// `architectural`) via *golden replay*: every engine retires the same
// architectural trajectory (the repo's differential-test invariant, with
// syscalls executing at retirement), so a fresh internal ISS replayed to
// the engine's retired() count reconstructs its registers, memory and
// console without having to drain or decode in-flight pipeline state
// (speculative stores, half-filled latches).  Restoring re-emplaces the
// model so caches, queues and kernels start pristine, then seeds the
// architectural state; cycle counts restart at the boundary.
#include <memory>
#include <optional>
#include <string>
#include <utility>

#include "adl/adl_sarm.hpp"
#include "baseline/hardwired_sarm.hpp"
#include "baseline/port_ppc.hpp"
#include "isa/iss.hpp"
#include "isa/mh_iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "ppc32/iss.hpp"
#include "sarm/sarm.hpp"
#include "sim/registry.hpp"
#include "smt/smt.hpp"

namespace osm::sim {
namespace {

sarm::sarm_config to_sarm_config(const engine_config& cfg) {
    sarm::sarm_config c;
    c.forwarding = cfg.forwarding;
    c.decode_cache = cfg.decode_cache;
    c.decode_cache_entries = cfg.decode_cache_entries;
    c.director_batch = cfg.director_batch;
    return c;
}

ppc750::p750_config to_p750_config(const engine_config& cfg) {
    ppc750::p750_config c;
    c.decode_cache = cfg.decode_cache;
    c.decode_cache_entries = cfg.decode_cache_entries;
    c.director_batch = cfg.director_batch;
    return c;
}

/// Golden replay: reconstruct the architectural state at retirement
/// boundary `retired` with a fresh ISS, starting either from the program
/// image (cold) or from the checkpoint the engine itself was restored
/// from (warm).  Valid because all engines share one architectural
/// trajectory and syscalls execute at retirement, so the replayed
/// console/registers/memory are exactly the engine's at that boundary.
checkpoint replay_architectural(std::string_view engine_name, const isa::program_image* img,
                                const checkpoint* base, std::uint64_t retired,
                                std::uint64_t cycles) {
    checkpoint ck;
    ck.engine = std::string(engine_name);
    ck.level = checkpoint_level::architectural;
    ck.retired = retired;
    ck.cycles = cycles;

    mem::main_memory m;
    isa::iss ref(m, false);
    if (base != nullptr) {
        restore_memory(m, base->pages);
        ref.restore_arch(base->arch, base->retired, base->console);
    } else if (img != nullptr) {
        ref.load(*img);
    } else {
        throw checkpoint_error(std::string(engine_name) + ": save_state before load");
    }
    if (retired < ref.instret())
        throw checkpoint_error(std::string(engine_name) + ": retired count behind base checkpoint");
    ref.run(retired - ref.instret());
    if (ref.instret() != retired)
        throw checkpoint_error(std::string(engine_name) + ": golden replay halted early");

    ck.arch = ref.state();
    ck.console = ref.host().console();
    ck.pages = snapshot_memory(m);
    return ck;
}

/// A one-instruction-free image whose only effect is setting the entry pc;
/// loaded into a restored model so its fetch engine starts at the boundary.
isa::program_image resume_stub(std::uint32_t pc) {
    isa::program_image stub;
    stub.entry = pc;
    return stub;
}

/// Single-hart engines cannot adopt a genuinely multi-hart snapshot (harts
/// 1..N-1 would be silently dropped); reject it up front.
void require_single_hart(const checkpoint& ck, std::string_view engine_name) {
    if (ck.harts.size() > 1)
        throw checkpoint_error(std::string(engine_name) +
                               ": checkpoint holds " + std::to_string(ck.harts.size()) +
                               " harts; restore it into a multi-hart engine");
    if (!ck.harts.empty() && !ck.harts[0].stores.empty())
        throw checkpoint_error(std::string(engine_name) +
                               ": checkpoint carries uncommitted buffered stores; "
                               "only a store-buffer (TSO) engine can adopt them");
}

/// Functional ISS: untimed golden model ("cycles" = retired instructions).
class iss_engine final : public engine {
public:
    explicit iss_engine(const engine_config& cfg)
        : sim_(mem_, cfg.decode_cache, cfg.block_cache) {}

    std::string_view name() const override { return "iss"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.state().halted; }
    std::uint32_t gpr(unsigned r) const override { return sim_.state().gpr[r]; }
    std::uint32_t fpr(unsigned r) const override { return sim_.state().fpr[r]; }
    std::uint32_t pc() const override { return sim_.state().pc; }
    const std::string& console() const override { return sim_.host().console(); }
    std::uint64_t cycles() const override { return sim_.instret(); }
    std::uint64_t retired() const override { return sim_.instret(); }
    bool models_timing() const override { return false; }
    bool executes_amo() const override { return true; }

    checkpoint_level checkpoint_support() const override { return checkpoint_level::exact; }
    checkpoint save_state() const override {
        checkpoint ck;
        ck.engine = std::string(name());
        ck.level = checkpoint_level::exact;
        ck.arch = sim_.state();
        ck.retired = sim_.instret();
        ck.cycles = sim_.instret();
        ck.console = sim_.host().console();
        ck.pages = snapshot_memory(mem_);
        // One hart record so an in-flight LR/SC reservation survives the
        // round trip (harts[0] mirrors arch/retired by the v2 contract).
        checkpoint_hart h0;
        h0.arch = sim_.state();
        h0.retired = sim_.instret();
        h0.resv_valid = sim_.reservation_valid();
        h0.resv_addr = sim_.reservation_addr();
        ck.harts.push_back(std::move(h0));
        return ck;
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.restore_arch(ck.arch, ck.retired, ck.console);
        if (ck.harts.size() == 1)
            sim_.set_reservation(ck.harts[0].resv_valid, ck.harts[0].resv_addr);
    }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    isa::iss sim_;
};

/// Multi-hart functional ISS: N harts over SC/TSO shared memory under a
/// seeded deterministic scheduler (isa/mh_iss.hpp).  Registered with its
/// own isa() string so the single-ISA differential harnesses never try to
/// diff a 4-hart machine against single-hart engines; the litmus harness
/// (fuzz/litmus.hpp) is its dedicated oracle instead.
class mh_iss_engine final : public engine {
public:
    explicit mh_iss_engine(const engine_config& cfg)
        : cfg_(cfg), sim_(mem_, cfg.harts, cfg.memory_model, cfg.sched_seed) {}

    std::string_view name() const override { return "mh-iss"; }
    std::string_view isa() const override { return "vr32-mh"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.all_halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.state(0).gpr[r]; }
    std::uint32_t fpr(unsigned r) const override { return sim_.state(0).fpr[r]; }
    std::uint32_t pc() const override { return sim_.state(0).pc; }
    const std::string& console() const override { return sim_.host().console(); }
    std::uint64_t cycles() const override { return sim_.total_retired(); }
    std::uint64_t retired() const override { return sim_.total_retired(); }
    bool models_timing() const override { return false; }
    bool executes_amo() const override { return true; }

    unsigned harts() const override { return sim_.harts(); }
    std::uint32_t hart_gpr(unsigned h, unsigned r) const override {
        return sim_.state(h).gpr[r];
    }
    std::uint32_t hart_fpr(unsigned h, unsigned r) const override {
        return sim_.state(h).fpr[r];
    }
    std::uint32_t hart_pc(unsigned h) const override { return sim_.state(h).pc; }
    std::uint64_t hart_retired(unsigned h) const override { return sim_.instret(h); }
    bool hart_halted(unsigned h) const override { return sim_.state(h).halted; }

    checkpoint_level checkpoint_support() const override { return checkpoint_level::exact; }
    checkpoint save_state() const override {
        checkpoint ck;
        ck.engine = std::string(name());
        ck.level = checkpoint_level::exact;
        ck.arch = sim_.state(0);
        ck.retired = sim_.total_retired();
        ck.cycles = sim_.total_retired();
        ck.console = sim_.host().console();
        ck.pages = snapshot_memory(mem_);
        ck.memory_model = static_cast<std::uint8_t>(sim_.model());
        ck.sched_rng = sim_.sched_rng().state();
        const auto& shared = sim_.shared();
        for (unsigned h = 0; h < sim_.harts(); ++h) {
            checkpoint_hart rec;
            rec.arch = sim_.state(h);
            rec.retired = sim_.instret(h);
            rec.resv_valid = shared.reservation_valid(h);
            rec.resv_addr = shared.reservation_addr(h);
            const auto& buf = shared.buffer(h);
            rec.stores.assign(buf.begin(), buf.end());
            ck.harts.push_back(std::move(rec));
        }
        return ck;
    }
    void restore_state(const checkpoint& ck) override {
        if (ck.harts.size() != sim_.harts())
            throw checkpoint_error("mh-iss: checkpoint holds " +
                                   std::to_string(ck.harts.size()) + " harts, engine has " +
                                   std::to_string(sim_.harts()));
        if (static_cast<mem::memory_model>(ck.memory_model) != sim_.model())
            throw checkpoint_error("mh-iss: checkpoint memory model mismatch");
        mem_.clear();
        restore_memory(mem_, ck.pages);
        for (unsigned h = 0; h < sim_.harts(); ++h) {
            const checkpoint_hart& rec = ck.harts[h];
            sim_.restore_hart(h, rec.arch, rec.retired);
            sim_.shared().set_buffer(h, rec.stores);
            sim_.shared().restore_reservation(h, rec.resv_valid, rec.resv_addr);
        }
        sim_.host().seed(ck.console);
        sim_.sched_rng().set_state(ck.sched_rng != 0 ? ck.sched_rng : cfg_.sched_seed);
    }

protected:
    stats::report make_report() const override {
        stats::report rep;
        rep.put("mh", "harts", static_cast<std::uint64_t>(sim_.harts()));
        rep.put("mh", "memory_model", std::string(mem::memory_model_name(sim_.model())));
        rep.put("mh", "sched_seed", cfg_.sched_seed);
        for (unsigned h = 0; h < sim_.harts(); ++h) {
            rep.put("mh", "hart" + std::to_string(h) + ".retired", sim_.instret(h));
        }
        return rep;
    }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    isa::mh_iss sim_;
};

/// OSM StrongARM-like 5-stage in-order pipeline (paper §5.1).
class sarm_engine final : public engine {
public:
    explicit sarm_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_sarm_config(cfg_), mem_);
    }

    std::string_view name() const override { return "sarm"; }
    void load(const isa::program_image& img) override {
        sim_->load(img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    bool halted() const override { return sim_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_->fpr(r); }
    std::uint32_t pc() const override { return sim_->fetch_pc(); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->stats().cycles; }
    std::uint64_t retired() const override { return base_retired_ + sim_->stats().retired; }
    core::director* director() override { return &sim_->dir(); }
    core::sim_kernel* kernel() override { return &sim_->kernel(); }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_sarm_config(cfg_), mem_);
        sim_->load(resume_stub(ck.arch.pc));
        sim_->restore_arch(ck.arch, ck.console);
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<sarm::sarm_model> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// Hand-coded cycle simulator of the SARM pipeline (SimpleScalar surrogate).
class hw_engine final : public engine {
public:
    explicit hw_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_sarm_config(cfg_), mem_);
    }

    std::string_view name() const override { return "hw"; }
    void load(const isa::program_image& img) override {
        sim_->load(img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    bool halted() const override { return sim_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_->fpr(r); }
    std::uint32_t pc() const override { return sim_->fetch_pc(); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->cycles(); }
    std::uint64_t retired() const override { return base_retired_ + sim_->retired(); }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_sarm_config(cfg_), mem_);
        sim_->load(resume_stub(ck.arch.pc));
        sim_->restore_arch(ck.arch, ck.console);
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<baseline::hardwired_sarm> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// SARM elaborated from OSM-DL text (the paper's §7 ADL direction).
class adl_engine final : public engine {
public:
    explicit adl_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_sarm_config(cfg_), mem_);
    }

    std::string_view name() const override { return "adl"; }
    void load(const isa::program_image& img) override {
        sim_->load(img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    bool halted() const override { return sim_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_->fpr(r); }
    std::uint32_t pc() const override { return sim_->fetch_pc(); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->stats().cycles; }
    std::uint64_t retired() const override { return base_retired_ + sim_->stats().retired; }
    core::director* director() override { return &sim_->dir(); }
    core::sim_kernel* kernel() override { return &sim_->kernel(); }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_sarm_config(cfg_), mem_);
        sim_->load(resume_stub(ck.arch.pc));
        sim_->restore_arch(ck.arch, ck.console);
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<adl::adl_sarm_model> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// SMT pipeline driven single-threaded (paper §6).  Integer-only: the
/// model has no FP register file, so executes_fp() is false and FP
/// programs are skipped by the differential harnesses.
class smt_engine final : public engine {
public:
    explicit smt_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_smt_config(cfg_), mem_);
    }

    std::string_view name() const override { return "smt"; }
    void load(const isa::program_image& img) override {
        sim_->load(0, img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    // drained(), not all_done(): the latter flips at fetch of the exit
    // syscall, while it (and older ops) are still in flight.
    bool halted() const override { return sim_->drained(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(0, r); }
    std::uint32_t fpr(unsigned) const override { return 0; }
    std::uint32_t pc() const override { return sim_->pc(0); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->stats().cycles; }
    std::uint64_t retired() const override {
        return base_retired_ + sim_->stats().total_retired();
    }
    bool executes_fp() const override { return false; }
    core::director* director() override { return &sim_->dir(); }
    core::sim_kernel* kernel() override { return &sim_->kernel(); }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_smt_config(cfg_), mem_);
        sim_->restore_arch(ck.arch, ck.console);  // marks thread 0 loaded
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    static smt::smt_config to_smt_config(const engine_config& cfg) {
        smt::smt_config c;
        c.threads = 1;
        c.forwarding = cfg.forwarding;
        c.decode_cache = cfg.decode_cache;
        c.decode_cache_entries = cfg.decode_cache_entries;
        c.director_batch = cfg.director_batch;
        return c;
    }

    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<smt::smt_model> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// OSM PowerPC-750-like dual-issue out-of-order superscalar (paper §5.2).
class p750_engine final : public engine {
public:
    explicit p750_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_p750_config(cfg_), mem_);
    }

    std::string_view name() const override { return "p750"; }
    void load(const isa::program_image& img) override {
        sim_->load(img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    bool halted() const override { return sim_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_->fpr(r); }
    std::uint32_t pc() const override { return sim_->fetch_pc(); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->stats().cycles; }
    std::uint64_t retired() const override { return base_retired_ + sim_->stats().retired; }
    core::director* director() override { return &sim_->dir(); }
    core::sim_kernel* kernel() override { return &sim_->kernel(); }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_p750_config(cfg_), mem_);
        sim_->load(resume_stub(ck.arch.pc));
        sim_->restore_arch(ck.arch, ck.console);
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<ppc750::p750_model> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// Port/wire discrete-event superscalar (SystemC surrogate).
class port_engine final : public engine {
public:
    explicit port_engine(const engine_config& cfg) : cfg_(cfg) {
        sim_.emplace(to_p750_config(cfg_), mem_);
    }

    std::string_view name() const override { return "port"; }
    void load(const isa::program_image& img) override {
        sim_->load(img);
        image_ = img;
        has_program_ = true;
        base_.reset();
        base_retired_ = 0;
    }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_->run(max_cycles); }
    bool halted() const override { return sim_->halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_->gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_->fpr(r); }
    std::uint32_t pc() const override { return sim_->fetch_pc(); }
    const std::string& console() const override { return sim_->console(); }
    std::uint64_t cycles() const override { return sim_->stats().cycles; }
    std::uint64_t retired() const override { return base_retired_ + sim_->stats().retired; }

    checkpoint_level checkpoint_support() const override {
        return checkpoint_level::architectural;
    }
    checkpoint save_state() const override {
        return replay_architectural(name(), has_program_ ? &image_ : nullptr,
                                    base_ ? &*base_ : nullptr, retired(), cycles());
    }
    void restore_state(const checkpoint& ck) override {
        require_single_hart(ck, name());
        mem_.clear();
        restore_memory(mem_, ck.pages);
        sim_.emplace(to_p750_config(cfg_), mem_);
        sim_->load(resume_stub(ck.arch.pc));
        sim_->restore_arch(ck.arch, ck.console);
        base_ = ck;
        base_retired_ = ck.retired;
    }

protected:
    stats::report make_report() const override { return sim_->make_report(); }

private:
    engine_config cfg_;
    mem::main_memory mem_;
    std::optional<baseline::port_ppc> sim_;
    isa::program_image image_;
    bool has_program_ = false;
    std::optional<checkpoint> base_;
    std::uint64_t base_retired_ = 0;
};

/// PPC32 functional golden model (spec-generated decoder, big-endian).
class ppc32_engine final : public engine {
public:
    explicit ppc32_engine(const engine_config&) : sim_(mem_) {}

    std::string_view name() const override { return "ppc32"; }
    std::string_view isa() const override { return "ppc32"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.state().halted; }
    std::uint32_t gpr(unsigned r) const override { return sim_.state().r[r]; }
    std::uint32_t fpr(unsigned) const override { return 0; }
    std::uint32_t pc() const override { return sim_.state().pc; }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.instret(); }
    std::uint64_t retired() const override { return sim_.instret(); }
    bool models_timing() const override { return false; }
    bool executes_fp() const override { return false; }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    ppc32::ppc_iss sim_;
};

/// PPC32 dual-issue in-order timing model over the same semantics.
class ppc32_750_engine final : public engine {
public:
    explicit ppc32_750_engine(const engine_config&) : sim_(mem_) {}

    std::string_view name() const override { return "ppc32-750"; }
    std::string_view isa() const override { return "ppc32"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.state().halted; }
    std::uint32_t gpr(unsigned r) const override { return sim_.state().r[r]; }
    std::uint32_t fpr(unsigned) const override { return 0; }
    std::uint32_t pc() const override { return sim_.state().pc; }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.cycles(); }
    std::uint64_t retired() const override { return sim_.instret(); }
    bool executes_fp() const override { return false; }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    ppc32::ppc_750 sim_;
};

template <typename Engine>
engine_registry::entry make_entry(std::string name, std::string description,
                                  std::string isa = "vr32") {
    return {std::move(name), std::move(description),
            [](const engine_config& cfg) -> std::unique_ptr<engine> {
                return std::make_unique<Engine>(cfg);
            },
            std::move(isa)};
}

}  // namespace

void register_builtin_engines(engine_registry& r) {
    r.add(make_entry<iss_engine>("iss", "functional instruction-set simulator (golden model)"));
    r.add(make_entry<mh_iss_engine>(
        "mh-iss", "multi-hart functional ISS (SC/TSO shared memory, seeded scheduler)",
        "vr32-mh"));
    r.add(make_entry<sarm_engine>("sarm", "OSM StrongARM-like 5-stage in-order pipeline (paper 5.1)"));
    r.add(make_entry<hw_engine>("hw", "hand-coded cycle simulator of the SARM pipeline (SimpleScalar surrogate)"));
    r.add(make_entry<adl_engine>("adl", "SARM elaborated from OSM-DL text (paper 7)"));
    r.add(make_entry<smt_engine>("smt", "SMT pipeline run single-threaded (paper 6, integer only)"));
    r.add(make_entry<p750_engine>("p750", "OSM PowerPC-750-like out-of-order superscalar (paper 5.2)"));
    r.add(make_entry<port_engine>("port", "port/wire discrete-event superscalar (SystemC surrogate)"));
    r.add(make_entry<ppc32_engine>(
        "ppc32", "PPC32 functional ISS (spec-generated decoder, big-endian)", "ppc32"));
    r.add(make_entry<ppc32_750_engine>(
        "ppc32-750", "PPC32 dual-issue in-order timing model (750-style)", "ppc32"));
}

}  // namespace osm::sim
