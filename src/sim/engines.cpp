// Adapters binding the seven built-in execution engines to the unified
// sim::engine contract, plus their registry registration.
//
// Each adapter owns its model *and* the main memory behind it, so an
// engine instance is a self-contained machine: tools and tests never
// juggle per-engine memory/config plumbing again.  Adding an eighth
// engine means writing one more adapter here (or registering one from
// user code) — see docs/engines.md.
#include <memory>
#include <string>
#include <utility>

#include "adl/adl_sarm.hpp"
#include "baseline/hardwired_sarm.hpp"
#include "baseline/port_ppc.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "sim/registry.hpp"
#include "smt/smt.hpp"

namespace osm::sim {
namespace {

sarm::sarm_config to_sarm_config(const engine_config& cfg) {
    sarm::sarm_config c;
    c.forwarding = cfg.forwarding;
    c.decode_cache = cfg.decode_cache;
    c.decode_cache_entries = cfg.decode_cache_entries;
    return c;
}

ppc750::p750_config to_p750_config(const engine_config& cfg) {
    ppc750::p750_config c;
    c.decode_cache = cfg.decode_cache;
    c.decode_cache_entries = cfg.decode_cache_entries;
    return c;
}

/// Functional ISS: untimed golden model ("cycles" = retired instructions).
class iss_engine final : public engine {
public:
    explicit iss_engine(const engine_config& cfg) : sim_(mem_, cfg.decode_cache) {}

    std::string_view name() const override { return "iss"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.state().halted; }
    std::uint32_t gpr(unsigned r) const override { return sim_.state().gpr[r]; }
    std::uint32_t fpr(unsigned r) const override { return sim_.state().fpr[r]; }
    std::uint32_t pc() const override { return sim_.state().pc; }
    const std::string& console() const override { return sim_.host().console(); }
    std::uint64_t cycles() const override { return sim_.instret(); }
    std::uint64_t retired() const override { return sim_.instret(); }
    bool models_timing() const override { return false; }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    isa::iss sim_;
};

/// OSM StrongARM-like 5-stage in-order pipeline (paper §5.1).
class sarm_engine final : public engine {
public:
    explicit sarm_engine(const engine_config& cfg) : sim_(to_sarm_config(cfg), mem_) {}

    std::string_view name() const override { return "sarm"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_.fpr(r); }
    std::uint32_t pc() const override { return sim_.fetch_pc(); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.stats().cycles; }
    std::uint64_t retired() const override { return sim_.stats().retired; }
    core::director* director() override { return &sim_.dir(); }
    core::sim_kernel* kernel() override { return &sim_.kernel(); }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    sarm::sarm_model sim_;
};

/// Hand-coded cycle simulator of the SARM pipeline (SimpleScalar surrogate).
class hw_engine final : public engine {
public:
    explicit hw_engine(const engine_config& cfg) : sim_(to_sarm_config(cfg), mem_) {}

    std::string_view name() const override { return "hw"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_.fpr(r); }
    std::uint32_t pc() const override { return sim_.fetch_pc(); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.cycles(); }
    std::uint64_t retired() const override { return sim_.retired(); }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    baseline::hardwired_sarm sim_;
};

/// SARM elaborated from OSM-DL text (the paper's §7 ADL direction).
class adl_engine final : public engine {
public:
    explicit adl_engine(const engine_config& cfg) : sim_(to_sarm_config(cfg), mem_) {}

    std::string_view name() const override { return "adl"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_.fpr(r); }
    std::uint32_t pc() const override { return sim_.fetch_pc(); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.stats().cycles; }
    std::uint64_t retired() const override { return sim_.stats().retired; }
    core::director* director() override { return &sim_.dir(); }
    core::sim_kernel* kernel() override { return &sim_.kernel(); }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    adl::adl_sarm_model sim_;
};

/// SMT pipeline driven single-threaded (paper §6).  Integer-only: the
/// model has no FP register file, so executes_fp() is false and FP
/// programs are skipped by the differential harnesses.
class smt_engine final : public engine {
public:
    explicit smt_engine(const engine_config& cfg) : sim_(to_smt_config(cfg), mem_) {}

    std::string_view name() const override { return "smt"; }
    void load(const isa::program_image& img) override { sim_.load(0, img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.all_done(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(0, r); }
    std::uint32_t fpr(unsigned) const override { return 0; }
    std::uint32_t pc() const override { return sim_.pc(0); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.stats().cycles; }
    std::uint64_t retired() const override { return sim_.stats().total_retired(); }
    bool executes_fp() const override { return false; }
    core::director* director() override { return &sim_.dir(); }
    core::sim_kernel* kernel() override { return &sim_.kernel(); }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    static smt::smt_config to_smt_config(const engine_config& cfg) {
        smt::smt_config c;
        c.threads = 1;
        c.forwarding = cfg.forwarding;
        c.decode_cache = cfg.decode_cache;
        c.decode_cache_entries = cfg.decode_cache_entries;
        return c;
    }

    mem::main_memory mem_;
    smt::smt_model sim_;
};

/// OSM PowerPC-750-like dual-issue out-of-order superscalar (paper §5.2).
class p750_engine final : public engine {
public:
    explicit p750_engine(const engine_config& cfg) : sim_(to_p750_config(cfg), mem_) {}

    std::string_view name() const override { return "p750"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_.fpr(r); }
    std::uint32_t pc() const override { return sim_.fetch_pc(); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.stats().cycles; }
    std::uint64_t retired() const override { return sim_.stats().retired; }
    core::director* director() override { return &sim_.dir(); }
    core::sim_kernel* kernel() override { return &sim_.kernel(); }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    ppc750::p750_model sim_;
};

/// Port/wire discrete-event superscalar (SystemC surrogate).
class port_engine final : public engine {
public:
    explicit port_engine(const engine_config& cfg) : sim_(to_p750_config(cfg), mem_) {}

    std::string_view name() const override { return "port"; }
    void load(const isa::program_image& img) override { sim_.load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override { return sim_.run(max_cycles); }
    bool halted() const override { return sim_.halted(); }
    std::uint32_t gpr(unsigned r) const override { return sim_.gpr(r); }
    std::uint32_t fpr(unsigned r) const override { return sim_.fpr(r); }
    std::uint32_t pc() const override { return sim_.fetch_pc(); }
    const std::string& console() const override { return sim_.console(); }
    std::uint64_t cycles() const override { return sim_.stats().cycles; }
    std::uint64_t retired() const override { return sim_.stats().retired; }

protected:
    stats::report make_report() const override { return sim_.make_report(); }

private:
    mem::main_memory mem_;
    baseline::port_ppc sim_;
};

template <typename Engine>
engine_registry::entry make_entry(std::string name, std::string description) {
    return {std::move(name), std::move(description),
            [](const engine_config& cfg) -> std::unique_ptr<engine> {
                return std::make_unique<Engine>(cfg);
            }};
}

}  // namespace

void register_builtin_engines(engine_registry& r) {
    r.add(make_entry<iss_engine>("iss", "functional instruction-set simulator (golden model)"));
    r.add(make_entry<sarm_engine>("sarm", "OSM StrongARM-like 5-stage in-order pipeline (paper 5.1)"));
    r.add(make_entry<hw_engine>("hw", "hand-coded cycle simulator of the SARM pipeline (SimpleScalar surrogate)"));
    r.add(make_entry<adl_engine>("adl", "SARM elaborated from OSM-DL text (paper 7)"));
    r.add(make_entry<smt_engine>("smt", "SMT pipeline run single-threaded (paper 6, integer only)"));
    r.add(make_entry<p750_engine>("p750", "OSM PowerPC-750-like out-of-order superscalar (paper 5.2)"));
    r.add(make_entry<port_engine>("port", "port/wire discrete-event superscalar (SystemC surrogate)"));
}

}  // namespace osm::sim
