#include "sim/checkpoint.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/atomic_file.hpp"

namespace osm::sim {
namespace {

constexpr char k_magic[8] = {'O', 'S', 'M', 'C', 'K', 'P', 'T', '\0'};

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// ---- little-endian writer ---------------------------------------------------

struct writer {
    std::vector<std::uint8_t> buf;

    void u8(std::uint8_t v) { buf.push_back(v); }
    void u32(std::uint32_t v) {
        for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void u64(std::uint64_t v) {
        for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
    void bytes(const void* p, std::size_t n) {
        if (n == 0) return;  // empty vectors may hand us data() == nullptr
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf.insert(buf.end(), b, b + n);
    }
};

// ---- bounds-checked little-endian reader ------------------------------------

struct reader {
    const std::uint8_t* data;
    std::size_t size;
    std::size_t pos = 0;

    void need(std::size_t n) const {
        if (size - pos < n) throw checkpoint_error("checkpoint truncated");
    }
    std::uint8_t u8() {
        need(1);
        return data[pos++];
    }
    std::uint32_t u32() {
        need(4);
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data[pos++]) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        need(8);
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data[pos++]) << (8 * i);
        return v;
    }
    void bytes(void* p, std::size_t n) {
        if (n == 0) return;  // empty destinations may hand us p == nullptr
        need(n);
        std::memcpy(p, data + pos, n);
        pos += n;
    }
};

void json_escape(std::string& out, const std::string& s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char hex[8];
                    std::snprintf(hex, sizeof hex, "\\u%04x", c);
                    out += hex;
                } else {
                    out += c;
                }
        }
    }
}

}  // namespace

const char* to_string(checkpoint_level level) {
    switch (level) {
        case checkpoint_level::none: return "none";
        case checkpoint_level::architectural: return "architectural";
        case checkpoint_level::exact: return "exact";
    }
    return "?";
}

std::vector<std::uint8_t> serialize(const checkpoint& ck) {
    writer w;
    w.bytes(k_magic, sizeof k_magic);
    w.u32(checkpoint::format_version);
    w.u8(static_cast<std::uint8_t>(ck.level));
    w.u32(static_cast<std::uint32_t>(ck.engine.size()));
    w.bytes(ck.engine.data(), ck.engine.size());
    w.u32(ck.arch.pc);
    w.u8(ck.arch.halted ? 1 : 0);
    for (const std::uint32_t r : ck.arch.gpr) w.u32(r);
    for (const std::uint32_t r : ck.arch.fpr) w.u32(r);
    w.u64(ck.retired);
    w.u64(ck.cycles);
    w.u64(ck.console.size());
    w.bytes(ck.console.data(), ck.console.size());
    w.u32(static_cast<std::uint32_t>(ck.pages.size()));
    for (const checkpoint_page& p : ck.pages) {
        w.u32(p.base);
        w.u32(static_cast<std::uint32_t>(p.bytes.size()));
        w.bytes(p.bytes.data(), p.bytes.size());
    }
    w.u64(ck.micro.size());
    w.bytes(ck.micro.data(), ck.micro.size());
    // ---- multi-hart section (v2) ----
    w.u8(ck.memory_model);
    w.u64(ck.sched_rng);
    w.u32(static_cast<std::uint32_t>(ck.harts.size()));
    for (const checkpoint_hart& h : ck.harts) {
        w.u32(h.arch.pc);
        w.u8(h.arch.halted ? 1 : 0);
        for (const std::uint32_t r : h.arch.gpr) w.u32(r);
        for (const std::uint32_t r : h.arch.fpr) w.u32(r);
        w.u64(h.retired);
        w.u8(h.resv_valid ? 1 : 0);
        w.u32(h.resv_addr);
        w.u32(static_cast<std::uint32_t>(h.stores.size()));
        for (const mem::store_entry& e : h.stores) {
            w.u32(e.addr);
            w.u8(e.size);
            w.u32(e.data);
        }
    }
    w.u64(fnv1a64(w.buf.data(), w.buf.size()));
    return w.buf;
}

checkpoint deserialize(const std::uint8_t* data, std::size_t n) {
    if (n < sizeof k_magic + 8) throw checkpoint_error("checkpoint truncated");
    if (std::memcmp(data, k_magic, sizeof k_magic) != 0)
        throw checkpoint_error("bad checkpoint magic");
    const std::uint64_t want = fnv1a64(data, n - 8);
    reader tail{data + n - 8, 8};
    if (tail.u64() != want) throw checkpoint_error("checkpoint checksum mismatch");

    reader r{data, n - 8, sizeof k_magic};
    const std::uint32_t version = r.u32();
    if (version != checkpoint::format_version)
        throw checkpoint_error("unsupported checkpoint version " + std::to_string(version));

    checkpoint ck;
    const std::uint8_t level = r.u8();
    if (level > static_cast<std::uint8_t>(checkpoint_level::exact))
        throw checkpoint_error("bad checkpoint level");
    ck.level = static_cast<checkpoint_level>(level);
    ck.engine.resize(r.u32());
    r.bytes(ck.engine.data(), ck.engine.size());
    ck.arch.pc = r.u32();
    ck.arch.halted = r.u8() != 0;
    for (std::uint32_t& g : ck.arch.gpr) g = r.u32();
    for (std::uint32_t& f : ck.arch.fpr) f = r.u32();
    ck.retired = r.u64();
    ck.cycles = r.u64();
    ck.console.resize(static_cast<std::size_t>(r.u64()));
    r.bytes(ck.console.data(), ck.console.size());
    const std::uint32_t npages = r.u32();
    ck.pages.reserve(npages);
    std::uint64_t prev_base = 0;
    for (std::uint32_t i = 0; i < npages; ++i) {
        checkpoint_page p;
        p.base = r.u32();
        if (i > 0 && p.base <= prev_base)
            throw checkpoint_error("checkpoint pages out of order");
        prev_base = p.base;
        p.bytes.resize(r.u32());
        if (p.bytes.empty() || p.bytes.size() > mem::main_memory::page_size)
            throw checkpoint_error("bad checkpoint page size");
        r.bytes(p.bytes.data(), p.bytes.size());
        ck.pages.push_back(std::move(p));
    }
    ck.micro.resize(static_cast<std::size_t>(r.u64()));
    r.bytes(ck.micro.data(), ck.micro.size());
    ck.memory_model = r.u8();
    if (ck.memory_model > static_cast<std::uint8_t>(mem::memory_model::tso))
        throw checkpoint_error("bad checkpoint memory model");
    ck.sched_rng = r.u64();
    const std::uint32_t nharts = r.u32();
    if (nharts > 64) throw checkpoint_error("bad checkpoint hart count");
    ck.harts.reserve(nharts);
    for (std::uint32_t i = 0; i < nharts; ++i) {
        checkpoint_hart h;
        h.arch.pc = r.u32();
        h.arch.halted = r.u8() != 0;
        for (std::uint32_t& g : h.arch.gpr) g = r.u32();
        for (std::uint32_t& f : h.arch.fpr) f = r.u32();
        h.retired = r.u64();
        h.resv_valid = r.u8() != 0;
        h.resv_addr = r.u32();
        const std::uint32_t nstores = r.u32();
        r.need(static_cast<std::size_t>(nstores) * 9);  // u32 + u8 + u32 each
        h.stores.resize(nstores);
        for (mem::store_entry& e : h.stores) {
            e.addr = r.u32();
            e.size = r.u8();
            if (e.size != 1 && e.size != 2 && e.size != 4)
                throw checkpoint_error("bad checkpoint store-buffer entry");
            e.data = r.u32();
        }
        ck.harts.push_back(std::move(h));
    }
    if (r.pos != r.size) throw checkpoint_error("trailing bytes in checkpoint");
    return ck;
}

checkpoint deserialize(const std::vector<std::uint8_t>& buf) {
    return deserialize(buf.data(), buf.size());
}

std::string sidecar_json(const checkpoint& ck) {
    const std::vector<std::uint8_t> bin = serialize(ck);
    std::uint64_t mem_bytes = 0;
    for (const checkpoint_page& p : ck.pages) mem_bytes += p.bytes.size();

    std::string js = "{\n";
    js += "  \"format_version\": " + std::to_string(checkpoint::format_version) + ",\n";
    js += "  \"engine\": \"";
    json_escape(js, ck.engine);
    js += "\",\n";
    js += "  \"level\": \"" + std::string(to_string(ck.level)) + "\",\n";
    {
        char pc[16];
        std::snprintf(pc, sizeof pc, "0x%08x", ck.arch.pc);
        js += "  \"pc\": \"" + std::string(pc) + "\",\n";
    }
    js += "  \"halted\": " + std::string(ck.arch.halted ? "true" : "false") + ",\n";
    js += "  \"retired\": " + std::to_string(ck.retired) + ",\n";
    js += "  \"cycles\": " + std::to_string(ck.cycles) + ",\n";
    js += "  \"console_bytes\": " + std::to_string(ck.console.size()) + ",\n";
    js += "  \"console\": \"";
    json_escape(js, ck.console);
    js += "\",\n";
    js += "  \"memory_pages\": " + std::to_string(ck.pages.size()) + ",\n";
    js += "  \"memory_bytes\": " + std::to_string(mem_bytes) + ",\n";
    js += "  \"micro_bytes\": " + std::to_string(ck.micro.size()) + ",\n";
    js += "  \"memory_model\": \"" +
          std::string(mem::memory_model_name(static_cast<mem::memory_model>(ck.memory_model))) +
          "\",\n";
    js += "  \"harts\": " + std::to_string(ck.harts.size()) + ",\n";
    {
        std::uint64_t buffered = 0;
        for (const checkpoint_hart& h : ck.harts) buffered += h.stores.size();
        js += "  \"buffered_stores\": " + std::to_string(buffered) + ",\n";
    }
    js += "  \"binary_bytes\": " + std::to_string(bin.size()) + ",\n";
    {
        char sum[24];
        std::snprintf(sum, sizeof sum, "%016llx",
                      static_cast<unsigned long long>(fnv1a64(bin.data(), bin.size() - 8)));
        js += "  \"fnv1a64\": \"" + std::string(sum) + "\"\n";
    }
    js += "}\n";
    return js;
}

void save_checkpoint_file(const checkpoint& ck, const std::string& path) {
    const std::vector<std::uint8_t> bin = serialize(ck);
    // Atomic replacement: a checkpoint is a resume point, so a writer killed
    // mid-save must leave the previous complete snapshot, not a torn one.
    try {
        common::atomic_write_file(path, bin.data(), bin.size());
        common::atomic_write_file(path + ".json", sidecar_json(ck));
    } catch (const std::runtime_error& e) {
        throw checkpoint_error(e.what());
    }
}

checkpoint load_checkpoint_file(const std::string& path) {
    std::ifstream f(path, std::ios::binary);
    if (!f) throw checkpoint_error("cannot open " + path);
    std::vector<std::uint8_t> buf((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
    return deserialize(buf);
}

std::vector<checkpoint_page> snapshot_memory(const mem::main_memory& m) {
    std::vector<checkpoint_page> pages;
    for (const std::uint32_t base : m.resident_page_bases()) {
        const std::uint8_t* data = m.page_data(base);
        std::size_t n = mem::main_memory::page_size;
        while (n > 0 && data[n - 1] == 0) --n;
        if (n == 0) continue;  // all-zero page: indistinguishable from absent
        checkpoint_page p;
        p.base = base;
        p.bytes.assign(data, data + n);
        pages.push_back(std::move(p));
    }
    return pages;
}

void restore_memory(mem::main_memory& m, const std::vector<checkpoint_page>& pages) {
    for (const checkpoint_page& p : pages) m.load(p.base, p.bytes.data(), p.bytes.size());
}

}  // namespace osm::sim
