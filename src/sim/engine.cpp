#include "sim/engine.hpp"

namespace osm::sim {

engine::~engine() = default;

stats::report engine::make_report() const { return {}; }

checkpoint engine::save_state() const {
    throw checkpoint_error(std::string(name()) + " does not support checkpointing");
}

void engine::restore_state(const checkpoint&) {
    throw checkpoint_error(std::string(name()) + " does not support checkpointing");
}

std::uint64_t engine::run_until_retired(std::uint64_t target) {
    while (!halted() && retired() < target) {
        if (run(1) == 0 && retired() < target) break;  // wedged: avoid spinning
    }
    return retired();
}

stats::report engine::stats_report() const {
    stats::report r = make_report();
    r.put("engine", "name", std::string(name()));
    r.put("run", "cycles", cycles());
    r.put("run", "retired", retired());
    r.put("run", "ipc", ipc());
    r.put("run", "halted", static_cast<std::uint64_t>(halted() ? 1 : 0));
    r.put("run", "console_bytes", static_cast<std::uint64_t>(console().size()));
    return r;
}

}  // namespace osm::sim
