#include "sim/engine.hpp"

namespace osm::sim {

engine::~engine() = default;

stats::report engine::make_report() const { return {}; }

stats::report engine::stats_report() const {
    stats::report r = make_report();
    r.put("engine", "name", std::string(name()));
    r.put("run", "cycles", cycles());
    r.put("run", "retired", retired());
    r.put("run", "ipc", ipc());
    r.put("run", "halted", static_cast<std::uint64_t>(halted() ? 1 : 0));
    r.put("run", "console_bytes", static_cast<std::uint64_t>(console().size()));
    return r;
}

}  // namespace osm::sim
