// Name-keyed engine registry.
//
// The built-in engines self-register on first use; external code can
// add more (docs/engines.md walks through adding one).  Tools and
// tests resolve engines by name, so an unknown `--engine` value fails with
// the registered list instead of silently falling through.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace osm::sim {

/// Thrown by create() for a name with no registered factory; carries the
/// registered list in what().
class unknown_engine : public std::runtime_error {
public:
    explicit unknown_engine(const std::string& what) : std::runtime_error(what) {}
};

class engine_registry {
public:
    using factory = std::function<std::unique_ptr<engine>(const engine_config&)>;

    struct entry {
        std::string name;         ///< registry key, also engine::name()
        std::string description;  ///< one-line summary for --list-engines
        factory make;
        std::string isa = "vr32";  ///< guest ISA, matches engine::isa()
    };

    /// Process-wide registry, populated with the built-in engines on first
    /// access.
    static engine_registry& instance();

    /// Register (or replace, keyed by name) an engine factory.
    ///
    /// Thread-safety: lookups (create/find/names/...) may run concurrently
    /// from any number of worker threads — the serve layer's workers create
    /// engines freely.  add() is serialized against them, but *replacing* an
    /// entry mutates it in place, so registration of new engines must
    /// happen-before any worker pool that resolves them starts (all tools and
    /// tests register during single-threaded setup).
    void add(entry e);

    /// Instantiate `name`; throws unknown_engine listing what is registered.
    std::unique_ptr<engine> create(const std::string& name,
                                   const engine_config& cfg = {}) const;

    /// Entries live for the process lifetime (deque storage: add() never
    /// invalidates previously returned pointers).
    const entry* find(const std::string& name) const;
    bool contains(const std::string& name) const { return find(name) != nullptr; }

    /// Registered names in registration order (built-ins first).
    std::vector<std::string> names() const;
    /// Names restricted to one guest ISA (what "--diff all" and the fuzz
    /// harnesses expand to for a given program's ISA).
    std::vector<std::string> names_for_isa(std::string_view isa) const;
    const std::deque<entry>& entries() const noexcept { return entries_; }

private:
    mutable std::mutex mu_;
    std::deque<entry> entries_;
};

/// Convenience: engine_registry::instance().create(name, cfg).
std::unique_ptr<engine> make_engine(const std::string& name,
                                    const engine_config& cfg = {});

}  // namespace osm::sim
