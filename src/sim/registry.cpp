#include "sim/registry.hpp"

#include <sstream>

namespace osm::sim {

// Defined in engines.cpp; installs the built-in adapters.
void register_builtin_engines(engine_registry& r);

engine_registry& engine_registry::instance() {
    // Construct-on-first-use with eager built-in registration: the built-ins
    // live in this library, so no static-initializer ordering or dead
    // registration-object stripping can lose them.
    static engine_registry* reg = [] {
        auto* r = new engine_registry;
        register_builtin_engines(*r);
        return r;
    }();
    return *reg;
}

void engine_registry::add(entry e) {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& existing : entries_) {
        if (existing.name == e.name) {
            existing = std::move(e);
            return;
        }
    }
    entries_.push_back(std::move(e));
}

const engine_registry::entry* engine_registry::find(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& e : entries_) {
        if (e.name == name) return &e;
    }
    return nullptr;
}

std::unique_ptr<engine> engine_registry::create(const std::string& name,
                                                const engine_config& cfg) const {
    // Copy the factory under the lock, construct outside it: engine
    // construction can be arbitrarily heavy (pipeline models allocate), and
    // serve workers create engines concurrently.
    factory make;
    {
        const std::lock_guard<std::mutex> lock(mu_);
        for (const auto& e : entries_) {
            if (e.name == name) {
                make = e.make;
                break;
            }
        }
    }
    if (make) return make(cfg);
    std::ostringstream msg;
    msg << "unknown engine '" << name << "' (registered:";
    for (const auto& n : names()) msg << ' ' << n;
    msg << ')';
    throw unknown_engine(msg.str());
}

std::vector<std::string> engine_registry::names() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.name);
    return out;
}

std::vector<std::string> engine_registry::names_for_isa(std::string_view isa) const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const auto& e : entries_) {
        if (e.isa == isa) out.push_back(e.name);
    }
    return out;
}

std::unique_ptr<engine> make_engine(const std::string& name, const engine_config& cfg) {
    return engine_registry::instance().create(name, cfg);
}

}  // namespace osm::sim
