#include "serve/worker_pool.hpp"

#include <chrono>
#include <thread>

#include <time.h>

namespace osm::serve {

namespace {

std::int64_t steady_ms() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

double thread_cpu_ms() {
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0;
    return static_cast<double>(ts.tv_sec) * 1e3 + static_cast<double>(ts.tv_nsec) / 1e6;
}

}  // namespace

worker_pool::worker_pool(options opt, job_queue& queue, run_fn run)
    : opt_(opt), queue_(queue), run_(std::move(run)) {
    opt_.workers = std::max(1u, opt_.workers);
    stats_.resize(opt_.workers);
    watched_.reserve(opt_.workers);
    for (unsigned i = 0; i < opt_.workers; ++i) {
        watched_.push_back(std::make_unique<watched>());
    }
}

void worker_pool::record_timeout(const job& j, std::string detail) {
    std::lock_guard<std::mutex> lock(timeout_mu_);
    timeouts_.push_back({j.id, j.kind, j.seed, std::move(detail)});
}

void worker_pool::worker_main(unsigned shard) {
    worker_stats& st = stats_[shard];
    watched& w = *watched_[shard];
    const std::int64_t wall_start = steady_ms();
    const double cpu_start = thread_cpu_ms();

    for (;;) {
        auto j = queue_.pop(shard);
        if (!j) break;
        if (j->origin_shard != shard) ++st.steals;
        if (j->resumes > 0) ++st.resumes;
        w.preempt.store(false, std::memory_order_release);
        w.job_start_ms.store(steady_ms(), std::memory_order_release);
        try {
            run_(*j, shard, w.preempt);
            ++st.jobs;
            queue_.finish();
        } catch (const job_preempted&) {
            ++st.preempts;
            ++j->resumes;
            if (j->resumes > opt_.max_resumes) {
                // The reason string is deterministic; the *occurrence* of a
                // resume-budget timeout depends on watchdog timing, which
                // is why timeouts live in the serve report, never in the
                // byte-compared campaign summary.
                record_timeout(*j, "resume budget exhausted after " +
                                       std::to_string(j->resumes) + " preemptions");
                ++st.jobs;
                queue_.finish();
            } else {
                queue_.push_resume(shard, std::move(*j));
            }
        } catch (const job_wedged& wj) {
            record_timeout(*j, "engine " + wj.engine + " wedged at retired=" +
                                   std::to_string(wj.retired));
            ++st.jobs;
            queue_.finish();
        } catch (const std::exception& e) {
            record_timeout(*j, std::string("job failed: ") + e.what());
            ++st.jobs;
            queue_.finish();
        }
        w.job_start_ms.store(0, std::memory_order_release);
    }

    st.wall_ms = static_cast<double>(steady_ms() - wall_start);
    st.cpu_ms = thread_cpu_ms() - cpu_start;
}

void worker_pool::watchdog_main() {
    // Poll at a fraction of the deadline so an overrun is noticed within
    // ~25% of watchdog_ms.
    const auto poll = std::chrono::milliseconds(std::max<std::uint64_t>(1, opt_.watchdog_ms / 4));
    while (!done_.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(poll);
        const std::int64_t now = steady_ms();
        for (auto& w : watched_) {
            const std::int64_t start = w->job_start_ms.load(std::memory_order_acquire);
            if (start != 0 && now - start > static_cast<std::int64_t>(opt_.watchdog_ms)) {
                w->preempt.store(true, std::memory_order_release);
            }
        }
    }
}

void worker_pool::run() {
    std::thread dog;
    if (opt_.watchdog_ms > 0) dog = std::thread([this] { watchdog_main(); });

    std::vector<std::thread> workers;
    workers.reserve(opt_.workers);
    for (unsigned s = 1; s < opt_.workers; ++s) {
        workers.emplace_back([this, s] { worker_main(s); });
    }
    worker_main(0);
    for (auto& t : workers) t.join();

    done_.store(true, std::memory_order_release);
    if (dog.joinable()) dog.join();
}

}  // namespace osm::serve
