// Sliced, preemptible engine execution for serve workers.
//
// The sliced_executor plugs into sim::diff_options::cache, so every engine
// run inside a job (campaign diff, minimizer probe, corpus replay) flows
// through it.  A run is executed in bounded slices instead of one
// `run(max_cycles)` call; at each slice boundary — a quiesced point where
// the architectural state is well-defined — the executor:
//
//   1. checks the worker's preempt flag: if set and the engine supports
//      checkpointing, the run is snapshotted (sim::checkpoint) into the
//      job's resume state and job_preempted unwinds to the worker loop,
//      which re-enqueues the job for another worker to resume;
//   2. counts zero-progress slices: an engine that retires nothing and
//      does not halt for `wedge_strikes` consecutive slices is declared
//      wedged (job_wedged), which the service turns into a structured
//      job_timeout result.  The strike rule is deterministic — it depends
//      only on slice geometry, never on wall-clock time.
//
// Slicing itself cannot change results: run(a) followed by run(b) is
// run(a+b) for every engine, and the executor consumes exactly the same
// total budget as the serial path.  Completed runs are memoized in the
// shared result_cache, which is also what makes a checkpoint-resumed run
// converge with the serial one: the terminal state is identical, and
// nothing else enters the campaign summary.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "serve/job.hpp"
#include "serve/result_cache.hpp"
#include "sim/diff_runner.hpp"
#include "sim/engine.hpp"

namespace osm::serve {

struct runner_stats {
    std::uint64_t runs = 0;          ///< engine executions (cache misses)
    std::uint64_t cache_hits = 0;
    std::uint64_t slices = 0;
    std::uint64_t checkpoints = 0;   ///< preemption snapshots taken
    std::uint64_t restores = 0;      ///< runs resumed from a job checkpoint
};

class sliced_executor final : public sim::end_state_cache {
  public:
    struct options {
        sim::engine_config config{};
        std::uint64_t slice_cycles = 250'000;  ///< preemption granularity
        unsigned wedge_strikes = 3;
    };

    /// `cache` may be null (no memoization).  `preempt` may be null (the
    /// run is then not preemptible).  `j` receives resume state on
    /// preemption and provides it on resume; may be null only when
    /// `preempt` is also null.
    sliced_executor(options opt, result_cache* cache, job* j,
                    const std::atomic<bool>* preempt);

    // sim::end_state_cache: lookup() never "misses" — on a cache miss it
    // runs the engine itself (sliced) and returns the terminal state, so
    // diff_engines never takes its own load/run path.
    std::optional<sim::end_state> lookup(const std::string& engine,
                                         const isa::program_image& img,
                                         std::uint64_t max_cycles) override;
    void store(const std::string& engine, const isa::program_image& img,
               std::uint64_t max_cycles, const sim::end_state& st) override;

    const runner_stats& stats() const { return stats_; }

  private:
    options opt_;
    result_cache* cache_;
    job* job_;
    const std::atomic<bool>* preempt_;
    runner_stats stats_;
};

}  // namespace osm::serve
