#include "serve/result_cache.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/atomic_file.hpp"

namespace osm::serve {
namespace {

constexpr char k_magic[8] = {'O', 'S', 'M', 'R', 'C', '0', '1', '\0'};

std::uint64_t fnv1a64(const void* data, std::size_t n,
                      std::uint64_t h = 0xcbf29ce484222325ull) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

std::string hex64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return buf;
}

void put_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& b, std::uint64_t v) {
    for (int i = 0; i < 8; ++i) b.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

/// Bounds-checked little-endian reader over a byte span; `ok` latches
/// false on any under-run so callers can validate once at the end.
struct reader {
    const std::uint8_t* p;
    std::size_t n;
    std::size_t pos = 0;
    bool ok = true;

    bool need(std::size_t k) {
        if (!ok || n - pos < k) return ok = false;
        return true;
    }
    std::uint8_t u8() {
        if (!need(1)) return 0;
        return p[pos++];
    }
    std::uint32_t u32() {
        if (!need(4)) return 0;
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[pos++]) << (8 * i);
        return v;
    }
    std::uint64_t u64() {
        if (!need(8)) return 0;
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[pos++]) << (8 * i);
        return v;
    }
    std::string str(std::size_t k) {
        if (!need(k)) return {};
        std::string s(reinterpret_cast<const char*>(p + pos), k);
        pos += k;
        return s;
    }
};

}  // namespace

result_cache::result_cache(options opt) : opt_(std::move(opt)) {
    if (!opt_.dir.empty()) std::filesystem::create_directories(opt_.dir);
}

std::string result_cache::cache_key(const std::string& engine,
                                    const isa::program_image& img,
                                    const sim::engine_config& cfg,
                                    std::uint64_t max_cycles) {
    std::string key = "engine=" + engine;
    key += ";entry=" + hex64(img.entry);
    for (const auto& seg : img.segments) {
        key += ";seg=" + hex64(seg.base) + ":" + std::to_string(seg.bytes.size()) +
               ":" + hex64(fnv1a64(seg.bytes.data(), seg.bytes.size()));
    }
    key += ";fwd=" + std::to_string(cfg.forwarding ? 1 : 0);
    key += ";dcache=" + std::to_string(cfg.decode_cache ? 1 : 0) + ":" +
           std::to_string(cfg.decode_cache_entries);
    key += ";bcache=" + std::to_string(cfg.block_cache ? 1 : 0);
    key += ";dbatch=" + std::to_string(cfg.director_batch ? 1 : 0);
    key += ";max_cycles=" + std::to_string(max_cycles);
    return key;
}

std::uint64_t result_cache::key_hash(const std::string& key) {
    return fnv1a64(key.data(), key.size());
}

std::string result_cache::entry_path(const std::string& key) const {
    return opt_.dir + "/" + hex64(key_hash(key)) + ".osc";
}

std::vector<std::uint8_t> result_cache::serialize_entry(const std::string& key,
                                                        const sim::end_state& st) {
    std::vector<std::uint8_t> b;
    b.insert(b.end(), k_magic, k_magic + sizeof k_magic);
    put_u32(b, static_cast<std::uint32_t>(key.size()));
    b.insert(b.end(), key.begin(), key.end());
    b.push_back(st.halted ? 1 : 0);
    put_u64(b, st.cycles);
    put_u64(b, st.retired);
    for (const std::uint32_t r : st.gpr) put_u32(b, r);
    for (const std::uint32_t r : st.fpr) put_u32(b, r);
    put_u64(b, st.console.size());
    b.insert(b.end(), st.console.begin(), st.console.end());
    put_u64(b, fnv1a64(b.data(), b.size()));
    return b;
}

std::optional<sim::end_state> result_cache::parse_entry(
    const std::string& key, const std::vector<std::uint8_t>& bytes) {
    if (bytes.size() < sizeof k_magic + 8) return std::nullopt;
    if (std::memcmp(bytes.data(), k_magic, sizeof k_magic) != 0) return std::nullopt;
    const std::uint64_t want = fnv1a64(bytes.data(), bytes.size() - 8);
    reader tail{bytes.data() + bytes.size() - 8, 8};
    if (tail.u64() != want) return std::nullopt;

    reader r{bytes.data(), bytes.size() - 8, sizeof k_magic};
    const std::uint32_t key_len = r.u32();
    const std::string stored_key = r.str(key_len);
    sim::end_state st;
    st.halted = r.u8() != 0;
    st.cycles = r.u64();
    st.retired = r.u64();
    for (std::uint32_t& g : st.gpr) g = r.u32();
    for (std::uint32_t& f : st.fpr) f = r.u32();
    st.console = r.str(static_cast<std::size_t>(r.u64()));
    if (!r.ok || r.pos != r.n) return std::nullopt;
    // A full-key mismatch under an equal filename hash is a collision:
    // treat as absent rather than returning another program's state.
    if (stored_key != key) return std::nullopt;
    return st;
}

std::optional<sim::end_state> result_cache::lookup(const std::string& engine,
                                                   const isa::program_image& img,
                                                   std::uint64_t max_cycles) {
    return lookup_key(cache_key(engine, img, opt_.config, max_cycles));
}

void result_cache::store(const std::string& engine, const isa::program_image& img,
                         std::uint64_t max_cycles, const sim::end_state& st) {
    store_key(cache_key(engine, img, opt_.config, max_cycles), st);
}

std::optional<sim::end_state> result_cache::lookup_key(const std::string& key) {
    const std::uint64_t h = key_hash(key);
    std::unique_lock<std::mutex> lock(mu_);
    ++stats_.lookups;
    const auto it = map_.find(h);
    if (it != map_.end()) {
        if (it->second.key == key) {
            ++stats_.hits;
            lru_.splice(lru_.begin(), lru_, it->second.lru);
            return it->second.state;
        }
        ++stats_.collisions;  // same 64-bit hash, different key: miss
    }
    if (opt_.dir.empty()) {
        ++stats_.misses;
        return std::nullopt;
    }

    // Disk probe outside the lock: file IO must not serialize the workers.
    const std::string path = entry_path(key);
    lock.unlock();
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::lock_guard<std::mutex> relock(mu_);
        ++stats_.misses;
        return std::nullopt;
    }
    std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                    std::istreambuf_iterator<char>());
    auto st = parse_entry(key, bytes);
    std::lock_guard<std::mutex> relock(mu_);
    if (!st) {
        // Truncated, bit-flipped, or a filename-hash collision.
        ++stats_.rejected;
        ++stats_.misses;
        return std::nullopt;
    }
    ++stats_.disk_hits;
    return st;
}

void result_cache::store_key(const std::string& key, const sim::end_state& st) {
    std::vector<std::uint8_t> disk_bytes;
    if (!opt_.dir.empty()) disk_bytes = serialize_entry(key, st);

    {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.stores;
        const std::uint64_t h = key_hash(key);
        auto it = map_.find(h);
        if (it != map_.end()) {
            // Refresh (or displace a colliding key: last writer wins).
            it->second.key = key;
            it->second.state = st;
            lru_.splice(lru_.begin(), lru_, it->second.lru);
        } else {
            if (opt_.capacity > 0 && map_.size() >= opt_.capacity) {
                map_.erase(lru_.back());
                lru_.pop_back();
                ++stats_.evictions;
            }
            lru_.push_front(h);
            map_.emplace(h, entry{key, st, lru_.begin()});
        }
    }
    if (!opt_.dir.empty()) {
        // Atomic replacement: concurrent writers of the same key race
        // benignly (both files carry the same bytes), and readers never
        // observe a torn entry.
        try {
            common::atomic_write_file(entry_path(key), disk_bytes.data(),
                                      disk_bytes.size());
        } catch (const std::exception&) {
            // Cache writes are best-effort; a full disk must not fail jobs.
        }
    }
}

cache_stats result_cache::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t result_cache::size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

}  // namespace osm::serve
