// Job model for the sharded simulation service.
//
// A campaign (or lockstep sweep) is decomposed into independent jobs — one
// per corpus artifact, per seed, or per (seed, engine) lockstep probe.
// Jobs carry their own resume state: a worker that preempts a long engine
// run checkpoints it at a quiesced slice boundary (sim::checkpoint) into
// the job and re-enqueues it, so any other worker can pick the job up and
// continue where the first left off.  Job ids are assigned in campaign
// fold order; the merge step consumes completed jobs by id, which is what
// makes the sharded summary byte-identical to the serial one.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace osm::serve {

enum class job_kind {
    seed,      ///< one fuzz campaign seed (generate + diff + minimize)
    corpus,    ///< replay one corpus artifact
    lockstep,  ///< one (seed, engine) lockstep probe
};

struct job {
    std::uint64_t id = 0;          ///< fold position (0-based, campaign order)
    job_kind kind = job_kind::seed;
    std::uint64_t seed = 0;        ///< seed / lockstep jobs
    std::string path;              ///< corpus jobs: artifact path
    std::string engine;            ///< lockstep jobs: candidate engine
    unsigned origin_shard = 0;     ///< shard the plan dealt this job to

    // ---- resume state (filled by a preempting worker) ----
    /// Cache key (result_cache::cache_key) of the engine run that was
    /// preempted; empty = no saved run.
    std::string resume_key;
    /// Serialized sim::checkpoint of that run at the preemption boundary.
    std::vector<std::uint8_t> resume_checkpoint;
    /// Cycle budget already consumed by the preempted run.
    std::uint64_t resume_spent = 0;
    /// Times this job has been preempted and re-enqueued.
    unsigned resumes = 0;
};

/// Thrown (and caught) inside the worker loop to unwind a preempted job
/// out of the engine run.  Deliberately NOT derived from std::exception:
/// library code (the minimizer, replay) legitimately catches
/// std::exception around engine runs, and a preemption must pass through
/// those handlers untouched.
struct job_preempted {};

/// Ditto, for a job whose engine stopped making progress: `wedge_strikes`
/// consecutive slices retired nothing without halting.
struct job_wedged {
    std::string engine;      ///< the engine that wedged
    std::uint64_t retired;   ///< progress when the strikes ran out
};

/// Structured record of a job the service gave up on (wedged engine or
/// resume budget exhausted).  The reason strings are deterministic — no
/// wall-clock times — so reports containing them stay reproducible.
struct job_timeout {
    std::uint64_t id = 0;
    job_kind kind = job_kind::seed;
    std::uint64_t seed = 0;
    std::string detail;      ///< e.g. "engine hw wedged at retired=12"
};

}  // namespace osm::serve
