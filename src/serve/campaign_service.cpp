#include "serve/campaign_service.hpp"

#include <cstdio>
#include <mutex>
#include <optional>

#include "serve/engine_runner.hpp"
#include "serve/job_queue.hpp"
#include "serve/shard_plan.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"

namespace osm::serve {

namespace {

std::string zero_pad(std::uint64_t v, int width) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%0*llu", width,
                  static_cast<unsigned long long>(v));
    return buf;
}

const char* kind_name(job_kind k) {
    switch (k) {
        case job_kind::seed: return "seed";
        case job_kind::corpus: return "corpus";
        case job_kind::lockstep: return "lockstep";
    }
    return "?";
}

}  // namespace

stats::report serve_result::serve_report() const {
    stats::report rep;
    rep.put("serve", "jobs_total", total_jobs);
    rep.put("serve", "workers", static_cast<std::uint64_t>(workers.size()));
    rep.put("serve", "timeouts", static_cast<std::uint64_t>(timeouts.size()));
    rep.put("cache", "lookups", cache.lookups);
    rep.put("cache", "hits", cache.hits);
    rep.put("cache", "disk_hits", cache.disk_hits);
    rep.put("cache", "misses", cache.misses);
    rep.put("cache", "stores", cache.stores);
    rep.put("cache", "evictions", cache.evictions);
    rep.put("cache", "collisions", cache.collisions);
    rep.put("cache", "rejected", cache.rejected);
    rep.put("runner", "engine_runs", runner.runs);
    rep.put("runner", "cache_hits", runner.cache_hits);
    rep.put("runner", "slices", runner.slices);
    rep.put("runner", "checkpoints", runner.checkpoints);
    rep.put("runner", "restores", runner.restores);
    for (std::size_t i = 0; i < workers.size(); ++i) {
        const std::string key = "worker." + zero_pad(i, 2);
        rep.put(key, "jobs", workers[i].jobs);
        rep.put(key, "steals", workers[i].steals);
        rep.put(key, "resumes", workers[i].resumes);
        rep.put(key, "preempts", workers[i].preempts);
        rep.put(key, "wall_ms", workers[i].wall_ms);
        rep.put(key, "cpu_ms", workers[i].cpu_ms);
    }
    for (std::size_t i = 0; i < timeouts.size(); ++i) {
        const std::string key = "timeout." + zero_pad(i, 3);
        rep.put(key, "job", timeouts[i].id);
        rep.put(key, "kind", std::string(kind_name(timeouts[i].kind)));
        rep.put(key, "seed", timeouts[i].seed);
        rep.put(key, "detail", timeouts[i].detail);
    }
    return rep;
}

serve_result run_campaign_service(const serve_options& opt) {
    const auto engines = fuzz::campaign_engines(opt.campaign);
    std::vector<std::string> corpus;
    if (!opt.campaign.replay_dir.empty()) {
        corpus = fuzz::list_corpus(opt.campaign.replay_dir);
    }
    const unsigned jobs = std::max(1u, opt.jobs);
    auto plan = plan_campaign(corpus, opt.campaign.seed_lo, opt.campaign.seed_hi, jobs);

    job_queue queue(jobs);
    for (unsigned s = 0; s < plan.shards.size(); ++s) {
        for (auto& j : plan.shards[s]) queue.push_initial(s, std::move(j));
    }

    result_cache cache({opt.cache_capacity, opt.cache_dir, opt.campaign.config});

    // Completed outcomes, indexed by job id (= fold position).  Workers
    // write disjoint slots, so no lock is needed beyond the pool's own
    // queue synchronization.
    struct slot {
        std::optional<fuzz::seed_outcome> seed;
        std::optional<fuzz::corpus_outcome> corpus;
    };
    std::vector<slot> slots(plan.total_jobs);

    std::mutex runner_mu;
    runner_stats runner_total;

    worker_pool::options po;
    po.workers = jobs;
    po.watchdog_ms = opt.watchdog_ms;
    po.max_resumes = opt.max_resumes;

    worker_pool pool(po, queue, [&](job& j, unsigned, const std::atomic<bool>& preempt) {
        sliced_executor::options xo;
        xo.config = opt.campaign.config;
        xo.slice_cycles = opt.slice_cycles;
        xo.wedge_strikes = opt.wedge_strikes;
        sliced_executor exec(xo, &cache, &j, &preempt);
        try {
            if (j.kind == job_kind::seed) {
                slots[j.id].seed = fuzz::run_seed_unit(opt.campaign, engines, j.seed, &exec);
            } else {
                slots[j.id].corpus = fuzz::run_corpus_unit(opt.campaign, j.path, &exec);
            }
        } catch (...) {
            // Preempted or wedged: still account the partial execution.
            std::lock_guard<std::mutex> lock(runner_mu);
            const auto& rs = exec.stats();
            runner_total.runs += rs.runs;
            runner_total.cache_hits += rs.cache_hits;
            runner_total.slices += rs.slices;
            runner_total.checkpoints += rs.checkpoints;
            runner_total.restores += rs.restores;
            throw;
        }
        std::lock_guard<std::mutex> lock(runner_mu);
        const auto& rs = exec.stats();
        runner_total.runs += rs.runs;
        runner_total.cache_hits += rs.cache_hits;
        runner_total.slices += rs.slices;
        runner_total.checkpoints += rs.checkpoints;
        runner_total.restores += rs.restores;
    });
    pool.run();

    // ---- merge: fold completed outcomes in job-id order ----------------
    // Identical units, identical fold order => the summary is the serial
    // campaign's summary, whatever the worker count or steal pattern.
    serve_result out;
    for (auto& s : slots) {
        if (s.corpus) {
            fuzz::fold_corpus_outcome(std::move(*s.corpus), out.campaign);
        } else if (s.seed) {
            fuzz::fold_seed_outcome(std::move(*s.seed), opt.campaign, out.campaign);
        }
        // Empty slot: the job timed out; it is reported in `timeouts`
        // below and deliberately kept out of the campaign summary.
    }
    out.timeouts = pool.timeouts();
    out.workers = pool.stats();
    out.cache = cache.stats();
    out.runner = runner_total;
    out.total_jobs = plan.total_jobs;
    return out;
}

// ---- lockstep sweep --------------------------------------------------------

stats::report lockstep_sweep_result::summary() const {
    stats::report rep;
    rep.put("lockstep", "probes", probes);
    rep.put("lockstep", "diverged", diverged);
    rep.put("lockstep", "compares", compares);
    rep.put("lockstep", "restores", restores);
    for (std::size_t i = 0; i < divergences.size(); ++i) {
        rep.put("divergence." + zero_pad(i, 3), "report", divergences[i]);
    }
    return rep;
}

lockstep_sweep_result run_lockstep_sweep(const lockstep_sweep_options& opt) {
    auto engines = opt.engines;
    if (engines.empty()) {
        for (const auto& n : sim::engine_registry::instance().names_for_isa("vr32")) {
            if (n != opt.reference) engines.push_back(n);
        }
    }
    for (const auto& n : engines) {
        (void)sim::engine_registry::instance().create(n, opt.config);
    }

    const unsigned jobs = std::max(1u, opt.jobs);
    auto plan = plan_lockstep(opt.seed_lo, opt.seed_hi, engines, jobs);
    job_queue queue(jobs);
    for (unsigned s = 0; s < plan.shards.size(); ++s) {
        for (auto& j : plan.shards[s]) queue.push_initial(s, std::move(j));
    }

    struct probe_slot {
        bool ran = false;
        bool diverged = false;
        std::string line;
        std::uint64_t compares = 0;
        std::uint64_t restores = 0;
    };
    std::vector<probe_slot> slots(plan.total_jobs);
    const auto& matrix = fuzz::feature_matrix(opt.quick);

    worker_pool::options po;
    po.workers = jobs;
    worker_pool pool(po, queue, [&](job& j, unsigned, const std::atomic<bool>&) {
        const auto& mrow = matrix[(j.seed - opt.seed_lo) % matrix.size()];
        workloads::randprog_options prog = mrow.options;
        prog.seed = j.seed;
        const auto img = workloads::make_random_program(prog);

        sim::lockstep_options lo;
        lo.reference = opt.reference;
        lo.config = opt.config;
        lo.interval = opt.interval;
        lo.max_retired = opt.max_retired;
        const auto r = sim::lockstep_diff(j.engine, img, lo);

        probe_slot& s = slots[j.id];
        s.ran = r.ran;
        s.compares = r.compares;
        s.restores = r.restores;
        if (r.ran && r.diverged) {
            s.diverged = true;
            s.line = "seed=" + std::to_string(j.seed) + " row=" + mrow.name +
                     " engine=" + j.engine + ": " + r.div.to_string();
            if (r.located) {
                s.line += " (first divergent retirement " +
                          std::to_string(r.first_divergent_retired) + ")";
            }
        }
    });
    pool.run();

    lockstep_sweep_result out;
    for (const auto& s : slots) {
        if (!s.ran) continue;
        ++out.probes;
        out.compares += s.compares;
        out.restores += s.restores;
        if (s.diverged) {
            ++out.diverged;
            out.divergences.push_back(s.line);
        }
    }
    out.workers = pool.stats();
    return out;
}

}  // namespace osm::serve
