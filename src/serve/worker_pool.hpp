// Worker pool with watchdog preemption.
//
// N worker threads drain a job_queue (own shard first, then stealing).
// The service supplies the run function; workers handle the control flow
// around it: preempted jobs are re-enqueued for another worker (with a
// bounded resume budget), wedged jobs and unexpected errors become
// structured job_timeout records, and per-worker counters (jobs, steals,
// resumes, wall/cpu time) are kept for the serve report.
//
// An optional watchdog thread turns wall-clock stalls into cooperative
// preemptions: any worker whose current job has been running longer than
// `watchdog_ms` gets its preempt flag set, which the sliced_executor
// observes at the next slice boundary.  The watchdog never kills a
// thread — a hung engine is caught by the executor's deterministic
// zero-progress strikes, and a merely slow job migrates with its
// checkpoint instead of losing its work.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/job.hpp"
#include "serve/job_queue.hpp"

namespace osm::serve {

struct worker_stats {
    std::uint64_t jobs = 0;        ///< jobs completed (including timeouts)
    std::uint64_t steals = 0;      ///< popped jobs dealt to another shard
    std::uint64_t resumes = 0;     ///< popped jobs carrying a resume count
    std::uint64_t preempts = 0;    ///< jobs this worker gave up on preempt
    double wall_ms = 0;
    double cpu_ms = 0;
};

class worker_pool {
  public:
    /// Execute one job to completion.  May throw job_preempted (after
    /// storing resume state in the job) or job_wedged; anything derived
    /// from std::exception is recorded as a failed job.
    using run_fn = std::function<void(job&, unsigned shard,
                                      const std::atomic<bool>& preempt)>;

    struct options {
        unsigned workers = 1;
        std::uint64_t watchdog_ms = 0;  ///< 0 = no watchdog
        unsigned max_resumes = 8;       ///< preemptions before giving up
    };

    worker_pool(options opt, job_queue& queue, run_fn run);

    /// Run every job to completion (blocking).  Reentrant per instance: no.
    void run();

    const std::vector<worker_stats>& stats() const { return stats_; }
    const std::vector<job_timeout>& timeouts() const { return timeouts_; }

  private:
    void worker_main(unsigned shard);
    void watchdog_main();
    void record_timeout(const job& j, std::string detail);

    options opt_;
    job_queue& queue_;
    run_fn run_;
    std::vector<worker_stats> stats_;
    std::vector<job_timeout> timeouts_;
    std::mutex timeout_mu_;

    // Watchdog view of each worker: preempt flag + steady-clock start of
    // the active job in ms (0 = idle).
    struct watched {
        std::atomic<bool> preempt{false};
        std::atomic<std::int64_t> job_start_ms{0};
    };
    std::vector<std::unique_ptr<watched>> watched_;
    std::atomic<bool> done_{false};
};

}  // namespace osm::serve
