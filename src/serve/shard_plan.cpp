#include "serve/shard_plan.hpp"

#include <algorithm>

namespace osm::serve {

namespace {

shard_plan deal(std::vector<job> jobs, unsigned shards) {
    shard_plan plan;
    plan.shards.resize(std::max(1u, shards));
    plan.total_jobs = jobs.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        jobs[i].id = i;
        jobs[i].origin_shard = static_cast<unsigned>(i % plan.shards.size());
        plan.shards[jobs[i].origin_shard].push_back(std::move(jobs[i]));
    }
    return plan;
}

}  // namespace

shard_plan plan_campaign(const std::vector<std::string>& corpus_paths,
                         std::uint64_t seed_lo, std::uint64_t seed_hi,
                         unsigned shards) {
    std::vector<job> jobs;
    for (const auto& path : corpus_paths) {
        job j;
        j.kind = job_kind::corpus;
        j.path = path;
        jobs.push_back(std::move(j));
    }
    for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
        job j;
        j.kind = job_kind::seed;
        j.seed = seed;
        jobs.push_back(std::move(j));
        if (seed == seed_hi) break;  // guard seed_hi == UINT64_MAX wrap
    }
    return deal(std::move(jobs), shards);
}

shard_plan plan_lockstep(std::uint64_t seed_lo, std::uint64_t seed_hi,
                         const std::vector<std::string>& engines, unsigned shards) {
    std::vector<job> jobs;
    for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
        for (const auto& e : engines) {
            job j;
            j.kind = job_kind::lockstep;
            j.seed = seed;
            j.engine = e;
            jobs.push_back(std::move(j));
        }
        if (seed == seed_hi) break;
    }
    return deal(std::move(jobs), shards);
}

}  // namespace osm::serve
