#include "serve/engine_runner.hpp"

#include <algorithm>

#include "sim/checkpoint.hpp"
#include "sim/registry.hpp"

namespace osm::serve {

sliced_executor::sliced_executor(options opt, result_cache* cache, job* j,
                                 const std::atomic<bool>* preempt)
    : opt_(opt), cache_(cache), job_(j), preempt_(preempt) {}

std::optional<sim::end_state> sliced_executor::lookup(const std::string& engine,
                                                      const isa::program_image& img,
                                                      std::uint64_t max_cycles) {
    if (cache_ != nullptr) {
        if (auto hit = cache_->lookup(engine, img, max_cycles)) {
            ++stats_.cache_hits;
            return hit;
        }
    }

    auto eng = sim::engine_registry::instance().create(engine, opt_.config);
    eng->load(img);
    std::uint64_t spent = 0;

    // A preempted run left its checkpoint in the job; continue from it
    // instead of re-running the prefix.  The key ties the snapshot to this
    // exact (engine, program, config, budget) tuple.
    const std::string key =
        result_cache::cache_key(engine, img, opt_.config, max_cycles);
    if (job_ != nullptr && job_->resume_key == key && !job_->resume_checkpoint.empty()) {
        eng->restore_state(sim::deserialize(job_->resume_checkpoint));
        spent = job_->resume_spent;
        job_->resume_key.clear();
        job_->resume_checkpoint.clear();
        job_->resume_spent = 0;
        ++stats_.restores;
    }

    ++stats_.runs;
    unsigned strikes = 0;
    while (!eng->halted() && spent < max_cycles) {
        const std::uint64_t before = eng->retired();
        const std::uint64_t budget = std::min(opt_.slice_cycles, max_cycles - spent);
        const std::uint64_t stepped = eng->run(budget);
        spent += std::max<std::uint64_t>(stepped, 1);  // a stuck run must still consume budget
        ++stats_.slices;
        if (eng->halted() || spent >= max_cycles) break;

        // Deterministic wedge detection: progress is measured in retired
        // instructions per full slice, independent of wall-clock time.
        if (eng->retired() == before) {
            if (++strikes >= opt_.wedge_strikes) {
                throw job_wedged{engine, eng->retired()};
            }
        } else {
            strikes = 0;
        }

        if (preempt_ != nullptr && preempt_->load(std::memory_order_acquire)) {
            if (job_ != nullptr && eng->supports_checkpoint()) {
                // Quiesced boundary: snapshot so another worker resumes
                // here.  Engines without checkpoint support simply restart
                // from zero on the resuming worker.
                job_->resume_key = key;
                job_->resume_checkpoint = sim::serialize(eng->save_state());
                job_->resume_spent = spent;
                ++stats_.checkpoints;
            }
            throw job_preempted{};
        }
    }

    sim::end_state st = sim::capture_end_state(*eng);
    if (cache_ != nullptr) cache_->store(engine, img, max_cycles, st);
    return st;
}

void sliced_executor::store(const std::string&, const isa::program_image&,
                            std::uint64_t, const sim::end_state&) {
    // lookup() always returns a state, so diff_engines never reaches its
    // own store() call; nothing to do.
}

}  // namespace osm::serve
