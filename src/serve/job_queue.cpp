#include "serve/job_queue.hpp"

#include <algorithm>

namespace osm::serve {

job_queue::job_queue(unsigned shards) : queues_(std::max(1u, shards)) {}

void job_queue::push_initial(unsigned shard, job j) {
    queues_[shard % queues_.size()].push_back(std::move(j));
    ++open_jobs_;
}

void job_queue::push_resume(unsigned not_shard, job j) {
    std::lock_guard<std::mutex> lock(mu_);
    unsigned target = 0;
    if (queues_.size() > 1) {
        // Any shard but the preempting worker's own; pick the shortest so
        // the resumed job is reached soon.
        std::size_t best = static_cast<std::size_t>(-1);
        for (unsigned s = 0; s < queues_.size(); ++s) {
            if (s == not_shard % queues_.size()) continue;
            if (queues_[s].size() < best) {
                best = queues_[s].size();
                target = s;
            }
        }
    }
    // The job was already counted open when popped; re-enqueueing hands
    // that count back to the queue, so no open_jobs_ change here.
    queues_[target].push_front(std::move(j));
    cv_.notify_all();
}

std::optional<job> job_queue::pop(unsigned shard) {
    const unsigned own = shard % queues_.size();
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        if (!queues_[own].empty()) {
            job j = std::move(queues_[own].front());
            queues_[own].pop_front();
            return j;
        }
        // Steal from the back of the longest other shard.
        unsigned victim = own;
        std::size_t longest = 0;
        for (unsigned s = 0; s < queues_.size(); ++s) {
            if (s == own) continue;
            if (queues_[s].size() > longest) {
                longest = queues_[s].size();
                victim = s;
            }
        }
        if (victim != own) {
            job j = std::move(queues_[victim].back());
            queues_[victim].pop_back();
            ++steals_;
            return j;
        }
        if (open_jobs_ == 0) return std::nullopt;
        // Queues are empty but jobs are executing; one may be re-enqueued.
        cv_.wait(lock);
    }
}

void job_queue::finish() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--open_jobs_ == 0) cv_.notify_all();
}

std::uint64_t job_queue::steals() const {
    std::lock_guard<std::mutex> lock(mu_);
    return steals_;
}

}  // namespace osm::serve
