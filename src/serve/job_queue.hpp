// Sharded work queue with stealing.
//
// Each worker owns one shard (a deque of jobs) and pops from its front;
// when the shard runs dry the worker steals from the *back* of the
// busiest other shard, so stolen work is the work its owner would have
// reached last.  Preempted jobs are re-enqueued with an exclusion shard
// (the worker that preempted them), which forces migration: the resumed
// job continues from its checkpoint on a different worker.
//
// Completion tracking counts jobs, not queue entries: a job popped for
// execution is still "open" until finish() or a re-enqueue, so pop()
// blocks (rather than returning empty) while any job might still be
// re-enqueued.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/job.hpp"

namespace osm::serve {

class job_queue {
  public:
    explicit job_queue(unsigned shards);

    /// Seed the queue before workers start (not thread-safe).
    void push_initial(unsigned shard, job j);

    /// Re-enqueue a preempted job, preferring any shard but `not_shard`
    /// (single-shard queues have nowhere else to go).  Thread-safe.
    void push_resume(unsigned not_shard, job j);

    /// Next job for `shard`: own front, else steal from the back of the
    /// longest other shard.  Blocks while the queue is empty but jobs are
    /// still in flight (they may be re-enqueued); returns nullopt once
    /// every job has finished.
    std::optional<job> pop(unsigned shard);

    /// Mark one previously popped job as finished for good.
    void finish();

    unsigned shards() const { return static_cast<unsigned>(queues_.size()); }
    std::uint64_t steals() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<std::deque<job>> queues_;
    std::uint64_t open_jobs_ = 0;  ///< queued + executing
    std::uint64_t steals_ = 0;
};

}  // namespace osm::serve
