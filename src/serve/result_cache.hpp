// Content-addressed cache of terminal engine states.
//
// The differential verdict for one engine run is a pure function of the
// terminal architectural state (sim::end_state), and that state is itself
// a pure function of (program bytes, engine, engine config, cycle budget).
// Memoizing end states under a key derived from exactly those inputs is
// therefore sound: a warm replay of a campaign produces byte-identical
// summaries while skipping every engine re-execution.
//
// Keys are fnv1a-64 hashes of a canonical key string; the full string is
// stored alongside each entry and compared on lookup, so a 64-bit hash
// collision degrades to a miss, never a wrong answer.  Entries can spill
// to an on-disk directory (one file per entry, checksum-trailed, written
// atomically); a truncated or bit-flipped file fails validation and is
// treated as a miss, forcing recomputation.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/diff_runner.hpp"
#include "sim/engine.hpp"

namespace osm::serve {

struct cache_stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;         ///< in-memory hits
    std::uint64_t disk_hits = 0;    ///< loaded from the cache dir
    std::uint64_t misses = 0;
    std::uint64_t stores = 0;
    std::uint64_t evictions = 0;    ///< in-memory LRU evictions
    std::uint64_t collisions = 0;   ///< hash matched, key string did not
    std::uint64_t rejected = 0;     ///< corrupt disk entries discarded
};

class result_cache final : public sim::end_state_cache {
  public:
    struct options {
        std::size_t capacity = 4096;  ///< in-memory entries (LRU beyond)
        std::string dir;              ///< on-disk spill dir ("" = memory only)
        sim::engine_config config{};
    };

    explicit result_cache(options opt);

    /// Canonical key string: engine, program entry + per-segment content
    /// hash, config fingerprint, cycle budget.  Everything that determines
    /// the terminal state, nothing that does not.
    static std::string cache_key(const std::string& engine,
                                 const isa::program_image& img,
                                 const sim::engine_config& cfg,
                                 std::uint64_t max_cycles);

    static std::uint64_t key_hash(const std::string& key);

    // sim::end_state_cache (thread-safe; one instance is shared by all
    // workers of a pool)
    std::optional<sim::end_state> lookup(const std::string& engine,
                                         const isa::program_image& img,
                                         std::uint64_t max_cycles) override;
    void store(const std::string& engine, const isa::program_image& img,
               std::uint64_t max_cycles, const sim::end_state& st) override;

    cache_stats stats() const;
    std::size_t size() const;

    // ---- entry (de)serialization, exposed for tests --------------------
    static std::vector<std::uint8_t> serialize_entry(const std::string& key,
                                                     const sim::end_state& st);
    /// Returns nullopt (never throws) for truncated / corrupt / key-
    /// mismatched bytes.
    static std::optional<sim::end_state> parse_entry(const std::string& key,
                                                     const std::vector<std::uint8_t>& bytes);
    /// Path of the disk file an entry for `key` would use.
    std::string entry_path(const std::string& key) const;

  private:
    std::optional<sim::end_state> lookup_key(const std::string& key);
    void store_key(const std::string& key, const sim::end_state& st);

    options opt_;
    mutable std::mutex mu_;
    struct entry {
        std::string key;
        sim::end_state state;
        std::list<std::uint64_t>::iterator lru;  ///< position in lru_
    };
    std::unordered_map<std::uint64_t, entry> map_;
    std::list<std::uint64_t> lru_;  ///< front = most recent
    cache_stats stats_;
};

}  // namespace osm::serve
