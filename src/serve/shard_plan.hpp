// Static partitioning of campaign work across worker shards.
//
// Jobs are numbered in campaign fold order (corpus artifacts sorted by
// path, then seeds ascending) and dealt round-robin across shards, so
// every shard holds a representative slice of the feature matrix and the
// shards drain at similar rates.  The id order — not the shard layout —
// is what the merge step folds by, so any partitioning (and any amount of
// stealing at run time) yields the same campaign summary.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/job.hpp"

namespace osm::serve {

struct shard_plan {
    std::vector<std::vector<job>> shards;  ///< shards[s] = initial jobs of shard s
    std::uint64_t total_jobs = 0;

    /// Jobs initially assigned to shard `s` (for stats / tests).
    std::size_t shard_size(unsigned s) const { return shards.at(s).size(); }
};

/// Plan a campaign: one corpus job per artifact path (in the given,
/// already-sorted order), then one seed job per seed in [seed_lo, seed_hi].
shard_plan plan_campaign(const std::vector<std::string>& corpus_paths,
                         std::uint64_t seed_lo, std::uint64_t seed_hi,
                         unsigned shards);

/// Plan a lockstep sweep: one job per (seed, candidate engine) pair,
/// seeds outermost so job id order matches the report's fold order.
shard_plan plan_lockstep(std::uint64_t seed_lo, std::uint64_t seed_hi,
                         const std::vector<std::string>& engines, unsigned shards);

}  // namespace osm::serve
