// Sharded campaign / lockstep service.
//
// Runs a fuzz campaign (or a lockstep divergence sweep) as a job graph on
// a worker pool instead of a serial loop.  Each job executes the *same*
// per-unit function the serial campaign uses (fuzz::run_seed_unit /
// run_corpus_unit), with engine runs flowing through the sliced executor
// (preemption + checkpoint migration) and the shared content-addressed
// result cache.  Completed outcomes land in a slot table indexed by job
// id; after the pool drains, the merge step folds the slots in id order
// with the same fold functions the serial loop uses.  Identical units +
// identical fold order = byte-identical campaign summary for any worker
// count, by construction.
//
// Everything scheduling-dependent — worker counters, cache hit rates,
// steals, resumes, timeouts, wall/cpu time — is reported separately via
// serve_report(), which is explicitly NOT byte-stable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "serve/engine_runner.hpp"
#include "serve/job.hpp"
#include "serve/result_cache.hpp"
#include "serve/worker_pool.hpp"
#include "sim/diff_runner.hpp"
#include "stats/stats.hpp"

namespace osm::serve {

struct serve_options {
    fuzz::campaign_options campaign{};
    unsigned jobs = 1;                    ///< worker threads (= shards)
    std::size_t cache_capacity = 4096;    ///< in-memory result-cache entries
    std::string cache_dir;                ///< on-disk result cache ("" = off)
    std::uint64_t watchdog_ms = 0;        ///< per-job deadline (0 = off)
    std::uint64_t slice_cycles = 250'000; ///< preemption granularity
    unsigned wedge_strikes = 3;
    unsigned max_resumes = 8;
};

struct serve_result {
    fuzz::campaign_result campaign;       ///< byte-identical to run_campaign
    std::vector<job_timeout> timeouts;    ///< jobs the service gave up on
    std::vector<worker_stats> workers;
    cache_stats cache;
    runner_stats runner;                  ///< summed over workers
    std::uint64_t total_jobs = 0;

    /// Scheduling-dependent report (workers, cache, timeouts).  Unlike
    /// campaign.summary(), this is not byte-stable across runs.
    stats::report serve_report() const;
};

/// Run opt.campaign on opt.jobs workers.  Timed-out jobs are recorded in
/// `timeouts` and folded as empty outcomes (they cannot occur with the
/// built-in engines; see engine_runner.hpp on wedge detection).
serve_result run_campaign_service(const serve_options& opt);

// ---- lockstep sweep --------------------------------------------------------

struct lockstep_sweep_options {
    std::uint64_t seed_lo = 1;
    std::uint64_t seed_hi = 8;
    std::string reference = "iss";
    std::vector<std::string> engines;     ///< empty = all other VR32 engines
    sim::engine_config config{};
    std::uint64_t interval = 256;
    std::uint64_t max_retired = 100'000'000ull;
    bool quick = true;                    ///< quick feature matrix rows
    unsigned jobs = 1;
};

struct lockstep_sweep_result {
    std::uint64_t probes = 0;             ///< (seed, engine) pairs run
    std::uint64_t diverged = 0;
    std::uint64_t compares = 0;
    std::uint64_t restores = 0;
    std::vector<std::string> divergences; ///< deterministic order, one line each
    std::vector<worker_stats> workers;

    /// Deterministic summary of the sweep (no worker stats).
    stats::report summary() const;
};

/// Shard (seed × engine) lockstep probes across a pool.  Probe results are
/// merged in job-id order, so the summary is independent of worker count.
lockstep_sweep_result run_lockstep_sweep(const lockstep_sweep_options& opt);

}  // namespace osm::serve
