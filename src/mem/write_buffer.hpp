// Write buffer timing model (the SA-110/SA-1100 carry one between the
// store path and the bus): stores complete immediately into a small FIFO
// that drains to memory in the background; the pipeline stalls only when
// the buffer is full.
#pragma once

#include <cstdint>

#include "common/ring_buffer.hpp"

namespace osm::mem {

struct write_buffer_config {
    unsigned entries = 4;
    unsigned drain_cycles = 8;  ///< cycles to retire one buffered store
};

struct write_buffer_stats {
    std::uint64_t stores = 0;
    std::uint64_t full_stalls = 0;      ///< stores that found the buffer full
    std::uint64_t drained = 0;
    std::uint64_t occupancy_cycles = 0;  ///< sum of occupancy over ticks
};

/// Cycle-driven store buffer (timing only; data lives in the functional
/// backing store as usual).
class write_buffer {
public:
    explicit write_buffer(write_buffer_config cfg = {});

    /// Account one store.  Returns the extra stall cycles the pipeline
    /// must charge: 0 when a slot is free, otherwise the time until the
    /// oldest entry drains.
    unsigned push_store();

    /// Hardware-layer per-cycle update: background draining.
    void tick();

    unsigned occupancy() const noexcept { return static_cast<unsigned>(fifo_.size()); }
    bool full() const noexcept { return fifo_.full(); }
    const write_buffer_stats& stats() const noexcept { return stats_; }

    /// Drop all buffered entries (e.g. on a pipeline squash).  Statistics
    /// are deliberately untouched — a flush must not erase the occupancy /
    /// drain history; call reset_stats() separately for a fresh run.
    void clear();
    void reset_stats() noexcept { stats_ = {}; }

private:
    write_buffer_config cfg_;
    ring_buffer<unsigned> fifo_;  // remaining drain cycles per entry
    write_buffer_stats stats_;
};

}  // namespace osm::mem
