#include "mem/cache.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace osm::mem {

cache::cache(cache_config cfg, timed_mem_if& lower)
    : cfg_(std::move(cfg)), lower_(lower), rng_(0xCACE5EEDu) {
    assert(is_pow2(cfg_.line_bytes));
    assert(is_pow2(cfg_.ways));
    assert(cfg_.size_bytes % (cfg_.line_bytes * cfg_.ways) == 0);
    const std::uint32_t sets = cfg_.num_sets();
    assert(is_pow2(sets));
    lines_.assign(static_cast<std::size_t>(sets) * cfg_.ways, line{});
    set_shift_ = log2_exact(cfg_.line_bytes);
    set_mask_ = sets - 1;
    tag_shift_ = set_shift_ + log2_exact(sets);
}

std::uint32_t cache::set_index(std::uint32_t addr) const noexcept {
    return (addr >> set_shift_) & set_mask_;
}

std::uint32_t cache::tag_of(std::uint32_t addr) const noexcept {
    return addr >> tag_shift_;
}

cache::line* cache::find(std::uint32_t addr) {
    const std::uint32_t set = set_index(addr);
    const std::uint32_t tag = tag_of(addr);
    line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) return &base[w];
    }
    return nullptr;
}

const cache::line* cache::find(std::uint32_t addr) const {
    return const_cast<cache*>(this)->find(addr);
}

cache::line& cache::choose_victim(std::uint32_t set) {
    line* base = &lines_[static_cast<std::size_t>(set) * cfg_.ways];
    // Prefer an invalid way.
    for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
        if (!base[w].valid) return base[w];
    }
    if (cfg_.repl == replacement::random_repl) {
        return base[rng_.next_below(cfg_.ways)];
    }
    // LRU and FIFO both evict the smallest stamp; they differ in when the
    // stamp is refreshed (use vs fill).
    line* victim = &base[0];
    for (std::uint32_t w = 1; w < cfg_.ways; ++w) {
        if (base[w].stamp < victim->stamp) victim = &base[w];
    }
    return *victim;
}

access_result cache::access(std::uint32_t addr, bool is_write, unsigned size) {
    ++tick_;
    ++stats_.accesses;
    line* hit_line = find(addr);
    if (hit_line != nullptr) {
        ++stats_.hits;
        if (cfg_.repl == replacement::lru) hit_line->stamp = tick_;
        unsigned latency = cfg_.hit_latency;
        if (is_write) {
            if (cfg_.wpolicy == write_policy::write_back) {
                hit_line->dirty = true;
            } else {
                latency += lower_.access(addr, true, size).latency;
            }
        }
        return {true, latency};
    }

    ++stats_.misses;
    const std::uint32_t set = set_index(addr);
    line& victim = choose_victim(set);
    unsigned latency = cfg_.hit_latency;
    if (victim.valid) {
        ++stats_.evictions;
        if (victim.dirty) {
            ++stats_.writebacks;
            const std::uint32_t victim_addr =
                (victim.tag << tag_shift_) | (set << set_shift_);
            latency += lower_.access(victim_addr, true, cfg_.line_bytes).latency;
        }
    }
    // Line fill from below.
    latency += lower_.access(addr & ~(cfg_.line_bytes - 1), false, cfg_.line_bytes).latency;
    victim.valid = true;
    victim.tag = tag_of(addr);
    victim.dirty = false;
    victim.stamp = tick_;
    if (is_write) {
        if (cfg_.wpolicy == write_policy::write_back) {
            victim.dirty = true;
        } else {
            latency += lower_.access(addr, true, size).latency;
        }
    }
    return {false, latency};
}

void cache::flush() {
    for (line& l : lines_) l = line{};
}

bool cache::probe(std::uint32_t addr) const { return find(addr) != nullptr; }

}  // namespace osm::mem
