#include "mem/main_memory.hpp"

#include <algorithm>
#include <cstring>

namespace osm::mem {

// ---- memory_if default composite accessors --------------------------------

std::uint16_t memory_if::read16(std::uint32_t addr) {
    return static_cast<std::uint16_t>(read8(addr)) |
           static_cast<std::uint16_t>(read8(addr + 1)) << 8;
}

std::uint32_t memory_if::read32(std::uint32_t addr) {
    return static_cast<std::uint32_t>(read16(addr)) |
           static_cast<std::uint32_t>(read16(addr + 2)) << 16;
}

void memory_if::write16(std::uint32_t addr, std::uint16_t value) {
    write8(addr, static_cast<std::uint8_t>(value));
    write8(addr + 1, static_cast<std::uint8_t>(value >> 8));
}

void memory_if::write32(std::uint32_t addr, std::uint32_t value) {
    write16(addr, static_cast<std::uint16_t>(value));
    write16(addr + 2, static_cast<std::uint16_t>(value >> 16));
}

// ---- main_memory -----------------------------------------------------------

main_memory::page& main_memory::page_for(std::uint32_t addr) {
    const std::uint32_t key = addr >> page_bits;
    auto& slot = pages_[key];
    if (!slot) {
        slot = std::make_unique<page>();
        slot->fill(0);
    }
    return *slot;
}

const main_memory::page* main_memory::peek_page(std::uint32_t addr) const {
    const auto it = pages_.find(addr >> page_bits);
    return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t main_memory::read8(std::uint32_t addr) {
    const page* p = peek_page(addr);
    return p ? (*p)[addr & (page_size - 1)] : 0;
}

void main_memory::write8(std::uint32_t addr, std::uint8_t value) {
    page_for(addr)[addr & (page_size - 1)] = value;
}

std::uint16_t main_memory::read16(std::uint32_t addr) {
    if ((addr & (page_size - 1)) <= page_size - 2) {
        const page* p = peek_page(addr);
        if (!p) return 0;
        std::uint16_t v;
        std::memcpy(&v, p->data() + (addr & (page_size - 1)), 2);
        return v;  // host is little-endian x86; asserted in tests
    }
    return memory_if::read16(addr);
}

std::uint32_t main_memory::read32(std::uint32_t addr) {
    if ((addr & (page_size - 1)) <= page_size - 4) {
        const page* p = peek_page(addr);
        if (!p) return 0;
        std::uint32_t v;
        std::memcpy(&v, p->data() + (addr & (page_size - 1)), 4);
        return v;
    }
    return memory_if::read32(addr);
}

void main_memory::write16(std::uint32_t addr, std::uint16_t value) {
    if ((addr & (page_size - 1)) <= page_size - 2) {
        std::memcpy(page_for(addr).data() + (addr & (page_size - 1)), &value, 2);
        return;
    }
    memory_if::write16(addr, value);
}

void main_memory::write32(std::uint32_t addr, std::uint32_t value) {
    if ((addr & (page_size - 1)) <= page_size - 4) {
        std::memcpy(page_for(addr).data() + (addr & (page_size - 1)), &value, 4);
        return;
    }
    memory_if::write32(addr, value);
}

std::vector<std::uint32_t> main_memory::resident_page_bases() const {
    std::vector<std::uint32_t> bases;
    bases.reserve(pages_.size());
    for (const auto& [key, p] : pages_) bases.push_back(key << page_bits);
    std::sort(bases.begin(), bases.end());
    return bases;
}

const std::uint8_t* main_memory::page_data(std::uint32_t addr) const {
    const page* p = peek_page(addr);
    return p ? p->data() : nullptr;
}

void main_memory::load(std::uint32_t addr, const std::uint8_t* data, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) write8(addr + static_cast<std::uint32_t>(i), data[i]);
}

}  // namespace osm::mem
