// Fully-associative TLB timing model with identity translation.
//
// The workloads run with a flat (identity) address map, so the TLB never
// changes an address; it exists to charge fill latency on misses exactly as
// the SA-1100's ITLB/DTLB would, and to expose hit-ratio statistics.
#pragma once

#include <cstdint>
#include <vector>

#include "mem/memory_if.hpp"

namespace osm::mem {

struct tlb_config {
    std::uint32_t entries = 32;
    std::uint32_t page_bits = 12;
    unsigned miss_penalty = 20;  // table-walk cycles
};

struct tlb_stats {
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;
};

/// Fully associative, LRU-replaced TLB.
class tlb {
public:
    explicit tlb(tlb_config cfg = {});

    /// Translate (identity map); returns extra latency: 0 on hit, the
    /// configured miss penalty on a fill.
    unsigned translate(std::uint32_t vaddr);

    const tlb_stats& stats() const noexcept { return stats_; }
    void flush();

private:
    struct entry {
        std::uint32_t vpn = 0;
        bool valid = false;
        std::uint64_t last_use = 0;
    };

    tlb_config cfg_;
    std::vector<entry> entries_;
    tlb_stats stats_;
    std::uint64_t tick_ = 0;
};

}  // namespace osm::mem
