#include "mem/shared_mem.hpp"

namespace osm::mem {

const char* memory_model_name(memory_model m) noexcept {
    return m == memory_model::tso ? "tso" : "sc";
}

shared_memory::shared_memory(main_memory& backing, unsigned harts, memory_model model)
    : backing_(backing),
      model_(model),
      bufs_(harts == 0 ? 1 : harts),
      resv_(bufs_.size()) {
    ports_.reserve(bufs_.size());
    for (unsigned h = 0; h < bufs_.size(); ++h) ports_.emplace_back(*this, h);
}

std::uint8_t shared_memory::read_byte(unsigned h, std::uint32_t addr) {
    // Newest-wins forwarding: scan the hart's own buffer back to front.
    const auto& buf = bufs_[h];
    for (auto it = buf.rbegin(); it != buf.rend(); ++it) {
        if (addr >= it->addr && addr < it->addr + it->size) {
            return static_cast<std::uint8_t>(it->data >> (8 * (addr - it->addr)));
        }
    }
    return backing_.read8(addr);
}

void shared_memory::store(unsigned h, std::uint32_t addr, unsigned size,
                          std::uint32_t data) {
    const store_entry e{addr, static_cast<std::uint8_t>(size), data};
    if (model_ == memory_model::sc) {
        commit(h, e);
    } else {
        bufs_[h].push_back(e);
    }
}

void shared_memory::drain_one(unsigned h) {
    auto& buf = bufs_[h];
    if (buf.empty()) return;
    const store_entry e = buf.front();
    buf.pop_front();
    commit(h, e);
}

void shared_memory::drain_all(unsigned h) {
    while (!bufs_[h].empty()) drain_one(h);
}

void shared_memory::set_buffer(unsigned h, std::vector<store_entry> entries) {
    bufs_[h].assign(entries.begin(), entries.end());
}

void shared_memory::set_reservation(unsigned h, std::uint32_t addr) {
    resv_[h] = {addr & ~3u, true};
}

void shared_memory::commit(unsigned h, const store_entry& e) {
    switch (e.size) {
        case 1: backing_.write8(e.addr, static_cast<std::uint8_t>(e.data)); break;
        case 2: backing_.write16(e.addr, static_cast<std::uint16_t>(e.data)); break;
        default: backing_.write32(e.addr, e.data); break;
    }
    // A commit from hart h kills every *other* hart's reservation whose
    // word overlaps the written range.  Own commits keep the reservation:
    // with one hart this degenerates to the single-hart ISS rule, and an
    // sc.w consumes its own reservation explicitly in the interpreter.
    for (unsigned i = 0; i < resv_.size(); ++i) {
        if (i == h || !resv_[i].valid) continue;
        if (resv_[i].addr < e.addr + e.size && e.addr < resv_[i].addr + 4) {
            resv_[i].valid = false;
        }
    }
}

std::uint8_t hart_port::read8(std::uint32_t addr) {
    return shared_->read_byte(hart_, addr);
}

std::uint16_t hart_port::read16(std::uint32_t addr) {
    return static_cast<std::uint16_t>(shared_->read_byte(hart_, addr) |
                                      shared_->read_byte(hart_, addr + 1) << 8);
}

std::uint32_t hart_port::read32(std::uint32_t addr) {
    return static_cast<std::uint32_t>(shared_->read_byte(hart_, addr)) |
           static_cast<std::uint32_t>(shared_->read_byte(hart_, addr + 1)) << 8 |
           static_cast<std::uint32_t>(shared_->read_byte(hart_, addr + 2)) << 16 |
           static_cast<std::uint32_t>(shared_->read_byte(hart_, addr + 3)) << 24;
}

void hart_port::write8(std::uint32_t addr, std::uint8_t value) {
    shared_->store(hart_, addr, 1, value);
}

void hart_port::write16(std::uint32_t addr, std::uint16_t value) {
    shared_->store(hart_, addr, 2, value);
}

void hart_port::write32(std::uint32_t addr, std::uint32_t value) {
    shared_->store(hart_, addr, 4, value);
}

}  // namespace osm::mem
