// Functional and timing memory interfaces.
//
// The framework separates *functional* storage (what value lives at an
// address) from *timing* (how many cycles an access costs).  Functional
// state lives in one backing store shared by all models of a processor;
// caches, TLBs and buses are timing devices layered in front of it.  This
// mirrors the paper's setup where the memory subsystem lives purely in the
// hardware layer and never exchanges tokens with operations.
#pragma once

#include <cstdint>

namespace osm::mem {

/// Byte-addressed functional memory.
class memory_if {
public:
    virtual ~memory_if() = default;

    virtual std::uint8_t read8(std::uint32_t addr) = 0;
    virtual void write8(std::uint32_t addr, std::uint8_t value) = 0;

    /// Little-endian composite accessors with overridable fast paths.
    virtual std::uint16_t read16(std::uint32_t addr);
    virtual std::uint32_t read32(std::uint32_t addr);
    virtual void write16(std::uint32_t addr, std::uint16_t value);
    virtual void write32(std::uint32_t addr, std::uint32_t value);
};

/// Result of a timed access: whether the top level hit and the total
/// latency in cycles (including any lower-level fill).
struct access_result {
    bool hit = true;
    unsigned latency = 1;
};

/// Timing-side memory hierarchy interface.  Implementations are stateful
/// (cache tags, TLB entries) but carry no data.
class timed_mem_if {
public:
    virtual ~timed_mem_if() = default;

    /// Account one access of `size` bytes at `addr`; `is_write` selects the
    /// store path.  Returns hit/latency for the whole hierarchy below.
    virtual access_result access(std::uint32_t addr, bool is_write, unsigned size) = 0;
};

/// Fixed-latency timing endpoint (DRAM-ish).
class fixed_latency_mem final : public timed_mem_if {
public:
    explicit fixed_latency_mem(unsigned latency) : latency_(latency) {}
    access_result access(std::uint32_t, bool, unsigned) override {
        return {true, latency_};
    }

private:
    unsigned latency_;
};

}  // namespace osm::mem
