// Multi-hart shared-memory subsystem with a configurable consistency model.
//
// Functional storage stays in one `main_memory` (the committed state all
// harts eventually agree on); this layer adds what the consistency model
// needs on top:
//
//   * SC  — sequential consistency: every store commits to the backing
//     memory at the instruction that executes it, so the global order of
//     memory operations is exactly the scheduler's interleaving.
//   * TSO — total store order: each hart owns a FIFO store buffer (the
//     conceptual descendant of the timing-side write_buffer split out in
//     PR 2, but *functional* here: it holds data, not just occupancy).
//     Stores enqueue; the buffer drains to committed memory in FIFO order
//     at scheduler-chosen points and at every ordering instruction
//     (fence, lr/sc, amo, syscall, halt).  Loads forward byte-wise from
//     the hart's own buffer (newest entry wins) before falling through to
//     committed memory — a hart always sees its own stores, other harts
//     only see commits.  This is the classic SPARC/x86-TSO operational
//     model and is what makes SB's r1==0 && r2==0 outcome reachable.
//
// LR/SC reservations live here too: a hart's reservation on a word is
// killed by any *commit* from a different hart that overlaps the word
// (own commits keep it, so single-hart behaviour degenerates to the plain
// ISS).  Everything is plain deterministic data — two runs that issue the
// same operation sequence observe identical values, which is the
// byte-reproducibility contract the litmus harness depends on.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "mem/main_memory.hpp"
#include "mem/memory_if.hpp"

namespace osm::mem {

/// Consistency model selector (engine_config.memory_model).
enum class memory_model : std::uint8_t {
    sc = 0,   ///< sequential consistency: stores commit in program order, instantly
    tso = 1,  ///< total store order: per-hart FIFO store buffer + load forwarding
};

const char* memory_model_name(memory_model m) noexcept;

/// One buffered (not yet committed) store.
struct store_entry {
    std::uint32_t addr = 0;
    std::uint8_t size = 0;  ///< 1, 2 or 4 bytes
    std::uint32_t data = 0;  ///< little-endian, low `size` bytes valid
};

class shared_memory;

/// Per-hart memory_if view: reads forward from the owning hart's store
/// buffer, writes enqueue (TSO) or commit (SC).  This is what the per-hart
/// interpreters hand to the shared do_load/do_store semantics, so the
/// single-hart instruction semantics run unchanged on multi-hart memory.
class hart_port final : public memory_if {
public:
    hart_port() = default;
    hart_port(shared_memory& shared, unsigned hart) : shared_(&shared), hart_(hart) {}

    std::uint8_t read8(std::uint32_t addr) override;
    std::uint16_t read16(std::uint32_t addr) override;
    std::uint32_t read32(std::uint32_t addr) override;
    void write8(std::uint32_t addr, std::uint8_t value) override;
    void write16(std::uint32_t addr, std::uint16_t value) override;
    void write32(std::uint32_t addr, std::uint32_t value) override;

private:
    shared_memory* shared_ = nullptr;
    unsigned hart_ = 0;
};

class shared_memory {
public:
    shared_memory(main_memory& backing, unsigned harts, memory_model model);

    unsigned harts() const noexcept { return static_cast<unsigned>(bufs_.size()); }
    memory_model model() const noexcept { return model_; }
    main_memory& backing() noexcept { return backing_; }

    /// The memory_if view hart `h` executes through.
    hart_port& port(unsigned h) { return ports_[h]; }

    // ---- hart-side operations (called through hart_port) -----------------
    /// Forwarded read: newest matching byte in hart `h`'s own buffer, else
    /// committed memory.
    std::uint8_t read_byte(unsigned h, std::uint32_t addr);
    /// Store of `size` bytes: enqueue under TSO, commit directly under SC.
    void store(unsigned h, std::uint32_t addr, unsigned size, std::uint32_t data);

    // ---- ordering points --------------------------------------------------
    /// Commit the oldest buffered store of hart `h` (no-op when empty).
    void drain_one(unsigned h);
    /// Commit hart `h`'s whole buffer in FIFO order.
    void drain_all(unsigned h);
    bool buffer_empty(unsigned h) const { return bufs_[h].empty(); }
    std::size_t buffer_depth(unsigned h) const { return bufs_[h].size(); }
    const std::deque<store_entry>& buffer(unsigned h) const { return bufs_[h]; }
    /// Checkpoint restore: replace hart `h`'s buffer wholesale.
    void set_buffer(unsigned h, std::vector<store_entry> entries);

    // ---- LR/SC reservations ----------------------------------------------
    /// Acquire a reservation for hart `h` on the word at `addr` (aligned).
    void set_reservation(unsigned h, std::uint32_t addr);
    void clear_reservation(unsigned h) { resv_[h].valid = false; }
    bool reservation_holds(unsigned h, std::uint32_t addr) const {
        return resv_[h].valid && resv_[h].addr == (addr & ~3u);
    }
    bool reservation_valid(unsigned h) const { return resv_[h].valid; }
    std::uint32_t reservation_addr(unsigned h) const { return resv_[h].addr; }
    void restore_reservation(unsigned h, bool valid, std::uint32_t addr) {
        resv_[h] = {addr & ~3u, valid};
    }

    /// Atomic read-modify-write support: commit a store from hart `h`
    /// straight to backing memory, bypassing the buffer.  The caller must
    /// have drained `h`'s buffer first (amo/sc are ordering points).
    void commit_direct(unsigned h, std::uint32_t addr, unsigned size, std::uint32_t data) {
        commit(h, {addr, static_cast<std::uint8_t>(size), data});
    }

private:
    struct reservation {
        std::uint32_t addr = 0;  ///< word-aligned
        bool valid = false;
    };

    /// Write `e` to backing memory and kill overlapping reservations held
    /// by *other* harts.
    void commit(unsigned h, const store_entry& e);

    main_memory& backing_;
    memory_model model_;
    std::vector<std::deque<store_entry>> bufs_;  ///< per-hart FIFO
    std::vector<reservation> resv_;
    std::vector<hart_port> ports_;
};

}  // namespace osm::mem
