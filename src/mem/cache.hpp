// Parameterized set-associative cache timing model.
//
// Caches here are timing-only: they keep tags and dirty bits but no data
// (the single functional backing store holds all values).  This is the
// standard trade made by cycle simulators such as SimpleScalar and matches
// the paper's hardware-layer-only memory subsystem.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/xrandom.hpp"
#include "mem/memory_if.hpp"

namespace osm::mem {

/// Line replacement policy.
enum class replacement { lru, fifo, random_repl };

/// Store handling policy.
enum class write_policy { write_back, write_through };

/// Static cache geometry and timing configuration.
struct cache_config {
    std::string name = "cache";
    std::uint32_t size_bytes = 16 * 1024;
    std::uint32_t line_bytes = 32;
    std::uint32_t ways = 32;  // StrongARM caches are 32-way
    replacement repl = replacement::lru;
    write_policy wpolicy = write_policy::write_back;
    unsigned hit_latency = 1;

    std::uint32_t num_sets() const {
        return size_bytes / (line_bytes * ways);
    }
};

/// Running counters exposed for validation and reporting.
struct cache_stats {
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t evictions = 0;

    double hit_ratio() const {
        return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
    }
};

/// A set-associative cache in front of a lower `timed_mem_if` level.
class cache final : public timed_mem_if {
public:
    /// `lower` must outlive the cache; it is charged on misses (line fill)
    /// and on write-through / write-back traffic.
    cache(cache_config cfg, timed_mem_if& lower);

    access_result access(std::uint32_t addr, bool is_write, unsigned size) override;

    /// Invalidate everything (drops dirty lines without writeback).
    void flush();

    const cache_config& config() const noexcept { return cfg_; }
    const cache_stats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    /// True when the line containing `addr` is present (for tests).
    bool probe(std::uint32_t addr) const;

private:
    struct line {
        std::uint32_t tag = 0;
        bool valid = false;
        bool dirty = false;
        std::uint64_t stamp = 0;  // LRU: last use; FIFO: fill time
    };

    std::uint32_t set_index(std::uint32_t addr) const noexcept;
    std::uint32_t tag_of(std::uint32_t addr) const noexcept;
    line* find(std::uint32_t addr);
    const line* find(std::uint32_t addr) const;
    line& choose_victim(std::uint32_t set);

    cache_config cfg_;
    timed_mem_if& lower_;
    std::vector<line> lines_;  // sets * ways, row-major by set
    cache_stats stats_;
    std::uint64_t tick_ = 0;
    xrandom rng_;
    unsigned set_shift_;
    std::uint32_t set_mask_;
    unsigned tag_shift_;
};

}  // namespace osm::mem
