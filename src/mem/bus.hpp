// Shared memory bus timing model: per-transfer setup cost plus bandwidth
// cost proportional to the transfer size.
#pragma once

#include <cstdint>

#include "mem/memory_if.hpp"

namespace osm::mem {

struct bus_config {
    unsigned setup_cycles = 4;       // arbitration + address phase
    unsigned bytes_per_cycle = 4;    // data bus width
};

struct bus_stats {
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    std::uint64_t busy_cycles = 0;
};

/// Bus in front of a lower timing level; charges setup + transfer time.
class bus final : public timed_mem_if {
public:
    bus(bus_config cfg, timed_mem_if& lower) : cfg_(cfg), lower_(lower) {}

    access_result access(std::uint32_t addr, bool is_write, unsigned size) override {
        ++stats_.transfers;
        stats_.bytes += size;
        const unsigned beats = (size + cfg_.bytes_per_cycle - 1) / cfg_.bytes_per_cycle;
        const unsigned below = lower_.access(addr, is_write, size).latency;
        const unsigned total = cfg_.setup_cycles + beats + below;
        stats_.busy_cycles += total;
        return {true, total};
    }

    const bus_stats& stats() const noexcept { return stats_; }

private:
    bus_config cfg_;
    timed_mem_if& lower_;
    bus_stats stats_;
};

}  // namespace osm::mem
