// Sparse paged main memory: the functional backing store for every model.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/memory_if.hpp"

namespace osm::mem {

/// Sparse byte-addressable memory; pages materialize on first touch and are
/// zero-filled, so programs can use any address without prior mapping.
class main_memory final : public memory_if {
public:
    static constexpr std::uint32_t page_bits = 12;  // 4 KiB pages
    static constexpr std::uint32_t page_size = 1u << page_bits;

    main_memory() = default;

    std::uint8_t read8(std::uint32_t addr) override;
    void write8(std::uint32_t addr, std::uint8_t value) override;
    std::uint16_t read16(std::uint32_t addr) override;
    std::uint32_t read32(std::uint32_t addr) override;
    void write16(std::uint32_t addr, std::uint16_t value) override;
    void write32(std::uint32_t addr, std::uint32_t value) override;

    /// Bulk load `data` starting at `addr` (used by the program loader).
    void load(std::uint32_t addr, const std::uint8_t* data, std::size_t n);

    /// Number of pages materialized so far.
    std::size_t resident_pages() const noexcept { return pages_.size(); }

    /// Base addresses of all resident pages, ascending.  Iteration over the
    /// underlying hash map is order-unstable; serializers (checkpoints)
    /// must go through this to stay byte-deterministic.
    std::vector<std::uint32_t> resident_page_bases() const;

    /// Raw bytes of the resident page containing `addr` (page_size bytes),
    /// or nullptr when the page has never been touched (reads as zero).
    const std::uint8_t* page_data(std::uint32_t addr) const;

    /// Release all pages (memory reads as zero again).
    void clear() { pages_.clear(); }

private:
    using page = std::array<std::uint8_t, page_size>;

    page& page_for(std::uint32_t addr);
    const page* peek_page(std::uint32_t addr) const;

    std::unordered_map<std::uint32_t, std::unique_ptr<page>> pages_;
};

}  // namespace osm::mem
