#include "mem/tlb.hpp"

namespace osm::mem {

tlb::tlb(tlb_config cfg) : cfg_(cfg), entries_(cfg.entries) {}

unsigned tlb::translate(std::uint32_t vaddr) {
    ++tick_;
    ++stats_.accesses;
    const std::uint32_t vpn = vaddr >> cfg_.page_bits;
    entry* lru = &entries_[0];
    for (entry& e : entries_) {
        if (e.valid && e.vpn == vpn) {
            e.last_use = tick_;
            return 0;
        }
        if (!e.valid) {
            lru = &e;
        } else if (lru->valid && e.last_use < lru->last_use) {
            lru = &e;
        }
    }
    ++stats_.misses;
    lru->valid = true;
    lru->vpn = vpn;
    lru->last_use = tick_;
    return cfg_.miss_penalty;
}

void tlb::flush() {
    for (entry& e : entries_) e.valid = false;
}

}  // namespace osm::mem
