#include "mem/write_buffer.hpp"

namespace osm::mem {

write_buffer::write_buffer(write_buffer_config cfg)
    : cfg_(cfg), fifo_(cfg.entries) {}

unsigned write_buffer::push_store() {
    ++stats_.stores;
    if (!fifo_.full()) {
        fifo_.push_back(cfg_.drain_cycles);
        return 0;
    }
    // Full: the store waits for the head entry to drain, then takes its
    // place.  The head's remaining cycles are the stall.
    ++stats_.full_stalls;
    const unsigned stall = fifo_.front();
    fifo_.pop_front();
    ++stats_.drained;
    fifo_.push_back(cfg_.drain_cycles);
    return stall;
}

void write_buffer::tick() {
    stats_.occupancy_cycles += fifo_.size();
    if (fifo_.empty()) return;
    unsigned& head = fifo_.front();
    if (head > 1) {
        --head;
    } else {
        fifo_.pop_front();
        ++stats_.drained;
    }
}

void write_buffer::clear() {
    while (!fifo_.empty()) fifo_.pop_front();
}

}  // namespace osm::mem
