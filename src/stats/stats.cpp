#include "stats/stats.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace osm::stats {

histogram::histogram(std::size_t buckets) : counts_(buckets ? buckets : 1, 0) {}

void histogram::add(std::size_t value) noexcept {
    const std::size_t b = value < counts_.size() ? value : counts_.size() - 1;
    ++counts_[b];
    ++total_;
    weighted_sum_ += b;
}

void histogram::clear() noexcept {
    for (auto& c : counts_) c = 0;
    total_ = 0;
    weighted_sum_ = 0;
}

double histogram::mean() const noexcept {
    return total_ == 0 ? 0.0
                       : static_cast<double>(weighted_sum_) / static_cast<double>(total_);
}

std::size_t histogram::percentile(double p) const noexcept {
    if (total_ == 0) return 0;
    const double target = p * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        seen += counts_[b];
        if (static_cast<double>(seen) >= target) return b;
    }
    return counts_.size() - 1;
}

std::string histogram::summary() const {
    std::ostringstream os;
    os << "mean=" << mean() << " p50=" << percentile(0.5) << " p99=" << percentile(0.99)
       << " [";
    for (std::size_t b = 0; b < counts_.size(); ++b) {
        os << (b ? " " : "") << counts_[b];
    }
    os << "]";
    return os.str();
}

void report::put(const std::string& section, const std::string& key, std::uint64_t v) {
    sections_[section][key] = v;
}
void report::put(const std::string& section, const std::string& key, double v) {
    sections_[section][key] = v;
}
void report::put(const std::string& section, const std::string& key, std::string v) {
    sections_[section][key] = std::move(v);
}
void report::put(const std::string& section, const std::string& key, const histogram& h) {
    put(section, key + ".mean", h.mean());
    put(section, key + ".p50", static_cast<std::uint64_t>(h.percentile(0.5)));
    put(section, key + ".p99", static_cast<std::uint64_t>(h.percentile(0.99)));
    put(section, key + ".samples", h.total());
}

namespace {

void render_string(std::ostringstream& os, const std::string& s) {
    os << '"';
    for (const char c : s) {
        switch (c) {
            case '"': os << "\\\""; break;
            case '\\': os << "\\\\"; break;
            case '\n': os << "\\n"; break;
            case '\r': os << "\\r"; break;
            case '\t': os << "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    os << buf;
                } else {
                    os << c;
                }
        }
    }
    os << '"';
}

void render_value(std::ostringstream& os, const report::value& v) {
    if (const auto* u = std::get_if<std::uint64_t>(&v)) {
        os << *u;
    } else if (const auto* d = std::get_if<double>(&v)) {
        if (std::isfinite(*d)) {
            // Canonical shortest-round-trip formatting: stream default
            // precision (6) both loses information and varies with any
            // ambient locale/format state, which breaks byte-comparison
            // of reports and checkpoint sidecars.
            char buf[32];
            std::snprintf(buf, sizeof buf, "%.17g", *d);
            os << buf;
        } else {
            os << "null";
        }
    } else {
        render_string(os, std::get<std::string>(v));
    }
}

}  // namespace

std::string report::to_json() const {
    std::ostringstream os;
    os << "{";
    bool first_section = true;
    for (const auto& [section, kv] : sections_) {
        if (!first_section) os << ",";
        first_section = false;
        os << "\n  \"" << section << "\": {";
        bool first_key = true;
        for (const auto& [key, v] : kv) {
            if (!first_key) os << ",";
            first_key = false;
            os << "\n    \"" << key << "\": ";
            render_value(os, v);
        }
        os << "\n  }";
    }
    os << "\n}\n";
    return os.str();
}

const report::value& report::at(const std::string& section, const std::string& key) const {
    return sections_.at(section).at(key);
}

}  // namespace osm::stats
