// Statistics support: bounded histograms and a structured report writer.
//
// Micro-architecture simulators exist to produce numbers; this module
// standardizes how the models expose them.  Histograms are fixed-bucket
// and allocation-free on the hot path; reports serialize counters and
// histograms to a stable JSON rendering for scripts and regression diffs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace osm::stats {

/// Fixed-bucket histogram over [0, buckets); larger samples clamp into the
/// last bucket.
class histogram {
public:
    explicit histogram(std::size_t buckets);

    void add(std::size_t value) noexcept;
    void clear() noexcept;

    std::size_t buckets() const noexcept { return counts_.size(); }
    std::uint64_t count(std::size_t bucket) const { return counts_.at(bucket); }
    std::uint64_t total() const noexcept { return total_; }

    /// Mean of the recorded samples (clamped values count as clamped).
    double mean() const noexcept;

    /// Smallest bucket b such that at least `p` (0..1) of the samples are
    /// <= b.  Returns 0 for an empty histogram.
    std::size_t percentile(double p) const noexcept;

    /// One-line rendering: "mean=… p50=… p99=… [c0 c1 …]".
    std::string summary() const;

private:
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
    std::uint64_t weighted_sum_ = 0;
};

/// A hierarchical scalar report with a stable JSON rendering.
class report {
public:
    using value = std::variant<std::uint64_t, double, std::string>;

    void put(const std::string& section, const std::string& key, std::uint64_t v);
    void put(const std::string& section, const std::string& key, double v);
    void put(const std::string& section, const std::string& key, std::string v);
    /// Records mean/percentiles of `h` under `key.*`.
    void put(const std::string& section, const std::string& key, const histogram& h);

    /// Deterministic (sorted) JSON object of objects.
    std::string to_json() const;

    /// Fetch a previously put scalar; throws std::out_of_range if absent.
    const value& at(const std::string& section, const std::string& key) const;

private:
    std::map<std::string, std::map<std::string, value>> sections_;
};

}  // namespace osm::stats
