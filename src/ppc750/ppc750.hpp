// P750: PowerPC-750-like dual-issue out-of-order superscalar processor
// modeled with OSMs — the paper's second case study (§5.2, Fig. 2).
//
// Micro-architecture (mirroring the units the paper enumerates):
//   * 6-entry fetch queue, up to 2 fetches and 2 in-order dispatches/cycle;
//   * 6 function units — IU1 (simple integer), IU2 (integer + mul/div),
//     FPU, LSU, SRU (system ops), BPU (branches) — each with its own
//     single-entry reservation station;
//   * register rename buffers (shared pools for GPRs and FPRs);
//   * 6-entry completion queue, in-order retirement up to 2/cycle;
//   * BHT (512 x 2-bit) + BTIC branch prediction with speculative fetch
//     past predicted branches and squash-on-mispredict via reset edges.
//
// The operation OSM follows paper Fig. 2: from the fetch queue an operation
// issues *directly* into its unit when the unit and all source operands are
// available (higher-priority edge), otherwise it enters the unit's
// reservation station and issues from there once its captured operand
// dependencies publish — the typical superscalar behaviour the paper notes
// L-charts cannot express but an OSM models with prioritized parallel
// edges.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"
#include "isa/iss.hpp"
#include "stats/stats.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "uarch/inorder_queue.hpp"
#include "uarch/predictor.hpp"
#include "uarch/rename.hpp"
#include "uarch/reset.hpp"

namespace osm::ppc750 {

/// Function units.
enum class unit : std::uint8_t { iu1 = 0, iu2, fpu, lsu, sru, bpu, count_ };
inline constexpr unsigned num_units = static_cast<unsigned>(unit::count_);

const char* unit_name(unit u);

/// Static model configuration.
struct p750_config {
    unsigned fetch_queue = 6;
    unsigned completion_queue = 6;
    unsigned fetch_bw = 2;
    unsigned dispatch_bw = 2;
    unsigned retire_bw = 2;
    unsigned gpr_renames = 6;
    unsigned fpr_renames = 6;
    unsigned bht_entries = 512;
    unsigned btic_entries = 64;
    unsigned num_osms = 16;
    unsigned mem_latency = 12;
    bool director_restart = false;  ///< paper §5: age rank needs no restart
    bool director_batch = false;    ///< skip blocked OSMs via generation memos
    bool deadlock_check = false;
    bool decode_cache = true;       ///< cache pre-decoded instructions by (pc, word)
    unsigned decode_cache_entries = 4096;
    mem::bus_config bus{};
    mem::cache_config icache{"icache", 32 * 1024, 32, 8,
                             mem::replacement::lru, mem::write_policy::write_back, 1};
    mem::cache_config dcache{"dcache", 32 * 1024, 32, 8,
                             mem::replacement::lru, mem::write_policy::write_back, 1};
    mem::tlb_config dtlb{64, 12, 20};
};

/// Run statistics.
struct p750_stats {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t direct_issues = 0;  ///< fetch queue -> unit (Fig. 2 e1)
    std::uint64_t rs_issues = 0;      ///< reservation station -> unit (e3)
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t squashed = 0;
    std::array<std::uint64_t, num_units> unit_busy_cycles{};

    double ipc() const {
        return cycles == 0 ? 0.0 : static_cast<double>(retired) / static_cast<double>(cycles);
    }
};

/// An in-flight operation.
class p750_op final : public core::osm {
public:
    p750_op(const core::osm_graph& g, std::string name) : core::osm(g, std::move(name)) {}

    isa::decoded_inst di{};
    std::uint32_t pc = 0;
    std::uint64_t fetch_seq = 0;
    std::uint32_t fetch_epoch = 0;
    unit fu = unit::iu1;
    bool predicted_taken = false;
    std::uint32_t predicted_target = 0;
    isa::exec_out ex{};
    bool has_store_entry = false;
    bool issued_from_rs = false;
};

/// The complete P750 micro-architecture simulator.
class p750_model {
public:
    p750_model(const p750_config& cfg, mem::main_memory& memory);

    void load(const isa::program_image& img);
    /// Adopt checkpointed architectural state (call after load()): registers,
    /// fetch pc, halt flag and console; queues/renames/stores stay reset.
    void restore_arch(const isa::arch_state& st, const std::string& console);
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool halted() const noexcept { return halted_; }
    const p750_stats& stats() const noexcept { return stats_; }

    /// Structured report of counters and queue-occupancy histograms.
    stats::report make_report() const;

    /// Fetch/completion queue occupancy, sampled each cycle.
    const stats::histogram& fq_occupancy() const noexcept { return fq_occ_; }
    const stats::histogram& cq_occupancy() const noexcept { return cq_occ_; }

    std::uint32_t gpr(unsigned r) const { return m_gpr_.arch_read(r); }
    std::uint32_t fpr(unsigned r) const { return m_fpr_.arch_read(r); }
    /// Next-fetch pc (speculative: may point past the halt after the end).
    std::uint32_t fetch_pc() const noexcept { return fetch_pc_; }
    const std::string& console() const { return host_.console(); }

    /// Debug/trace hook invoked at each in-order retirement.
    std::function<void(const p750_op&)> on_retire;

    core::director& dir() noexcept { return dir_; }
    core::sim_kernel& kernel() noexcept { return kern_; }
    const core::osm_graph& graph() const noexcept { return graph_; }
    const uarch::bht& branch_history() const noexcept { return bht_; }
    const isa::decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

private:
    struct store_entry {
        const p750_op* owner = nullptr;
        std::uint32_t addr = 0;
        unsigned size = 0;
        std::uint32_t old_bytes = 0;  // saved word for undo
        bool squashed = false;
    };

    void build_graph();
    void on_cycle();
    static unit select_unit(const isa::decoded_inst& di);

    // Edge actions.
    void act_fetch(p750_op& o);
    void act_enter_rs(p750_op& o);
    void act_issue(p750_op& o);
    void act_finish(p750_op& o);
    void act_retire(p750_op& o);
    void act_squash(p750_op& o);

    void resolve_branch(p750_op& o);
    void undo_store(const store_entry& s);
    void drain_squashed_stores();

    p750_config cfg_;
    mem::main_memory& mem_;

    mem::fixed_latency_mem dram_t_;
    mem::bus bus_;
    mem::cache icache_;
    mem::cache dcache_;
    mem::tlb dtlb_;
    isa::decode_cache dcode_;

    // TMI-enabled modules (19 in the paper's model; enumerated here).
    uarch::inorder_queue_manager m_fq_;   // 1 fetch queue
    uarch::inorder_queue_manager m_cq_;   // 2 completion queue
    uarch::rename_manager m_gpr_;         // 3 GPR file + renames
    uarch::rename_manager m_fpr_;         // 4 FPR file + renames
    uarch::reset_manager m_reset_;        // 5 reset manager
    std::array<std::unique_ptr<core::unit_token_manager>, num_units> m_unit_;  // 6-11
    std::array<std::unique_ptr<core::unit_token_manager>, num_units> m_rs_;    // 12-17
    // (18-19: BHT and BTIC live purely in the hardware layer, as in the
    // paper; the I/D caches likewise.)
    uarch::bht bht_;
    uarch::btic btic_;

    /// Per-unit edge indices into graph_ (filled by build_graph).
    struct unit_edges {
        std::int32_t q_to_x = -1;
        std::int32_t q_to_r = -1;
        std::int32_t r_to_x = -1;
        std::int32_t x_to_c = -1;
    };
    std::array<unit_edges, num_units> edges_{};

    core::osm_graph graph_;
    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<p750_op>> ops_;

    isa::syscall_host host_;

    // Fetch engine.
    std::uint32_t fetch_pc_ = 0;
    std::uint32_t epoch_ = 0;
    std::uint64_t next_fetch_seq_ = 1;
    std::uint32_t last_fetch_line_ = ~0u;
    bool redirect_pending_ = false;
    std::uint32_t redirect_target_ = 0;
    std::uint64_t kill_seq_ = ~0ull;

    // Store write-through with undo (LSU executes memory ops in program
    // order; squashed stores are rolled back youngest-first).
    std::deque<store_entry> store_queue_;

    stats::histogram fq_occ_{8};
    stats::histogram cq_occ_{8};

    bool halted_ = false;
    p750_stats stats_;
    std::uint64_t kills_at_load_ = 0;
    std::uint64_t cycles_at_load_ = 0;
};

/// Identifier slot layout for the P750 graph.
enum p750_slot : std::int32_t {
    p_slot_g_s1 = 0,   ///< GPR source 1 (plain at dispatch, captured in RS)
    p_slot_g_s2 = 1,
    p_slot_f_s1 = 2,
    p_slot_f_s2 = 3,
    p_slot_g_dst = 4,  ///< GPR rename allocation
    p_slot_f_dst = 5,
    p750_slot_count = 6,
};

}  // namespace osm::ppc750
