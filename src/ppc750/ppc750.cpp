#include "ppc750/ppc750.hpp"

#include <algorithm>
#include <cassert>

#include "common/bits.hpp"
#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::ppc750 {

using core::ident_expr;
using core::k_null_ident;
using isa::op;
using uarch::reg_update_ident;
using uarch::reg_value_ident;

const char* unit_name(unit u) {
    switch (u) {
        case unit::iu1: return "IU1";
        case unit::iu2: return "IU2";
        case unit::fpu: return "FPU";
        case unit::lsu: return "LSU";
        case unit::sru: return "SRU";
        case unit::bpu: return "BPU";
        case unit::count_: break;
    }
    return "?";
}

namespace {
bool is_simple_alu(const isa::decoded_inst& di) {
    const op c = di.code;
    if (isa::is_cti(c) || isa::is_mem(c) || isa::is_mul_div(c) || isa::is_fp(c) ||
        isa::is_system(c) || c == op::invalid) {
        return false;
    }
    return true;
}
}  // namespace

unit p750_model::select_unit(const isa::decoded_inst& di) {
    const op c = di.code;
    if (isa::is_cti(c)) return unit::bpu;
    if (isa::is_mem(c)) return unit::lsu;
    if (isa::is_mul_div(c)) return unit::iu2;
    if (isa::is_fp(c)) return unit::fpu;
    if (isa::is_system(c) || c == op::invalid) return unit::sru;
    return unit::iu1;  // simple ALU prefers IU1, may fall back to IU2
}

p750_model::p750_model(const p750_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dram_t_(cfg.mem_latency),
      bus_(cfg.bus, dram_t_),
      icache_(cfg.icache, bus_),
      dcache_(cfg.dcache, bus_),
      dtlb_(cfg.dtlb),
      dcode_(cfg.decode_cache_entries),
      m_fq_("m_fq", cfg.fetch_queue, cfg.fetch_bw, cfg.dispatch_bw),
      m_cq_("m_cq", cfg.completion_queue, cfg.dispatch_bw, cfg.retire_bw),
      m_gpr_("m_gpr", isa::num_gprs, cfg.gpr_renames, /*reg0_is_zero=*/true),
      m_fpr_("m_fpr", isa::num_fprs, cfg.fpr_renames, /*reg0_is_zero=*/false),
      m_reset_("m_reset"),
      bht_(cfg.bht_entries),
      btic_(cfg.btic_entries),
      graph_("p750"),
      kern_(dir_) {
    for (unsigned u = 0; u < num_units; ++u) {
        const auto uu = static_cast<unit>(u);
        m_unit_[u] = std::make_unique<core::unit_token_manager>(
            std::string("m_") + unit_name(uu));
        m_rs_[u] = std::make_unique<core::unit_token_manager>(
            std::string("m_rs_") + unit_name(uu));
    }
    build_graph();

    dir_.cfg().restart_on_transition = cfg_.director_restart;
    dir_.cfg().deadlock_check = cfg_.deadlock_check;
    dir_.cfg().skip_blocked = cfg_.director_batch;

    ops_.reserve(cfg_.num_osms);
    for (unsigned i = 0; i < cfg_.num_osms; ++i) {
        ops_.push_back(std::make_unique<p750_op>(graph_, "op" + std::to_string(i)));
        dir_.add(*ops_.back());
    }

    // Mis-speculation victims: fetched before the current epoch *and* after
    // the squashing branch in program order.
    m_reset_.arm([this](const core::osm& m) {
        const auto& o = static_cast<const p750_op&>(m);
        return o.fetch_epoch != epoch_ && o.fetch_seq > kill_seq_;
    });
    // epoch_ and kill_seq_ are touched at every site that writes them; the
    // per-op fields are written only in the op's own fetch action (covered
    // by the OSM stamp), so generation tracking is sound.
    m_reset_.set_generation_tracked(true);

    kern_.on_cycle([this] { on_cycle(); });
}

void p750_model::build_graph() {
    graph_.set_ident_slots(p750_slot_count);

    const auto I = graph_.add_state("I");
    const auto Q = graph_.add_state("Q");  // fetch queue (Fig. 2 state F)
    const auto R = graph_.add_state("R");  // reservation station
    const auto X = graph_.add_state("X");  // executing (Fig. 2 state E)
    const auto C = graph_.add_state("C");  // awaiting completion (Fig. 2 W)
    graph_.set_initial(I);

    const auto slot = ident_expr::from_slot;
    const auto fix = ident_expr::value;

    // Fetch: enter the fetch queue.
    {
        const auto e = graph_.add_edge(I, Q);
        graph_.edge_allocate(e, m_fq_, fix(0));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_fetch(static_cast<p750_op&>(m));
        });
    }

    // Reset edges: squash wrong-path operations wherever they sit.
    for (const auto s : {Q, R, X, C}) {
        const auto e = graph_.add_edge(s, I, /*priority=*/100);
        graph_.edge_inquire(e, m_reset_, fix(0));
        graph_.edge_discard_all(e);
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_squash(static_cast<p750_op&>(m));
        });
    }

    for (unsigned u = 0; u < num_units; ++u) {
        // IU1 outranks IU2 for simple ALU ops that may use either.
        const int bias = (u == static_cast<unsigned>(unit::iu1)) ? 1 : 0;

        // Fig. 2 e1: dispatch directly into the unit — needs the unit, an
        // empty reservation station (in-order issue per unit), every source
        // operand, a completion-queue entry and rename buffers.
        {
            const auto e = graph_.add_edge(Q, X, /*priority=*/20 + bias);
            graph_.edge_release(e, m_fq_, fix(0));
            graph_.edge_allocate(e, m_cq_, fix(0));
            graph_.edge_inquire(e, *m_rs_[u], fix(0));
            graph_.edge_allocate(e, *m_unit_[u], fix(0));
            graph_.edge_inquire(e, m_gpr_, slot(p_slot_g_s1));
            graph_.edge_inquire(e, m_gpr_, slot(p_slot_g_s2));
            graph_.edge_inquire(e, m_fpr_, slot(p_slot_f_s1));
            graph_.edge_inquire(e, m_fpr_, slot(p_slot_f_s2));
            graph_.edge_allocate(e, m_gpr_, slot(p_slot_g_dst));
            graph_.edge_allocate(e, m_fpr_, slot(p_slot_f_dst));
            graph_.edge_set_action(e, [this](core::osm& m) {
                act_issue(static_cast<p750_op&>(m));
            });
            edges_[u].q_to_x = e;
        }
        // Fig. 2 e2: dispatch into the reservation station instead.
        {
            const auto e = graph_.add_edge(Q, R, /*priority=*/10 + bias);
            graph_.edge_release(e, m_fq_, fix(0));
            graph_.edge_allocate(e, m_cq_, fix(0));
            graph_.edge_allocate(e, *m_rs_[u], fix(0));
            graph_.edge_allocate(e, m_gpr_, slot(p_slot_g_dst));
            graph_.edge_allocate(e, m_fpr_, slot(p_slot_f_dst));
            graph_.edge_set_action(e, [this](core::osm& m) {
                act_enter_rs(static_cast<p750_op&>(m));
            });
            edges_[u].q_to_r = e;
        }
        // Fig. 2 e3: issue from the reservation station once the captured
        // operand dependencies have published.
        {
            const auto e = graph_.add_edge(R, X);
            graph_.edge_release(e, *m_rs_[u], fix(0));
            graph_.edge_allocate(e, *m_unit_[u], fix(0));
            graph_.edge_inquire(e, m_gpr_, slot(p_slot_g_s1));
            graph_.edge_inquire(e, m_gpr_, slot(p_slot_g_s2));
            graph_.edge_inquire(e, m_fpr_, slot(p_slot_f_s1));
            graph_.edge_inquire(e, m_fpr_, slot(p_slot_f_s2));
            graph_.edge_set_action(e, [this](core::osm& m) {
                act_issue(static_cast<p750_op&>(m));
            });
            edges_[u].r_to_x = e;
        }
        // Fig. 2 e4: execution complete — free the unit, publish.
        {
            const auto e = graph_.add_edge(X, C);
            graph_.edge_release(e, *m_unit_[u], fix(0));
            graph_.edge_set_action(e, [this](core::osm& m) {
                act_finish(static_cast<p750_op&>(m));
            });
            edges_[u].x_to_c = e;
        }
    }

    // Fig. 2 e5: in-order completion — commit renames, leave the machine.
    {
        const auto e = graph_.add_edge(C, I);
        graph_.edge_release(e, m_cq_, fix(0));
        graph_.edge_release(e, m_gpr_, slot(p_slot_g_dst));
        graph_.edge_release(e, m_fpr_, slot(p_slot_f_dst));
        graph_.edge_set_action(e, [this](core::osm& m) {
            act_retire(static_cast<p750_op&>(m));
        });
    }

    graph_.finalize();
}

void p750_model::load(const isa::program_image& img) {
    img.load_into(mem_);
    fetch_pc_ = img.entry;
    epoch_ = 0;
    m_reset_.touch();
    next_fetch_seq_ = 1;
    last_fetch_line_ = ~0u;
    redirect_pending_ = false;
    kill_seq_ = ~0ull;
    store_queue_.clear();
    fq_occ_.clear();
    cq_occ_.clear();
    halted_ = false;
    stats_ = {};
    host_.clear();
    dcode_.invalidate_all();
    dcode_.reset_stats();
    kern_.clear_stop();
    m_cq_.unblock_release();
    kills_at_load_ = m_reset_.kills();
    cycles_at_load_ = kern_.cycles();
    for (auto& o : ops_) o->hard_reset();
}

void p750_model::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < 32; ++r) {
        m_gpr_.arch_write(r, st.gpr[r]);
        m_fpr_.arch_write(r, st.fpr[r]);
    }
    fetch_pc_ = st.pc;
    halted_ = st.halted;
    host_.seed(console);
}

void p750_model::on_cycle() {
    m_fq_.tick();
    m_cq_.tick();
    for (auto& u : m_unit_) u->tick();
    for (auto& r : m_rs_) r->tick();

    drain_squashed_stores();

    if (redirect_pending_) {
        ++epoch_;
        m_reset_.touch();  // predicate input changed: wrong-path ops wake
        fetch_pc_ = redirect_target_;
        last_fetch_line_ = ~0u;
        redirect_pending_ = false;
    }

    for (unsigned u = 0; u < num_units; ++u) {
        if (m_unit_[u]->busy()) ++stats_.unit_busy_cycles[u];
    }
    fq_occ_.add(m_fq_.size());
    cq_occ_.add(m_cq_.size());
}

stats::report p750_model::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("p750"));
    r.put("run", "cycles", stats_.cycles);
    r.put("run", "retired", stats_.retired);
    r.put("run", "ipc", stats_.ipc());
    r.put("dispatch", "dispatched", stats_.dispatched);
    r.put("dispatch", "direct_issues", stats_.direct_issues);
    r.put("dispatch", "rs_issues", stats_.rs_issues);
    r.put("branches", "executed", stats_.branches);
    r.put("branches", "mispredicts", stats_.mispredicts);
    r.put("branches", "squashed_ops", stats_.squashed);
    for (unsigned u = 0; u < num_units; ++u) {
        r.put("units", std::string(unit_name(static_cast<unit>(u))) + "_busy_cycles",
              stats_.unit_busy_cycles[u]);
    }
    r.put("queues", "fq_occupancy", fq_occ_);
    r.put("queues", "cq_occupancy", cq_occ_);
    r.put("icache", "hit_ratio", icache_.stats().hit_ratio());
    r.put("dcache", "hit_ratio", dcache_.stats().hit_ratio());
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "evictions", dcode_.stats().evictions);
    r.put("decode_cache", "smc_redecodes", dcode_.stats().smc_redecodes);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    r.put("director", "control_steps", dir_.stats().control_steps);
    r.put("director", "transitions", dir_.stats().transitions);
    r.put("director", "conditions_evaluated", dir_.stats().conditions_evaluated);
    r.put("director", "primitives_evaluated", dir_.stats().primitives_evaluated);
    r.put("director", "skipped_visits", dir_.stats().skipped_visits);
    return r;
}

std::uint64_t p750_model::run(std::uint64_t max_cycles) {
    std::uint64_t executed = 0;
    while (!halted_ && executed < max_cycles) {
        const std::uint64_t chunk = std::min<std::uint64_t>(max_cycles - executed, 1024);
        executed += kern_.run(chunk);
        if (kern_.stop_requested()) break;
    }
    stats_.cycles = kern_.cycles() - cycles_at_load_;
    stats_.squashed = m_reset_.kills() - kills_at_load_;
    return executed;
}

// ---- edge actions -----------------------------------------------------------

void p750_model::act_fetch(p750_op& o) {
    o.pc = fetch_pc_;
    o.fetch_epoch = epoch_;
    o.fetch_seq = next_fetch_seq_++;
    o.ex = {};
    o.predicted_taken = false;
    o.has_store_entry = false;
    o.issued_from_rs = false;

    // Charge the I-cache once per fetched line; a miss blackouts fetch.
    const std::uint32_t line = o.pc / cfg_.icache.line_bytes;
    if (line != last_fetch_line_) {
        last_fetch_line_ = line;
        const unsigned lat = icache_.access(o.pc, false, 4).latency;
        if (lat > 1) m_fq_.block_alloc_for(lat - 1);
    }

    // The word tag on the decode cache makes stores to fetched code
    // re-decode naturally (self-modifying code needs no invalidation).
    const std::uint32_t word = mem_.read32(o.pc);
    o.di = cfg_.decode_cache ? dcode_.lookup(o.pc, word).di : isa::decode(word);
    const op c = o.di.code;
    o.fu = select_unit(o.di);

    // Initialize transaction identifiers (paper §4): plain register value
    // idents for the dispatch-time check, rename-update idents for the
    // destination.  Unused roles stay null.
    for (std::int32_t s = 0; s < p750_slot_count; ++s) o.set_ident(s, k_null_ident);
    if (isa::uses_rs1(c)) {
        o.set_ident(isa::rs1_is_fpr(c) ? p_slot_f_s1 : p_slot_g_s1,
                    reg_value_ident(o.di.rs1));
    }
    if (isa::uses_rs2(c)) {
        o.set_ident(isa::rs2_is_fpr(c) ? p_slot_f_s2 : p_slot_g_s2,
                    reg_value_ident(o.di.rs2));
    }
    if (isa::writes_rd(c)) {
        o.set_ident(isa::rd_is_fpr(c) ? p_slot_f_dst : p_slot_g_dst,
                    reg_update_ident(o.di.rd));
    }

    // Enable only this operation's unit edges (simple ALU may use IU1/IU2).
    const bool dual = is_simple_alu(o.di);
    for (unsigned u = 0; u < num_units; ++u) {
        const bool en = (u == static_cast<unsigned>(o.fu)) ||
                        (dual && u == static_cast<unsigned>(unit::iu2));
        o.set_edge_enabled(edges_[u].q_to_x, en);
        o.set_edge_enabled(edges_[u].q_to_r, en);
        o.set_edge_enabled(edges_[u].r_to_x, en);
        o.set_edge_enabled(edges_[u].x_to_c, en);
    }

    // Branch prediction: speculative fetch redirection.
    if (isa::is_branch(c)) {
        if (bht_.predict(o.pc)) {
            o.predicted_taken = true;
            o.predicted_target = o.pc + 4 + static_cast<std::uint32_t>(o.di.imm);
            if (!btic_.lookup(o.pc).has_value()) {
                // BTIC miss: one fetch bubble to compute the target.
                m_fq_.block_alloc_for(1);
            }
            fetch_pc_ = o.predicted_target;
            last_fetch_line_ = ~0u;
            return;
        }
    } else if (c == op::jal) {
        // Unconditional with decode-time target: follow it immediately.
        o.predicted_taken = true;
        o.predicted_target = o.pc + 4 + static_cast<std::uint32_t>(o.di.imm);
        fetch_pc_ = o.predicted_target;
        last_fetch_line_ = ~0u;
        return;
    }
    fetch_pc_ = o.pc + 4;
}

void p750_model::act_enter_rs(p750_op& o) {
    ++stats_.dispatched;
    o.issued_from_rs = true;
    // Capture the exact producers we depend on (paper §4: identifiers are
    // (re)initialized so later writers cannot disturb the dependency).
    const op c = o.di.code;
    if (isa::uses_rs1(c)) {
        if (isa::rs1_is_fpr(c)) {
            o.set_ident(p_slot_f_s1, m_fpr_.capture(o.di.rs1, &o));
        } else {
            o.set_ident(p_slot_g_s1, m_gpr_.capture(o.di.rs1, &o));
        }
    }
    if (isa::uses_rs2(c)) {
        if (isa::rs2_is_fpr(c)) {
            o.set_ident(p_slot_f_s2, m_fpr_.capture(o.di.rs2, &o));
        } else {
            o.set_ident(p_slot_g_s2, m_gpr_.capture(o.di.rs2, &o));
        }
    }
}

void p750_model::act_issue(p750_op& o) {
    const op c = o.di.code;
    if (o.issued_from_rs) {
        ++stats_.rs_issues;
    } else {
        ++stats_.dispatched;
        ++stats_.direct_issues;
    }

    std::uint32_t a = 0;
    std::uint32_t b = 0;
    if (isa::uses_rs1(c)) {
        a = isa::rs1_is_fpr(c) ? m_fpr_.read(o.ident(p_slot_f_s1), o.di.rs1, &o)
                               : m_gpr_.read(o.ident(p_slot_g_s1), o.di.rs1, &o);
    }
    if (isa::uses_rs2(c)) {
        b = isa::rs2_is_fpr(c) ? m_fpr_.read(o.ident(p_slot_f_s2), o.di.rs2, &o)
                               : m_gpr_.read(o.ident(p_slot_g_s2), o.di.rs2, &o);
    }
    o.ex = isa::compute(o.di, o.pc, a, b);

    const unsigned uidx = static_cast<unsigned>(o.fu);
    unsigned latency = 1 + isa::extra_exec_cycles(c);

    if (o.fu == unit::lsu && isa::is_mem(c)) {
        unsigned mlat = dtlb_.translate(o.ex.mem_addr);
        const unsigned size = c == op::sb ? 1u : (c == op::sh ? 2u : 4u);
        mlat += dcache_.access(o.ex.mem_addr, isa::is_store(c), size).latency;
        latency = mlat;
        if (isa::is_load(c)) {
            o.ex.value = isa::do_load(c, mem_, o.ex.mem_addr);
        } else {
            // Write through with an undo record (LSU executes memory ops in
            // program order; squashes roll back youngest-first).
            store_entry s;
            s.owner = &o;
            s.addr = o.ex.mem_addr;
            s.size = size;
            s.old_bytes = size == 1   ? mem_.read8(s.addr)
                          : size == 2 ? mem_.read16(s.addr)
                                      : mem_.read32(s.addr);
            isa::do_store(c, mem_, s.addr, o.ex.store_data);
            store_queue_.push_back(s);
            o.has_store_entry = true;
        }
    }

    if (latency > 1) m_unit_[uidx]->hold_for(latency);

    if (o.fu == unit::bpu) resolve_branch(o);
}

void p750_model::resolve_branch(p750_op& o) {
    const op c = o.di.code;
    const std::uint32_t correct_next = o.ex.redirect ? o.ex.next_pc : o.pc + 4;
    const std::uint32_t predicted_next =
        o.predicted_taken ? o.predicted_target : o.pc + 4;

    if (isa::is_branch(c)) {
        ++stats_.branches;
        bht_.update(o.pc, o.ex.redirect);
        if (o.ex.redirect) btic_.insert(o.pc, o.ex.next_pc);
    }
    if (correct_next != predicted_next) {
        ++stats_.mispredicts;
        redirect_pending_ = true;
        redirect_target_ = correct_next;
        kill_seq_ = o.fetch_seq;
        m_reset_.touch();
    }
}

void p750_model::act_finish(p750_op& o) {
    const op c = o.di.code;
    if (isa::writes_rd(c)) {
        if (isa::rd_is_fpr(c)) {
            m_fpr_.publish(o.di.rd, o, o.ex.value);
        } else {
            m_gpr_.publish(o.di.rd, o, o.ex.value);
        }
    }
}

void p750_model::act_retire(p750_op& o) {
    if (halted_) return;  // nothing younger than the halt may take effect
    ++stats_.retired;
    if (on_retire) on_retire(o);
    const op c = o.di.code;
    if (o.has_store_entry) {
        // The oldest store in flight is ours: its write is now permanent.
        assert(!store_queue_.empty() && store_queue_.front().owner == &o);
        store_queue_.pop_front();
        o.has_store_entry = false;
    }
    if (c == op::syscall_op) {
        isa::arch_state st;
        for (unsigned r = 0; r < isa::num_gprs; ++r) st.gpr[r] = m_gpr_.arch_read(r);
        host_.handle(static_cast<std::uint16_t>(o.di.imm), st);
        if (st.halted) halted_ = true;
    } else if (c == op::halt || c == op::invalid) {
        halted_ = true;
    }
    if (halted_) {
        // Roll back every younger speculative store, refuse any further
        // completion-queue release (nothing younger may commit), and stop.
        while (!store_queue_.empty()) {
            undo_store(store_queue_.back());
            store_queue_.pop_back();
        }
        m_cq_.block_release();
        kern_.request_stop();
    }
}

void p750_model::act_squash(p750_op& o) {
    if (o.has_store_entry) {
        for (auto it = store_queue_.rbegin(); it != store_queue_.rend(); ++it) {
            if (it->owner == &o) {
                it->squashed = true;
                break;
            }
        }
        o.has_store_entry = false;
    }
}

void p750_model::undo_store(const store_entry& s) {
    switch (s.size) {
        case 1: mem_.write8(s.addr, static_cast<std::uint8_t>(s.old_bytes)); break;
        case 2: mem_.write16(s.addr, static_cast<std::uint16_t>(s.old_bytes)); break;
        default: mem_.write32(s.addr, s.old_bytes); break;
    }
}

void p750_model::drain_squashed_stores() {
    // Squash victims form a youngest suffix of the (program-ordered) store
    // queue; roll them back newest-first.
    while (!store_queue_.empty() && store_queue_.back().squashed) {
        undo_store(store_queue_.back());
        store_queue_.pop_back();
    }
}

}  // namespace osm::ppc750
