#include "fuzz/corpus.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "common/atomic_file.hpp"
#include "isa/arch.hpp"
#include "isa/assembler.hpp"
#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "sim/registry.hpp"

namespace osm::fuzz {

namespace {

std::uint32_t word_at(const isa::program_image::segment& seg, std::size_t i) {
    return static_cast<std::uint32_t>(seg.bytes[i]) |
           static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
           static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
           static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
}

const isa::program_image::segment* text_segment(const isa::program_image& img) {
    for (const auto& seg : img.segments) {
        if (img.entry >= seg.base && img.entry < seg.base + seg.bytes.size()) {
            return &seg;
        }
    }
    return nullptr;
}

std::string label_for(std::uint32_t addr) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "L_%05X", addr);
    return buf;
}

std::string hex(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%X", v);
    return buf;
}

std::string json_escape(const std::string& s) {
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        if (c == '\n') { out += "\\n"; continue; }
        out += c;
    }
    return out;
}

std::string json_unescape(const std::string& s) {
    std::string out;
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (s[i] == '\\' && i + 1 < s.size()) {
            ++i;
            out += (s[i] == 'n') ? '\n' : s[i];
        } else {
            out += s[i];
        }
    }
    return out;
}

std::string read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void write_file(const std::string& path, const std::string& text) {
    // Corpus artifacts are replayed byte-exactly by later campaigns, so a
    // writer killed mid-save must never leave a torn .s/.json behind.
    common::atomic_write_file(path, text);
}

std::vector<std::string> split_engines(const std::string& list) {
    if (list.empty() || list == "all") {
        // Corpus reproducers are VR32 assembly; "all" means all VR32 engines.
        return sim::engine_registry::instance().names_for_isa("vr32");
    }
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

}  // namespace

std::string image_to_asm(const isa::program_image& img) {
    const auto* text = text_segment(img);
    std::string out;

    if (text != nullptr) {
        const std::size_t words = text->bytes.size() / 4;
        // Pass 1: collect in-text branch/jal targets so they become labels.
        std::set<std::uint32_t> targets;
        for (std::size_t i = 0; i < words; ++i) {
            const auto di = isa::decode(word_at(*text, i * 4));
            if (isa::is_branch(di.code) || di.code == isa::op::jal) {
                const std::uint32_t pc = text->base + static_cast<std::uint32_t>(i * 4);
                targets.insert(pc + 4 + static_cast<std::uint32_t>(di.imm));
            }
        }
        out += ".text " + hex(text->base) + "\n";
        if (img.entry != text->base) out += "; entry below at _start\n";
        for (std::size_t i = 0; i < words; ++i) {
            const std::uint32_t pc = text->base + static_cast<std::uint32_t>(i * 4);
            if (pc == img.entry && img.entry != text->base) out += "_start:\n";
            if (targets.count(pc)) out += label_for(pc) + ":\n";
            const auto di = isa::decode(word_at(*text, i * 4));
            std::string line;
            if (isa::is_branch(di.code) || di.code == isa::op::jal) {
                const std::uint32_t tgt = pc + 4 + static_cast<std::uint32_t>(di.imm);
                const bool in_text =
                    tgt >= text->base && tgt <= text->base + words * 4;
                const std::string where = in_text ? label_for(tgt) : hex(tgt);
                if (isa::is_branch(di.code)) {
                    line = std::string(isa::op_name(di.code)) + " " +
                           std::string(isa::gpr_name(di.rs1)) + ", " +
                           std::string(isa::gpr_name(di.rs2)) + ", " + where;
                } else {
                    line = "jal " + std::string(isa::gpr_name(di.rd)) + ", " + where;
                }
            } else {
                line = isa::disassemble(di, pc);
            }
            out += "        " + line + "\n";
        }
        // A branch may target the address just past the last instruction.
        const std::uint32_t end = text->base + static_cast<std::uint32_t>(words * 4);
        if (targets.count(end)) out += label_for(end) + ":\n";
    }

    for (const auto& seg : img.segments) {
        if (&seg == text) continue;
        out += ".data " + hex(seg.base) + "\n";
        std::size_t i = 0;
        for (; i + 4 <= seg.bytes.size(); i += 4) {
            out += ".word " + hex(word_at(seg, i)) + "\n";
        }
        for (; i < seg.bytes.size(); ++i) {
            out += ".byte " + hex(seg.bytes[i]) + "\n";
        }
    }
    return out;
}

std::string reproducer_meta::to_json() const {
    std::ostringstream o;
    o << "{\n"
      << "  \"name\": \"" << json_escape(name) << "\",\n"
      << "  \"kind\": \"" << json_escape(kind) << "\",\n"
      << "  \"engines\": \"" << json_escape(engines) << "\",\n"
      << "  \"seed\": " << seed << ",\n"
      << "  \"rand_options\": \"" << json_escape(rand_options) << "\",\n"
      << "  \"max_cycles\": " << max_cycles << ",\n"
      << "  \"note\": \"" << json_escape(note) << "\",\n"
      << "  \"divergence\": \"" << json_escape(divergence) << "\"\n"
      << "}\n";
    return o.str();
}

std::map<std::string, std::string> parse_flat_json(const std::string& text) {
    std::map<std::string, std::string> out;
    std::size_t i = 0;
    const auto skip_ws = [&] {
        while (i < text.size() && (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
                                   text[i] == ',' || text[i] == '{' || text[i] == '}')) {
            ++i;
        }
    };
    const auto string_at = [&]() -> std::string {
        ++i;  // opening quote
        std::string raw;
        while (i < text.size() && text[i] != '"') {
            if (text[i] == '\\' && i + 1 < text.size()) raw += text[i++];
            raw += text[i++];
        }
        ++i;  // closing quote
        return json_unescape(raw);
    };
    while (true) {
        skip_ws();
        if (i >= text.size() || text[i] != '"') break;
        const std::string key = string_at();
        skip_ws();
        if (i >= text.size() || text[i] != ':') {
            throw std::runtime_error("corpus metadata: expected ':' after \"" + key + "\"");
        }
        ++i;
        skip_ws();
        if (i < text.size() && text[i] == '"') {
            out[key] = string_at();
        } else {
            std::string num;
            while (i < text.size() && (std::isalnum(static_cast<unsigned char>(text[i])) != 0 ||
                                       text[i] == '-' || text[i] == '.')) {
                num += text[i++];
            }
            out[key] = num;
        }
    }
    return out;
}

reproducer_meta reproducer_meta::from_json(const std::string& text) {
    const auto kv = parse_flat_json(text);
    reproducer_meta m;
    const auto get = [&kv](const char* key, const std::string& def) {
        const auto it = kv.find(key);
        return it == kv.end() ? def : it->second;
    };
    m.name = get("name", "");
    m.kind = get("kind", m.kind);
    m.engines = get("engines", m.engines);
    m.seed = std::strtoull(get("seed", "0").c_str(), nullptr, 10);
    m.rand_options = get("rand_options", "");
    if (kv.count("max_cycles")) {
        m.max_cycles = std::strtoull(kv.at("max_cycles").c_str(), nullptr, 10);
    }
    m.note = get("note", "");
    m.divergence = get("divergence", "");
    return m;
}

std::string save_reproducer(const std::string& dir, const reproducer_meta& meta,
                            const isa::program_image& img) {
    std::filesystem::create_directories(dir);
    const std::string stem = dir + "/" + meta.name;
    std::string asm_text = "; " + meta.name + " (" + meta.kind + ")\n";
    if (!meta.note.empty()) asm_text += "; " + meta.note + "\n";
    if (!meta.divergence.empty()) asm_text += "; found: " + meta.divergence + "\n";
    asm_text += "; replay: osm-fuzz replay " + meta.name + ".s\n";
    asm_text += image_to_asm(img);
    write_file(stem + ".s", asm_text);
    write_file(stem + ".json", meta.to_json());
    return stem + ".s";
}

replay_result replay_artifact(const std::string& asm_path,
                              const std::vector<std::string>& engines_override,
                              const sim::engine_config& cfg,
                              sim::end_state_cache* cache) {
    replay_result r;
    r.path = asm_path;
    std::string meta_path = asm_path;
    if (meta_path.size() > 2 && meta_path.substr(meta_path.size() - 2) == ".s") {
        meta_path = meta_path.substr(0, meta_path.size() - 2) + ".json";
    }
    if (std::filesystem::exists(meta_path)) {
        r.meta = reproducer_meta::from_json(read_file(meta_path));
    } else {
        r.meta.name = std::filesystem::path(asm_path).stem().string();
    }

    const auto img = isa::assemble(read_file(asm_path));
    auto engines = engines_override.empty() ? split_engines(r.meta.engines)
                                            : engines_override;
    sim::diff_options opt;
    opt.config = cfg;
    opt.max_cycles = r.meta.max_cycles;
    opt.cache = cache;
    r.diff = sim::diff_engines(engines, img, opt);
    return r;
}

std::vector<std::string> list_corpus(const std::string& dir) {
    std::vector<std::string> out;
    if (!std::filesystem::is_directory(dir)) return out;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
        if (e.is_regular_file() && e.path().extension() == ".s") {
            out.push_back(e.path().string());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

}  // namespace osm::fuzz
