// Delta-debugging reproducer minimizer.
//
// Given a program on which two engines disagree, shrink it while the same
// engine keeps diverging from the reference: first drop contiguous
// instruction ranges (rewriting branch targets across the gap, ddmin
// style, halving the chunk size), then nop out single instructions, then
// drop the committed nops.  Every candidate is re-validated by actually
// running the engines, so the minimizer needs no knowledge of *why* the
// divergence happens — only that it persists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/diff_runner.hpp"

namespace osm::fuzz {

struct minimize_options {
    /// Engines to re-check each candidate on; first is the reference.
    /// Typically just {reference, divergent_engine} for speed.
    std::vector<std::string> engines;
    sim::engine_config config{};
    /// Per-probe cycle budget.  Candidates may loop differently than the
    /// original, so this also bounds pathological intermediate programs.
    std::uint64_t max_cycles = 5'000'000;
    /// Hard cap on predicate evaluations (each runs every engine once).
    unsigned max_probes = 4000;
    /// Re-validate candidates in checkpointed lockstep (reference vs the
    /// pinned divergent engine) instead of full end-state re-runs: a failing
    /// candidate is rejected at the first mismatching compare boundary, so
    /// it never runs to completion.  The verdict is unchanged for
    /// divergences that persist to the end of the run (the minimizer's
    /// contract), so the minimized program is the same either way.
    bool checkpoint_revalidate = false;
    /// Retirements between lockstep compare points.
    std::uint64_t checkpoint_interval = 256;
    /// Concurrent candidate evaluations.  Parallelism is speculative: the
    /// next `jobs` scan positions are probed together assuming none
    /// reproduces, and the first reproducing candidate (in scan order) is
    /// committed while later speculative results are discarded.  The
    /// decision sequence — and therefore the minimized program — is
    /// identical to jobs == 1; only wall-clock time differs.  Probe
    /// accounting also matches serial: discarded speculative evaluations
    /// are not charged against max_probes.
    unsigned jobs = 1;
    /// Optional terminal-state memo shared with the campaign (see
    /// sim::diff_options::cache); must be thread-safe when jobs > 1.
    sim::end_state_cache* cache = nullptr;
};

struct minimize_result {
    /// False when the input program did not diverge at all (nothing to
    /// minimize; `image` is the input unchanged).
    bool was_divergent = false;
    isa::program_image image;          ///< minimized program
    std::size_t original_words = 0;    ///< text instructions before
    std::size_t minimized_words = 0;   ///< text instructions after
    unsigned probes = 0;               ///< predicate evaluations spent
    sim::divergence first;             ///< divergence of the minimized program
    bool used_checkpoints = false;     ///< lockstep re-validation was active
    /// First divergent retirement of the minimized program (bisected via
    /// checkpoint restore); valid when `located`.
    bool located = false;
    std::uint64_t first_divergent_retired = 0;
};

/// Shrink `img` while `opt.engines` keep diverging.  The divergent engine
/// is pinned from the initial run: a candidate only counts as failing when
/// that same engine disagrees with the reference again.
minimize_result minimize_divergence(const isa::program_image& img,
                                    const minimize_options& opt);

}  // namespace osm::fuzz
