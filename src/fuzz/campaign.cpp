#include "fuzz/campaign.hpp"

#include <cstdio>

#include "sim/registry.hpp"
#include "workloads/randprog_cli.hpp"

namespace osm::fuzz {

namespace {

matrix_row row(std::string name,
               void (*tweak)(workloads::randprog_options&) = nullptr) {
    matrix_row r;
    r.name = std::move(name);
    if (tweak != nullptr) tweak(r.options);
    return r;
}

std::vector<matrix_row> build_matrix(bool quick) {
    std::vector<matrix_row> m;
    m.push_back(row("baseline"));
    m.push_back(row("fp", [](workloads::randprog_options& o) { o.with_fp = true; }));
    m.push_back(row("load_use", [](workloads::randprog_options& o) {
        o.hazard_load_use = true;
    }));
    m.push_back(row("branch_dense", [](workloads::randprog_options& o) {
        o.hazard_branch_dense = true;
    }));
    if (quick) return m;
    m.push_back(row("no_mul_div", [](workloads::randprog_options& o) {
        o.with_mul_div = false;
    }));
    m.push_back(row("no_memory", [](workloads::randprog_options& o) {
        o.with_memory = false;
    }));
    m.push_back(row("no_branches", [](workloads::randprog_options& o) {
        o.with_branches = false;
    }));
    m.push_back(row("alu_only", [](workloads::randprog_options& o) {
        o.with_mul_div = o.with_memory = o.with_branches = false;
    }));
    m.push_back(row("fp_heavy", [](workloads::randprog_options& o) {
        o.with_fp = true;
        o.block_len = 16;
    }));
    m.push_back(row("tiny_blocks", [](workloads::randprog_options& o) {
        o.blocks = 24;
        o.block_len = 3;
    }));
    m.push_back(row("big_blocks", [](workloads::randprog_options& o) {
        o.blocks = 4;
        o.block_len = 40;
    }));
    m.push_back(row("deep_loops", [](workloads::randprog_options& o) {
        o.blocks = 8;
        o.loop_count = 9;
    }));
    m.push_back(row("hazard_mix", [](workloads::randprog_options& o) {
        o.hazard_load_use = o.hazard_branch_dense = true;
        o.with_fp = true;
    }));
    return m;
}

void count_features(const workloads::randprog_options& o,
                    std::map<std::string, std::uint64_t>& fc) {
    if (o.with_mul_div) ++fc["mul_div"];
    if (o.with_memory) ++fc["memory"];
    if (o.with_branches) ++fc["branches"];
    if (o.with_fp) ++fc["fp"];
    if (o.hazard_load_use) ++fc["hazard_load_use"];
    if (o.hazard_branch_dense) ++fc["hazard_branch_dense"];
}

void absorb_runs(const sim::diff_result& d, campaign_result& res) {
    for (const auto& r : d.runs) {
        if (r.ran) {
            ++res.engine_runs;
            res.instructions += r.retired;
        } else {
            ++res.skipped_runs;
        }
    }
}

std::string zero_pad(std::uint64_t v, int width) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%0*llu", width,
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

const std::vector<matrix_row>& feature_matrix(bool quick) {
    static const std::vector<matrix_row> full = build_matrix(false);
    static const std::vector<matrix_row> small = build_matrix(true);
    return quick ? small : full;
}

stats::report campaign_result::summary() const {
    stats::report rep;
    rep.put("campaign", "programs", programs);
    rep.put("campaign", "corpus_replayed", corpus_replayed);
    rep.put("campaign", "engine_runs", engine_runs);
    rep.put("campaign", "skipped_runs", skipped_runs);
    rep.put("campaign", "instructions", instructions);
    rep.put("campaign", "divergences", static_cast<std::uint64_t>(findings.size()));
    for (const auto& [name, count] : row_programs) {
        rep.put("coverage.rows", name, count);
    }
    for (const auto& [name, count] : feature_programs) {
        rep.put("coverage.features", name, count);
    }
    unsigned i = 0;
    for (const auto& f : findings) {
        const std::string key = "finding." + zero_pad(i++, 3);
        rep.put(key, "seed", f.seed);
        rep.put(key, "row", f.row);
        rep.put(key, "options", workloads::randprog_flags(f.options));
        rep.put(key, "divergence", f.first.to_string());
        rep.put(key, "original_words", static_cast<std::uint64_t>(f.original_words));
        rep.put(key, "minimized_words", static_cast<std::uint64_t>(f.minimized_words));
        if (!f.artifact.empty()) rep.put(key, "artifact", f.artifact);
    }
    return rep;
}

campaign_result run_campaign(const campaign_options& opt) {
    auto engines = opt.engines;
    // Campaign programs are VR32 randprogs; only VR32 engines can run them.
    if (engines.empty()) engines = sim::engine_registry::instance().names_for_isa("vr32");
    // Resolve every engine up front: a typo must be a setup error, not 500
    // silent exceptions mid-sweep.
    for (const auto& n : engines) {
        (void)sim::engine_registry::instance().create(n, opt.config);
    }

    campaign_result res;
    const auto& matrix = feature_matrix(opt.quick);

    // Replay the committed corpus first: regressions there are the
    // highest-signal findings a campaign can produce.
    if (!opt.replay_dir.empty()) {
        for (const auto& path : list_corpus(opt.replay_dir)) {
            auto rr = replay_artifact(path, {}, opt.config);
            ++res.corpus_replayed;
            absorb_runs(rr.diff, res);
            for (const auto& d : rr.diff.divergences) {
                campaign_finding f;
                f.row = "corpus:" + rr.meta.name;
                f.first = d;
                res.findings.push_back(std::move(f));
            }
        }
    }

    sim::diff_options dopt;
    dopt.config = opt.config;
    dopt.max_cycles = opt.max_cycles;

    for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
        const auto& mrow = matrix[(seed - opt.seed_lo) % matrix.size()];
        workloads::randprog_options po = mrow.options;
        po.seed = seed;
        const auto img = workloads::make_random_program(po);
        const auto d = sim::diff_engines(engines, img, dopt);
        ++res.programs;
        ++res.row_programs[mrow.name];
        count_features(po, res.feature_programs);
        absorb_runs(d, res);
        if (d.ok()) continue;

        campaign_finding f;
        f.seed = seed;
        f.row = mrow.name;
        f.options = po;
        f.first = d.divergences.front();
        f.original_words = f.minimized_words = img.text_words();

        isa::program_image artifact_img = img;
        if (opt.minimize) {
            minimize_options mo;
            mo.engines = {engines.front(), f.first.engine};
            mo.config = opt.config;
            mo.max_cycles = opt.max_cycles;
            const auto m = minimize_divergence(img, mo);
            if (m.was_divergent) {
                f.first = m.first;
                f.minimized_words = m.minimized_words;
                artifact_img = m.image;
            }
        }
        if (!opt.save_dir.empty()) {
            reproducer_meta meta;
            meta.name = "fuzz_" + zero_pad(seed, 6) + "_" + mrow.name;
            meta.kind = "fuzz";
            meta.engines = engines.front() + "," + f.first.engine;
            meta.seed = seed;
            meta.rand_options = workloads::randprog_flags(po);
            meta.max_cycles = opt.max_cycles;
            meta.note = "campaign-found divergence (minimized from " +
                        std::to_string(f.original_words) + " to " +
                        std::to_string(f.minimized_words) + " words)";
            meta.divergence = f.first.to_string();
            f.artifact = save_reproducer(opt.save_dir, meta, artifact_img);
        }
        res.findings.push_back(std::move(f));
    }
    return res;
}

}  // namespace osm::fuzz
