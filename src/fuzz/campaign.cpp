#include "fuzz/campaign.hpp"

#include <cstdio>
#include <filesystem>

#include "isa/mh_iss.hpp"
#include "mem/main_memory.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog_cli.hpp"

namespace osm::fuzz {

namespace {

matrix_row row(std::string name,
               void (*tweak)(workloads::randprog_options&) = nullptr) {
    matrix_row r;
    r.name = std::move(name);
    if (tweak != nullptr) tweak(r.options);
    return r;
}

std::vector<matrix_row> build_matrix(bool quick) {
    std::vector<matrix_row> m;
    m.push_back(row("baseline"));
    m.push_back(row("fp", [](workloads::randprog_options& o) { o.with_fp = true; }));
    m.push_back(row("load_use", [](workloads::randprog_options& o) {
        o.hazard_load_use = true;
    }));
    m.push_back(row("branch_dense", [](workloads::randprog_options& o) {
        o.hazard_branch_dense = true;
    }));
    if (quick) return m;
    m.push_back(row("no_mul_div", [](workloads::randprog_options& o) {
        o.with_mul_div = false;
    }));
    m.push_back(row("no_memory", [](workloads::randprog_options& o) {
        o.with_memory = false;
    }));
    m.push_back(row("no_branches", [](workloads::randprog_options& o) {
        o.with_branches = false;
    }));
    m.push_back(row("alu_only", [](workloads::randprog_options& o) {
        o.with_mul_div = o.with_memory = o.with_branches = false;
    }));
    m.push_back(row("fp_heavy", [](workloads::randprog_options& o) {
        o.with_fp = true;
        o.block_len = 16;
    }));
    m.push_back(row("tiny_blocks", [](workloads::randprog_options& o) {
        o.blocks = 24;
        o.block_len = 3;
    }));
    m.push_back(row("big_blocks", [](workloads::randprog_options& o) {
        o.blocks = 4;
        o.block_len = 40;
    }));
    m.push_back(row("deep_loops", [](workloads::randprog_options& o) {
        o.blocks = 8;
        o.loop_count = 9;
    }));
    m.push_back(row("hazard_mix", [](workloads::randprog_options& o) {
        o.hazard_load_use = o.hazard_branch_dense = true;
        o.with_fp = true;
    }));
    // Multi-hart rows: these generate shared-memory programs and run on the
    // multi-hart ISS under both consistency models instead of the engine
    // diff (see run_mh_seed_unit).
    m.push_back(row("mh_contention", [](workloads::randprog_options& o) {
        o.harts = 2;
        o.shared_contention = true;
    }));
    m.push_back(row("mh_fence_dense", [](workloads::randprog_options& o) {
        o.harts = 2;
        o.shared_contention = true;
        o.fence_dense = true;
    }));
    m.push_back(row("mh_lrsc", [](workloads::randprog_options& o) {
        o.harts = 4;
        o.lrsc_loops = true;
    }));
    return m;
}

void count_features(const workloads::randprog_options& o,
                    std::map<std::string, std::uint64_t>& fc) {
    if (o.with_mul_div) ++fc["mul_div"];
    if (o.with_memory) ++fc["memory"];
    if (o.with_branches) ++fc["branches"];
    if (o.with_fp) ++fc["fp"];
    if (o.hazard_load_use) ++fc["hazard_load_use"];
    if (o.hazard_branch_dense) ++fc["hazard_branch_dense"];
    if (o.harts > 1) ++fc["multi_hart"];
    if (o.shared_contention) ++fc["shared_contention"];
    if (o.fence_dense) ++fc["fence_dense"];
    if (o.lrsc_loops) ++fc["lrsc_loops"];
}

/// Everything one multi-hart execution produces that a replay must
/// reproduce bit-for-bit: final per-hart architectural state (flattened),
/// console stream, retirement count, and the shared counter word.
struct mh_run_state {
    std::vector<std::uint32_t> digest;  ///< per hart: pc, halted, gpr[], fpr[]
    std::string console;
    std::uint64_t retired = 0;
    std::uint32_t counter = 0;
    bool halted = false;
};

mh_run_state run_mh_once(const isa::program_image& img, unsigned harts,
                         mem::memory_model model, std::uint64_t sched_seed,
                         std::uint64_t max_insts) {
    mem::main_memory m;
    isa::mh_iss sim(m, harts, model, sched_seed);
    sim.load(img);
    sim.run(max_insts);

    mh_run_state s;
    s.halted = sim.all_halted();
    s.retired = sim.total_retired();
    s.console = sim.host().console();
    s.counter = sim.shared().backing().read32(workloads::randprog_shared_base);
    for (unsigned h = 0; h < sim.harts(); ++h) {
        const isa::arch_state& st = sim.state(h);
        s.digest.push_back(st.pc);
        s.digest.push_back(st.halted ? 1u : 0u);
        for (const std::uint32_t r : st.gpr) s.digest.push_back(r);
        for (const std::uint32_t r : st.fpr) s.digest.push_back(r);
    }
    return s;
}

/// Multi-hart seed unit: instead of the cross-engine diff (timing engines
/// are single-hart), the generated program runs on the multi-hart ISS
/// under both memory models across several schedule seeds, checking the
/// schedule-independent invariants the generator guarantees — every hart
/// halts, the shared counter holds exactly harts * blocks, and replaying
/// the same (model, schedule seed) reproduces the run bit-for-bit.
seed_outcome run_mh_seed_unit(const campaign_options& opt, const matrix_row& mrow,
                              std::uint64_t seed) {
    seed_outcome u;
    u.seed = seed;
    u.row = mrow.name;
    u.reference = "mh-model";
    workloads::randprog_options po = mrow.options;
    po.seed = seed;
    u.options = po;

    const auto img = workloads::make_random_program(po);
    const std::uint64_t expected = workloads::randprog_expected_counter(po);

    const auto report = [&](std::string kind, std::string expect, std::string actual) {
        if (u.divergent) return;  // keep the first failure per seed
        u.divergent = true;
        campaign_finding& f = u.finding;
        f.seed = seed;
        f.row = mrow.name;
        f.options = po;
        f.first = sim::divergence{"mh-model", "mh-iss", std::move(kind), 0,
                                  std::move(expect), std::move(actual)};
        f.original_words = f.minimized_words = img.text_words();
        u.artifact_image = img;
    };

    constexpr unsigned k_schedules = 3;
    for (const auto model : {mem::memory_model::sc, mem::memory_model::tso}) {
        const std::string mname = mem::memory_model_name(model);
        for (unsigned k = 0; k < k_schedules; ++k) {
            // Distinct deterministic schedule seed per (seed, model, k).
            const std::uint64_t sched =
                seed * 64 + k * 2 + (model == mem::memory_model::tso ? 1 : 0) + 1;
            const auto first = run_mh_once(img, po.harts, model, sched, opt.max_cycles);
            const auto replay = run_mh_once(img, po.harts, model, sched, opt.max_cycles);
            u.engine_runs += 2;
            u.instructions += first.retired + replay.retired;
            if (!first.halted) {
                report(mname + ".halted", "all harts halted", "timeout");
                continue;
            }
            if (first.counter != expected) {
                report(mname + ".counter", std::to_string(expected),
                       std::to_string(first.counter));
            }
            if (first.digest != replay.digest || first.console != replay.console ||
                first.retired != replay.retired) {
                report(mname + ".determinism", "bit-identical replay",
                       "state mismatch at schedule " + std::to_string(sched));
            }
        }
    }
    return u;
}

std::string zero_pad(std::uint64_t v, int width) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%0*llu", width,
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

const std::vector<matrix_row>& feature_matrix(bool quick) {
    static const std::vector<matrix_row> full = build_matrix(false);
    static const std::vector<matrix_row> small = build_matrix(true);
    return quick ? small : full;
}

stats::report campaign_result::summary() const {
    stats::report rep;
    rep.put("campaign", "programs", programs);
    rep.put("campaign", "corpus_replayed", corpus_replayed);
    rep.put("campaign", "corpus_skipped", corpus_skipped);
    rep.put("campaign", "engine_runs", engine_runs);
    rep.put("campaign", "skipped_runs", skipped_runs);
    rep.put("campaign", "instructions", instructions);
    rep.put("campaign", "divergences", static_cast<std::uint64_t>(findings.size()));
    for (const auto& [name, count] : row_programs) {
        rep.put("coverage.rows", name, count);
    }
    for (const auto& [name, count] : feature_programs) {
        rep.put("coverage.features", name, count);
    }
    for (const auto& [name, reason] : corpus_skips) {
        rep.put("corpus.skipped", name, reason);
    }
    unsigned i = 0;
    for (const auto& f : findings) {
        const std::string key = "finding." + zero_pad(i++, 3);
        rep.put(key, "seed", f.seed);
        rep.put(key, "row", f.row);
        rep.put(key, "options", workloads::randprog_flags(f.options));
        rep.put(key, "divergence", f.first.to_string());
        rep.put(key, "original_words", static_cast<std::uint64_t>(f.original_words));
        rep.put(key, "minimized_words", static_cast<std::uint64_t>(f.minimized_words));
        if (!f.artifact.empty()) rep.put(key, "artifact", f.artifact);
    }
    return rep;
}

std::vector<std::string> campaign_engines(const campaign_options& opt) {
    auto engines = opt.engines;
    // Campaign programs are VR32 randprogs; only VR32 engines can run them.
    if (engines.empty()) engines = sim::engine_registry::instance().names_for_isa("vr32");
    for (const auto& n : engines) {
        (void)sim::engine_registry::instance().create(n, opt.config);
    }
    return engines;
}

seed_outcome run_seed_unit(const campaign_options& opt,
                           const std::vector<std::string>& engines,
                           std::uint64_t seed, sim::end_state_cache* cache) {
    const auto& matrix = feature_matrix(opt.quick);
    const auto& mrow = matrix[(seed - opt.seed_lo) % matrix.size()];
    if (mrow.options.harts > 1) return run_mh_seed_unit(opt, mrow, seed);

    seed_outcome u;
    u.seed = seed;
    u.row = mrow.name;
    u.reference = engines.front();
    workloads::randprog_options po = mrow.options;
    po.seed = seed;
    u.options = po;

    const auto img = workloads::make_random_program(po);
    sim::diff_options dopt;
    dopt.config = opt.config;
    dopt.max_cycles = opt.max_cycles;
    dopt.cache = cache;
    const auto d = sim::diff_engines(engines, img, dopt);
    for (const auto& r : d.runs) {
        if (r.ran) {
            ++u.engine_runs;
            u.instructions += r.retired;
        } else {
            ++u.skipped_runs;
        }
    }
    if (d.ok()) return u;

    u.divergent = true;
    campaign_finding& f = u.finding;
    f.seed = seed;
    f.row = mrow.name;
    f.options = po;
    f.first = d.divergences.front();
    f.original_words = f.minimized_words = img.text_words();
    u.artifact_image = img;

    if (opt.minimize) {
        minimize_options mo;
        mo.engines = {engines.front(), f.first.engine};
        mo.config = opt.config;
        mo.max_cycles = opt.max_cycles;
        mo.cache = cache;
        const auto m = minimize_divergence(img, mo);
        if (m.was_divergent) {
            f.first = m.first;
            f.minimized_words = m.minimized_words;
            u.artifact_image = m.image;
        }
    }
    return u;
}

corpus_outcome run_corpus_unit(const campaign_options& opt, const std::string& path,
                               sim::end_state_cache* cache) {
    corpus_outcome c;
    c.name = std::filesystem::path(path).stem().string();
    try {
        auto rr = replay_artifact(path, {}, opt.config, cache);
        if (!rr.meta.name.empty()) c.name = rr.meta.name;
        for (const auto& r : rr.diff.runs) {
            if (r.ran) {
                ++c.engine_runs;
                c.instructions += r.retired;
            } else {
                ++c.skipped_runs;
            }
        }
        c.divergences = std::move(rr.diff.divergences);
    } catch (const std::exception& e) {
        // Unreadable/unparsable artifact: a corrupt corpus entry must not
        // abort the campaign; record it and keep sweeping.
        c.skipped = true;
        c.skip_reason = e.what();
    }
    return c;
}

void fold_corpus_outcome(corpus_outcome&& c, campaign_result& res) {
    if (c.skipped) {
        ++res.corpus_skipped;
        res.corpus_skips.emplace_back(std::move(c.name), std::move(c.skip_reason));
        return;
    }
    ++res.corpus_replayed;
    res.engine_runs += c.engine_runs;
    res.skipped_runs += c.skipped_runs;
    res.instructions += c.instructions;
    for (auto& d : c.divergences) {
        campaign_finding f;
        f.row = "corpus:" + c.name;
        f.first = std::move(d);
        res.findings.push_back(std::move(f));
    }
}

void fold_seed_outcome(seed_outcome&& u, const campaign_options& opt,
                       campaign_result& res) {
    ++res.programs;
    ++res.row_programs[u.row];
    count_features(u.options, res.feature_programs);
    res.engine_runs += u.engine_runs;
    res.skipped_runs += u.skipped_runs;
    res.instructions += u.instructions;
    if (!u.divergent) return;

    campaign_finding f = std::move(u.finding);
    // Multi-hart findings are not persisted: the .s corpus format replays
    // through the single-hart engine diff, which cannot reproduce a
    // schedule-dependent failure.  The (seed, row, options) triple in the
    // summary re-runs the unit exactly.
    if (!opt.save_dir.empty() && u.options.harts <= 1) {
        reproducer_meta meta;
        meta.name = "fuzz_" + zero_pad(f.seed, 6) + "_" + f.row;
        meta.kind = "fuzz";
        meta.engines = u.reference + "," + f.first.engine;
        meta.seed = f.seed;
        meta.rand_options = workloads::randprog_flags(f.options);
        meta.max_cycles = opt.max_cycles;
        meta.note = "campaign-found divergence (minimized from " +
                    std::to_string(f.original_words) + " to " +
                    std::to_string(f.minimized_words) + " words)";
        meta.divergence = f.first.to_string();
        f.artifact = save_reproducer(opt.save_dir, meta, u.artifact_image);
    }
    res.findings.push_back(std::move(f));
}

campaign_result run_campaign(const campaign_options& opt) {
    const auto engines = campaign_engines(opt);
    campaign_result res;
    // Replay the committed corpus first: regressions there are the
    // highest-signal findings a campaign can produce.
    if (!opt.replay_dir.empty()) {
        for (const auto& path : list_corpus(opt.replay_dir)) {
            fold_corpus_outcome(run_corpus_unit(opt, path), res);
        }
    }
    for (std::uint64_t seed = opt.seed_lo; seed <= opt.seed_hi; ++seed) {
        fold_seed_outcome(run_seed_unit(opt, engines, seed), opt, res);
    }
    return res;
}

}  // namespace osm::fuzz
