#include "fuzz/minimize.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <thread>

#include "isa/encoding.hpp"

namespace osm::fuzz {

namespace {

/// One working-list instruction: a decoded word plus, for in-text CTIs,
/// the *index* of the target instruction (indices survive removal; byte
/// offsets do not).  `target == list size` means "just past the end".
struct winst {
    isa::decoded_inst di;
    bool has_target = false;
    std::size_t target = 0;
    std::int64_t abs_target = -1;  ///< CTI target outside the text segment
};

bool is_reloc_cti(isa::op c) { return isa::is_branch(c) || c == isa::op::jal; }

const isa::program_image::segment* text_segment(const isa::program_image& img) {
    for (const auto& seg : img.segments) {
        if (img.entry >= seg.base && img.entry < seg.base + seg.bytes.size()) {
            return &seg;
        }
    }
    return nullptr;
}

std::vector<winst> decode_text(const isa::program_image::segment& seg) {
    const std::size_t words = seg.bytes.size() / 4;
    std::vector<winst> out;
    out.reserve(words);
    for (std::size_t i = 0; i < words; ++i) {
        const std::uint32_t word = static_cast<std::uint32_t>(seg.bytes[i * 4]) |
                                   static_cast<std::uint32_t>(seg.bytes[i * 4 + 1]) << 8 |
                                   static_cast<std::uint32_t>(seg.bytes[i * 4 + 2]) << 16 |
                                   static_cast<std::uint32_t>(seg.bytes[i * 4 + 3]) << 24;
        winst w;
        w.di = isa::decode(word);
        if (is_reloc_cti(w.di.code)) {
            const std::uint32_t pc = seg.base + static_cast<std::uint32_t>(i * 4);
            const std::int64_t tgt =
                static_cast<std::int64_t>(pc) + 4 + w.di.imm;
            const std::int64_t off = tgt - seg.base;
            if (off >= 0 && off % 4 == 0 &&
                static_cast<std::size_t>(off / 4) <= words) {
                w.has_target = true;
                w.target = static_cast<std::size_t>(off / 4);
            } else {
                w.abs_target = tgt;
            }
        }
        out.push_back(w);
    }
    return out;
}

/// Re-encode the working list into an image (branch offsets recomputed
/// from target indices).  Throws if an offset no longer fits its field.
isa::program_image rebuild(const isa::program_image& original,
                           const isa::program_image::segment& text,
                           const std::vector<winst>& list) {
    isa::program_image img;
    img.entry = text.base;  // callers guarantee entry == text base
    isa::program_image::segment seg;
    seg.base = text.base;
    for (std::size_t i = 0; i < list.size(); ++i) {
        isa::decoded_inst di = list[i].di;
        if (list[i].has_target) {
            di.imm = static_cast<std::int32_t>(
                (static_cast<std::int64_t>(list[i].target) -
                 static_cast<std::int64_t>(i) - 1) *
                4);
        } else if (list[i].abs_target >= 0) {
            const std::int64_t pc = seg.base + static_cast<std::int64_t>(i * 4);
            di.imm = static_cast<std::int32_t>(list[i].abs_target - pc - 4);
        }
        if (is_reloc_cti(di.code) && !isa::immediate_fits(di.code, di.imm)) {
            throw std::out_of_range("branch offset no longer encodable");
        }
        const std::uint32_t word = isa::encode(di);
        seg.bytes.push_back(static_cast<std::uint8_t>(word));
        seg.bytes.push_back(static_cast<std::uint8_t>(word >> 8));
        seg.bytes.push_back(static_cast<std::uint8_t>(word >> 16));
        seg.bytes.push_back(static_cast<std::uint8_t>(word >> 24));
    }
    img.segments.push_back(std::move(seg));
    for (const auto& s : original.segments) {
        if (&s != &text) img.segments.push_back(s);
    }
    return img;
}

/// Remove [first, first+count) from `list`, remapping target indices
/// across the gap (targets inside the gap snap to the gap's start).
std::vector<winst> remove_range(const std::vector<winst>& list,
                                std::size_t first, std::size_t count) {
    std::vector<winst> out;
    out.reserve(list.size() - count);
    const auto remap = [&](std::size_t t) {
        if (t <= first) return t;
        if (t >= first + count) return t - count;
        return first;
    };
    for (std::size_t i = 0; i < list.size(); ++i) {
        if (i >= first && i < first + count) continue;
        winst w = list[i];
        if (w.has_target) w.target = remap(w.target);
        out.push_back(w);
    }
    return out;
}

bool is_nop(const isa::decoded_inst& di) {
    return di.code == isa::op::addi && di.rd == 0 && di.rs1 == 0 && di.imm == 0;
}

}  // namespace

minimize_result minimize_divergence(const isa::program_image& img,
                                    const minimize_options& opt) {
    if (opt.engines.size() < 2) {
        throw std::invalid_argument(
            "minimize_divergence: need a reference and at least one engine");
    }
    minimize_result res;
    res.image = img;

    sim::diff_options dopt;
    dopt.config = opt.config;
    dopt.max_cycles = opt.max_cycles;
    dopt.cache = opt.cache;

    // Establish the divergence to preserve.
    auto initial = sim::diff_engines(opt.engines, img, dopt);
    ++res.probes;
    if (initial.ok()) return res;  // was_divergent stays false
    res.was_divergent = true;
    res.first = initial.divergences.front();
    const std::string pinned = res.first.engine;

    const auto* text = text_segment(img);
    if (text == nullptr || img.entry != text->base) {
        // No recognizable text segment (or a non-default entry we cannot
        // rebuild); report the divergence without shrinking.
        res.original_words = res.minimized_words =
            text != nullptr ? text->bytes.size() / 4 : 0;
        return res;
    }

    std::vector<winst> cur = decode_text(*text);
    res.original_words = cur.size();

    // Lockstep re-validation: compare the reference against the pinned
    // engine at checkpoint boundaries so failing candidates are rejected
    // at the first mismatch instead of running to completion.
    sim::lockstep_options lopt;
    lopt.reference = opt.engines.front();
    lopt.config = opt.config;
    lopt.interval = opt.checkpoint_interval;
    lopt.max_retired = opt.max_cycles;
    lopt.locate = false;

    // A candidate still fails iff the *same* engine diverges again.
    // run_probe is pure (no shared-state writes), so a speculative batch of
    // candidates can be evaluated on worker threads.
    struct probe_outcome {
        bool fails = false;
        sim::divergence div;
    };
    const auto run_probe = [&](const std::vector<winst>& list) {
        probe_outcome po;
        try {
            const auto candidate = rebuild(img, *text, list);
            if (opt.checkpoint_revalidate) {
                const auto r = sim::lockstep_diff(pinned, candidate, lopt);
                if (r.ran && r.diverged) {
                    po.fails = true;
                    po.div = r.div;
                }
                return po;
            }
            const auto d = sim::diff_engines(opt.engines, candidate, dopt);
            for (const auto& div : d.divergences) {
                if (div.engine == pinned) {
                    po.fails = true;
                    po.div = div;
                    break;
                }
            }
        } catch (const std::exception&) {
            // Unencodable or otherwise broken candidate: not a reproducer.
        }
        return po;
    };

    const unsigned jobs = std::max(1u, opt.jobs);
    const auto probe_batch = [&](const std::vector<std::vector<winst>>& cands) {
        std::vector<probe_outcome> out(cands.size());
        if (jobs == 1 || cands.size() == 1) {
            for (std::size_t k = 0; k < cands.size(); ++k) out[k] = run_probe(cands[k]);
            return out;
        }
        std::atomic<std::size_t> next{0};
        const auto work = [&] {
            for (;;) {
                const std::size_t k = next.fetch_add(1, std::memory_order_relaxed);
                if (k >= cands.size()) return;
                out[k] = run_probe(cands[k]);
            }
        };
        std::vector<std::thread> pool;
        for (unsigned t = 1; t < jobs && t < cands.size(); ++t) pool.emplace_back(work);
        work();
        for (auto& t : pool) t.join();
        return out;
    };

    // Walk a batch of speculative outcomes in scan order, charging probes
    // exactly as the serial scan would (positions past the probe budget are
    // "did not reproduce", uncharged).  Returns the index of the first
    // reproducing candidate, or npos.
    constexpr std::size_t npos = static_cast<std::size_t>(-1);
    const auto commit_first = [&](const std::vector<probe_outcome>& outs) {
        for (std::size_t k = 0; k < outs.size(); ++k) {
            if (res.probes >= opt.max_probes) return npos;
            ++res.probes;
            if (outs[k].fails) {
                res.first = outs[k].div;
                return k;
            }
        }
        return npos;
    };

    // Phase 1+3: drop contiguous chunks, halving the chunk size (ddmin).
    // With jobs > 1 the next `jobs` removal positions are probed together;
    // committing the first reproducer (and discarding the rest) replays the
    // serial decision sequence exactly.
    const auto removal_pass = [&] {
        std::size_t chunk = std::max<std::size_t>(1, cur.size() / 2);
        while (!cur.empty()) {
            std::size_t start = 0;
            while (start < cur.size() && res.probes < opt.max_probes) {
                std::vector<std::size_t> pos;
                std::vector<std::vector<winst>> cands;
                for (std::size_t p = start; p < cur.size() && pos.size() < jobs;
                     p += chunk) {
                    pos.push_back(p);
                    cands.push_back(remove_range(cur, p, std::min(chunk, cur.size() - p)));
                }
                const std::size_t k = commit_first(probe_batch(cands));
                if (k != npos) {
                    cur = std::move(cands[k]);
                    start = pos[k];  // keep scanning at the committed position
                } else {
                    start = pos.back() + chunk;
                }
            }
            if (chunk == 1) break;
            chunk /= 2;
        }
    };
    removal_pass();

    // Phase 2: nop out single surviving instructions (same speculative
    // batching over the next `jobs` non-nop positions).
    {
        std::size_t i = 0;
        while (i < cur.size() && res.probes < opt.max_probes) {
            std::vector<std::size_t> pos;
            std::vector<std::vector<winst>> cands;
            for (std::size_t p = i; p < cur.size() && pos.size() < jobs; ++p) {
                if (is_nop(cur[p].di)) continue;
                pos.push_back(p);
                auto candidate = cur;
                candidate[p] = winst{};  // decoded_inst{} defaults to invalid; set nop
                candidate[p].di.code = isa::op::addi;
                cands.push_back(std::move(candidate));
            }
            if (pos.empty()) break;  // only nops remain past `i`
            const std::size_t k = commit_first(probe_batch(cands));
            if (k != npos) {
                cur = std::move(cands[k]);
                i = pos[k] + 1;
            } else {
                i = pos.back() + 1;
            }
        }
    }

    // Phase 3: strip the nops phase 2 committed.
    removal_pass();

    res.image = rebuild(img, *text, cur);
    res.minimized_words = cur.size();

    // With checkpoints available, pin down *where* the minimized program
    // first diverges: bisect via restore from the last-agreeing boundary.
    if (opt.checkpoint_revalidate) {
        res.used_checkpoints = true;
        sim::lockstep_options locate = lopt;
        locate.locate = true;
        const auto r = sim::lockstep_diff(pinned, res.image, locate);
        if (r.ran && r.diverged) {
            res.first = r.div;
            res.located = r.located;
            res.first_divergent_retired = r.first_divergent_retired;
        }
    }
    return res;
}

}  // namespace osm::fuzz
