// Differential fuzzing campaigns.
//
// A campaign sweeps the feature matrix (instruction-mix and hazard-shape
// rows built on workloads::randprog_options) over a seed range, runs every
// generated program on all requested engines through sim::diff_engines,
// and aggregates a deterministic summary: programs run, instructions
// executed, per-row and per-feature coverage counters, and every observed
// divergence.  Divergent programs are optionally delta-debugged down to a
// minimal reproducer and persisted to the corpus (corpus.hpp), which is
// how a fuzzing find becomes a committed regression test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/minimize.hpp"
#include "sim/diff_runner.hpp"
#include "stats/stats.hpp"
#include "workloads/randprog.hpp"

namespace osm::fuzz {

/// One feature-matrix row: a named generator configuration (seed unset).
struct matrix_row {
    std::string name;
    workloads::randprog_options options;
};

/// The campaign feature matrix.  `quick` selects the 4-row subset used by
/// smoke tests and the sanitized tier-1 gate; the full matrix adds
/// single-feature ablations and block/loop size extremes.
const std::vector<matrix_row>& feature_matrix(bool quick);

struct campaign_options {
    std::uint64_t seed_lo = 1;
    std::uint64_t seed_hi = 100;           ///< inclusive
    std::vector<std::string> engines;      ///< empty = all registered
    sim::engine_config config{};
    std::uint64_t max_cycles = 50'000'000;
    bool quick = false;                    ///< quick feature matrix
    bool minimize = true;                  ///< shrink divergent programs
    std::string save_dir;                  ///< persist reproducers here if set
    std::string replay_dir;                ///< also replay this corpus if set
};

/// One divergence found by a campaign (post-minimization when enabled).
struct campaign_finding {
    std::uint64_t seed = 0;                ///< 0 for corpus-replay findings
    std::string row;                       ///< matrix row, or "corpus:<name>"
    workloads::randprog_options options;
    sim::divergence first;
    std::size_t original_words = 0;
    std::size_t minimized_words = 0;
    std::string artifact;                  ///< saved .s path, if persisted
};

struct campaign_result {
    std::uint64_t programs = 0;            ///< generated programs executed
    std::uint64_t corpus_replayed = 0;     ///< corpus artifacts replayed
    std::uint64_t corpus_skipped = 0;      ///< unusable corpus artifacts
    std::uint64_t engine_runs = 0;         ///< engine executions (ran)
    std::uint64_t skipped_runs = 0;        ///< engine executions skipped
    std::uint64_t instructions = 0;        ///< retired, summed over all runs
    std::map<std::string, std::uint64_t> row_programs;      ///< per-row counts
    std::map<std::string, std::uint64_t> feature_programs;  ///< per-feature counts
    /// (artifact name, reason) for every skipped corpus entry, in replay order.
    std::vector<std::pair<std::string, std::string>> corpus_skips;
    std::vector<campaign_finding> findings;

    bool ok() const { return findings.empty(); }

    /// Deterministic summary (no timestamps, sorted keys): byte-identical
    /// across runs of the same campaign.
    stats::report summary() const;
};

// ---- per-unit decomposition ------------------------------------------------
//
// A campaign is a fold, in deterministic order, over independent work
// units: one unit per corpus artifact, then one per seed.  run_campaign
// below executes units and folds inline; the serve worker pool executes the
// same units on worker threads and applies the same folds in the same
// order, which is what makes a sharded campaign summary byte-identical to
// the serial one by construction.

/// The engine list a campaign runs (resolves empty to all VR32 engines) —
/// every name is validated up front, so a typo is a setup error, not 500
/// silent exceptions mid-sweep.  Throws sim::unknown_engine.
std::vector<std::string> campaign_engines(const campaign_options& opt);

/// Result of one per-seed unit: generate the row's program, diff it on all
/// engines, and (when divergent and enabled) minimize.  Pure compute — no
/// filesystem access — so units may run concurrently and in any order.
struct seed_outcome {
    std::uint64_t seed = 0;
    std::string row;
    std::string reference;                 ///< engines.front()
    workloads::randprog_options options;
    std::uint64_t engine_runs = 0;
    std::uint64_t skipped_runs = 0;
    std::uint64_t instructions = 0;
    bool divergent = false;
    campaign_finding finding;              ///< valid when divergent (artifact unset)
    isa::program_image artifact_image;     ///< program to persist when divergent
};

seed_outcome run_seed_unit(const campaign_options& opt,
                           const std::vector<std::string>& engines,
                           std::uint64_t seed,
                           sim::end_state_cache* cache = nullptr);

/// Result of replaying one corpus artifact.  An unreadable or unparsable
/// artifact is reported as skipped-with-reason, never thrown: one corrupt
/// entry must not abort a campaign.
struct corpus_outcome {
    std::string name;                      ///< metadata name or file stem
    bool skipped = false;
    std::string skip_reason;
    std::uint64_t engine_runs = 0;
    std::uint64_t skipped_runs = 0;
    std::uint64_t instructions = 0;
    std::vector<sim::divergence> divergences;
};

corpus_outcome run_corpus_unit(const campaign_options& opt, const std::string& path,
                               sim::end_state_cache* cache = nullptr);

/// Fold one unit outcome into the accumulating result.  Folds must be
/// applied in campaign order (corpus artifacts sorted by path, then seeds
/// ascending); fold_seed_outcome also persists the reproducer artifact when
/// opt.save_dir is set, so all corpus writes happen on the folding thread.
void fold_corpus_outcome(corpus_outcome&& c, campaign_result& res);
void fold_seed_outcome(seed_outcome&& u, const campaign_options& opt,
                       campaign_result& res);

/// Run a campaign serially.  Throws sim::unknown_engine for a bad engine
/// name; divergences and unusable replay artifacts are reported in the
/// result, not thrown.
campaign_result run_campaign(const campaign_options& opt);

}  // namespace osm::fuzz
