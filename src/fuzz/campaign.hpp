// Differential fuzzing campaigns.
//
// A campaign sweeps the feature matrix (instruction-mix and hazard-shape
// rows built on workloads::randprog_options) over a seed range, runs every
// generated program on all requested engines through sim::diff_engines,
// and aggregates a deterministic summary: programs run, instructions
// executed, per-row and per-feature coverage counters, and every observed
// divergence.  Divergent programs are optionally delta-debugged down to a
// minimal reproducer and persisted to the corpus (corpus.hpp), which is
// how a fuzzing find becomes a committed regression test.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "fuzz/corpus.hpp"
#include "fuzz/minimize.hpp"
#include "sim/diff_runner.hpp"
#include "stats/stats.hpp"
#include "workloads/randprog.hpp"

namespace osm::fuzz {

/// One feature-matrix row: a named generator configuration (seed unset).
struct matrix_row {
    std::string name;
    workloads::randprog_options options;
};

/// The campaign feature matrix.  `quick` selects the 4-row subset used by
/// smoke tests and the sanitized tier-1 gate; the full matrix adds
/// single-feature ablations and block/loop size extremes.
const std::vector<matrix_row>& feature_matrix(bool quick);

struct campaign_options {
    std::uint64_t seed_lo = 1;
    std::uint64_t seed_hi = 100;           ///< inclusive
    std::vector<std::string> engines;      ///< empty = all registered
    sim::engine_config config{};
    std::uint64_t max_cycles = 50'000'000;
    bool quick = false;                    ///< quick feature matrix
    bool minimize = true;                  ///< shrink divergent programs
    std::string save_dir;                  ///< persist reproducers here if set
    std::string replay_dir;                ///< also replay this corpus if set
};

/// One divergence found by a campaign (post-minimization when enabled).
struct campaign_finding {
    std::uint64_t seed = 0;                ///< 0 for corpus-replay findings
    std::string row;                       ///< matrix row, or "corpus:<name>"
    workloads::randprog_options options;
    sim::divergence first;
    std::size_t original_words = 0;
    std::size_t minimized_words = 0;
    std::string artifact;                  ///< saved .s path, if persisted
};

struct campaign_result {
    std::uint64_t programs = 0;            ///< generated programs executed
    std::uint64_t corpus_replayed = 0;     ///< corpus artifacts replayed
    std::uint64_t engine_runs = 0;         ///< engine executions (ran)
    std::uint64_t skipped_runs = 0;        ///< engine executions skipped
    std::uint64_t instructions = 0;        ///< retired, summed over all runs
    std::map<std::string, std::uint64_t> row_programs;      ///< per-row counts
    std::map<std::string, std::uint64_t> feature_programs;  ///< per-feature counts
    std::vector<campaign_finding> findings;

    bool ok() const { return findings.empty(); }

    /// Deterministic summary (no timestamps, sorted keys): byte-identical
    /// across runs of the same campaign.
    stats::report summary() const;
};

/// Run a campaign.  Throws sim::unknown_engine for a bad engine name and
/// std::runtime_error for an unusable replay_dir artifact; divergences are
/// reported in the result, not thrown.
campaign_result run_campaign(const campaign_options& opt);

}  // namespace osm::fuzz
