#include "fuzz/litmus.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace osm::fuzz {

namespace {

void check_bounds(const litmus_test& t) {
    if (t.harts.empty() || t.harts.size() > litmus_max_harts)
        throw std::invalid_argument("litmus: hart count out of range");
    if (t.locations == 0 || t.locations > litmus_max_locations)
        throw std::invalid_argument("litmus: location count out of range");
    for (const auto& ops : t.harts) {
        if (ops.size() > litmus_max_ops)
            throw std::invalid_argument("litmus: too many ops on one hart");
        for (const litmus_op& o : ops) {
            if (o.loc >= t.locations)
                throw std::invalid_argument("litmus: op references missing location");
            if ((o.k == litmus_op::kind::load || o.k == litmus_op::kind::amoadd) &&
                o.reg >= litmus_max_regs)
                throw std::invalid_argument("litmus: observation register out of range");
        }
    }
}

}  // namespace

std::vector<std::pair<unsigned, unsigned>> observation_slots(const litmus_test& t) {
    std::vector<std::pair<unsigned, unsigned>> slots;
    for (unsigned h = 0; h < t.harts.size(); ++h) {
        for (const litmus_op& o : t.harts[h]) {
            if (o.k == litmus_op::kind::load || o.k == litmus_op::kind::amoadd) {
                slots.emplace_back(h, o.reg);
            }
        }
    }
    std::sort(slots.begin(), slots.end());
    slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
    return slots;
}

// ---- exhaustive enumeration -------------------------------------------------
//
// Operational model, explored breadth-first with a visited-state memo:
//   * a hart step executes its next op (stores commit under SC, enqueue
//     under TSO; loads forward newest-first from the own buffer; fence and
//     amoadd are only enabled with an empty own buffer — the separate drain
//     transitions make that reachable);
//   * a drain step commits the oldest buffered store of one hart.
// Terminal states (all harts done, all buffers empty) contribute their
// observation registers to the outcome set.

namespace {

struct enum_state {
    // Fixed-size so the memo key is a straight byte serialization.
    std::uint8_t pc[litmus_max_harts] = {};
    std::uint32_t obs[litmus_max_harts][litmus_max_regs] = {};
    std::uint32_t mem[litmus_max_locations] = {};
    // Per-hart FIFO store buffer (bounded by ops per hart).
    std::uint8_t buf_n[litmus_max_harts] = {};
    std::uint8_t buf_loc[litmus_max_harts][litmus_max_ops] = {};
    std::uint32_t buf_val[litmus_max_harts][litmus_max_ops] = {};

    std::string key(unsigned harts, unsigned locations) const {
        std::string k;
        k.reserve(harts * (1 + 1 + 4 * litmus_max_regs + 5 * litmus_max_ops) +
                  4 * locations);
        const auto u32 = [&k](std::uint32_t v) {
            for (int i = 0; i < 4; ++i) k.push_back(static_cast<char>(v >> (8 * i)));
        };
        for (unsigned h = 0; h < harts; ++h) {
            k.push_back(static_cast<char>(pc[h]));
            k.push_back(static_cast<char>(buf_n[h]));
            for (unsigned r = 0; r < litmus_max_regs; ++r) u32(obs[h][r]);
            for (unsigned i = 0; i < buf_n[h]; ++i) {
                k.push_back(static_cast<char>(buf_loc[h][i]));
                u32(buf_val[h][i]);
            }
        }
        for (unsigned l = 0; l < locations; ++l) u32(mem[l]);
        return k;
    }

    std::uint32_t read(unsigned h, unsigned loc) const {
        // Newest-wins forwarding from the own buffer.
        for (unsigned i = buf_n[h]; i > 0; --i) {
            if (buf_loc[h][i - 1] == loc) return buf_val[h][i - 1];
        }
        return mem[loc];
    }

    void drain_one(unsigned h) {
        mem[buf_loc[h][0]] = buf_val[h][0];
        for (unsigned i = 1; i < buf_n[h]; ++i) {
            buf_loc[h][i - 1] = buf_loc[h][i];
            buf_val[h][i - 1] = buf_val[h][i];
        }
        --buf_n[h];
    }
};

}  // namespace

std::set<litmus_outcome> enumerate_outcomes(const litmus_test& t,
                                            mem::memory_model model) {
    check_bounds(t);
    const unsigned harts = static_cast<unsigned>(t.harts.size());
    const auto slots = observation_slots(t);
    const bool tso = model == mem::memory_model::tso;

    std::set<litmus_outcome> outcomes;
    std::unordered_set<std::string> visited;
    std::vector<enum_state> work{enum_state{}};
    visited.insert(work.back().key(harts, t.locations));

    while (!work.empty()) {
        const enum_state s = work.back();
        work.pop_back();

        bool terminal = true;
        const auto push = [&](const enum_state& next) {
            if (visited.insert(next.key(harts, t.locations)).second) {
                work.push_back(next);
            }
        };

        for (unsigned h = 0; h < harts; ++h) {
            if (tso && s.buf_n[h] != 0) {
                terminal = false;
                enum_state next = s;
                next.drain_one(h);
                push(next);
            }
            if (s.pc[h] >= t.harts[h].size()) continue;
            terminal = false;
            const litmus_op& o = t.harts[h][s.pc[h]];
            // Ordering ops wait for the own buffer to drain (the drain
            // transitions above make that state reachable).
            if (tso && s.buf_n[h] != 0 &&
                (o.k == litmus_op::kind::fence || o.k == litmus_op::kind::amoadd)) {
                continue;
            }
            enum_state next = s;
            ++next.pc[h];
            switch (o.k) {
                case litmus_op::kind::store:
                    if (tso) {
                        next.buf_loc[h][next.buf_n[h]] = o.loc;
                        next.buf_val[h][next.buf_n[h]] = o.value;
                        ++next.buf_n[h];
                    } else {
                        next.mem[o.loc] = o.value;
                    }
                    break;
                case litmus_op::kind::load:
                    next.obs[h][o.reg] = s.read(h, o.loc);
                    break;
                case litmus_op::kind::fence:
                    break;
                case litmus_op::kind::amoadd:
                    next.obs[h][o.reg] = s.mem[o.loc];
                    next.mem[o.loc] = s.mem[o.loc] + o.value;
                    break;
            }
            push(next);
        }

        if (terminal) {
            litmus_outcome out;
            out.reserve(slots.size());
            for (const auto& [h, r] : slots) out.push_back(s.obs[h][r]);
            outcomes.insert(std::move(out));
        }
    }
    return outcomes;
}

// ---- canonical suite --------------------------------------------------------

namespace {

litmus_op st(unsigned loc, std::uint32_t value) {
    return {litmus_op::kind::store, static_cast<std::uint8_t>(loc), 0, value};
}
litmus_op ld(unsigned loc, unsigned reg) {
    return {litmus_op::kind::load, static_cast<std::uint8_t>(loc),
            static_cast<std::uint8_t>(reg), 0};
}
litmus_op fence() { return {litmus_op::kind::fence, 0, 0, 0}; }

litmus_test make(std::string name, unsigned locations,
                 std::vector<std::vector<litmus_op>> harts) {
    litmus_test t;
    t.name = std::move(name);
    t.locations = locations;
    t.harts = std::move(harts);
    return t;
}

}  // namespace

std::vector<litmus_test> litmus_suite() {
    std::vector<litmus_test> suite;
    // SB (store buffering): the TSO signature.  r0==0 on both harts is
    // reachable iff stores can sit in buffers past the other hart's load.
    suite.push_back(make("SB", 2,
                         {{st(0, 1), ld(1, 0)},
                          {st(1, 1), ld(0, 0)}}));
    suite.push_back(make("SB+fences", 2,
                         {{st(0, 1), fence(), ld(1, 0)},
                          {st(1, 1), fence(), ld(0, 0)}}));
    // MP (message passing): stale data behind a set flag.  Forbidden under
    // both models (TSO store buffers drain in FIFO order).
    suite.push_back(make("MP", 2,
                         {{st(0, 1), st(1, 1)},
                          {ld(1, 0), ld(0, 1)}}));
    suite.push_back(make("MP+fences", 2,
                         {{st(0, 1), fence(), st(1, 1)},
                          {ld(1, 0), fence(), ld(0, 1)}}));
    // LB (load buffering): loads observing the other hart's later store.
    // Forbidden under SC and TSO (neither reorders a load with a later
    // store of the same hart).
    suite.push_back(make("LB", 2,
                         {{ld(0, 0), st(1, 1)},
                          {ld(1, 0), st(0, 1)}}));
    // CoRR (coherent read-read): one location, two program-order loads
    // never observe value then overwrite... i.e. 1 then 0 is forbidden.
    suite.push_back(make("CoRR", 1,
                         {{st(0, 1)},
                          {ld(0, 0), ld(0, 1)}}));
    // IRIW: two writers, two readers disagreeing on the write order —
    // forbidden under SC and TSO (both are multi-copy atomic).
    suite.push_back(make("IRIW", 2,
                         {{st(0, 1)},
                          {st(1, 1)},
                          {ld(0, 0), ld(1, 1)},
                          {ld(1, 0), ld(0, 1)}}));
    suite.push_back(make("IRIW+fences", 2,
                         {{st(0, 1)},
                          {st(1, 1)},
                          {ld(0, 0), fence(), ld(1, 1)},
                          {ld(1, 0), fence(), ld(0, 1)}}));
    return suite;
}

litmus_test random_litmus(xrandom& rng) {
    litmus_test t;
    t.name = "rand";
    t.locations = 2;
    const unsigned harts = 2 + static_cast<unsigned>(rng.next_below(litmus_max_harts - 1));
    t.harts.resize(harts);
    for (unsigned h = 0; h < harts; ++h) {
        const unsigned nops = 2 + static_cast<unsigned>(rng.next_below(3));
        unsigned next_reg = 0;
        for (unsigned i = 0; i < nops; ++i) {
            const unsigned loc = static_cast<unsigned>(rng.next_below(t.locations));
            // Store values are distinct across the whole test so an outcome
            // identifies which store each load observed.
            const std::uint32_t value = h * litmus_max_ops + i + 1;
            const std::uint64_t pick = rng.next_below(10);
            if (pick < 4 || (pick < 8 && next_reg >= litmus_max_regs)) {
                t.harts[h].push_back(st(loc, value));
            } else if (pick < 8) {
                t.harts[h].push_back(ld(loc, next_reg++));
            } else if (pick < 9) {
                t.harts[h].push_back(fence());
            } else if (next_reg < litmus_max_regs) {
                t.harts[h].push_back(
                    {litmus_op::kind::amoadd, static_cast<std::uint8_t>(loc),
                     static_cast<std::uint8_t>(next_reg++), value});
            } else {
                t.harts[h].push_back(st(loc, value));
            }
        }
    }
    if (observation_slots(t).empty()) t.harts[0].push_back(ld(0, 0));
    return t;
}

// ---- VR32 compilation and execution -----------------------------------------

isa::program_image compile_litmus(const litmus_test& t) {
    check_bounds(t);
    isa::program_builder b;
    std::vector<std::uint32_t> loc_addr(t.locations);
    for (unsigned l = 0; l < t.locations; ++l) loc_addr[l] = b.data_word(0);

    // Register convention per hart: x20+l = address of location l,
    // x10+r = observation slot r, x6 = store/addend temporary.
    std::vector<std::uint32_t> entries;
    entries.reserve(t.harts.size());
    for (const auto& ops : t.harts) {
        entries.push_back(b.text_pos());
        for (unsigned l = 0; l < t.locations; ++l) b.li(20 + l, loc_addr[l]);
        for (const litmus_op& o : ops) {
            switch (o.k) {
                case litmus_op::kind::store:
                    b.li(6, o.value);
                    b.emit_store(isa::op::sw, 6, 20 + o.loc, 0);
                    break;
                case litmus_op::kind::load:
                    b.emit_load(isa::op::lw, 10 + o.reg, 20 + o.loc, 0);
                    break;
                case litmus_op::kind::fence:
                    b.emit(isa::decoded_inst{isa::op::fence});
                    break;
                case litmus_op::kind::amoadd:
                    b.li(6, o.value);
                    b.emit_r(isa::op::amoadd_w, 10 + o.reg, 20 + o.loc, 6);
                    break;
            }
        }
        b.halt_op();
    }
    isa::program_image img = b.finish();
    img.hart_entries = std::move(entries);
    img.entry = img.hart_entries[0];
    return img;
}

litmus_outcome observe_outcome(const litmus_test& t, const isa::mh_iss& sim) {
    litmus_outcome out;
    for (const auto& [h, r] : observation_slots(t)) {
        out.push_back(sim.state(h).gpr[10 + r]);
    }
    return out;
}

std::set<litmus_outcome> run_litmus(const litmus_test& t, mem::memory_model model,
                                    std::uint64_t seed_lo, std::uint64_t seed_hi) {
    const isa::program_image img = compile_litmus(t);
    std::set<litmus_outcome> seen;
    for (std::uint64_t seed = seed_lo; seed <= seed_hi; ++seed) {
        mem::main_memory m;
        isa::mh_iss sim(m, static_cast<unsigned>(t.harts.size()), model, seed);
        sim.load(img);
        sim.run(100'000);
        if (!sim.all_halted())
            throw std::runtime_error("litmus " + t.name + ": run did not halt (seed " +
                                     std::to_string(seed) + ")");
        seen.insert(observe_outcome(t, sim));
    }
    return seen;
}

// ---- corpus text format -----------------------------------------------------

std::string outcome_to_string(const litmus_outcome& o) {
    if (o.empty()) return "-";
    std::string s;
    for (std::size_t i = 0; i < o.size(); ++i) {
        if (i != 0) s += ',';
        s += std::to_string(o[i]);
    }
    return s;
}

std::string to_text(const litmus_test& t) {
    std::string s = "litmus " + t.name + "\n";
    s += "locations " + std::to_string(t.locations) + "\n";
    for (const auto& ops : t.harts) {
        s += "hart:";
        for (std::size_t i = 0; i < ops.size(); ++i) {
            const litmus_op& o = ops[i];
            s += i == 0 ? " " : " ; ";
            switch (o.k) {
                case litmus_op::kind::store:
                    s += "st " + std::to_string(o.loc) + " " + std::to_string(o.value);
                    break;
                case litmus_op::kind::load:
                    s += "ld " + std::to_string(o.loc) + " -> " + std::to_string(o.reg);
                    break;
                case litmus_op::kind::fence:
                    s += "fence";
                    break;
                case litmus_op::kind::amoadd:
                    s += "amo " + std::to_string(o.loc) + " " + std::to_string(o.value) +
                         " -> " + std::to_string(o.reg);
                    break;
            }
        }
        s += "\n";
    }
    const auto set_line = [&s](const char* tag, const std::set<litmus_outcome>& set) {
        if (set.empty()) return;
        s += tag;
        for (const litmus_outcome& o : set) s += " " + outcome_to_string(o);
        s += "\n";
    };
    set_line("sc:", t.sc_allowed);
    set_line("tso:", t.tso_allowed);
    return s;
}

namespace {

[[noreturn]] void parse_fail(unsigned line, const std::string& what) {
    throw std::runtime_error("litmus parse error, line " + std::to_string(line) +
                             ": " + what);
}

std::vector<std::string> split_ws(const std::string& s) {
    std::vector<std::string> out;
    std::istringstream is(s);
    std::string tok;
    while (is >> tok) out.push_back(tok);
    return out;
}

std::uint32_t parse_u32(const std::string& tok, unsigned line) {
    try {
        std::size_t used = 0;
        const unsigned long v = std::stoul(tok, &used);
        if (used != tok.size() || v > 0xFFFFFFFFul) throw std::invalid_argument(tok);
        return static_cast<std::uint32_t>(v);
    } catch (const std::exception&) {
        parse_fail(line, "bad number '" + tok + "'");
    }
}

litmus_outcome parse_outcome(const std::string& tok, unsigned line) {
    litmus_outcome o;
    if (tok == "-") return o;
    std::string cur;
    for (const char c : tok + ",") {
        if (c == ',') {
            o.push_back(parse_u32(cur, line));
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    return o;
}

std::vector<litmus_op> parse_hart_ops(const std::string& body, unsigned line) {
    std::vector<litmus_op> ops;
    std::string piece;
    std::istringstream is(body);
    while (std::getline(is, piece, ';')) {
        const std::vector<std::string> tok = split_ws(piece);
        if (tok.empty()) continue;
        litmus_op o;
        if (tok[0] == "st" && tok.size() == 3) {
            o.k = litmus_op::kind::store;
            o.loc = static_cast<std::uint8_t>(parse_u32(tok[1], line));
            o.value = parse_u32(tok[2], line);
        } else if (tok[0] == "ld" && tok.size() == 4 && tok[2] == "->") {
            o.k = litmus_op::kind::load;
            o.loc = static_cast<std::uint8_t>(parse_u32(tok[1], line));
            o.reg = static_cast<std::uint8_t>(parse_u32(tok[3], line));
        } else if (tok[0] == "fence" && tok.size() == 1) {
            o.k = litmus_op::kind::fence;
        } else if (tok[0] == "amo" && tok.size() == 5 && tok[3] == "->") {
            o.k = litmus_op::kind::amoadd;
            o.loc = static_cast<std::uint8_t>(parse_u32(tok[1], line));
            o.value = parse_u32(tok[2], line);
            o.reg = static_cast<std::uint8_t>(parse_u32(tok[4], line));
        } else {
            parse_fail(line, "bad op '" + piece + "'");
        }
        ops.push_back(o);
    }
    return ops;
}

}  // namespace

litmus_test parse_litmus(const std::string& text) {
    litmus_test t;
    t.locations = 0;
    bool seen_header = false;
    std::istringstream is(text);
    std::string raw;
    unsigned line = 0;
    while (std::getline(is, raw)) {
        ++line;
        const std::size_t hash = raw.find('#');
        const std::string s = hash == std::string::npos ? raw : raw.substr(0, hash);
        const std::vector<std::string> tok = split_ws(s);
        if (tok.empty()) continue;
        if (tok[0] == "litmus") {
            if (tok.size() != 2) parse_fail(line, "expected 'litmus <name>'");
            t.name = tok[1];
            seen_header = true;
        } else if (tok[0] == "locations") {
            if (tok.size() != 2) parse_fail(line, "expected 'locations <n>'");
            t.locations = parse_u32(tok[1], line);
        } else if (tok[0] == "hart:") {
            const std::size_t colon = s.find(':');
            t.harts.push_back(parse_hart_ops(s.substr(colon + 1), line));
        } else if (tok[0] == "sc:" || tok[0] == "tso:") {
            auto& set = tok[0] == "sc:" ? t.sc_allowed : t.tso_allowed;
            for (std::size_t i = 1; i < tok.size(); ++i) {
                set.insert(parse_outcome(tok[i], line));
            }
        } else {
            parse_fail(line, "unknown directive '" + tok[0] + "'");
        }
    }
    if (!seen_header) throw std::runtime_error("litmus parse error: missing 'litmus' header");
    check_bounds(t);
    const std::size_t nslots = observation_slots(t).size();
    for (const auto* set : {&t.sc_allowed, &t.tso_allowed}) {
        for (const litmus_outcome& o : *set) {
            if (o.size() != nslots)
                throw std::runtime_error("litmus parse error: outcome arity mismatch in " +
                                         t.name);
        }
    }
    return t;
}

}  // namespace osm::fuzz
