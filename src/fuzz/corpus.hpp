// Reproducer corpus: persistent, replayable differential-testing artifacts.
//
// Every divergence a fuzzing campaign finds is worth keeping forever: the
// program is serialized to assembly (label-based, so it survives editing
// and re-assembles exactly) next to a flat metadata JSON carrying the seed,
// generator options, engine list and the first-divergence report observed
// when it was found.  Committed artifacts live in tests/corpus/ and are
// replayed by the fuzz_smoke ctest and scripts/tier1.sh, so a fixed bug
// stays fixed on every engine.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/program.hpp"
#include "sim/diff_runner.hpp"

namespace osm::fuzz {

/// Serialize `img` to assembler-input text.  Branch and jal targets inside
/// the text segment become labels, so the output re-assembles to an image
/// with identical architectural behaviour (and identical words, except
/// that hand-edits remain possible).  Non-text segments are emitted as
/// .data/.byte directives.
std::string image_to_asm(const isa::program_image& img);

/// Metadata sidecar for one corpus artifact (<name>.s + <name>.json).
struct reproducer_meta {
    std::string name;
    std::string kind = "fuzz";     ///< "fuzz" (campaign-found) | "regression"
    std::string engines = "all";   ///< comma list, or "all"
    std::uint64_t seed = 0;        ///< generator seed (0 = hand-written)
    std::string rand_options;      ///< canonical --rand-* flag string
    std::uint64_t max_cycles = 50'000'000;
    std::string note;              ///< human context: what bug this guards
    std::string divergence;        ///< first-divergence report when found

    std::string to_json() const;
    static reproducer_meta from_json(const std::string& text);
};

/// Write <dir>/<name>.s and <dir>/<name>.json (creates `dir` if needed).
/// Returns the path of the .s file.
std::string save_reproducer(const std::string& dir, const reproducer_meta& meta,
                            const isa::program_image& img);

/// Outcome of replaying one artifact.
struct replay_result {
    std::string path;
    reproducer_meta meta;
    sim::diff_result diff;
    bool ok() const { return diff.ok(); }
};

/// Replay one .s artifact (its .json sidecar is optional: defaults apply).
/// `engines_override`, when non-empty, wins over the metadata engine list.
/// `cache`, when set, memoizes terminal engine states (see diff_options).
replay_result replay_artifact(const std::string& asm_path,
                              const std::vector<std::string>& engines_override = {},
                              const sim::engine_config& cfg = {},
                              sim::end_state_cache* cache = nullptr);

/// All .s artifacts under `dir`, sorted by filename for determinism.
std::vector<std::string> list_corpus(const std::string& dir);

/// Parse a flat (one-level, string/number-valued) JSON object.  This is
/// the only JSON shape the corpus uses; no external dependency needed.
std::map<std::string, std::string> parse_flat_json(const std::string& text);

}  // namespace osm::fuzz
