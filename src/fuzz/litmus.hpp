// Litmus tests: small multi-hart programs that distinguish memory models.
//
// A litmus test is a handful of straight-line per-hart programs over a few
// shared words, plus the set of final observation-register outcomes each
// consistency model allows.  The classic suite (SB, MP, LB, CoRR, IRIW and
// fenced variants) is what the literature uses to characterize a model:
// e.g. the store-buffering test SB allows r1==0 && r2==0 under TSO (each
// hart's store can still sit in its buffer when the other hart loads) but
// never under SC.
//
// Two independent implementations of each model meet here:
//   * enumerate_outcomes() — an exhaustive, memoized search over every
//     interleaving of abstract operations (including partial store-buffer
//     drains), straight from the operational model definition;
//   * run_litmus() — the real multi-hart ISS executing the compiled VR32
//     program under seeded schedules.
// The differential harness (tests/litmus_test.cpp, `osm-fuzz litmus`)
// checks that the ISS never escapes the enumerated set and that the
// model-distinguishing outcomes are actually reached, and persists any
// out-of-model outcome as a corpus reproducer.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/xrandom.hpp"
#include "isa/mh_iss.hpp"
#include "isa/program.hpp"
#include "mem/shared_mem.hpp"

namespace osm::fuzz {

/// One final state: the observation registers' values in
/// observation_slots() order.
using litmus_outcome = std::vector<std::uint32_t>;

/// One abstract operation over the shared locations.
struct litmus_op {
    enum class kind : std::uint8_t {
        store,   ///< shared[loc] = value
        load,    ///< obs[reg] = shared[loc]
        fence,   ///< drain own store buffer
        amoadd,  ///< obs[reg] = shared[loc]; shared[loc] += value (atomic)
    };
    kind k = kind::store;
    std::uint8_t loc = 0;     ///< shared word index (< locations)
    std::uint8_t reg = 0;     ///< observation slot (load/amoadd only)
    std::uint32_t value = 0;  ///< stored value / addend
};

/// Enumeration stays exhaustive because tests are tiny; these bounds are
/// enforced by enumerate_outcomes() and the generators stay inside them.
inline constexpr unsigned litmus_max_harts = 4;
inline constexpr unsigned litmus_max_locations = 4;
inline constexpr unsigned litmus_max_ops = 8;   ///< per hart
inline constexpr unsigned litmus_max_regs = 4;  ///< observation slots per hart

/// A litmus test over `locations` shared words, all initially zero.
/// `sc_allowed`/`tso_allowed` record the exact enumerated outcome sets
/// when non-empty (the corpus files carry them; freshly generated tests
/// leave them empty until enumerated).
struct litmus_test {
    std::string name;
    unsigned locations = 2;
    std::vector<std::vector<litmus_op>> harts;
    std::set<litmus_outcome> sc_allowed;
    std::set<litmus_outcome> tso_allowed;
};

/// The (hart, reg) pairs written by load/amoadd ops, sorted; an outcome
/// lists their final values in this order.
std::vector<std::pair<unsigned, unsigned>> observation_slots(const litmus_test& t);

/// Exhaustively enumerate every outcome `model` allows: memoized search
/// over all interleavings of per-hart steps and store-buffer drains.
/// Throws std::invalid_argument when `t` exceeds the litmus_max_* bounds.
std::set<litmus_outcome> enumerate_outcomes(const litmus_test& t,
                                            mem::memory_model model);

/// The canonical suite: SB, MP, LB, CoRR, IRIW and fenced variants.
std::vector<litmus_test> litmus_suite();

/// Randomized variant (2-4 harts, 2 locations, mixed op shapes) for the
/// litmus fuzzer.  Always has at least one observation slot.
litmus_test random_litmus(xrandom& rng);

/// Compile to VR32: per-hart code blocks ending in halt, shared words in
/// the data segment, hart entry points in img.hart_entries.
isa::program_image compile_litmus(const litmus_test& t);

/// Read the observation registers of a finished run (slot (h, r) lives in
/// hart h's GPR x10+r).
litmus_outcome observe_outcome(const litmus_test& t, const isa::mh_iss& sim);

/// Execute the compiled test on the multi-hart ISS once per schedule seed
/// in [seed_lo, seed_hi] and collect the distinct outcomes.  Throws
/// std::runtime_error if a run fails to halt (litmus programs are finite).
std::set<litmus_outcome> run_litmus(const litmus_test& t, mem::memory_model model,
                                    std::uint64_t seed_lo, std::uint64_t seed_hi);

// ---- corpus text format ----------------------------------------------------
//
//   litmus SB
//   locations 2
//   hart: st 0 1 ; ld 1 -> 0
//   hart: st 1 1 ; ld 0 -> 0
//   sc: 0,1 1,0 1,1
//   tso: 0,0 0,1 1,0 1,1
//
// `sc:`/`tso:` lines carry the enumerated allowed outcome sets and are
// optional.  '#' starts a comment line.

std::string outcome_to_string(const litmus_outcome& o);
std::string to_text(const litmus_test& t);
/// Parse the corpus text format; throws std::runtime_error with a
/// line-numbered message on malformed input.
litmus_test parse_litmus(const std::string& text);

}  // namespace osm::fuzz
