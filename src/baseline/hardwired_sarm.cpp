#include "baseline/hardwired_sarm.hpp"

#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::baseline {

using isa::op;

hardwired_sarm::hardwired_sarm(const sarm::sarm_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dram_t_(cfg.mem_latency),
      bus_(cfg.bus, dram_t_),
      icache_(cfg.icache, bus_),
      dcache_(cfg.dcache, bus_),
      itlb_(cfg.itlb),
      dtlb_(cfg.dtlb),
      dcode_(cfg.decode_cache_entries) {}

void hardwired_sarm::load(const isa::program_image& img) {
    img.load_into(mem_);
    gpr_.fill(0);
    fpr_.fill(0);
    host_.clear();
    f_ = d_ = e_ = b_ = w_ = latch{};
    f_busy_ = e_busy_ = b_busy_ = 0;
    fetch_pc_ = img.entry;
    redirect_ = false;
    refetch_delay_ = false;
    halted_ = false;
    cycles_ = 0;
    retired_ = 0;
    icache_.flush();
    dcache_.flush();
    itlb_.flush();
    dtlb_.flush();
    dcode_.invalidate_all();
    dcode_.reset_stats();
}

void hardwired_sarm::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < isa::num_gprs; ++r) gpr_[r] = st.gpr[r];
    for (unsigned r = 0; r < isa::num_fprs; ++r) fpr_[r] = st.fpr[r];
    fetch_pc_ = st.pc;
    halted_ = st.halted;
    host_.seed(console);
}

bool hardwired_sarm::operand_ready(unsigned reg, bool fpr) const {
    // A source is blocked by any in-flight producer of the same register;
    // with forwarding, a producer whose value is already computed supplies
    // it instead of blocking.
    const auto blocks = [&](const latch& l) {
        if (!l.valid || !isa::writes_rd(l.di.code)) return false;
        if (isa::rd_is_fpr(l.di.code) != fpr || l.di.rd != reg) return false;
        if (!fpr && reg == 0) return false;  // x0
        return !(cfg_.forwarding && l.value_ready);
    };
    return !blocks(e_) && !blocks(b_) && !blocks(w_);
}

std::uint32_t hardwired_sarm::operand_read(unsigned reg, bool fpr) const {
    // Youngest matching producer wins (E, then B, then W), else regfile.
    const auto match = [&](const latch& l) {
        return l.valid && isa::writes_rd(l.di.code) &&
               isa::rd_is_fpr(l.di.code) == fpr && l.di.rd == reg &&
               l.value_ready && (fpr || reg != 0);
    };
    if (cfg_.forwarding) {
        if (match(e_)) return e_.ex.value;
        if (match(b_)) return b_.ex.value;
        if (match(w_)) return w_.ex.value;
    }
    return fpr ? fpr_[reg] : gpr_[reg];
}

void hardwired_sarm::flush_frontend(std::uint32_t new_pc) {
    f_ = latch{};
    d_ = latch{};
    f_busy_ = 0;
    fetch_pc_ = new_pc;
    // The redirect reaches the fetch unit at the next clock edge.
    refetch_delay_ = true;
}

void hardwired_sarm::retire(latch& w) {
    ++retired_;
    const op c = w.di.code;
    if (isa::writes_rd(c)) {
        if (isa::rd_is_fpr(c)) {
            fpr_[w.di.rd] = w.ex.value;
        } else if (w.di.rd != 0) {
            gpr_[w.di.rd] = w.ex.value;
        }
    }
    if (c == op::syscall_op) {
        isa::arch_state st;
        st.gpr = gpr_;
        host_.handle(static_cast<std::uint16_t>(w.di.imm), st);
        if (st.halted) halted_ = true;
    } else if (c == op::halt || c == op::invalid) {
        halted_ = true;
    }
    w = latch{};
}

void hardwired_sarm::cycle() {
    ++cycles_;

    // ---- W: write-back / retire ----
    if (w_.valid) retire(w_);
    if (halted_) return;

    // ---- B: memory stage ----
    if (b_.valid) {
        if (b_busy_ > 0) {
            --b_busy_;
        } else if (!w_.valid) {
            if (isa::is_load(b_.di.code)) {
                b_.ex.value = isa::do_load(b_.di.code, mem_, b_.ex.mem_addr);
                b_.value_ready = true;
            }
            w_ = b_;
            b_ = latch{};
        }
    }

    // ---- E: execute ----
    if (e_.valid) {
        if (e_busy_ > 0) {
            --e_busy_;
        } else if (!b_.valid) {
            // Move to B; kick off the memory access timing.
            if (isa::is_mem(e_.di.code)) {
                unsigned latency = dtlb_.translate(e_.ex.mem_addr);
                const unsigned size =
                    e_.di.code == op::sb ? 1u : (e_.di.code == op::sh ? 2u : 4u);
                latency += dcache_.access(e_.ex.mem_addr, isa::is_store(e_.di.code), size)
                               .latency;
                b_busy_ = latency - 1;
                if (isa::is_store(e_.di.code)) {
                    isa::do_store(e_.di.code, mem_, e_.ex.mem_addr, e_.ex.store_data);
                }
            }
            b_ = e_;
            e_ = latch{};
        }
    }

    // ---- D: decode / issue ----
    if (d_.valid && !e_.valid) {
        const op c = d_.di.code;
        bool ready = true;
        if (isa::uses_rs1(c)) ready &= operand_ready(d_.di.rs1, isa::rs1_is_fpr(c));
        if (isa::uses_rs2(c)) ready &= operand_ready(d_.di.rs2, isa::rs2_is_fpr(c));
        if (c == op::syscall_op) ready &= operand_ready(4, false);
        // WAW: a single outstanding writer per register (scoreboard).
        if (isa::writes_rd(c)) {
            const bool fpr = isa::rd_is_fpr(c);
            const auto pending = [&](const latch& l) {
                return l.valid && isa::writes_rd(l.di.code) &&
                       isa::rd_is_fpr(l.di.code) == fpr && l.di.rd == d_.di.rd &&
                       (fpr || d_.di.rd != 0);
            };
            ready &= !pending(e_) && !pending(b_) && !pending(w_);
        }
        if (ready) {
            latch n = d_;
            if (c == op::halt || c == op::invalid) {
                flush_frontend(n.pc);  // refetch the halt: serialize
            } else if (c == op::syscall_op) {
                flush_frontend(n.pc + 4);
            } else {
                const std::uint32_t a =
                    isa::uses_rs1(c) ? operand_read(n.di.rs1, isa::rs1_is_fpr(c)) : 0;
                const std::uint32_t bval =
                    isa::uses_rs2(c) ? operand_read(n.di.rs2, isa::rs2_is_fpr(c)) : 0;
                n.ex = isa::compute(n.di, n.pc, a, bval);
                n.value_ready = isa::writes_rd(c) && !isa::is_load(c);
                e_busy_ = isa::extra_exec_cycles(c);
                if (isa::is_mul_div(c) && e_busy_ > 0) e_busy_ += cfg_.mul_extra;
                if (n.ex.redirect) flush_frontend(n.ex.next_pc);
            }
            e_ = n;
            d_ = latch{};
        }
    }

    // ---- F -> D ----
    if (f_.valid && f_busy_ == 0 && !d_.valid) {
        d_ = f_;
        f_ = latch{};
    }
    if (f_.valid && f_busy_ > 0) --f_busy_;

    // ---- fetch ----
    if (refetch_delay_) {
        refetch_delay_ = false;
    } else if (!f_.valid) {
        latch n;
        n.valid = true;
        n.pc = fetch_pc_;
        fetch_pc_ += 4;
        unsigned latency = itlb_.translate(n.pc);
        latency += icache_.access(n.pc, false, 4).latency;
        f_busy_ = latency - 1;
        const std::uint32_t word = mem_.read32(n.pc);
        n.di = cfg_.decode_cache ? dcode_.lookup(n.pc, word).di : isa::decode(word);
        f_ = n;
    }
}

std::uint64_t hardwired_sarm::run(std::uint64_t max_cycles) {
    const std::uint64_t start = cycles_;
    while (!halted_ && cycles_ - start < max_cycles) cycle();
    return cycles_ - start;
}

stats::report hardwired_sarm::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("hw"));
    r.put("run", "cycles", cycles_);
    r.put("run", "retired", retired_);
    r.put("run", "ipc", ipc());
    r.put("icache", "accesses", icache_.stats().accesses);
    r.put("icache", "hit_ratio", icache_.stats().hit_ratio());
    r.put("dcache", "accesses", dcache_.stats().accesses);
    r.put("dcache", "hit_ratio", dcache_.stats().hit_ratio());
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    return r;
}

}  // namespace osm::baseline
