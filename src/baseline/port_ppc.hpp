// Hardware-centric port/wire model of the P750 superscalar — the
// repository's SystemC surrogate (the paper compares its OSM PowerPC-750
// model against a SystemC behavioural model: ~20 modules connected by
// >200 wires, 4x slower than the OSM model, timing within 3%).
//
// Modeling style: every hardware block is a de::module; modules communicate
// ONLY through de::signal channels (each signal<struct> stands for a
// multi-wire bus) and are evaluated by the discrete-event kernel's
// delta-cycle machinery.  A phase sequencer walks each clock cycle through
// the delta phases
//     squash/redirect -> retire -> execute/finish -> RS issue ->
//     dispatch -> fetch
// mirroring the resolution order the OSM director's age ranking produces,
// so the two independently-implemented models of the same machine spec can
// be compared cycle-for-cycle.  All functional behaviour goes through the
// same isa::compute/do_load/do_store helpers as every other engine.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "de/clock.hpp"
#include "de/kernel.hpp"
#include "de/module.hpp"
#include "de/signal.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "ppc750/ppc750.hpp"
#include "uarch/predictor.hpp"

namespace osm::baseline {

/// Statistics mirroring p750_stats where meaningful.
struct port_ppc_stats {
    std::uint64_t cycles = 0;
    std::uint64_t retired = 0;
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t squashed = 0;
    std::uint64_t delta_cycles = 0;  ///< DE evaluation overhead metric

    double ipc() const {
        return cycles == 0 ? 0.0 : static_cast<double>(retired) / static_cast<double>(cycles);
    }
};

/// The port/wire superscalar model.  Reuses ppc750::p750_config so both
/// implementations describe one machine.
class port_ppc {
public:
    port_ppc(const ppc750::p750_config& cfg, mem::main_memory& memory);
    ~port_ppc();

    void load(const isa::program_image& img);
    /// Adopt checkpointed architectural state (call after load()): registers,
    /// fetch pc, halt flag and console; queues/renames/stores stay reset.
    void restore_arch(const isa::arch_state& st, const std::string& console);
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool halted() const noexcept { return halted_; }
    const port_ppc_stats& stats() const noexcept { return stats_; }
    std::uint32_t gpr(unsigned r) const;
    std::uint32_t fpr(unsigned r) const;
    /// Next-fetch pc (speculative: may point past the halt after the end).
    std::uint32_t fetch_pc() const noexcept { return fetch_pc_; }
    const std::string& console() const { return host_.console(); }
    const isa::decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

    /// Structured report of every counter (JSON-renderable).
    stats::report make_report() const;

private:
    // ---- wire payload types (each stands for a bus of wires) ----
    struct wire_op {
        std::int32_t id = -1;
        bool operator==(const wire_op&) const = default;
    };
    struct wire_publish {
        std::int32_t id = -1;   // op finishing (result producer)
        std::uint64_t stamp = 0;  // makes successive publishes distinct
        bool operator==(const wire_publish&) const = default;
    };
    struct wire_redirect {
        bool valid = false;
        std::uint32_t target = 0;
        std::uint64_t kill_seq = 0;
        std::uint64_t stamp = 0;
        bool operator==(const wire_redirect&) const = default;
    };
    /// Status bus driven by every stateful block each cycle — the fan-out
    /// wiring (~200 wires in the paper's SystemC model) that downstream
    /// modules are sensitive to.
    struct wire_status {
        std::uint32_t fields = 0;   // packed busy/count bits
        std::uint64_t stamp = 0;    // cycle stamp: the bus toggles each cycle
        bool operator==(const wire_status&) const = default;
    };

    /// In-flight operation record; signals carry indices into this table.
    struct op_rec {
        bool live = false;
        isa::decoded_inst di{};
        std::uint32_t pc = 0;
        std::uint64_t seq = 0;
        std::uint32_t epoch = 0;
        ppc750::unit fu = ppc750::unit::iu1;
        bool dual_alu = false;
        bool predicted_taken = false;
        std::uint32_t predicted_target = 0;
        isa::exec_out ex{};
        bool executed = false;
        bool has_store = false;
    };

    struct rename_rec {
        std::uint64_t seq = 0;  // owner op seq
        unsigned reg = 0;
        bool fpr = false;
        bool published = false;
        std::uint32_t value = 0;
    };

    struct store_rec {
        std::uint64_t seq = 0;
        std::uint32_t addr = 0;
        unsigned size = 0;
        std::uint32_t old_bytes = 0;
        bool squashed = false;
    };

    class phase_sequencer;
    class fetch_module;
    class fetch_queue_module;
    class dispatch_module;
    class unit_module;
    class completion_module;
    class regfile_module;
    class control_module;

    friend class phase_sequencer;
    friend class fetch_module;
    friend class fetch_queue_module;
    friend class dispatch_module;
    friend class unit_module;
    friend class completion_module;
    friend class regfile_module;
    friend class control_module;

    // ---- shared helpers used by the modules ----
    std::int32_t alloc_op();
    void free_op(std::int32_t id);
    op_rec& rec(std::int32_t id) { return table_[static_cast<std::size_t>(id)]; }
    bool operand_ready(const op_rec& o, bool second) const;
    std::uint32_t operand_value(const op_rec& o, bool second) const;
    const rename_rec* youngest_rename(unsigned reg, bool fpr, std::uint64_t before_seq) const;
    unsigned rename_free(bool fpr) const;
    bool is_victim(const op_rec& o) const;
    void undo_store(const store_rec& s);

    ppc750::p750_config cfg_;
    mem::main_memory& mem_;

    mem::fixed_latency_mem dram_t_;
    mem::bus bus_;
    mem::cache icache_;
    mem::cache dcache_;
    mem::tlb dtlb_;
    isa::decode_cache dcode_;
    uarch::bht bht_;
    uarch::btic btic_;
    isa::syscall_host host_;

    de::kernel k_;

    // ---- architectural + micro-architectural state ----
    std::vector<op_rec> table_;
    std::array<std::uint32_t, isa::num_gprs> arch_gpr_{};
    std::array<std::uint32_t, isa::num_fprs> arch_fpr_{};
    std::vector<rename_rec> renames_;  // program-ordered
    std::deque<std::int32_t> fq_;      // fetch queue (op ids, head first)
    std::deque<std::int32_t> cq_;      // completion queue (op ids, head first)
    std::deque<store_rec> store_queue_;

    // Fetch engine state (owned by fetch_module logically).
    std::uint32_t fetch_pc_ = 0;
    std::uint32_t epoch_ = 0;
    std::uint64_t next_seq_ = 1;
    std::uint32_t last_fetch_line_ = ~0u;
    unsigned fetch_stall_ = 0;

    // Squash bookkeeping.
    std::uint64_t kill_seq_ = ~0ull;
    wire_redirect pending_redirect_{};

    // ---- modules and signals ----
    std::unique_ptr<de::clock> clk_;
    std::unique_ptr<de::signal<int>> phase_;
    std::unique_ptr<de::signal<std::uint64_t>> edge_;
    std::unique_ptr<de::signal<wire_redirect>> resolve_sig_;
    std::array<std::unique_ptr<de::signal<wire_publish>>, ppc750::num_units> publish_sig_;
    std::array<std::unique_ptr<de::signal<wire_op>>, ppc750::num_units> issue_sig_;
    std::array<std::unique_ptr<de::signal<wire_status>>, ppc750::num_units> status_sig_;
    std::unique_ptr<de::signal<wire_status>> fq_status_sig_;
    std::unique_ptr<de::signal<wire_status>> cq_status_sig_;
    std::unique_ptr<de::signal<wire_status>> rename_status_sig_;
    std::unique_ptr<de::signal<int>> retired_sig_;

    std::vector<std::unique_ptr<de::module>> modules_;
    std::array<unit_module*, ppc750::num_units> units_{};

    bool halted_ = false;
    port_ppc_stats stats_;
};

}  // namespace osm::baseline
