// Hand-sequentialized cycle-accurate simulator of the SARM 5-stage pipeline
// — the repository's SimpleScalar surrogate.
//
// This is deliberately written the way retargeted SimpleScalar-style
// simulators are: one big reverse-stage-order loop per cycle with explicit
// latches, busy counters and ad-hoc hazard checks, sharing no scheduling
// machinery with the OSM framework.  It serves two purposes:
//   * the speed baseline for the paper's §5.1 throughput comparison
//     (650k cyc/s OSM vs 550k cyc/s SimpleScalar);
//   * the independent golden timing reference for the Table 1 accuracy
//     experiment (two implementations of one micro-architecture, small
//     residual differences expected and reported).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "sarm/sarm.hpp"

namespace osm::baseline {

/// Reuses sarm::sarm_config so both simulators model one machine spec.
class hardwired_sarm {
public:
    hardwired_sarm(const sarm::sarm_config& cfg, mem::main_memory& memory);

    void load(const isa::program_image& img);
    /// Adopt checkpointed architectural state (call after load()): registers,
    /// fetch pc, halt flag and console; pipeline latches stay empty.
    void restore_arch(const isa::arch_state& st, const std::string& console);
    /// Simulate until halt or `max_cycles`; returns cycles executed.
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool halted() const noexcept { return halted_; }
    std::uint64_t cycles() const noexcept { return cycles_; }
    std::uint64_t retired() const noexcept { return retired_; }
    std::uint32_t gpr(unsigned r) const { return gpr_[r]; }
    std::uint32_t fpr(unsigned r) const { return fpr_[r]; }
    /// Next-fetch pc (speculative: may point past the halt after the end).
    std::uint32_t fetch_pc() const noexcept { return fetch_pc_; }
    const std::string& console() const { return host_.console(); }
    const isa::decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }
    double ipc() const {
        return cycles_ == 0 ? 0.0
                            : static_cast<double>(retired_) / static_cast<double>(cycles_);
    }

    /// Structured report of every counter (JSON-renderable).
    stats::report make_report() const;

private:
    /// Pipeline latch: one in-flight instruction.
    struct latch {
        bool valid = false;
        isa::decoded_inst di{};
        std::uint32_t pc = 0;
        isa::exec_out ex{};
        bool value_ready = false;  // result available for forwarding
    };

    void cycle();
    bool operand_ready(unsigned reg, bool fpr) const;
    std::uint32_t operand_read(unsigned reg, bool fpr) const;
    void flush_frontend(std::uint32_t new_pc);
    void retire(latch& w);

    sarm::sarm_config cfg_;
    mem::main_memory& mem_;
    mem::fixed_latency_mem dram_t_;
    mem::bus bus_;
    mem::cache icache_;
    mem::cache dcache_;
    mem::tlb itlb_;
    mem::tlb dtlb_;
    isa::decode_cache dcode_;

    std::array<std::uint32_t, isa::num_gprs> gpr_{};
    std::array<std::uint32_t, isa::num_fprs> fpr_{};
    isa::syscall_host host_;

    latch f_, d_, e_, b_, w_;
    unsigned f_busy_ = 0;  // remaining fetch-stall cycles
    unsigned e_busy_ = 0;  // remaining execute cycles (multi-cycle units)
    unsigned b_busy_ = 0;  // remaining memory-stage cycles

    std::uint32_t fetch_pc_ = 0;
    bool redirect_ = false;
    bool refetch_delay_ = false;
    std::uint32_t redirect_pc_ = 0;

    bool halted_ = false;
    std::uint64_t cycles_ = 0;
    std::uint64_t retired_ = 0;
};

}  // namespace osm::baseline
