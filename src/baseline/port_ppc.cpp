#include "baseline/port_ppc.hpp"

#include <cassert>

#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::baseline {

using isa::op;
using ppc750::num_units;
using ppc750::unit;

namespace {
// Delta phases within one clock cycle (see header).
enum phase : int {
    ph_control = 0,
    ph_retire = 1,
    ph_execute = 2,
    ph_rs_issue = 3,
    ph_dispatch = 4,
    ph_fetch = 5,
    ph_last = ph_fetch,
};

bool is_simple_alu(const isa::decoded_inst& di) {
    const op c = di.code;
    return !(isa::is_cti(c) || isa::is_mem(c) || isa::is_mul_div(c) ||
             isa::is_fp(c) || isa::is_system(c) || c == op::invalid);
}

unit select_unit(const isa::decoded_inst& di) {
    const op c = di.code;
    if (isa::is_cti(c)) return unit::bpu;
    if (isa::is_mem(c)) return unit::lsu;
    if (isa::is_mul_div(c)) return unit::iu2;
    if (isa::is_fp(c)) return unit::fpu;
    if (isa::is_system(c) || c == op::invalid) return unit::sru;
    return unit::iu1;
}
}  // namespace

// ---- modules ---------------------------------------------------------------

/// Walks the per-cycle delta phases: the clock edge resets the phase to 0,
/// and each evaluation advances it until ph_last.
class port_ppc::phase_sequencer final : public de::module {
public:
    phase_sequencer(port_ppc& top)
        : de::module(top.k_, "sequencer"), top_(top) {}

    void evaluate() override {
        const int p = top_.phase_->read();
        if (p < ph_last) top_.phase_->write(p + 1);
    }

private:
    port_ppc& top_;
};

/// Applies redirects/squashes at the start of the cycle (phase 0).
class port_ppc::control_module final : public de::module {
public:
    control_module(port_ppc& top) : de::module(top.k_, "control"), top_(top) {}

    void evaluate() override;  // defined after unit_module

private:
    port_ppc& top_;
};




/// In-order retirement from the completion queue (phase 1).
class port_ppc::completion_module final : public de::module {
public:
    completion_module(port_ppc& top) : de::module(top.k_, "completion"), top_(top) {}

    void evaluate() override {
        if (top_.phase_->read() != ph_retire) return;
        auto& t = top_;
        for (unsigned n = 0; n < t.cfg_.retire_bw && !t.cq_.empty() && !t.halted_; ++n) {
            const std::int32_t id = t.cq_.front();
            op_rec& o = t.rec(id);
            if (!o.executed) break;
            t.cq_.pop_front();
            ++t.stats_.retired;
            const op c = o.di.code;

            // Commit the oldest rename entry owned by this op.
            if (isa::writes_rd(c)) {
                const bool fpr = isa::rd_is_fpr(c);
                for (auto it = t.renames_.begin(); it != t.renames_.end(); ++it) {
                    if (it->seq == o.seq && it->fpr == fpr && it->reg == o.di.rd) {
                        assert(it->published);
                        if (fpr) {
                            t.arch_fpr_[it->reg] = it->value;
                        } else if (it->reg != 0) {
                            t.arch_gpr_[it->reg] = it->value;
                        }
                        t.renames_.erase(it);
                        break;
                    }
                }
            }
            if (o.has_store) {
                assert(!t.store_queue_.empty() && t.store_queue_.front().seq == o.seq);
                t.store_queue_.pop_front();
            }
            if (c == op::syscall_op) {
                isa::arch_state st;
                st.gpr = t.arch_gpr_;
                t.host_.handle(static_cast<std::uint16_t>(o.di.imm), st);
                if (st.halted) t.halted_ = true;
            } else if (c == op::halt || c == op::invalid) {
                t.halted_ = true;
            }
            t.free_op(id);
            if (t.halted_) {
                while (!t.store_queue_.empty()) {
                    t.undo_store(t.store_queue_.back());
                    t.store_queue_.pop_back();
                }
                t.clk_->stop();
                break;
            }
        }
        t.retired_sig_->write(static_cast<int>(t.stats_.retired & 0x7FFFFFFF));
        t.cq_status_sig_->write(
            {static_cast<std::uint32_t>(t.cq_.size()), t.stats_.cycles});
    }

private:
    port_ppc& top_;
};

/// One function unit with its single-entry reservation station.
class port_ppc::unit_module final : public de::module {
public:
    unit_module(port_ppc& top, unit u)
        : de::module(top.k_, std::string("unit_") + ppc750::unit_name(u)),
          top_(top),
          u_(u) {}

    bool unit_free() const { return exec_id_ < 0; }
    bool rs_empty() const { return rs_id_ < 0; }

    void insert_rs(std::int32_t id) {
        assert(rs_id_ < 0);
        rs_id_ = id;
    }

    /// Begin executing `id` this cycle (direct issue or RS issue).
    void start_exec(std::int32_t id) {
        assert(exec_id_ < 0);
        exec_id_ = id;
        auto& t = top_;
        op_rec& o = t.rec(id);
        const op c = o.di.code;

        std::uint32_t a = 0;
        std::uint32_t b = 0;
        if (isa::uses_rs1(c)) a = t.operand_value(o, false);
        if (isa::uses_rs2(c)) b = t.operand_value(o, true);
        o.ex = isa::compute(o.di, o.pc, a, b);

        unsigned latency = 1 + isa::extra_exec_cycles(c);
        if (u_ == unit::lsu && isa::is_mem(c)) {
            unsigned mlat = t.dtlb_.translate(o.ex.mem_addr);
            const unsigned size = c == op::sb ? 1u : (c == op::sh ? 2u : 4u);
            mlat += t.dcache_.access(o.ex.mem_addr, isa::is_store(c), size).latency;
            latency = mlat;
            if (isa::is_load(c)) {
                o.ex.value = isa::do_load(c, t.mem_, o.ex.mem_addr);
            } else {
                store_rec s;
                s.seq = o.seq;
                s.addr = o.ex.mem_addr;
                s.size = size;
                s.old_bytes = size == 1   ? t.mem_.read8(s.addr)
                              : size == 2 ? t.mem_.read16(s.addr)
                                          : t.mem_.read32(s.addr);
                isa::do_store(c, t.mem_, s.addr, o.ex.store_data);
                t.store_queue_.push_back(s);
                o.has_store = true;
            }
        }
        exec_left_ = latency;

        if (u_ == unit::bpu) resolve_branch(o);
    }

    void squash_younger(std::uint64_t kill) {
        auto& t = top_;
        if (rs_id_ >= 0 && t.rec(rs_id_).seq > kill) {
            t.free_op(rs_id_);
            rs_id_ = -1;
        }
        if (exec_id_ >= 0 && t.rec(exec_id_).seq > kill) {
            t.free_op(exec_id_);
            exec_id_ = -1;
            exec_left_ = 0;
        }
    }

    void reset() {
        rs_id_ = -1;
        exec_id_ = -1;
        exec_left_ = 0;
    }

    void evaluate() override {
        auto& t = top_;
        const int p = t.phase_->read();
        if (p == ph_execute) {
            // Drive this unit's status bus (busy/RS-occupancy + cycle
            // stamp); dispatch and fetch are sensitive to it.
            const unsigned ui = static_cast<unsigned>(u_);
            t.status_sig_[ui]->write(
                {static_cast<std::uint32_t>((exec_id_ >= 0 ? 1u : 0u) |
                                            (rs_id_ >= 0 ? 2u : 0u)),
                 t.stats_.cycles});
            if (exec_id_ >= 0 && --exec_left_ == 0) {
                op_rec& o = t.rec(exec_id_);
                o.executed = true;
                // Publish the result on this unit's result bus.
                if (isa::writes_rd(o.di.code)) {
                    const bool fpr = isa::rd_is_fpr(o.di.code);
                    for (rename_rec& r : t.renames_) {
                        if (r.seq == o.seq && r.fpr == fpr && r.reg == o.di.rd) {
                            r.published = true;
                            r.value = o.ex.value;
                            break;
                        }
                    }
                }
                const unsigned ui = static_cast<unsigned>(u_);
                t.publish_sig_[ui]->write({exec_id_, ++publish_stamp_});
                exec_id_ = -1;
            }
        } else if (p == ph_rs_issue) {
            if (rs_id_ >= 0 && exec_id_ < 0) {
                op_rec& o = t.rec(rs_id_);
                const bool r1 = !isa::uses_rs1(o.di.code) || t.operand_ready(o, false);
                const bool r2 = !isa::uses_rs2(o.di.code) || t.operand_ready(o, true);
                if (r1 && r2) {
                    const std::int32_t id = rs_id_;
                    rs_id_ = -1;
                    start_exec(id);
                }
            }
        }
    }

private:
    void resolve_branch(op_rec& o) {
        auto& t = top_;
        const op c = o.di.code;
        const std::uint32_t correct_next = o.ex.redirect ? o.ex.next_pc : o.pc + 4;
        const std::uint32_t predicted_next =
            o.predicted_taken ? o.predicted_target : o.pc + 4;
        if (isa::is_branch(c)) {
            ++t.stats_.branches;
            t.bht_.update(o.pc, o.ex.redirect);
            if (o.ex.redirect) t.btic_.insert(o.pc, o.ex.next_pc);
        }
        if (correct_next != predicted_next) {
            ++t.stats_.mispredicts;
            t.pending_redirect_ = {true, correct_next, o.seq, ++resolve_stamp_};
            t.resolve_sig_->write(t.pending_redirect_);
        }
    }

    port_ppc& top_;
    unit u_;
    std::int32_t rs_id_ = -1;
    std::int32_t exec_id_ = -1;
    unsigned exec_left_ = 0;
    std::uint64_t publish_stamp_ = 0;
    std::uint64_t resolve_stamp_ = 0;
};

void port_ppc::control_module::evaluate() {
        if (top_.phase_->read() != ph_control) return;
        if (!top_.pending_redirect_.valid) return;
        auto& t = top_;
        const std::uint64_t kill = t.pending_redirect_.kill_seq;
        ++t.epoch_;
        t.fetch_pc_ = t.pending_redirect_.target;
        t.last_fetch_line_ = ~0u;
        t.pending_redirect_ = {};

        // Squash every live op younger than the branch: drop from the fetch
        // and completion queues, free rename entries, abort executing or
        // waiting ops in the units, and roll back their stores.
        const auto victim = [&](std::int32_t id) {
            return id >= 0 && t.rec(id).live && t.rec(id).seq > kill;
        };
        for (auto it = t.fq_.begin(); it != t.fq_.end();) {
            if (victim(*it)) {
                t.free_op(*it);
                it = t.fq_.erase(it);
                ++t.stats_.squashed;
            } else {
                ++it;
            }
        }
        for (auto it = t.cq_.begin(); it != t.cq_.end();) {
            if (victim(*it)) {
                // Units drop it too (below) if it is still executing.
                ++t.stats_.squashed;
                it = t.cq_.erase(it);
            } else {
                ++it;
            }
        }
        for (auto it = t.renames_.begin(); it != t.renames_.end();) {
            if (it->seq > kill) {
                it = t.renames_.erase(it);
            } else {
                ++it;
            }
        }
        for (unit_module* u : t.units_) {
            u->squash_younger(kill);
        }
        while (!t.store_queue_.empty() && t.store_queue_.back().seq > kill) {
            t.undo_store(t.store_queue_.back());
            t.store_queue_.pop_back();
        }
        // free_op for cq victims not in units is handled by the units; any
        // op finished-but-not-retired lives only in cq_, free it here.
        // (unit_module::squash_younger frees ops it owns; finished ops were
        // already released by their unit.)
        for (std::size_t i = 0; i < t.table_.size(); ++i) {
            op_rec& o = t.table_[i];
            if (o.live && o.seq > kill && o.executed) {
                t.free_op(static_cast<std::int32_t>(i));
            }
        }
}


/// In-order dual dispatch from the fetch queue (phase 4).
class port_ppc::dispatch_module final : public de::module {
public:
    dispatch_module(port_ppc& top) : de::module(top.k_, "dispatch"), top_(top) {}

    void evaluate() override {
        if (top_.phase_->read() != ph_dispatch) return;
        auto& t = top_;
        t.rename_status_sig_->write(
            {t.rename_free(false) | (t.rename_free(true) << 8), t.stats_.cycles});
        for (unsigned n = 0; n < t.cfg_.dispatch_bw && !t.fq_.empty(); ++n) {
            const std::int32_t id = t.fq_.front();
            op_rec& o = t.rec(id);
            const op c = o.di.code;

            if (t.cq_.size() >= t.cfg_.completion_queue) break;
            const bool needs_rename = isa::writes_rd(c) &&
                                      !(o.di.rd == 0 && !isa::rd_is_fpr(c));
            if (needs_rename &&
                t.rename_free(isa::rd_is_fpr(c)) == 0) {
                break;
            }

            // Candidate units: IU1 then IU2 for simple ALU ops.
            unit_module* cands[2] = {t.units_[static_cast<unsigned>(o.fu)], nullptr};
            if (o.dual_alu) cands[1] = t.units_[static_cast<unsigned>(unit::iu2)];

            const bool r1 = !isa::uses_rs1(c) || t.operand_ready(o, false);
            const bool r2 = !isa::uses_rs2(c) || t.operand_ready(o, true);

            unit_module* direct = nullptr;
            unit_module* station = nullptr;
            for (unit_module* u : cands) {
                if (u == nullptr) continue;
                if (direct == nullptr && r1 && r2 && u->unit_free() && u->rs_empty()) {
                    direct = u;
                }
                if (station == nullptr && u->rs_empty()) station = u;
            }

            unsigned ui = static_cast<unsigned>(o.fu);
            if (direct != nullptr) {
                t.fq_.pop_front();
                if (needs_rename) add_rename(o);
                t.cq_.push_back(id);
                direct->start_exec(id);
                t.issue_sig_[ui]->write({id});
            } else if (station != nullptr) {
                t.fq_.pop_front();
                if (needs_rename) add_rename(o);
                t.cq_.push_back(id);
                station->insert_rs(id);
            } else {
                break;  // in-order dispatch stalls
            }
        }
    }

private:
    void add_rename(const op_rec& o) {
        rename_rec r;
        r.seq = o.seq;
        r.reg = o.di.rd;
        r.fpr = isa::rd_is_fpr(o.di.code);
        top_.renames_.push_back(r);
    }

    port_ppc& top_;
};

/// Instruction fetch with branch prediction (phase 5).
class port_ppc::fetch_module final : public de::module {
public:
    fetch_module(port_ppc& top) : de::module(top.k_, "fetch"), top_(top) {}

    void evaluate() override {
        if (top_.phase_->read() != ph_fetch) return;
        auto& t = top_;
        t.fq_status_sig_->write(
            {static_cast<std::uint32_t>(t.fq_.size()), t.stats_.cycles});
        if (t.fetch_stall_ > 0) {
            --t.fetch_stall_;
            return;
        }
        for (unsigned n = 0; n < t.cfg_.fetch_bw; ++n) {
            if (t.fq_.size() >= t.cfg_.fetch_queue) break;
            const std::int32_t id = t.alloc_op();
            if (id < 0) break;
            op_rec& o = t.rec(id);
            o.pc = t.fetch_pc_;
            o.seq = t.next_seq_++;
            o.epoch = t.epoch_;

            bool stop_fetching = false;
            const std::uint32_t line = o.pc / t.cfg_.icache.line_bytes;
            if (line != t.last_fetch_line_) {
                t.last_fetch_line_ = line;
                const unsigned lat = t.icache_.access(o.pc, false, 4).latency;
                if (lat > 1) {
                    // The remainder of this cycle counts as the first stall
                    // cycle; lat-2 further cycles keep fetch idle.
                    t.fetch_stall_ = lat - 2;
                    stop_fetching = true;
                }
            }

            const std::uint32_t word = t.mem_.read32(o.pc);
            o.di = t.cfg_.decode_cache ? t.dcode_.lookup(o.pc, word).di
                                       : isa::decode(word);
            o.fu = select_unit(o.di);
            o.dual_alu = is_simple_alu(o.di);
            o.predicted_taken = false;

            const op c = o.di.code;
            if (isa::is_branch(c) && t.bht_.predict(o.pc)) {
                o.predicted_taken = true;
                o.predicted_target = o.pc + 4 + static_cast<std::uint32_t>(o.di.imm);
                if (!t.btic_.lookup(o.pc).has_value()) stop_fetching = true;
                t.fetch_pc_ = o.predicted_target;
                t.last_fetch_line_ = ~0u;
            } else if (c == op::jal) {
                o.predicted_taken = true;
                o.predicted_target = o.pc + 4 + static_cast<std::uint32_t>(o.di.imm);
                t.fetch_pc_ = o.predicted_target;
                t.last_fetch_line_ = ~0u;
            } else {
                t.fetch_pc_ = o.pc + 4;
            }
            t.fq_.push_back(id);
            if (stop_fetching) break;
        }
    }

private:
    port_ppc& top_;
};

// ---- top level --------------------------------------------------------------

port_ppc::port_ppc(const ppc750::p750_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dram_t_(cfg.mem_latency),
      bus_(cfg.bus, dram_t_),
      icache_(cfg.icache, bus_),
      dcache_(cfg.dcache, bus_),
      dtlb_(cfg.dtlb),
      dcode_(cfg.decode_cache_entries),
      bht_(cfg.bht_entries),
      btic_(cfg.btic_entries),
      table_(64) {
    phase_ = std::make_unique<de::signal<int>>(k_, "phase", -1);
    edge_ = std::make_unique<de::signal<std::uint64_t>>(k_, "edge", 0);
    resolve_sig_ = std::make_unique<de::signal<wire_redirect>>(k_, "resolve");
    retired_sig_ = std::make_unique<de::signal<int>>(k_, "retired");
    fq_status_sig_ = std::make_unique<de::signal<wire_status>>(k_, "fq_status");
    cq_status_sig_ = std::make_unique<de::signal<wire_status>>(k_, "cq_status");
    rename_status_sig_ = std::make_unique<de::signal<wire_status>>(k_, "rename_status");
    for (unsigned u = 0; u < num_units; ++u) {
        publish_sig_[u] = std::make_unique<de::signal<wire_publish>>(
            k_, std::string("publish_") + ppc750::unit_name(static_cast<unit>(u)));
        issue_sig_[u] = std::make_unique<de::signal<wire_op>>(
            k_, std::string("issue_") + ppc750::unit_name(static_cast<unit>(u)));
        status_sig_[u] = std::make_unique<de::signal<wire_status>>(
            k_, std::string("status_") + ppc750::unit_name(static_cast<unit>(u)));
    }

    // Instantiate modules; sensitivity to the phase signal drives the
    // whole design through the delta machinery.
    auto add = [&](std::unique_ptr<de::module> m) -> de::module* {
        modules_.push_back(std::move(m));
        phase_->add_sensitive(modules_.back().get());
        return modules_.back().get();
    };
    add(std::make_unique<phase_sequencer>(*this));
    add(std::make_unique<control_module>(*this));
    de::module* completion = add(std::make_unique<completion_module>(*this));
    for (unsigned u = 0; u < num_units; ++u) {
        units_[u] = static_cast<unit_module*>(
            add(std::make_unique<unit_module>(*this, static_cast<unit>(u))));
    }
    de::module* dispatch = add(std::make_unique<dispatch_module>(*this));
    de::module* fetch = add(std::make_unique<fetch_module>(*this));

    // Port-based fan-out: dispatch and fetch watch every unit's status bus
    // and the queue/rename status buses; the units watch the publish buses
    // of their peers (operand wakeup in a wire-connected design).
    for (unsigned u = 0; u < num_units; ++u) {
        status_sig_[u]->add_sensitive(dispatch);
        status_sig_[u]->add_sensitive(fetch);
        for (unsigned v = 0; v < num_units; ++v) {
            if (u != v) publish_sig_[u]->add_sensitive(units_[v]);
        }
    }
    fq_status_sig_->add_sensitive(dispatch);
    cq_status_sig_->add_sensitive(dispatch);
    cq_status_sig_->add_sensitive(completion);
    rename_status_sig_->add_sensitive(dispatch);

    clk_ = std::make_unique<de::clock>(k_, /*period=*/1);
    clk_->on_edge([this] {
        ++stats_.cycles;
        edge_->write(stats_.cycles);
        phase_->write(ph_control);
    });
}
// ---- top level (continued) ----

port_ppc::~port_ppc() = default;

std::uint32_t port_ppc::gpr(unsigned r) const { return arch_gpr_[r]; }
std::uint32_t port_ppc::fpr(unsigned r) const { return arch_fpr_[r]; }

std::int32_t port_ppc::alloc_op() {
    for (std::size_t i = 0; i < table_.size(); ++i) {
        if (!table_[i].live) {
            table_[i] = op_rec{};
            table_[i].live = true;
            return static_cast<std::int32_t>(i);
        }
    }
    return -1;
}

void port_ppc::free_op(std::int32_t id) {
    table_[static_cast<std::size_t>(id)].live = false;
}

const port_ppc::rename_rec* port_ppc::youngest_rename(unsigned reg, bool fpr,
                                                      std::uint64_t before_seq) const {
    const rename_rec* best = nullptr;
    for (const rename_rec& r : renames_) {
        if (r.reg != reg || r.fpr != fpr || r.seq >= before_seq) continue;
        if (best == nullptr || r.seq > best->seq) best = &r;
    }
    return best;
}

unsigned port_ppc::rename_free(bool fpr) const {
    unsigned used = 0;
    for (const rename_rec& r : renames_) {
        if (r.fpr == fpr) ++used;
    }
    const unsigned total = fpr ? cfg_.fpr_renames : cfg_.gpr_renames;
    return total - used;
}

bool port_ppc::operand_ready(const op_rec& o, bool second) const {
    const op c = o.di.code;
    const unsigned reg = second ? o.di.rs2 : o.di.rs1;
    const bool fpr = second ? isa::rs2_is_fpr(c) : isa::rs1_is_fpr(c);
    const rename_rec* r = youngest_rename(reg, fpr, o.seq);
    return r == nullptr || r->published;
}

std::uint32_t port_ppc::operand_value(const op_rec& o, bool second) const {
    const op c = o.di.code;
    const unsigned reg = second ? o.di.rs2 : o.di.rs1;
    const bool fpr = second ? isa::rs2_is_fpr(c) : isa::rs1_is_fpr(c);
    const rename_rec* r = youngest_rename(reg, fpr, o.seq);
    if (r != nullptr) {
        assert(r->published);
        return r->value;
    }
    return fpr ? arch_fpr_[reg] : arch_gpr_[reg];
}

void port_ppc::undo_store(const store_rec& s) {
    switch (s.size) {
        case 1: mem_.write8(s.addr, static_cast<std::uint8_t>(s.old_bytes)); break;
        case 2: mem_.write16(s.addr, static_cast<std::uint16_t>(s.old_bytes)); break;
        default: mem_.write32(s.addr, s.old_bytes); break;
    }
}

void port_ppc::load(const isa::program_image& img) {
    img.load_into(mem_);
    for (op_rec& o : table_) o.live = false;
    arch_gpr_.fill(0);
    arch_fpr_.fill(0);
    renames_.clear();
    fq_.clear();
    cq_.clear();
    store_queue_.clear();
    fetch_pc_ = img.entry;
    epoch_ = 0;
    next_seq_ = 1;
    last_fetch_line_ = ~0u;
    fetch_stall_ = 0;
    kill_seq_ = ~0ull;
    pending_redirect_ = {};
    for (unit_module* u : units_) u->reset();
    halted_ = false;
    const std::uint64_t keep_deltas = stats_.delta_cycles;
    stats_ = {};
    stats_.delta_cycles = keep_deltas;
    host_.clear();
    icache_.flush();
    dcache_.flush();
    dtlb_.flush();
    dcode_.invalidate_all();
    dcode_.reset_stats();
}

void port_ppc::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < isa::num_gprs; ++r) arch_gpr_[r] = st.gpr[r];
    for (unsigned r = 0; r < isa::num_fprs; ++r) arch_fpr_[r] = st.fpr[r];
    fetch_pc_ = st.pc;
    halted_ = st.halted;
    host_.seed(console);
}

std::uint64_t port_ppc::run(std::uint64_t max_cycles) {
    const std::uint64_t start = stats_.cycles;
    clk_->start();
    while (!halted_ && stats_.cycles - start < max_cycles) {
        if (!k_.step()) break;
    }
    stats_.delta_cycles = k_.delta_count();
    return stats_.cycles - start;
}

stats::report port_ppc::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("port"));
    r.put("run", "cycles", stats_.cycles);
    r.put("run", "retired", stats_.retired);
    r.put("run", "ipc", stats_.ipc());
    r.put("branches", "executed", stats_.branches);
    r.put("branches", "mispredicts", stats_.mispredicts);
    r.put("branches", "squashed_ops", stats_.squashed);
    r.put("de", "delta_cycles", stats_.delta_cycles);
    r.put("icache", "accesses", icache_.stats().accesses);
    r.put("icache", "hit_ratio", icache_.stats().hit_ratio());
    r.put("dcache", "accesses", dcache_.stats().accesses);
    r.put("dcache", "hit_ratio", dcache_.stats().hit_ratio());
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    return r;
}

}  // namespace osm::baseline
