#include "uarch/predictor.hpp"

#include <cassert>

#include "common/bits.hpp"

namespace osm::uarch {

bht::bht(unsigned entries) : counters_(entries, 1) {
    assert(is_pow2(entries));
}

bool bht::predict(std::uint32_t pc) const {
    ++lookups_;
    return counters_[index(pc)] >= 2;
}

void bht::update(std::uint32_t pc, bool taken) {
    ++updates_;
    std::uint8_t& c = counters_[index(pc)];
    if (taken) {
        if (c < 3) ++c;
    } else {
        if (c > 0) --c;
    }
}

btic::btic(unsigned entries) : entries_(entries) {
    assert(is_pow2(entries));
}

std::optional<std::uint32_t> btic::lookup(std::uint32_t pc) const {
    const entry& e = entries_[index(pc)];
    if (e.valid && e.tag == pc) {
        ++hits_;
        return e.target;
    }
    ++misses_;
    return std::nullopt;
}

void btic::insert(std::uint32_t pc, std::uint32_t target) {
    entries_[index(pc)] = {pc, target, true};
}

}  // namespace osm::uarch
