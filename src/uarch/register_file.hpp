// Register-file token manager with scoreboarding and optional forwarding —
// the paper's m_r (§4 "Data hazard"), combined with the bypass manager.
//
// Tokens managed:
//   * value tokens, one per register — readers Inquire them (non-exclusive);
//   * register-update tokens, one outstanding per register — a writer
//     Allocates one at issue and Releases it (with the computed value) at
//     write-back.
//
// While a register-update token is held, dependents' value inquiries fail
// (stall) unless forwarding is enabled and the producer has already
// published its result, which models the bypass network.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "core/token_manager.hpp"

namespace osm::uarch {

/// Identifier scheme shared by register-file style managers: the low bits
/// name the register, bit 32 distinguishes update tokens from value tokens.
constexpr core::ident_t reg_value_ident(unsigned reg) { return reg; }
constexpr core::ident_t reg_update_ident(unsigned reg) {
    return (1ull << 32) | reg;
}
constexpr bool ident_is_update(core::ident_t id) { return (id >> 32) & 1u; }
constexpr unsigned ident_reg(core::ident_t id) {
    return static_cast<unsigned>(id & 0xFFFFFFFFu);
}

/// Scoreboarded register file for in-order pipelines (one outstanding
/// writer per register).  Owns the architectural register values; the
/// committed value is written when the update token is released.
class register_file_manager final : public core::token_manager {
public:
    static constexpr unsigned max_regs = 128;  // up to 4 SMT threads x 32

    /// `regs` — number of architectural registers; `reg0_is_zero` pins
    /// register 0 to zero (VR32 GPR convention).
    register_file_manager(std::string name, unsigned regs, bool reg0_is_zero,
                          bool forwarding);

    // ---- TMI ----
    bool can_allocate(core::ident_t ident, const core::osm& requester) override;
    bool can_release(core::ident_t ident, const core::osm& requester) override;
    bool inquire(core::ident_t ident, const core::osm& requester) override;
    void do_allocate(core::ident_t ident, core::osm& requester) override;
    void do_release(core::ident_t ident, core::osm& requester) override;
    void discard(core::ident_t ident, core::osm& requester) override;
    const core::osm* owner_of(core::ident_t ident) const override;
    bool tracks_generation() const noexcept override { return true; }

    // ---- hardware-layer / model interface ----
    /// Producer announces its result early (end of execute): dependents may
    /// forward from here when forwarding is enabled.
    void publish(unsigned reg, std::uint32_t value);

    /// Pending (uncommitted) update value becomes the commit value at
    /// release time; a release without a prior publish commits `fallback`.
    void set_commit_value(unsigned reg, std::uint32_t value) { publish(reg, value); }

    /// Read with bypass: the published pending value when visible, else the
    /// architectural value.  Precondition: inquire(value) would succeed.
    std::uint32_t read(unsigned reg) const;

    /// Architectural (committed) value.
    std::uint32_t arch_read(unsigned reg) const { return arch_[reg]; }
    void arch_write(unsigned reg, std::uint32_t value);

    bool pending(unsigned reg) const { return entries_[reg].writer != nullptr; }
    bool forwarding() const noexcept { return forwarding_; }
    void set_forwarding(bool on) noexcept {
        if (on != forwarding_) touch();
        forwarding_ = on;
    }

private:
    struct update_entry {
        const core::osm* writer = nullptr;
        bool published = false;
        std::uint32_t value = 0;
    };

    unsigned regs_;
    bool reg0_is_zero_;
    bool forwarding_;
    std::array<std::uint32_t, max_regs> arch_{};
    std::array<update_entry, max_regs> entries_{};
};

}  // namespace osm::uarch
