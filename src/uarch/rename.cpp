#include "uarch/rename.hpp"

#include <cassert>

namespace osm::uarch {

rename_manager::rename_manager(std::string name, unsigned regs,
                               unsigned buffers, bool reg0_is_zero)
    : token_manager(std::move(name)),
      regs_(regs),
      buffers_(buffers),
      reg0_is_zero_(reg0_is_zero) {
    assert(regs <= max_regs);
}

const rename_manager::rename_entry* rename_manager::find_seq(std::uint64_t seq) const {
    for (const rename_entry& e : entries_) {
        if (e.seq == seq) return &e;
    }
    return nullptr;
}

const rename_manager::rename_entry* rename_manager::youngest(unsigned reg) const {
    return youngest_excluding(reg, nullptr);
}

const rename_manager::rename_entry* rename_manager::youngest_excluding(
    unsigned reg, const core::osm* self) const {
    const rename_entry* best = nullptr;
    for (const rename_entry& e : entries_) {
        if (e.reg != reg || e.writer == self) continue;
        if (best == nullptr || e.seq > best->seq) best = &e;
    }
    return best;
}

const rename_manager::rename_entry* rename_manager::oldest(unsigned reg) const {
    const rename_entry* best = nullptr;
    for (const rename_entry& e : entries_) {
        if (e.reg == reg && (best == nullptr || e.seq < best->seq)) best = &e;
    }
    return best;
}

unsigned rename_manager::writers_of(unsigned reg) const {
    unsigned n = 0;
    for (const rename_entry& e : entries_) {
        if (e.reg == reg) ++n;
    }
    return n;
}

bool rename_manager::can_allocate(core::ident_t ident, const core::osm&) {
    if (!ident_is_update(ident) || ident_is_entry(ident)) return false;
    const unsigned r = ident_reg(ident);
    if (r >= regs_) return false;
    if (reg0_is_zero_ && r == 0) return true;
    return entries_.size() < buffers_;
}

bool rename_manager::can_release(core::ident_t ident, const core::osm& requester) {
    if (!ident_is_update(ident) || ident_is_entry(ident)) return false;
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return true;
    // Per-register in-order commit: only the oldest writer may release.
    const rename_entry* e = oldest(r);
    return e != nullptr && e->writer == &requester;
}

bool rename_manager::inquire(core::ident_t ident, const core::osm& requester) {
    if (ident_is_arch(ident)) return true;  // captured as arch-final
    if (ident_is_entry(ident)) {
        const rename_entry* e = find_seq(ident_seq(ident));
        // Entry gone = the producer committed (or the reader itself was a
        // squash victim, in which case it never executes anyway).
        return e == nullptr || e->published;
    }
    // Plain value ident (used at dispatch time): the youngest outstanding
    // writer — necessarily older than the inquirer, thanks to in-order
    // dispatch, and never the inquirer itself — must have published, or no
    // writer is outstanding.
    const unsigned r = ident_reg(ident);
    if (r >= regs_) return false;
    const rename_entry* e = youngest_excluding(r, &requester);
    return e == nullptr || e->published;
}

void rename_manager::do_allocate(core::ident_t ident, core::osm& requester) {
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return;
    assert(entries_.size() < buffers_);
    entries_.push_back({next_seq_++, r, &requester, false, 0});
    touch();
}

void rename_manager::do_release(core::ident_t ident, core::osm& requester) {
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return;
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->reg == r && it->writer == &requester) {
            assert(oldest(r)->seq == it->seq && "out-of-order commit");
            if (it->published) arch_write(r, it->value);
            entries_.erase(it);
            touch();
            return;
        }
    }
    assert(false && "release by non-writer");
}

void rename_manager::discard(core::ident_t ident, core::osm& requester) {
    if (!ident_is_update(ident) || ident_is_entry(ident)) return;
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return;
    // Squashes kill youngest first; erase the requester's youngest entry.
    std::vector<rename_entry>::iterator victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->reg == r && it->writer == &requester &&
            (victim == entries_.end() || it->seq > victim->seq)) {
            victim = it;
        }
    }
    if (victim != entries_.end()) {
        entries_.erase(victim);
        touch();
    }
}

const core::osm* rename_manager::owner_of(core::ident_t ident) const {
    if (ident_is_entry(ident)) {
        const rename_entry* e = find_seq(ident_seq(ident));
        return e != nullptr ? e->writer : nullptr;
    }
    return nullptr;
}

core::ident_t rename_manager::capture(unsigned reg, const core::osm* self) const {
    const rename_entry* best = youngest_excluding(reg, self);
    // No outstanding writer: the architectural value is final *for this
    // reader* — writers dispatched later are younger and must not be seen.
    if (best == nullptr) return arch_ident(reg);
    return entry_ident(best->seq);
}

void rename_manager::publish(unsigned reg, const core::osm& writer,
                             std::uint32_t value) {
    if (reg0_is_zero_ && reg == 0) return;
    // A writer holds at most one outstanding entry per destination; with
    // distinct destinations per op this finds the right one.
    for (rename_entry& e : entries_) {
        if (e.reg == reg && e.writer == &writer) {
            if (!e.published) touch();  // wakes captured dependents
            e.published = true;
            e.value = value;
            return;
        }
    }
    assert(false && "publish by non-writer");
}

std::uint32_t rename_manager::read(core::ident_t ident, unsigned reg,
                                   const core::osm* self) const {
    if (ident_is_arch(ident)) return arch_[reg];
    if (ident_is_entry(ident)) {
        const rename_entry* e = find_seq(ident_seq(ident));
        if (e != nullptr) {
            assert(e->published && "reading unpublished rename entry");
            return e->value;
        }
        return arch_[reg];
    }
    // Plain ident: forward from the youngest published writer (other than
    // the reader itself), else the architectural value.
    const rename_entry* e = youngest_excluding(reg, self);
    if (e != nullptr) {
        assert(e->published && "reading past an unpublished writer");
        return e->value;
    }
    return arch_[reg];
}

void rename_manager::arch_write(unsigned reg, std::uint32_t value) {
    if (reg0_is_zero_ && reg == 0) return;
    arch_[reg] = value;
}

}  // namespace osm::uarch
