// Reset token manager — the paper's m_reset (§4 "Control hazard").
//
// Reset edges in an OSM carry an Inquire on this manager plus discard
// primitives, at higher static priority than the normal edges.  The manager
// rejects inquiries from normal operations; when the model detects a
// mis-speculation it arms the manager with a victim predicate, and at the
// next control step every victim's reset edge fires: tokens are discarded
// and the operation returns to state I ("the speculative operations are
// killed").
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/token_manager.hpp"

namespace osm::uarch {

class reset_manager final : public core::token_manager {
public:
    using predicate = std::function<bool(const core::osm&)>;

    explicit reset_manager(std::string name);

    // ---- TMI ----
    bool can_allocate(core::ident_t, const core::osm&) override { return false; }
    bool can_release(core::ident_t, const core::osm&) override { return false; }
    bool inquire(core::ident_t ident, const core::osm& requester) override;
    void do_allocate(core::ident_t, core::osm&) override {}
    void do_release(core::ident_t, core::osm&) override {}
    void discard(core::ident_t, core::osm&) override {}

    // ---- model interface ----
    /// Accept inquiries from OSMs satisfying `p` (stays armed until
    /// replaced or disarmed — epoch predicates can remain armed forever).
    void arm(predicate p);
    void disarm();
    bool armed() const noexcept { return static_cast<bool>(pred_); }

    /// Number of inquiries accepted (operations killed).
    std::uint64_t kills() const noexcept { return kills_; }

    /// Opt the manager into the director's blocked-OSM memoization.  The
    /// predicate may read arbitrary model state (epochs, kill sequence
    /// numbers), which generations cannot see — so tracking is only sound
    /// when the model promises to call touch() every time state the
    /// predicate reads changes.  Predicate inputs living on the requesting
    /// OSM itself are already covered by the OSM stamp, since models only
    /// write them inside that OSM's own transition actions.
    void set_generation_tracked(bool on) noexcept { tracked_ = on; }
    bool tracks_generation() const noexcept override { return tracked_; }

private:
    predicate pred_;
    std::uint64_t kills_ = 0;
    bool tracked_ = false;
};

}  // namespace osm::uarch
