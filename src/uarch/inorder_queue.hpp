// In-order queue token manager: models fetch queues and completion
// (reorder) queues.  Allocation appends the requester at the tail (fails
// when full or when this cycle's allocation bandwidth is spent); release is
// only granted to the queue *head* (in-order removal) and is also
// bandwidth-limited per cycle.  The PowerPC-750 model instantiates this for
// its 6-entry fetch queue (2 dispatches/cycle) and its 6-entry completion
// queue (2 retires/cycle).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/token_manager.hpp"

namespace osm::uarch {

class inorder_queue_manager final : public core::token_manager {
public:
    /// `capacity` — queue entries; `alloc_bw`/`release_bw` — per-cycle
    /// token grant limits (0 = unlimited).
    inorder_queue_manager(std::string name, unsigned capacity,
                          unsigned alloc_bw = 0, unsigned release_bw = 0);

    // ---- TMI ----
    bool can_allocate(core::ident_t ident, const core::osm& requester) override;
    bool can_release(core::ident_t ident, const core::osm& requester) override;
    bool inquire(core::ident_t ident, const core::osm& requester) override;
    void do_allocate(core::ident_t ident, core::osm& requester) override;
    void do_release(core::ident_t ident, core::osm& requester) override;
    void discard(core::ident_t ident, core::osm& requester) override;
    const core::osm* owner_of(core::ident_t ident) const override;
    bool tracks_generation() const noexcept override { return true; }

    // ---- hardware-layer interface ----
    /// Per-cycle update: resets the bandwidth counters and counts down any
    /// allocation blackout (used to model fetch stalls).
    void tick();

    /// Refuse all allocations for the next `cycles` cycles (e.g. while an
    /// instruction-cache miss is outstanding).
    void block_alloc_for(unsigned cycles) noexcept {
        if ((cycles > 0) != (block_alloc_ > 0)) touch();
        block_alloc_ = cycles;
    }
    bool alloc_blocked() const noexcept { return block_alloc_ > 0; }

    /// Permanently refuse further releases (set when the machine halts, so
    /// nothing younger than the halting instruction can commit).
    void block_release() noexcept {
        if (!release_blocked_) touch();
        release_blocked_ = true;
    }
    void unblock_release() noexcept {
        if (release_blocked_) touch();
        release_blocked_ = false;
    }

    unsigned size() const noexcept { return static_cast<unsigned>(queue_.size()); }
    unsigned capacity() const noexcept { return capacity_; }
    bool full() const noexcept { return size() >= capacity_; }
    bool empty() const noexcept { return queue_.empty(); }

    /// Queue occupants, head first.
    const std::vector<const core::osm*>& occupants() const noexcept { return queue_; }
    const core::osm* head() const { return queue_.empty() ? nullptr : queue_.front(); }
    /// Position of `m` from the head, or -1.
    int position_of(const core::osm& m) const;

private:
    unsigned capacity_;
    unsigned alloc_bw_;
    unsigned release_bw_;
    unsigned allocs_this_cycle_ = 0;
    unsigned releases_this_cycle_ = 0;
    unsigned block_alloc_ = 0;
    bool release_blocked_ = false;
    std::vector<const core::osm*> queue_;  // front = head (oldest)
};

}  // namespace osm::uarch
