// Branch prediction hardware: a 2-bit saturating-counter branch history
// table (BHT) and a branch target instruction cache (BTIC), as in the
// PowerPC 750.  Pure hardware-layer components (no TMI): the fetch logic
// consults them directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace osm::uarch {

/// Direction predictor: table of 2-bit saturating counters indexed by the
/// branch pc (word-granular).  Counters start weakly-not-taken.
class bht {
public:
    explicit bht(unsigned entries = 512);

    bool predict(std::uint32_t pc) const;
    void update(std::uint32_t pc, bool taken);

    std::uint64_t lookups() const noexcept { return lookups_; }
    std::uint64_t updates() const noexcept { return updates_; }

private:
    std::size_t index(std::uint32_t pc) const noexcept {
        return (pc >> 2) & (counters_.size() - 1);
    }

    std::vector<std::uint8_t> counters_;
    mutable std::uint64_t lookups_ = 0;
    std::uint64_t updates_ = 0;
};

/// Target predictor: direct-mapped cache of branch targets.  A hit supplies
/// the redirect target at fetch; a miss on a predicted-taken branch costs a
/// fetch bubble (the model charges it).
class btic {
public:
    explicit btic(unsigned entries = 64);

    std::optional<std::uint32_t> lookup(std::uint32_t pc) const;
    void insert(std::uint32_t pc, std::uint32_t target);

    std::uint64_t hits() const noexcept { return hits_; }
    std::uint64_t misses() const noexcept { return misses_; }

private:
    struct entry {
        std::uint32_t tag = 0;
        std::uint32_t target = 0;
        bool valid = false;
    };

    std::size_t index(std::uint32_t pc) const noexcept {
        return (pc >> 2) & (entries_.size() - 1);
    }

    std::vector<entry> entries_;
    mutable std::uint64_t hits_ = 0;
    mutable std::uint64_t misses_ = 0;
};

}  // namespace osm::uarch
