#include "uarch/register_file.hpp"

#include <cassert>

namespace osm::uarch {

register_file_manager::register_file_manager(std::string name, unsigned regs,
                                             bool reg0_is_zero, bool forwarding)
    : token_manager(std::move(name)),
      regs_(regs),
      reg0_is_zero_(reg0_is_zero),
      forwarding_(forwarding) {
    assert(regs <= max_regs);
}

bool register_file_manager::can_allocate(core::ident_t ident, const core::osm&) {
    if (!ident_is_update(ident)) return false;  // value tokens are inquire-only
    const unsigned r = ident_reg(ident);
    if (r >= regs_) return false;
    if (reg0_is_zero_ && r == 0) return true;  // writes to x0 never conflict
    return entries_[r].writer == nullptr;
}

bool register_file_manager::can_release(core::ident_t ident, const core::osm& requester) {
    if (!ident_is_update(ident)) return false;
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return true;
    return entries_[r].writer == &requester;
}

bool register_file_manager::inquire(core::ident_t ident, const core::osm& requester) {
    const unsigned r = ident_reg(ident);
    if (r >= regs_) return false;
    if (ident_is_update(ident)) {
        // Inquiring an update token asks "is the register write port free".
        return entries_[r].writer == nullptr || entries_[r].writer == &requester;
    }
    const update_entry& e = entries_[r];
    if (e.writer == nullptr || e.writer == &requester) return true;
    return forwarding_ && e.published;
}

void register_file_manager::do_allocate(core::ident_t ident, core::osm& requester) {
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return;  // x0 updates are no-ops
    assert(entries_[r].writer == nullptr);
    entries_[r] = {&requester, false, 0};
    touch();
}

void register_file_manager::do_release(core::ident_t ident, core::osm& requester) {
    const unsigned r = ident_reg(ident);
    if (reg0_is_zero_ && r == 0) return;
    update_entry& e = entries_[r];
    assert(e.writer == &requester);
    (void)requester;
    if (e.published) arch_write(r, e.value);
    e = {};
    touch();
}

void register_file_manager::discard(core::ident_t ident, core::osm& requester) {
    if (!ident_is_update(ident)) return;
    const unsigned r = ident_reg(ident);
    if (entries_[r].writer == &requester) {
        entries_[r] = {};
        touch();
    }
}

const core::osm* register_file_manager::owner_of(core::ident_t ident) const {
    return entries_[ident_reg(ident)].writer;
}

void register_file_manager::publish(unsigned reg, std::uint32_t value) {
    if (reg0_is_zero_ && reg == 0) return;
    update_entry& e = entries_[reg];
    if (!e.published) touch();  // opens forwarding-path inquiries
    e.published = true;
    e.value = value;
}

std::uint32_t register_file_manager::read(unsigned reg) const {
    const update_entry& e = entries_[reg];
    if (e.writer != nullptr && e.published && forwarding_) return e.value;
    return arch_[reg];
}

void register_file_manager::arch_write(unsigned reg, std::uint32_t value) {
    if (reg0_is_zero_ && reg == 0) return;
    arch_[reg] = value;
}

}  // namespace osm::uarch
