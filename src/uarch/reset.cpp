#include "uarch/reset.hpp"

namespace osm::uarch {

reset_manager::reset_manager(std::string name) : token_manager(std::move(name)) {}

bool reset_manager::inquire(core::ident_t, const core::osm& requester) {
    if (!pred_ || !pred_(requester)) return false;
    ++kills_;
    return true;
}

void reset_manager::arm(predicate p) {
    pred_ = std::move(p);
    touch();
}

void reset_manager::disarm() {
    pred_ = nullptr;
    touch();
}

}  // namespace osm::uarch
