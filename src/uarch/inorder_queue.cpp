#include "uarch/inorder_queue.hpp"

#include <algorithm>
#include <cassert>

namespace osm::uarch {

inorder_queue_manager::inorder_queue_manager(std::string name, unsigned capacity,
                                             unsigned alloc_bw, unsigned release_bw)
    : token_manager(std::move(name)),
      capacity_(capacity),
      alloc_bw_(alloc_bw),
      release_bw_(release_bw) {}

bool inorder_queue_manager::can_allocate(core::ident_t, const core::osm&) {
    if (block_alloc_ > 0) return false;
    if (queue_.size() >= capacity_) return false;
    if (alloc_bw_ != 0 && allocs_this_cycle_ >= alloc_bw_) return false;
    return true;
}

bool inorder_queue_manager::can_release(core::ident_t, const core::osm& requester) {
    if (release_blocked_) return false;
    if (queue_.empty() || queue_.front() != &requester) return false;
    if (release_bw_ != 0 && releases_this_cycle_ >= release_bw_) return false;
    return true;
}

bool inorder_queue_manager::inquire(core::ident_t, const core::osm& requester) {
    // "Am I at the head?" — used by operations that must wait for seniority
    // without giving up their entry.
    return !queue_.empty() && queue_.front() == &requester;
}

void inorder_queue_manager::do_allocate(core::ident_t, core::osm& requester) {
    assert(queue_.size() < capacity_);
    queue_.push_back(&requester);
    ++allocs_this_cycle_;
    touch();
}

void inorder_queue_manager::do_release(core::ident_t, core::osm& requester) {
    assert(!queue_.empty() && queue_.front() == &requester);
    (void)requester;
    queue_.erase(queue_.begin());
    ++releases_this_cycle_;
    touch();
}

void inorder_queue_manager::discard(core::ident_t, core::osm& requester) {
    const auto it = std::find(queue_.begin(), queue_.end(), &requester);
    if (it != queue_.end()) {
        queue_.erase(it);
        touch();
    }
}

const core::osm* inorder_queue_manager::owner_of(core::ident_t) const {
    return head();
}

void inorder_queue_manager::tick() {
    // Only observable changes bump the generation: spent bandwidth coming
    // back, or the allocation blackout expiring.  A 3 -> 2 blackout count
    // keeps every query answer identical.
    if (allocs_this_cycle_ != 0 || releases_this_cycle_ != 0) touch();
    allocs_this_cycle_ = 0;
    releases_this_cycle_ = 0;
    if (block_alloc_ > 0 && --block_alloc_ == 0) touch();
}

int inorder_queue_manager::position_of(const core::osm& m) const {
    for (std::size_t i = 0; i < queue_.size(); ++i) {
        if (queue_[i] == &m) return static_cast<int>(i);
    }
    return -1;
}

}  // namespace osm::uarch
