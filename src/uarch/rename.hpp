// Rename-buffer token manager for out-of-order cores (PowerPC-750 style:
// architectural register files with a shared pool of rename buffers).
//
// Tokens managed (identifier scheme below):
//   * rename/update tokens — a writer Allocates one per destination at
//     dispatch (fails when the buffer pool is exhausted) and Releases it at
//     in-order completion, committing the value architecturally;
//   * value tokens — readers Inquire a *captured dependency*: at dispatch
//     the model calls capture(reg), which snapshots the youngest
//     outstanding writer of the register into an identifier.  This is
//     exactly the paper's "initialize all allocation and inquiry
//     identifiers" step: the identifier names the specific rename entry the
//     reader depends on, so writers dispatched later never disturb it.
//
// An inquiry succeeds when the captured producer has published its result
// (forwarding) or has already committed; several updates to one register
// may be in flight (WAW/WAR eliminated by buffering).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "core/token_manager.hpp"
#include "uarch/register_file.hpp"

namespace osm::uarch {

class rename_manager final : public core::token_manager {
public:
    static constexpr unsigned max_regs = 64;

    /// Identifier for "depend on rename entry seq" (value inquiry).
    static constexpr core::ident_t entry_ident(std::uint64_t seq) {
        return (1ull << 63) | seq;
    }
    static constexpr bool ident_is_entry(core::ident_t id) { return (id >> 63) & 1u; }
    static constexpr std::uint64_t ident_seq(core::ident_t id) {
        return id & ~(1ull << 63);
    }

    /// Identifier for "the architectural value was final at capture time".
    /// Distinct from a plain reg_value_ident: writers that dispatch *after*
    /// the capture must never satisfy this dependency.
    static constexpr core::ident_t arch_ident(unsigned reg) {
        return (1ull << 62) | reg;
    }
    static constexpr bool ident_is_arch(core::ident_t id) { return (id >> 62) & 1u; }

    rename_manager(std::string name, unsigned regs, unsigned buffers,
                   bool reg0_is_zero);

    // ---- TMI ----
    /// Allocate expects reg_update_ident(reg); Inquire expects either a
    /// captured entry_ident (RS wakeup) or reg_value_ident (dispatch-time
    /// check: youngest writer published or none outstanding).
    bool can_allocate(core::ident_t ident, const core::osm& requester) override;
    bool can_release(core::ident_t ident, const core::osm& requester) override;
    bool inquire(core::ident_t ident, const core::osm& requester) override;
    void do_allocate(core::ident_t ident, core::osm& requester) override;
    void do_release(core::ident_t ident, core::osm& requester) override;
    void discard(core::ident_t ident, core::osm& requester) override;
    const core::osm* owner_of(core::ident_t ident) const override;
    bool tracks_generation() const noexcept override { return true; }

    // ---- model interface ----
    /// Snapshot the dependency a reader of `reg` has right now: an
    /// entry_ident of the youngest outstanding writer, or
    /// reg_value_ident(reg) when the architectural value is final.
    /// `self` (may be null) excludes the reader's own rename entry — an
    /// operation that both reads and writes `reg` depends on the writer
    /// *before* it, not on itself.
    core::ident_t capture(unsigned reg, const core::osm* self = nullptr) const;

    /// Writer announces its result; captured dependents may then read it.
    void publish(unsigned reg, const core::osm& writer, std::uint32_t value);

    /// Read through a captured dependency.  Precondition: inquire(ident)
    /// holds.  `reg` is the architectural fallback; `self` excludes the
    /// reader's own rename entry on the plain-ident path.
    std::uint32_t read(core::ident_t ident, unsigned reg,
                       const core::osm* self = nullptr) const;

    std::uint32_t arch_read(unsigned reg) const { return arch_[reg]; }
    void arch_write(unsigned reg, std::uint32_t value);

    unsigned buffers_in_use() const noexcept {
        return static_cast<unsigned>(entries_.size());
    }
    unsigned buffers_total() const noexcept { return buffers_; }
    unsigned writers_of(unsigned reg) const;

private:
    struct rename_entry {
        std::uint64_t seq = 0;
        unsigned reg = 0;
        const core::osm* writer = nullptr;
        bool published = false;
        std::uint32_t value = 0;
    };

    const rename_entry* find_seq(std::uint64_t seq) const;
    /// Youngest (largest-seq) entry for `reg`, or nullptr.
    const rename_entry* youngest(unsigned reg) const;
    /// Youngest entry for `reg` not written by `self`, or nullptr.
    const rename_entry* youngest_excluding(unsigned reg, const core::osm* self) const;
    /// Oldest (smallest-seq) entry for `reg`, or nullptr.
    const rename_entry* oldest(unsigned reg) const;

    unsigned regs_;
    unsigned buffers_;
    bool reg0_is_zero_;
    std::uint64_t next_seq_ = 1;
    std::array<std::uint32_t, max_regs> arch_{};
    std::vector<rename_entry> entries_;  // all active entries, seq-ordered
};

}  // namespace osm::uarch
