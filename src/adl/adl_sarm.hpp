// The complete SARM case study expressed in OSM-DL.
//
// The paper argues that the declarative part of an OSM model — states,
// edges, token transactions — can be synthesized from an architecture
// description language, leaving only the operation semantics in code.
// This class demonstrates exactly that split on the §5.1 case study: the
// 5-stage machine structure lives in an OSM-DL string (`sarm_osmdl()`),
// the semantics (fetch/decode, execute, memory, retire — the paper's
// "decoding and OSM initialization" share) are bound through the action
// registry, and the result is validated cycle-for-cycle against the
// hand-built `sarm::sarm_model` in tests/adl_sarm_test.cpp.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "adl/adl.hpp"
#include "core/director.hpp"
#include "core/sim_kernel.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/bus.hpp"
#include "mem/cache.hpp"
#include "mem/main_memory.hpp"
#include "mem/tlb.hpp"
#include "sarm/sarm.hpp"
#include "uarch/register_file.hpp"
#include "uarch/reset.hpp"

namespace osm::adl {

/// The OSM-DL source describing the SARM operation layer (paper Fig. 6
/// plus the §4 reset edges and the multiplier of §5.1).
std::string sarm_osmdl();

/// SARM elaborated from text.  Mirrors sarm::sarm_model's interface; the
/// hardware layer (caches, TLBs, bus) stays in C++, as in the paper.
class adl_sarm_model {
public:
    adl_sarm_model(const sarm::sarm_config& cfg, mem::main_memory& memory);

    void load(const isa::program_image& img);
    /// Adopt checkpointed architectural state (call after load()): registers,
    /// fetch pc, halt flag and console; the elaborated pipeline stays empty.
    void restore_arch(const isa::arch_state& st, const std::string& console);
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool halted() const noexcept { return halted_; }
    const sarm::sarm_stats& stats() const noexcept { return stats_; }
    std::uint32_t gpr(unsigned r) const { return m_r_->arch_read(r); }
    std::uint32_t fpr(unsigned r) const { return m_fr_->arch_read(r); }
    /// Next-fetch pc (speculative: may point past the halt after the end).
    std::uint32_t fetch_pc() const noexcept { return fetch_pc_; }
    const std::string& console() const { return host_.console(); }
    const core::osm_graph& graph() const noexcept { return machine_->graph; }
    core::director& dir() noexcept { return dir_; }
    core::sim_kernel& kernel() noexcept { return kern_; }

    /// Structured report of every counter (JSON-renderable).
    stats::report make_report() const;

private:
    class op_ctx;  // the operation subclass

    void on_cycle();
    void act_fetch(core::osm& m);
    void act_execute(core::osm& m);
    void act_mem(core::osm& m);
    void act_buffer_exit(core::osm& m);
    void act_retire(core::osm& m);

    sarm::sarm_config cfg_;
    mem::main_memory& mem_;
    mem::fixed_latency_mem dram_t_;
    mem::bus bus_;
    mem::cache icache_;
    mem::cache dcache_;
    mem::tlb itlb_;
    mem::tlb dtlb_;
    isa::decode_cache dcode_;

    std::unique_ptr<machine> machine_;
    // Managers resolved by name from the elaborated machine.
    core::unit_token_manager* m_f_ = nullptr;
    core::unit_token_manager* m_d_ = nullptr;
    core::unit_token_manager* m_e_ = nullptr;
    core::unit_token_manager* m_b_ = nullptr;
    core::unit_token_manager* m_w_ = nullptr;
    core::unit_token_manager* m_mul_ = nullptr;
    uarch::register_file_manager* m_r_ = nullptr;
    uarch::register_file_manager* m_fr_ = nullptr;
    uarch::reset_manager* m_reset_ = nullptr;

    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<core::osm>> ops_;
    isa::syscall_host host_;

    std::uint32_t fetch_pc_ = 0;
    std::uint32_t epoch_ = 0;
    bool redirect_pending_ = false;
    std::uint32_t redirect_target_ = 0;
    bool halted_ = false;
    sarm::sarm_stats stats_;
};

}  // namespace osm::adl
