#include "adl/adl_sarm.hpp"

#include <cassert>

#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::adl {

using isa::op;
using sarm::sarm_slot;
using uarch::reg_update_ident;
using uarch::reg_value_ident;

std::string sarm_osmdl() {
    return R"(
; SARM, paper Fig. 6: F D E B W plus reset edges and the multiplier.
machine sarm_adl
slots 7                              ; gpr_s1 gpr_s2 fpr_s1 fpr_s2 gpr_dst fpr_dst mul

manager unit    m_f
manager unit    m_d
manager unit    m_e
manager unit    m_b
manager unit    m_w
manager unit    m_mul
manager regfile m_r  regs 32 zero forwarding
manager regfile m_fr regs 32 forwarding
manager reset   m_reset

state I initial
state F
state D
state E
state B
state W

edge I -> F { allocate m_f 0  action fetch }

edge F -> I priority 10 { inquire m_reset 0  discard_all }
edge D -> I priority 10 { inquire m_reset 0  discard_all }

edge F -> D { release m_f 0  allocate m_d 0 }

edge D -> E {
  release m_d 0
  allocate m_e 0
  inquire m_r  slot 0
  inquire m_r  slot 1
  inquire m_fr slot 2
  inquire m_fr slot 3
  allocate m_r  slot 4
  allocate m_fr slot 5
  allocate m_mul slot 6
  action execute
}

edge E -> B {
  release m_e 0
  release m_mul slot 6
  allocate m_b 0
  action mem
}

edge B -> W { release m_b 0  allocate m_w 0  action buffer_exit }

edge W -> I {
  release m_w 0
  release m_r  slot 4
  release m_fr slot 5
  action retire
}
)";
}

/// Operation context: identical payload to sarm::sarm_op.
class adl_sarm_model::op_ctx final : public core::osm {
public:
    using core::osm::osm;
    isa::decoded_inst di{};
    std::uint32_t pc = 0;
    std::uint32_t epoch = 0;
    isa::exec_out ex{};
};

adl_sarm_model::adl_sarm_model(const sarm::sarm_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dram_t_(cfg.mem_latency),
      bus_(cfg.bus, dram_t_),
      icache_(cfg.icache, bus_),
      dcache_(cfg.dcache, bus_),
      itlb_(cfg.itlb),
      dtlb_(cfg.dtlb),
      dcode_(cfg.decode_cache_entries),
      kern_(dir_) {
    action_registry reg;
    reg["fetch"] = [this](core::osm& m) { act_fetch(m); };
    reg["execute"] = [this](core::osm& m) { act_execute(m); };
    reg["mem"] = [this](core::osm& m) { act_mem(m); };
    reg["buffer_exit"] = [this](core::osm& m) { act_buffer_exit(m); };
    reg["retire"] = [this](core::osm& m) { act_retire(m); };
    machine_ = parse_machine(sarm_osmdl(), reg);

    m_f_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_f"));
    m_d_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_d"));
    m_e_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_e"));
    m_b_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_b"));
    m_w_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_w"));
    m_mul_ = static_cast<core::unit_token_manager*>(machine_->find_manager("m_mul"));
    m_r_ = static_cast<uarch::register_file_manager*>(machine_->find_manager("m_r"));
    m_fr_ = static_cast<uarch::register_file_manager*>(machine_->find_manager("m_fr"));
    m_reset_ = static_cast<uarch::reset_manager*>(machine_->find_manager("m_reset"));
    m_r_->set_forwarding(cfg_.forwarding);
    m_fr_->set_forwarding(cfg_.forwarding);

    dir_.cfg().restart_on_transition = cfg_.director_restart;
    dir_.cfg().skip_blocked = cfg_.director_batch;
    for (unsigned i = 0; i < cfg_.num_osms; ++i) {
        ops_.push_back(std::make_unique<op_ctx>(machine_->graph, "op" + std::to_string(i)));
        dir_.add(*ops_.back());
    }
    m_reset_->arm([this](const core::osm& m) {
        return static_cast<const op_ctx&>(m).epoch != epoch_;
    });
    // Same soundness argument as the C++ SARM: epoch_ is touched wherever
    // it is written; o.epoch only changes in the op's own fetch action.
    m_reset_->set_generation_tracked(true);
    kern_.on_cycle([this] { on_cycle(); });
}

void adl_sarm_model::load(const isa::program_image& img) {
    img.load_into(mem_);
    fetch_pc_ = img.entry;
    epoch_ = 0;
    m_reset_->touch();
    redirect_pending_ = false;
    halted_ = false;
    stats_ = {};
    host_.clear();
    dcode_.invalidate_all();
    dcode_.reset_stats();
    kern_.clear_stop();
    for (auto& o : ops_) o->hard_reset();
}

void adl_sarm_model::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < 32; ++r) {
        m_r_->arch_write(r, st.gpr[r]);
        m_fr_->arch_write(r, st.fpr[r]);
    }
    fetch_pc_ = st.pc;
    halted_ = st.halted;
    host_.seed(console);
}

void adl_sarm_model::on_cycle() {
    m_f_->tick();
    m_d_->tick();
    m_e_->tick();
    m_b_->tick();
    m_w_->tick();
    m_mul_->tick();
    if (redirect_pending_) {
        ++epoch_;
        m_reset_->touch();
        fetch_pc_ = redirect_target_;
        redirect_pending_ = false;
        ++stats_.redirects;
    }
}

std::uint64_t adl_sarm_model::run(std::uint64_t max_cycles) {
    std::uint64_t executed = 0;
    while (!halted_ && executed < max_cycles) {
        const std::uint64_t chunk = std::min<std::uint64_t>(max_cycles - executed, 1024);
        executed += kern_.run(chunk);
        if (kern_.stop_requested()) break;
    }
    stats_.cycles = kern_.cycles();
    stats_.kills = m_reset_->kills();
    return executed;
}

stats::report adl_sarm_model::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("adl"));
    r.put("run", "cycles", stats_.cycles);
    r.put("run", "retired", stats_.retired);
    r.put("run", "ipc", stats_.ipc());
    r.put("branches", "executed", stats_.branches);
    r.put("branches", "taken", stats_.taken_branches);
    r.put("branches", "redirects", stats_.redirects);
    r.put("branches", "squashed_ops", stats_.kills);
    r.put("icache", "accesses", icache_.stats().accesses);
    r.put("icache", "hit_ratio", icache_.stats().hit_ratio());
    r.put("dcache", "accesses", dcache_.stats().accesses);
    r.put("dcache", "hit_ratio", dcache_.stats().hit_ratio());
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    r.put("director", "control_steps", dir_.stats().control_steps);
    r.put("director", "transitions", dir_.stats().transitions);
    r.put("director", "conditions_evaluated", dir_.stats().conditions_evaluated);
    r.put("director", "primitives_evaluated", dir_.stats().primitives_evaluated);
    r.put("director", "skipped_visits", dir_.stats().skipped_visits);
    return r;
}

// ---- actions (the code an ADL generator would leave to the user) ----------

void adl_sarm_model::act_fetch(core::osm& m) {
    auto& o = static_cast<op_ctx&>(m);
    o.pc = fetch_pc_;
    o.epoch = epoch_;
    fetch_pc_ += 4;

    unsigned latency = itlb_.translate(o.pc);
    latency += icache_.access(o.pc, false, 4).latency;
    if (latency > 1) m_f_->hold_for(latency);

    const std::uint32_t word = mem_.read32(o.pc);
    o.di = cfg_.decode_cache ? dcode_.lookup(o.pc, word).di : isa::decode(word);
    o.ex = {};
    for (std::int32_t s = 0; s < sarm::sarm_slot_count; ++s) {
        o.set_ident(s, core::k_null_ident);
    }
    const op c = o.di.code;
    if (isa::uses_rs1(c)) {
        o.set_ident(isa::rs1_is_fpr(c) ? sarm::slot_fpr_s1 : sarm::slot_gpr_s1,
                    reg_value_ident(o.di.rs1));
    }
    if (isa::uses_rs2(c)) {
        o.set_ident(isa::rs2_is_fpr(c) ? sarm::slot_fpr_s2 : sarm::slot_gpr_s2,
                    reg_value_ident(o.di.rs2));
    }
    if (c == op::syscall_op) o.set_ident(sarm::slot_gpr_s1, reg_value_ident(4));
    if (isa::writes_rd(c)) {
        o.set_ident(isa::rd_is_fpr(c) ? sarm::slot_fpr_dst : sarm::slot_gpr_dst,
                    reg_update_ident(o.di.rd));
    }
    if (isa::is_mul_div(c)) o.set_ident(sarm::slot_mul, 0);
}

void adl_sarm_model::act_execute(core::osm& m) {
    auto& o = static_cast<op_ctx&>(m);
    const op c = o.di.code;
    unsigned extra = isa::extra_exec_cycles(c);
    if (isa::is_mul_div(c) && extra > 0) extra += cfg_.mul_extra;
    if (extra > 0) {
        m_e_->hold_for(extra + 1);
        if (isa::is_mul_div(c)) m_mul_->hold_for(extra + 1);
    }
    if (c == op::halt || c == op::invalid) {
        redirect_pending_ = true;
        redirect_target_ = o.pc;
        return;
    }
    if (c == op::syscall_op) {
        redirect_pending_ = true;
        redirect_target_ = o.pc + 4;
        return;
    }
    const std::uint32_t a = isa::rs1_is_fpr(c) ? m_fr_->read(o.di.rs1) : m_r_->read(o.di.rs1);
    const std::uint32_t b = isa::rs2_is_fpr(c) ? m_fr_->read(o.di.rs2) : m_r_->read(o.di.rs2);
    o.ex = isa::compute(o.di, o.pc, a, b);
    if (isa::writes_rd(c) && !isa::is_load(c)) {
        (isa::rd_is_fpr(c) ? m_fr_ : m_r_)->publish(o.di.rd, o.ex.value);
    }
    if (isa::is_branch(c)) {
        ++stats_.branches;
        if (o.ex.redirect) ++stats_.taken_branches;
    }
    if (o.ex.redirect) {
        redirect_pending_ = true;
        redirect_target_ = o.ex.next_pc;
    }
}

void adl_sarm_model::act_mem(core::osm& m) {
    auto& o = static_cast<op_ctx&>(m);
    const op c = o.di.code;
    if (!isa::is_mem(c)) return;
    unsigned latency = dtlb_.translate(o.ex.mem_addr);
    latency += dcache_.access(o.ex.mem_addr, isa::is_store(c),
                              c == op::sb ? 1u : (c == op::sh ? 2u : 4u))
                   .latency;
    if (latency > 1) m_b_->hold_for(latency);
    if (isa::is_load(c)) {
        o.ex.value = isa::do_load(c, mem_, o.ex.mem_addr);
    } else {
        isa::do_store(c, mem_, o.ex.mem_addr, o.ex.store_data);
    }
}

void adl_sarm_model::act_buffer_exit(core::osm& m) {
    auto& o = static_cast<op_ctx&>(m);
    if (isa::is_load(o.di.code)) {
        (isa::rd_is_fpr(o.di.code) ? m_fr_ : m_r_)->publish(o.di.rd, o.ex.value);
    }
}

void adl_sarm_model::act_retire(core::osm& m) {
    auto& o = static_cast<op_ctx&>(m);
    ++stats_.retired;
    const op c = o.di.code;
    if (c == op::syscall_op) {
        isa::arch_state st;
        for (unsigned r = 0; r < isa::num_gprs; ++r) st.gpr[r] = m_r_->arch_read(r);
        host_.handle(static_cast<std::uint16_t>(o.di.imm), st);
        if (st.halted) {
            halted_ = true;
            kern_.request_stop();
        }
    } else if (c == op::halt || c == op::invalid) {
        halted_ = true;
        kern_.request_stop();
    }
}

}  // namespace osm::adl
