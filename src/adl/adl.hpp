// OSM-DL: a small declarative architecture description language over the
// OSM model.  The paper names this as the next step ("to devise an
// architecture description language based on the OSM model"); we implement
// a working core of it so whole state machines and their token managers can
// be described as text and elaborated into runnable models.
//
// Grammar (line comments with ';' or '#'):
//
//   machine <name>
//   slots <n>                          ; dynamic identifier slots per OSM
//
//   manager unit    <name>
//   manager pool    <name> capacity <n>
//   manager queue   <name> capacity <n> [alloc_bw <n>] [release_bw <n>]
//   manager regfile <name> regs <n> [zero] [forwarding]
//   manager rename  <name> regs <n> buffers <n> [zero]
//   manager reset   <name>
//
//   state <name> [initial]
//
//   edge <from> -> <to> [priority <n>] {
//     allocate <manager> <ident>|slot <n>
//     inquire  <manager> <ident>|slot <n>
//     release  <manager> <ident>|slot <n>
//     discard  <manager> <ident>|slot <n>
//     discard_all
//     action <name>                    ; resolved via the action registry
//   }
//
// Elaboration produces an owning `machine`: the managers plus a finalized
// core::osm_graph ready for instantiating OSMs and running a director.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "core/osm_graph.hpp"
#include "core/token_manager.hpp"

namespace osm::adl {

/// Raised on syntax/semantic errors; carries the 1-based line number.
class adl_error : public std::runtime_error {
public:
    adl_error(unsigned line, const std::string& message)
        : std::runtime_error("line " + std::to_string(line) + ": " + message),
          line_(line) {}

    unsigned line() const noexcept { return line_; }

private:
    unsigned line_;
};

/// Named edge actions supplied by the embedding model.
using action_registry =
    std::map<std::string, core::edge_action, std::less<>>;

/// An elaborated machine: owning managers + a finalized graph.
struct machine {
    std::string name;
    std::vector<std::unique_ptr<core::token_manager>> managers;
    core::osm_graph graph{"adl"};

    /// Look up a manager by name (nullptr when absent).
    core::token_manager* find_manager(std::string_view mgr_name) const;
};

/// Parse and elaborate an OSM-DL description.  Unknown action names raise
/// adl_error unless `allow_missing_actions` (then they become no-ops).
std::unique_ptr<machine> parse_machine(std::string_view source,
                                       const action_registry& actions = {},
                                       bool allow_missing_actions = false);

}  // namespace osm::adl
