#include "adl/adl.hpp"

#include <cctype>
#include <optional>

#include "uarch/inorder_queue.hpp"
#include "uarch/register_file.hpp"
#include "uarch/rename.hpp"
#include "uarch/reset.hpp"

namespace osm::adl {

namespace {

struct token_stream {
    struct tok {
        std::string text;
        unsigned line;
    };
    std::vector<tok> toks;
    std::size_t pos = 0;

    explicit token_stream(std::string_view src) {
        unsigned line = 1;
        std::size_t i = 0;
        while (i < src.size()) {
            const char c = src[i];
            if (c == '\n') {
                ++line;
                ++i;
            } else if (std::isspace(static_cast<unsigned char>(c))) {
                ++i;
            } else if (c == ';' || c == '#') {
                while (i < src.size() && src[i] != '\n') ++i;
            } else if (c == '{' || c == '}') {
                toks.push_back({std::string(1, c), line});
                ++i;
            } else {
                std::size_t j = i;
                while (j < src.size() && !std::isspace(static_cast<unsigned char>(src[j])) &&
                       src[j] != '{' && src[j] != '}' && src[j] != ';' && src[j] != '#') {
                    ++j;
                }
                toks.push_back({std::string(src.substr(i, j - i)), line});
                i = j;
            }
        }
    }

    bool eof() const { return pos >= toks.size(); }
    unsigned line() const { return eof() ? (toks.empty() ? 1 : toks.back().line) : toks[pos].line; }
    const std::string& peek() const {
        static const std::string empty;
        return eof() ? empty : toks[pos].text;
    }
    std::string next(const char* what) {
        if (eof()) throw adl_error(line(), std::string("expected ") + what + ", got end of input");
        return toks[pos++].text;
    }
    void expect(const std::string& t) {
        const unsigned ln = line();
        const std::string got = next(t.c_str());
        if (got != t) throw adl_error(ln, "expected '" + t + "', got '" + got + "'");
    }
    bool accept(const std::string& t) {
        if (!eof() && toks[pos].text == t) {
            ++pos;
            return true;
        }
        return false;
    }
    std::uint64_t number(const char* what) {
        const unsigned ln = line();
        const std::string t = next(what);
        std::uint64_t v = 0;
        std::size_t i = 0;
        int base = 10;
        if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X')) {
            base = 16;
            i = 2;
        }
        if (i >= t.size()) throw adl_error(ln, std::string("bad number for ") + what);
        for (; i < t.size(); ++i) {
            const char c = t[i];
            int d;
            if (c >= '0' && c <= '9') d = c - '0';
            else if (base == 16 && c >= 'a' && c <= 'f') d = 10 + c - 'a';
            else if (base == 16 && c >= 'A' && c <= 'F') d = 10 + c - 'A';
            else throw adl_error(ln, std::string("bad number for ") + what);
            v = v * static_cast<unsigned>(base) + static_cast<unsigned>(d);
        }
        return v;
    }
};

}  // namespace

core::token_manager* machine::find_manager(std::string_view mgr_name) const {
    for (const auto& m : managers) {
        if (m->name() == mgr_name) return m.get();
    }
    return nullptr;
}

std::unique_ptr<machine> parse_machine(std::string_view source,
                                       const action_registry& actions,
                                       bool allow_missing_actions) {
    token_stream ts(source);
    auto mc = std::make_unique<machine>();
    std::map<std::string, core::state_id, std::less<>> states;
    bool have_initial = false;

    const auto get_manager = [&](unsigned ln, const std::string& name) {
        core::token_manager* m = mc->find_manager(name);
        if (m == nullptr) throw adl_error(ln, "unknown manager '" + name + "'");
        return m;
    };

    while (!ts.eof()) {
        const unsigned ln = ts.line();
        const std::string kw = ts.next("directive");
        if (kw == "machine") {
            mc->name = ts.next("machine name");
        } else if (kw == "slots") {
            mc->graph.set_ident_slots(static_cast<std::int32_t>(ts.number("slot count")));
        } else if (kw == "manager") {
            const std::string kind = ts.next("manager kind");
            const std::string name = ts.next("manager name");
            if (mc->find_manager(name) != nullptr) {
                throw adl_error(ln, "duplicate manager '" + name + "'");
            }
            if (kind == "unit") {
                mc->managers.push_back(std::make_unique<core::unit_token_manager>(name));
            } else if (kind == "pool") {
                ts.expect("capacity");
                const auto cap = static_cast<unsigned>(ts.number("capacity"));
                mc->managers.push_back(
                    std::make_unique<core::pool_token_manager>(name, cap));
            } else if (kind == "queue") {
                ts.expect("capacity");
                const auto cap = static_cast<unsigned>(ts.number("capacity"));
                unsigned abw = 0;
                unsigned rbw = 0;
                if (ts.accept("alloc_bw")) abw = static_cast<unsigned>(ts.number("alloc_bw"));
                if (ts.accept("release_bw")) rbw = static_cast<unsigned>(ts.number("release_bw"));
                mc->managers.push_back(
                    std::make_unique<uarch::inorder_queue_manager>(name, cap, abw, rbw));
            } else if (kind == "regfile") {
                ts.expect("regs");
                const auto regs = static_cast<unsigned>(ts.number("regs"));
                const bool zero = ts.accept("zero");
                const bool fwd = ts.accept("forwarding");
                mc->managers.push_back(std::make_unique<uarch::register_file_manager>(
                    name, regs, zero, fwd));
            } else if (kind == "rename") {
                ts.expect("regs");
                const auto regs = static_cast<unsigned>(ts.number("regs"));
                ts.expect("buffers");
                const auto bufs = static_cast<unsigned>(ts.number("buffers"));
                const bool zero = ts.accept("zero");
                mc->managers.push_back(
                    std::make_unique<uarch::rename_manager>(name, regs, bufs, zero));
            } else if (kind == "reset") {
                mc->managers.push_back(std::make_unique<uarch::reset_manager>(name));
            } else {
                throw adl_error(ln, "unknown manager kind '" + kind + "'");
            }
        } else if (kw == "state") {
            const std::string name = ts.next("state name");
            if (states.count(name)) throw adl_error(ln, "duplicate state '" + name + "'");
            const core::state_id s = mc->graph.add_state(name);
            states[name] = s;
            if (ts.accept("initial")) {
                if (have_initial) throw adl_error(ln, "multiple initial states");
                mc->graph.set_initial(s);
                have_initial = true;
            }
        } else if (kw == "edge") {
            const std::string from = ts.next("source state");
            ts.expect("->");
            const std::string to = ts.next("target state");
            if (!states.count(from)) throw adl_error(ln, "unknown state '" + from + "'");
            if (!states.count(to)) throw adl_error(ln, "unknown state '" + to + "'");
            int prio = 0;
            if (ts.accept("priority")) prio = static_cast<int>(ts.number("priority"));
            const std::int32_t e =
                mc->graph.add_edge(states[from], states[to], prio);
            ts.expect("{");
            while (!ts.accept("}")) {
                const unsigned pln = ts.line();
                const std::string pk = ts.next("primitive");
                if (pk == "discard_all") {
                    mc->graph.edge_discard_all(e);
                    continue;
                }
                if (pk == "action") {
                    const std::string an = ts.next("action name");
                    const auto it = actions.find(an);
                    if (it == actions.end()) {
                        if (!allow_missing_actions) {
                            throw adl_error(pln, "unknown action '" + an + "'");
                        }
                        continue;
                    }
                    mc->graph.edge_set_action(e, it->second);
                    continue;
                }
                if (pk != "allocate" && pk != "inquire" && pk != "release" &&
                    pk != "discard") {
                    throw adl_error(pln, "unknown primitive '" + pk + "'");
                }
                core::token_manager* mgr = get_manager(pln, ts.next("manager name"));
                core::ident_expr ie;
                if (ts.accept("slot")) {
                    ie = core::ident_expr::from_slot(
                        static_cast<std::int32_t>(ts.number("slot index")));
                } else {
                    ie = core::ident_expr::value(ts.number("identifier"));
                }
                if (pk == "allocate") mc->graph.edge_allocate(e, *mgr, ie);
                else if (pk == "inquire") mc->graph.edge_inquire(e, *mgr, ie);
                else if (pk == "release") mc->graph.edge_release(e, *mgr, ie);
                else mc->graph.edge_discard(e, *mgr, ie);
            }
        } else {
            throw adl_error(ln, "unknown directive '" + kw + "'");
        }
    }

    if (mc->graph.num_states() == 0) {
        throw adl_error(ts.line(), "machine has no states");
    }
    mc->graph.finalize();
    return mc;
}

}  // namespace osm::adl
