// An operation state machine instance (paper §3.1).
//
// Each in-flight machine operation is one osm object: a current state, a
// token buffer of granted resources, a table of dynamic transaction
// identifiers (initialized at decode), and a per-instance edge-enable mask
// that lets one shared graph describe several operation classes (integer
// ops disable the FPU dispatch edge, and so on).  OSMs never communicate
// with each other; their only interaction with the environment is the
// token transactions the director performs on their behalf.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/osm_graph.hpp"

namespace osm::core {

class osm {
public:
    /// Create an instance of `graph` (which must be finalized) resting in
    /// the initial state with an empty token buffer.
    osm(const osm_graph& graph, std::string name);
    virtual ~osm() = default;
    osm(const osm&) = delete;
    osm& operator=(const osm&) = delete;

    const osm_graph& graph() const noexcept { return *graph_; }
    const std::string& name() const noexcept { return name_; }
    /// Unique, stable instance id (creation order).
    std::uint64_t uid() const noexcept { return uid_; }

    // ---- state ----
    state_id state() const noexcept { return state_; }
    const std::string& state_name() const { return graph_->state_name(state_); }
    bool at_initial() const noexcept { return state_ == graph_->initial(); }

    // ---- identifier slots (set during decode, read by primitives) ----
    ident_t ident(std::int32_t slot) const { return idents_[static_cast<std::size_t>(slot)]; }
    void set_ident(std::int32_t slot, ident_t v) {
        idents_.at(static_cast<std::size_t>(slot)) = v;
        ++stamp_;
    }

    // ---- per-instance edge enables ----
    bool edge_enabled(std::int32_t e) const { return enables_[static_cast<std::size_t>(e)] != 0; }
    void set_edge_enabled(std::int32_t e, bool on) {
        enables_.at(static_cast<std::size_t>(e)) = on ? 1 : 0;
        ++stamp_;
    }
    void enable_all_edges();

    /// Monotonic stamp covering everything an edge condition reads from the
    /// OSM itself: state, identifier slots, edge enables, token buffer.
    /// Used by the director's blocked-OSM memoization.
    std::uint64_t stamp() const noexcept { return stamp_; }

    // ---- token buffer ----
    const std::vector<token_ref>& token_buffer() const noexcept { return buffer_; }
    bool holds(const token_manager* mgr, ident_t ident) const;
    bool holds_any(const token_manager* mgr) const;

    /// Discard every held token (notifying managers) and return to the
    /// initial state.  Used for whole-model reset; normal speculative
    /// squashing goes through reset edges instead.
    void hard_reset();

    // ---- scheduling metadata ----
    /// Rank stamp: the order in which this OSM last left the initial state
    /// (paper §5 ranks by age).  Idle OSMs carry a large stamp so that
    /// in-flight operations always outrank them.
    std::uint64_t age() const noexcept { return age_; }

    // ---- statistics ----
    std::uint64_t transitions() const noexcept { return transitions_; }
    std::uint64_t blocked_steps() const noexcept { return blocked_steps_; }

private:
    friend class director;

    /// Director scratch: snapshot taken when a visit found every enabled
    /// out-edge blocked.  While the OSM's stamp and every gating manager's
    /// generation are unchanged, the evaluation would fail again and the
    /// director skips the visit (tentpole batching, ROADMAP item 1).
    /// `gens[0..n)` parallels graph().gating(state()).mgrs — the manager
    /// list is precomputed per state at finalize(), so the memo itself is
    /// just the generation snapshot.  Storage is inline (no heap) so the
    /// validity check stays within the osm's own cache lines; states gating
    /// on more than k_max_mgrs managers simply never memoize.
    struct blocked_memo {
        static constexpr std::size_t k_max_mgrs = 8;
        bool valid = false;
        std::uint8_t n = 0;
        std::uint64_t stamp = 0;
        std::uint64_t gens[k_max_mgrs] = {};
    };

    const osm_graph* graph_;
    std::string name_;
    std::uint64_t uid_;
    state_id state_;
    std::vector<ident_t> idents_;
    std::vector<std::uint8_t> enables_;
    std::vector<token_ref> buffer_;
    std::uint64_t age_;
    std::uint64_t stamp_ = 0;
    std::uint64_t transitions_ = 0;
    std::uint64_t blocked_steps_ = 0;
    blocked_memo memo_;
};

}  // namespace osm::core
