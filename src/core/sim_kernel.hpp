// The OSM simulation kernel (paper Fig. 4): embeds the OSM model of
// computation inside the discrete-event scheduler.  Between two control
// steps the hardware layer runs (cycle hooks and any DE events); at every
// clock edge the director's control step executes and — since OSMs never
// create DE events — completes in zero simulated time.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/director.hpp"
#include "de/kernel.hpp"

namespace osm::core {

class sim_kernel {
public:
    /// `d` must outlive the kernel.  `period` is the tick interval between
    /// control steps (a clock cycle, or a phase when phase-accurate
    /// stepping is desired — the paper allows both).
    explicit sim_kernel(director& d, de::tick_t period = 1);

    de::kernel& dek() noexcept { return dek_; }
    director& dir() noexcept { return dir_; }

    /// Register a hardware-layer update run each cycle *before* the control
    /// step (cycle-driven hardware, paper §5).
    void on_cycle(std::function<void()> fn) { cycle_hooks_.push_back(std::move(fn)); }

    /// Register a hook run each cycle *after* the control step (sampling,
    /// tracing — sees the machine state the cycle ended with).
    void on_cycle_end(std::function<void()> fn) {
        cycle_end_hooks_.push_back(std::move(fn));
    }

    /// Ask the kernel to stop after the current cycle completes.
    void request_stop() noexcept { stop_ = true; }
    bool stop_requested() const noexcept { return stop_; }
    /// Re-arm after a stop (e.g. when loading a new program).
    void clear_stop() noexcept { stop_ = false; }

    std::uint64_t cycles() const noexcept { return cycles_; }

    /// Run up to `max_cycles` cycles (hardware layer, then control step,
    /// per Fig. 4).  Returns the number of cycles executed; stops early
    /// when request_stop() was called.
    std::uint64_t run(std::uint64_t max_cycles);

private:
    de::kernel dek_;
    director& dir_;
    de::tick_t period_;
    std::vector<std::function<void()>> cycle_hooks_;
    std::vector<std::function<void()>> cycle_end_hooks_;
    bool stop_ = false;
    std::uint64_t cycles_ = 0;
};

}  // namespace osm::core
