// Token manager interface (TMI) — the hardware layer's face toward the
// operation layer (paper §3.2, §4).
//
// The protocol is two-phase so that an edge condition (a conjunction of
// primitives) commits all-or-nothing: the director first *queries* every
// primitive (`can_allocate` / `can_release` / `inquire`), and only if all
// succeed does it *commit* them (`do_allocate` / `do_release`).  A manager
// may inspect the requesting OSM's identity when deciding (e.g. the reset
// manager accepts inquiries only from speculative operations).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/token.hpp"

namespace osm::core {

class osm;

/// Abstract token manager.  One manager controls one or more closely
/// related tokens; managers never talk to each other directly.
class token_manager {
public:
    explicit token_manager(std::string name) : name_(std::move(name)) {}
    virtual ~token_manager() = default;
    token_manager(const token_manager&) = delete;
    token_manager& operator=(const token_manager&) = delete;

    const std::string& name() const noexcept { return name_; }

    // ---- mutation stamp (director blocked-OSM memoization) ----
    /// Monotonic counter bumped whenever manager state that can change a
    /// query-phase answer mutates.  The director snapshots the generations
    /// of every manager a blocked OSM's enabled edges reference; while all
    /// of them are unchanged (and the OSM itself is unchanged) the failed
    /// evaluation need not be repeated.
    std::uint64_t generation() const noexcept { return gen_; }
    /// Record a satisfiability-relevant mutation.  Managers call this from
    /// their commit methods; models call it when *external* state feeding a
    /// manager's answers changes (e.g. the epoch read by a reset predicate).
    void touch() noexcept { ++gen_; }
    /// True when every satisfiability-relevant mutation is covered by
    /// touch().  The conservative default (false) excludes the manager from
    /// memoization, so OSMs blocked on it are always re-evaluated.
    virtual bool tracks_generation() const noexcept { return false; }

    // ---- query phase ----
    /// Would an allocate of `ident` by `requester` succeed right now?
    virtual bool can_allocate(ident_t ident, const osm& requester) = 0;
    /// Would a release of `ident` by `requester` be accepted right now?
    /// (Refusal models variable latency, paper §4 "Variable latency".)
    virtual bool can_release(ident_t ident, const osm& requester) = 0;
    /// Non-exclusive availability test (paper's Inquire).
    virtual bool inquire(ident_t ident, const osm& requester) = 0;

    // ---- commit phase ----
    /// Transfer ownership of `ident` to `requester`.
    /// Precondition: can_allocate returned true this control step.
    virtual void do_allocate(ident_t ident, osm& requester) = 0;
    /// Accept the return of `ident` from `requester`.
    /// Precondition: can_release returned true this control step.
    virtual void do_release(ident_t ident, osm& requester) = 0;
    /// Unconditional drop of `ident` by `requester` (always succeeds).
    virtual void discard(ident_t ident, osm& requester) = 0;

    // ---- introspection (used by deadlock analysis and tests) ----
    /// Current owner of the token named by `ident`, or nullptr when free /
    /// unknown.  Managers without per-token owners may return nullptr.
    virtual const osm* owner_of(ident_t /*ident*/) const { return nullptr; }

private:
    std::string name_;
    std::uint64_t gen_ = 0;
};

/// A single exclusive token — the paper's pipeline-stage occupancy manager.
/// All identifiers map to the same token.  An optional release gate models
/// variable latency by refusing the release while the unit is busy.
class unit_token_manager : public token_manager {
public:
    explicit unit_token_manager(std::string name);

    bool can_allocate(ident_t ident, const osm& requester) override;
    bool can_release(ident_t ident, const osm& requester) override;
    bool inquire(ident_t ident, const osm& requester) override;
    void do_allocate(ident_t ident, osm& requester) override;
    void do_release(ident_t ident, osm& requester) override;
    void discard(ident_t ident, osm& requester) override;
    const osm* owner_of(ident_t /*ident*/) const override { return owner_; }
    bool tracks_generation() const noexcept override { return true; }

    bool busy() const noexcept { return owner_ != nullptr; }
    const osm* owner() const noexcept { return owner_; }

    /// While `cycles` > 0, releases are refused (the holder stalls); the
    /// hardware layer decrements this each cycle (e.g. a cache miss).
    void hold_for(unsigned cycles) noexcept {
        if (cycles != hold_) touch();
        hold_ = cycles;
    }
    unsigned hold_remaining() const noexcept { return hold_; }
    /// Hardware-layer per-cycle update: counts down the hold.  Only the
    /// final 1 -> 0 step changes any query answer (can_release opens), so
    /// only that step bumps the generation.
    void tick() noexcept {
        if (hold_ > 0 && --hold_ == 0) touch();
    }

private:
    const osm* owner_ = nullptr;
    unsigned hold_ = 0;
};

/// N interchangeable tokens (queue slots, rename buffers).  The identifier
/// is ignored for allocation; any free slot is granted.  Releases return
/// one slot held by the requester.
class pool_token_manager : public token_manager {
public:
    pool_token_manager(std::string name, unsigned capacity);

    bool can_allocate(ident_t ident, const osm& requester) override;
    bool can_release(ident_t ident, const osm& requester) override;
    bool inquire(ident_t ident, const osm& requester) override;
    void do_allocate(ident_t ident, osm& requester) override;
    void do_release(ident_t ident, osm& requester) override;
    void discard(ident_t ident, osm& requester) override;
    bool tracks_generation() const noexcept override { return true; }

    unsigned capacity() const noexcept { return capacity_; }
    unsigned in_use() const noexcept { return in_use_; }
    unsigned free_slots() const noexcept { return capacity_ - in_use_; }

private:
    unsigned capacity_;
    unsigned in_use_ = 0;
};

}  // namespace osm::core
