// The static structure of an operation state machine (paper §3.1).
//
// A graph is shared by every OSM instance of the same operation class:
// states, prioritized edges, and per-edge conditions (conjunctions of token
// transaction primitives) plus an optional commit action carrying the
// operation semantics.  The graph is immutable after finalize(); dynamic
// per-instance data (current state, identifier slots, edge enables, token
// buffer) lives in class osm.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/token.hpp"
#include "core/token_manager.hpp"

namespace osm::core {

class osm;

using state_id = std::int32_t;
inline constexpr state_id no_state = -1;

/// Action invoked when an edge's transactions commit; receives the
/// transitioning OSM (models downcast to their operation subclass).
using edge_action = std::function<void(osm&)>;

/// A guarded, prioritized transition.
struct graph_edge {
    state_id from = no_state;
    state_id to = no_state;
    int priority = 0;  ///< larger value = tried earlier
    std::int32_t index = -1;
    std::vector<primitive> prims;
    edge_action action;
};

/// Per-state gating-manager summary, precomputed at finalize() for the
/// director's blocked-OSM memo: the deduplicated managers referenced by
/// allocate/inquire/release primitives on any out-edge of the state.
/// `memoable` is false when any such manager does not track its
/// generation (a memo over it would be unsound).  The set ignores runtime
/// edge enables — a superset only ever invalidates the memo more often,
/// never less, so it is conservative-safe.
struct state_gating {
    std::vector<const token_manager*> mgrs;
    bool memoable = true;
};

/// Immutable-after-finalize state machine structure.
class osm_graph {
public:
    explicit osm_graph(std::string name = "osm");

    const std::string& name() const noexcept { return name_; }

    // ---- construction ----
    state_id add_state(std::string name);
    /// Designate the initial (empty-token-buffer) state I.  Defaults to the
    /// first state added.
    void set_initial(state_id s);
    /// Add an edge; returns its index.  Among edges of one state, larger
    /// `priority` is tried first; ties break by insertion order.
    std::int32_t add_edge(state_id from, state_id to, int priority = 0);

    void edge_allocate(std::int32_t e, token_manager& m, ident_expr id);
    void edge_inquire(std::int32_t e, token_manager& m, ident_expr id);
    void edge_release(std::int32_t e, token_manager& m, ident_expr id);
    void edge_discard(std::int32_t e, token_manager& m, ident_expr id);
    void edge_discard_all(std::int32_t e);
    void edge_set_action(std::int32_t e, edge_action a);

    /// Number of dynamic identifier slots each instance carries.
    void set_ident_slots(std::int32_t n) { ident_slots_ = n; }
    std::int32_t ident_slots() const noexcept { return ident_slots_; }

    /// Freeze the structure: sorts per-state edge lists by priority.
    /// Must be called before instantiating OSMs.
    void finalize();
    bool finalized() const noexcept { return finalized_; }

    // ---- introspection ----
    state_id initial() const noexcept { return initial_; }
    std::int32_t num_states() const noexcept { return static_cast<std::int32_t>(states_.size()); }
    std::int32_t num_edges() const noexcept { return static_cast<std::int32_t>(edges_.size()); }
    const std::string& state_name(state_id s) const { return states_.at(static_cast<std::size_t>(s)); }
    const graph_edge& edge(std::int32_t e) const { return edges_.at(static_cast<std::size_t>(e)); }
    /// Outgoing edge indices of `s`, highest priority first.
    const std::vector<std::int32_t>& out_edges(state_id s) const {
        return out_.at(static_cast<std::size_t>(s));
    }
    /// Gating-manager summary of `s` (finalize() precomputes it).
    const state_gating& gating(state_id s) const {
        return gating_.at(static_cast<std::size_t>(s));
    }

private:
    graph_edge& mutable_edge(std::int32_t e);

    std::string name_;
    std::vector<std::string> states_;
    std::vector<graph_edge> edges_;
    std::vector<std::vector<std::int32_t>> out_;
    std::vector<state_gating> gating_;
    state_id initial_ = no_state;
    std::int32_t ident_slots_ = 0;
    bool finalized_ = false;
};

}  // namespace osm::core
