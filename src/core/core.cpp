// Implementation of the OSM core: graph construction, instance state,
// token managers, and the director's scheduling algorithm.
#include <algorithm>
#include <atomic>
#include <cassert>
#include <map>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/token_manager.hpp"

namespace osm::core {

namespace {
// Relaxed atomic: serve workers construct engines (and therefore OSMs)
// concurrently; uids only need to be unique, not globally ordered.
std::atomic<std::uint64_t> g_next_uid{1};
/// Idle OSMs rank after any in-flight one; see osm::age().
constexpr std::uint64_t k_idle_age_base = 1ull << 40;
}  // namespace

// ---- osm_graph -------------------------------------------------------------

osm_graph::osm_graph(std::string name) : name_(std::move(name)) {}

state_id osm_graph::add_state(std::string name) {
    assert(!finalized_);
    states_.push_back(std::move(name));
    out_.emplace_back();
    const auto s = static_cast<state_id>(states_.size() - 1);
    if (initial_ == no_state) initial_ = s;
    return s;
}

void osm_graph::set_initial(state_id s) {
    assert(!finalized_);
    assert(s >= 0 && s < num_states());
    initial_ = s;
}

std::int32_t osm_graph::add_edge(state_id from, state_id to, int priority) {
    assert(!finalized_);
    assert(from >= 0 && from < num_states() && to >= 0 && to < num_states());
    graph_edge e;
    e.from = from;
    e.to = to;
    e.priority = priority;
    e.index = static_cast<std::int32_t>(edges_.size());
    edges_.push_back(std::move(e));
    out_[static_cast<std::size_t>(from)].push_back(edges_.back().index);
    return edges_.back().index;
}

graph_edge& osm_graph::mutable_edge(std::int32_t e) {
    assert(!finalized_);
    return edges_.at(static_cast<std::size_t>(e));
}

void osm_graph::edge_allocate(std::int32_t e, token_manager& m, ident_expr id) {
    mutable_edge(e).prims.push_back({prim_kind::allocate, &m, id});
}
void osm_graph::edge_inquire(std::int32_t e, token_manager& m, ident_expr id) {
    mutable_edge(e).prims.push_back({prim_kind::inquire, &m, id});
}
void osm_graph::edge_release(std::int32_t e, token_manager& m, ident_expr id) {
    mutable_edge(e).prims.push_back({prim_kind::release, &m, id});
}
void osm_graph::edge_discard(std::int32_t e, token_manager& m, ident_expr id) {
    mutable_edge(e).prims.push_back({prim_kind::discard, &m, id});
}
void osm_graph::edge_discard_all(std::int32_t e) {
    mutable_edge(e).prims.push_back({prim_kind::discard_all, nullptr, ident_expr{}});
}
void osm_graph::edge_set_action(std::int32_t e, edge_action a) {
    mutable_edge(e).action = std::move(a);
}

void osm_graph::finalize() {
    assert(!finalized_);
    assert(initial_ != no_state && "graph needs at least one state");
    for (auto& list : out_) {
        std::stable_sort(list.begin(), list.end(),
                         [this](std::int32_t a, std::int32_t b) {
                             return edges_[static_cast<std::size_t>(a)].priority >
                                    edges_[static_cast<std::size_t>(b)].priority;
                         });
    }

    // Precompute each state's gating-manager set so the director's blocked
    // memo is a flat generation snapshot/compare instead of an edge walk.
    // Only the gating primitives matter: discard/discard_all always
    // succeed, so their managers cannot change a verdict.
    gating_.clear();
    gating_.resize(states_.size());
    for (std::size_t s = 0; s < states_.size(); ++s) {
        state_gating& g = gating_[s];
        for (const std::int32_t ei : out_[s]) {
            for (const primitive& p : edges_[static_cast<std::size_t>(ei)].prims) {
                if (p.kind != prim_kind::allocate && p.kind != prim_kind::inquire &&
                    p.kind != prim_kind::release) {
                    continue;
                }
                if (p.mgr == nullptr) continue;
                if (!p.mgr->tracks_generation()) {
                    g.memoable = false;
                    break;
                }
                if (std::find(g.mgrs.begin(), g.mgrs.end(), p.mgr) == g.mgrs.end()) {
                    g.mgrs.push_back(p.mgr);
                }
            }
            if (!g.memoable) break;
        }
        if (!g.memoable) g.mgrs.clear();
    }
    finalized_ = true;
}

// ---- osm -------------------------------------------------------------------

osm::osm(const osm_graph& graph, std::string name)
    : graph_(&graph),
      name_(std::move(name)),
      uid_(g_next_uid.fetch_add(1, std::memory_order_relaxed)),
      state_(graph.initial()),
      idents_(static_cast<std::size_t>(graph.ident_slots()), 0),
      enables_(static_cast<std::size_t>(graph.num_edges()), 1),
      age_(k_idle_age_base + uid_) {
    assert(graph.finalized() && "finalize the graph before instantiating");
}

void osm::enable_all_edges() {
    std::fill(enables_.begin(), enables_.end(), std::uint8_t{1});
    ++stamp_;
}

bool osm::holds(const token_manager* mgr, ident_t ident) const {
    for (const token_ref& t : buffer_) {
        if (t.mgr == mgr && t.ident == ident) return true;
    }
    return false;
}

bool osm::holds_any(const token_manager* mgr) const {
    for (const token_ref& t : buffer_) {
        if (t.mgr == mgr) return true;
    }
    return false;
}

void osm::hard_reset() {
    for (token_ref& t : buffer_) t.mgr->discard(t.ident, *this);
    buffer_.clear();
    state_ = graph_->initial();
    age_ = k_idle_age_base + uid_;
    enable_all_edges();
    ++stamp_;
    memo_.valid = false;
}

// ---- token managers ---------------------------------------------------------

unit_token_manager::unit_token_manager(std::string name)
    : token_manager(std::move(name)) {}

bool unit_token_manager::can_allocate(ident_t, const osm&) {
    return owner_ == nullptr;
}

bool unit_token_manager::can_release(ident_t, const osm& requester) {
    return owner_ == &requester && hold_ == 0;
}

bool unit_token_manager::inquire(ident_t, const osm& requester) {
    return owner_ == nullptr || owner_ == &requester;
}

void unit_token_manager::do_allocate(ident_t, osm& requester) {
    assert(owner_ == nullptr);
    owner_ = &requester;
    touch();
}

void unit_token_manager::do_release(ident_t, osm& requester) {
    assert(owner_ == &requester);
    (void)requester;
    owner_ = nullptr;
    touch();
}

void unit_token_manager::discard(ident_t, osm& requester) {
    if (owner_ == &requester) {
        owner_ = nullptr;
        hold_ = 0;
        touch();
    }
}

pool_token_manager::pool_token_manager(std::string name, unsigned capacity)
    : token_manager(std::move(name)), capacity_(capacity) {}

bool pool_token_manager::can_allocate(ident_t, const osm&) {
    return in_use_ < capacity_;
}

bool pool_token_manager::can_release(ident_t ident, const osm& requester) {
    return requester.holds(this, ident);
}

bool pool_token_manager::inquire(ident_t, const osm&) {
    return in_use_ < capacity_;
}

void pool_token_manager::do_allocate(ident_t, osm&) {
    assert(in_use_ < capacity_);
    ++in_use_;
    touch();
}

void pool_token_manager::do_release(ident_t, osm&) {
    assert(in_use_ > 0);
    --in_use_;
    touch();
}

void pool_token_manager::discard(ident_t, osm&) {
    // Called once per buffered token; each buffered token accounts for one
    // slot.
    if (in_use_ > 0) {
        --in_use_;
        touch();
    }
}

// ---- director ----------------------------------------------------------------

director::director() {
    rank_ = [](const osm& m) { return static_cast<std::int64_t>(m.age()); };
}

void director::add(osm& m) { osms_.push_back(&m); }

void director::remove(osm& m) {
    osms_.erase(std::remove(osms_.begin(), osms_.end(), &m), osms_.end());
}

bool director::condition_satisfied(osm& m, const graph_edge& e) {
    ++stats_.conditions_evaluated;
    for (const primitive& p : e.prims) {
        ++stats_.primitives_evaluated;
        const ident_t ident = p.mgr ? resolve(m, p.ident) : 0;
        if (ident == k_null_ident) continue;  // disabled transaction
        switch (p.kind) {
            case prim_kind::allocate:
                if (!p.mgr->can_allocate(ident, m)) return false;
                break;
            case prim_kind::inquire:
                if (!p.mgr->inquire(ident, m)) return false;
                break;
            case prim_kind::release:
                if (!m.holds(p.mgr, ident)) return false;
                if (!p.mgr->can_release(ident, m)) return false;
                break;
            case prim_kind::discard:
            case prim_kind::discard_all:
                break;  // always succeed
        }
    }
    return true;
}

void director::commit(osm& m, const graph_edge& e) {
    for (const primitive& p : e.prims) {
        const ident_t ident = p.mgr ? resolve(m, p.ident) : 0;
        if (ident == k_null_ident) continue;  // disabled transaction
        switch (p.kind) {
            case prim_kind::allocate:
                p.mgr->do_allocate(ident, m);
                m.buffer_.push_back({p.mgr, ident});
                break;
            case prim_kind::release: {
                p.mgr->do_release(ident, m);
                auto& buf = m.buffer_;
                for (auto it = buf.begin(); it != buf.end(); ++it) {
                    if (it->mgr == p.mgr && it->ident == ident) {
                        buf.erase(it);
                        break;
                    }
                }
                break;
            }
            case prim_kind::discard: {
                auto& buf = m.buffer_;
                for (auto it = buf.begin(); it != buf.end(); ++it) {
                    if (it->mgr == p.mgr && it->ident == ident) {
                        p.mgr->discard(ident, m);
                        buf.erase(it);
                        break;
                    }
                }
                break;
            }
            case prim_kind::discard_all:
                for (token_ref& t : m.buffer_) t.mgr->discard(t.ident, m);
                m.buffer_.clear();
                break;
            case prim_kind::inquire:
                break;
        }
    }

    const bool leaving_initial =
        (e.from == m.graph_->initial()) && (e.to != m.graph_->initial());
    m.state_ = e.to;
    if (leaving_initial) m.age_ = ++age_counter_;
    if (e.to == m.graph_->initial()) {
        // Back to I: the token buffer must be empty by the paper's
        // definition of the initial state.
        assert(m.buffer_.empty() && "token buffer not empty on return to I");
        m.age_ = (1ull << 40) + m.uid();
    }
    ++m.transitions_;
    ++m.stamp_;
    m.memo_.valid = false;
    ++stats_.transitions;
    if (e.action) e.action(m);
    if (observer_) observer_(m, e);
}

bool director::memo_still_blocked(const osm& m) const {
    const osm::blocked_memo& memo = m.memo_;
    if (!memo.valid || memo.stamp != m.stamp_) return false;
    const state_gating& g = m.graph_->gating(m.state_);
    for (std::size_t i = 0; i < memo.n; ++i) {
        if (g.mgrs[i]->generation() != memo.gens[i]) return false;
    }
    return true;
}

void director::build_memo(osm& m) {
    osm::blocked_memo& memo = m.memo_;
    const state_gating& g = m.graph_->gating(m.state_);
    if (!g.memoable) {
        memo.valid = false;
        return;
    }
    const std::size_t n = g.mgrs.size();
    if (n > osm::blocked_memo::k_max_mgrs) {
        memo.valid = false;
        return;
    }
    // Flat generation snapshot over the state's precomputed gating set —
    // a superset of the enabled edges' managers, which is conservative:
    // an extra manager can only invalidate the memo early, never hold it.
    for (std::size_t i = 0; i < n; ++i) {
        memo.gens[i] = g.mgrs[i]->generation();
    }
    memo.n = static_cast<std::uint8_t>(n);
    memo.stamp = m.stamp_;
    memo.valid = true;
}

bool director::try_transition(osm& m) {
    const auto& out = m.graph_->out_edges(m.state_);
    for (const std::int32_t ei : out) {
        if (!m.edge_enabled(ei)) continue;
        const graph_edge& e = m.graph_->edge(ei);
        if (condition_satisfied(m, e)) {
            commit(m, e);
            return true;
        }
    }
    if (!out.empty()) ++m.blocked_steps_;
    // The memo is a flat generation snapshot over the state's precomputed
    // gating set, so it is cheap enough to build on the first failure.
    if (cfg_.skip_blocked) build_memo(m);
    return false;
}

unsigned director::control_step() {
    ++stats_.control_steps;
    // updateOSMList (paper Fig. 3): rank every OSM once, then insertion-sort
    // — the list is small and nearly sorted between steps, and evaluating
    // the rank function N times (not N log N) keeps this off the profile.
    const std::size_t n = osms_.size();
    keys_.resize(n);
    work_.resize(n);
    if (custom_rank_) {
        for (std::size_t i = 0; i < n; ++i) {
            work_[i] = osms_[i];
            keys_[i] = rank_(*osms_[i]);
        }
    } else {
        for (std::size_t i = 0; i < n; ++i) {
            work_[i] = osms_[i];
            keys_[i] = static_cast<std::int64_t>(osms_[i]->age());
        }
    }
    for (std::size_t i = 1; i < n; ++i) {
        osm* m = work_[i];
        const std::int64_t k = keys_[i];
        std::size_t j = i;
        while (j > 0 && keys_[j - 1] > k) {
            keys_[j] = keys_[j - 1];
            work_[j] = work_[j - 1];
            --j;
        }
        keys_[j] = k;
        work_[j] = m;
    }

    unsigned transitions = 0;
    std::size_t i = 0;
    while (i < work_.size()) {
        osm* m = work_[i];
        if (cfg_.skip_blocked && memo_still_blocked(*m)) {
            // Nothing the OSM's enabled edges gate on has changed since the
            // last failed visit: the walk would fail again.  Keep the
            // blocked_steps accounting identical to the unskipped path.
            ++stats_.skipped_visits;
            if (!m->graph_->out_edges(m->state_).empty()) ++m->blocked_steps_;
            ++i;
            continue;
        }
        if (try_transition(*m)) {
            ++transitions;
            work_.erase(work_.begin() + static_cast<std::ptrdiff_t>(i));
            if (cfg_.restart_on_transition && i != 0) {
                // Restart from the highest-ranked remaining OSM: the
                // transition may have freed a resource a senior blocked on.
                i = 0;
                ++stats_.outer_restarts;
            }
            // Without restart, `i` now indexes the next OSM.
        } else {
            ++i;
        }
    }

    if (transitions == 0 && cfg_.deadlock_check) check_deadlock();
    return transitions;
}

void director::check_deadlock() {
    // Build the wait-for graph: an OSM waits on the owner of any token whose
    // allocate/inquire currently fails on an enabled out-edge.
    std::map<const osm*, std::vector<const osm*>> waits;
    for (osm* m : osms_) {
        for (const std::int32_t ei : m->graph().out_edges(m->state())) {
            if (!m->edge_enabled(ei)) continue;
            const graph_edge& e = m->graph().edge(ei);
            for (const primitive& p : e.prims) {
                if (p.kind != prim_kind::allocate && p.kind != prim_kind::inquire) continue;
                const ident_t ident = resolve(*m, p.ident);
                if (ident == k_null_ident) continue;
                const bool ok = (p.kind == prim_kind::allocate)
                                    ? p.mgr->can_allocate(ident, *m)
                                    : p.mgr->inquire(ident, *m);
                if (ok) continue;
                const osm* owner = p.mgr->owner_of(ident);
                if (owner != nullptr && owner != m) waits[m].push_back(owner);
            }
        }
    }

    // DFS cycle detection.
    std::map<const osm*, int> color;  // 0 white, 1 grey, 2 black
    std::vector<const osm*> stack;
    std::function<bool(const osm*)> dfs = [&](const osm* v) -> bool {
        color[v] = 1;
        stack.push_back(v);
        const auto it = waits.find(v);
        if (it != waits.end()) {
            for (const osm* w : it->second) {
                if (color[w] == 1) {
                    stack.push_back(w);
                    return true;
                }
                if (color[w] == 0 && dfs(w)) return true;
            }
        }
        color[v] = 2;
        stack.pop_back();
        return false;
    };
    for (const auto& [v, _] : waits) {
        if (color[v] == 0 && dfs(v)) {
            std::string msg = "cyclic token dependency:";
            for (const osm* s : stack) {
                msg += ' ';
                msg += s->name();
                msg += "(" + s->graph().state_name(s->state()) + ")";
            }
            throw deadlock_error(msg);
        }
    }
}

}  // namespace osm::core
