// Tokens and token-transaction primitives — the vocabulary of the OSM
// model's operation/hardware interface (paper §3.2, §3.3).
#pragma once

#include <cstdint>

namespace osm::core {

class token_manager;
class osm;

/// Opaque token identifier interpreted by the owning manager (a register
/// number, a stage occupancy id, a thread-tagged resource id, ...).
using ident_t = std::uint64_t;

/// The null identifier: a primitive whose identifier resolves to this value
/// is a no-op that always succeeds.  Operations use it to disable
/// transactions that do not apply to them (e.g. a non-multiply op leaves
/// its multiplier-token slot null), which lets one graph serve every
/// operation class — the paper's "initialize all identifiers" scheme.
inline constexpr ident_t k_null_ident = ~static_cast<ident_t>(0);

/// A token held in an OSM's token buffer: the manager that granted it and
/// the identifier it was granted under.
struct token_ref {
    token_manager* mgr = nullptr;
    ident_t ident = 0;

    bool operator==(const token_ref&) const = default;
};

/// The four primitives of the transaction language L (paper §3.3), plus a
/// convenience `discard_all` that empties the token buffer on reset edges
/// (shorthand for "one or more discard primitives").
enum class prim_kind : std::uint8_t {
    allocate,     ///< obtain exclusive ownership of a token
    inquire,      ///< test availability without obtaining ownership
    release,      ///< return a held token (manager may refuse)
    discard,      ///< drop a held token unconditionally
    discard_all,  ///< drop every held token unconditionally
};

/// How a primitive's identifier is produced at evaluation time.  Operations
/// "initialize all allocation and inquiry identifiers" after decode
/// (paper §4), so identifiers can be per-instance dynamic slots.
struct ident_expr {
    std::int32_t slot = -1;  ///< >= 0: index into the OSM's identifier table
    ident_t fixed = 0;       ///< used when slot < 0

    static ident_expr value(ident_t v) { return {-1, v}; }
    static ident_expr from_slot(std::int32_t s) { return {s, 0}; }
};

/// One primitive of an edge condition.
struct primitive {
    prim_kind kind = prim_kind::inquire;
    token_manager* mgr = nullptr;  // null only for discard_all
    ident_expr ident;
};

}  // namespace osm::core
