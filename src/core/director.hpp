// The director: deterministic coordinator of all OSMs (paper §3.4, Fig. 3).
//
// Each control step the director ranks the OSMs, then repeatedly offers
// every machine the chance to take its highest-priority satisfied edge.
// Transactions of a satisfied condition commit simultaneously (two-phase
// against the token managers).  Scheduling rules:
//   * at most one transition per OSM per control step;
//   * a transition fires as soon as an outgoing edge's condition holds;
//   * higher-priority edges win.
// The Fig. 3 algorithm restarts the outer loop from the highest-ranked
// remaining OSM after every transition; the case studies use age ranking,
// under which no senior depends on a junior, so restart can be disabled
// (config::restart_on_transition) — an ablation measured in the benches.
#pragma once

#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/osm.hpp"

namespace osm::core {

/// Thrown when the deadlock detector finds a cyclic token dependency
/// between two or more OSMs (paper: "the director will abort").
class deadlock_error : public std::runtime_error {
public:
    explicit deadlock_error(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

/// Aggregate scheduling statistics.
struct director_stats {
    std::uint64_t control_steps = 0;
    std::uint64_t transitions = 0;
    std::uint64_t conditions_evaluated = 0;
    std::uint64_t primitives_evaluated = 0;
    std::uint64_t outer_restarts = 0;
    /// Visits answered from a blocked-OSM memo without re-evaluating any
    /// edge condition (config::skip_blocked batching).
    std::uint64_t skipped_visits = 0;
};

/// Deterministic scheduler for a set of OSMs.
class director {
public:
    struct config {
        /// Restart the outer loop from the highest-ranked remaining OSM
        /// after each transition (Fig. 3 behaviour).  The case-study models
        /// disable this (paper §5): with age ranking no senior operation
        /// waits on a junior one.
        bool restart_on_transition = true;
        /// After a zero-transition step with blocked allocations, search the
        /// wait-for graph for cycles and throw deadlock_error.
        bool deadlock_check = false;
        /// Batch the token-transaction ranking: when a visit finds an OSM
        /// blocked, remember the generations of every manager its enabled
        /// edges gate on; while neither the OSM nor any of those managers
        /// has mutated, later visits skip the condition walk entirely.
        /// Only managers whose tracks_generation() is true participate; an
        /// edge gating on an untracked manager disables the memo for that
        /// OSM, so the optimization is behaviour-preserving by construction.
        ///
        /// Off by default: in the bundled models a blocked evaluation is a
        /// one- or two-primitive walk, so the memo upkeep (snapshot on
        /// failure, validity check per visit) costs about as much as the
        /// work it skips — measured 0.85-0.97x on sarm/smt/p750 even though
        /// up to 24% of condition walks are avoided.  The switch exists
        /// for models where conditions are long conjunctions or the OSM
        /// population is large; bench/bench_speed_* carry the ablation.
        bool skip_blocked = false;
    };

    /// Ranking function: smaller key = higher rank = scheduled first.
    using rank_fn = std::function<std::int64_t(const osm&)>;

    director();

    /// Register an OSM (not owned).  Order of registration breaks ranking
    /// ties, keeping behaviour deterministic.
    void add(osm& m);
    void remove(osm& m);
    const std::vector<osm*>& osms() const noexcept { return osms_; }

    /// Replace the ranking policy.  Default: by age (paper §5) — in-flight
    /// seniors first, idle machines last in registration order.  The
    /// default is special-cased to avoid an indirect call per OSM per step.
    void set_rank(rank_fn fn) {
        rank_ = std::move(fn);
        custom_rank_ = true;
    }

    config& cfg() noexcept { return cfg_; }
    const director_stats& stats() const noexcept { return stats_; }
    void reset_stats() noexcept { stats_ = {}; }

    /// Execute one control step (paper Fig. 3).  Returns the number of
    /// state transitions performed.
    unsigned control_step();

    /// Observer invoked after every committed transition (tracing,
    /// statistics).  Pass nullptr to disable; costs one branch per
    /// transition when unset.
    using transition_observer = std::function<void(const osm&, const graph_edge&)>;
    void set_observer(transition_observer obs) { observer_ = std::move(obs); }

    /// Evaluate whether `m` can currently take `e` (query phase only; no
    /// commitment).  Exposed for analysis and tests.
    bool condition_satisfied(osm& m, const graph_edge& e);

private:
    bool try_transition(osm& m);
    void commit(osm& m, const graph_edge& e);
    void check_deadlock();
    /// True when `m`'s blocked memo is valid and nothing it covers changed.
    bool memo_still_blocked(const osm& m) const;
    /// Record the managers gating `m`'s enabled out-edges (called after a
    /// failed visit).  Leaves the memo invalid if any of them is untracked.
    void build_memo(osm& m);

    ident_t resolve(const osm& m, const ident_expr& ie) const {
        return ie.slot >= 0 ? m.ident(ie.slot) : ie.fixed;
    }

    std::vector<osm*> osms_;
    std::vector<osm*> work_;         // scratch for control_step
    std::vector<std::int64_t> keys_;  // scratch rank keys
    rank_fn rank_;
    bool custom_rank_ = false;
    transition_observer observer_;
    config cfg_;
    director_stats stats_;
    std::uint64_t age_counter_ = 0;
};

}  // namespace osm::core
