#include "core/sim_kernel.hpp"

namespace osm::core {

sim_kernel::sim_kernel(director& d, de::tick_t period)
    : dir_(d), period_(period) {}

std::uint64_t sim_kernel::run(std::uint64_t max_cycles) {
    const std::uint64_t start = cycles_;
    while (!stop_ && cycles_ - start < max_cycles) {
        // Hardware layer: drain DE events up to this clock edge, then run
        // the cycle-driven hardware updates.
        dek_.run_until(static_cast<de::tick_t>(cycles_) * period_);
        for (auto& fn : cycle_hooks_) fn();
        // Operation layer: one control step, zero simulated time.
        dir_.control_step();
        for (auto& fn : cycle_end_hooks_) fn();
        ++cycles_;
    }
    return cycles_ - start;
}

}  // namespace osm::core
