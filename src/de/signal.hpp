// Two-phase signals for the hardware-centric modeling style.
//
// A signal holds a current value (visible to readers) and a next value
// (written by at most one driver per delta).  Writes take effect only after
// the current delta phase, at which point modules sensitive to the signal
// are scheduled for evaluation — exactly the SystemC sc_signal discipline
// the paper's baseline model uses.
#pragma once

#include <string>
#include <vector>

#include "de/kernel.hpp"

namespace osm::de {

class module;

/// Untyped base so the kernel can commit pending values generically.
class signal_base {
public:
    explicit signal_base(kernel& k, std::string name);
    virtual ~signal_base() = default;
    signal_base(const signal_base&) = delete;
    signal_base& operator=(const signal_base&) = delete;

    const std::string& name() const noexcept { return name_; }

    /// Register `m` to be evaluated whenever this signal changes value.
    void add_sensitive(module* m);

    /// Commit the pending value; returns true when the value changed.
    virtual bool commit() = 0;

protected:
    void notify_sensitive();
    void mark_pending();

    kernel& kernel_;

private:
    std::string name_;
    std::vector<module*> sensitive_;
    bool update_requested_ = false;

    friend class kernel;
};

/// Typed two-phase signal.
template <typename T>
class signal final : public signal_base {
public:
    signal(kernel& k, std::string name, T initial = T{})
        : signal_base(k, std::move(name)), cur_(initial), next_(initial) {}

    /// Value visible in the current delta phase.
    const T& read() const noexcept { return cur_; }

    /// Schedule `v` to become visible after this delta phase.
    void write(const T& v) {
        next_ = v;
        mark_pending();
    }

    /// Immediate initialization (elaboration time only — bypasses deltas).
    void init(const T& v) {
        cur_ = v;
        next_ = v;
    }

    bool commit() override {
        if (cur_ == next_) return false;
        cur_ = next_;
        notify_sensitive();
        return true;
    }

private:
    T cur_;
    T next_;
};

}  // namespace osm::de
