// Simulation time base for the discrete-event kernel.
#pragma once

#include <cstdint>

namespace osm::de {

/// Absolute simulation time in ticks.  One tick is dimensionless; processor
/// models conventionally use one tick per clock phase (two per cycle).
using tick_t = std::uint64_t;

/// Sentinel for "no deadline".
inline constexpr tick_t tick_infinity = ~static_cast<tick_t>(0);

}  // namespace osm::de
