#include "de/kernel.hpp"

#include <cassert>

#include "de/module.hpp"
#include "de/signal.hpp"

namespace osm::de {

void kernel::schedule_at(tick_t when, event_fn fn) {
    assert(when >= now_);
    events_.push(when, std::move(fn));
}

void kernel::schedule_in(tick_t delay, event_fn fn) {
    events_.push(now_ + delay, std::move(fn));
}

void kernel::request_evaluate(module* m) {
    if (m->eval_requested_) return;
    m->eval_requested_ = true;
    pending_evals_.push_back(m);
}

void kernel::request_update(signal_base* s) {
    if (s->update_requested_) return;
    s->update_requested_ = true;
    pending_updates_.push_back(s);
}

void kernel::settle_deltas() {
    while (!pending_updates_.empty() || !pending_evals_.empty()) {
        ++delta_count_;
        // Update phase: commit all pending signal values.  Committing may
        // schedule module evaluations via notify_sensitive().
        std::vector<signal_base*> updates;
        updates.swap(pending_updates_);
        for (signal_base* s : updates) {
            s->update_requested_ = false;
            s->commit();
        }
        // Evaluate phase: run modules; they may write signals, requesting
        // further updates for the next delta.
        std::vector<module*> evals;
        evals.swap(pending_evals_);
        for (module* m : evals) {
            m->eval_requested_ = false;
            m->evaluate();
        }
    }
}

void kernel::run_timestep(tick_t t) {
    now_ = t;
    while (!events_.empty() && events_.next_time() == t) {
        event_fn fn = events_.pop();
        fn();
        ++executed_;
        settle_deltas();
    }
}

std::size_t kernel::run_until(tick_t deadline) {
    std::size_t ran = 0;
    const std::size_t before = executed_;
    while (!events_.empty()) {
        const tick_t t = events_.next_time();
        if (t > deadline) break;
        run_timestep(t);
    }
    ran = executed_ - before;
    if (now_ < deadline && deadline != tick_infinity) now_ = deadline;
    return ran;
}

bool kernel::step() {
    if (events_.empty()) return false;
    run_timestep(events_.next_time());
    return true;
}

void kernel::reset() {
    events_.clear();
    pending_updates_.clear();
    pending_evals_.clear();
    now_ = 0;
    delta_count_ = 0;
    executed_ = 0;
}

// ---- signal_base / module ------------------------------------------------

signal_base::signal_base(kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

void signal_base::add_sensitive(module* m) { sensitive_.push_back(m); }

void signal_base::notify_sensitive() {
    for (module* m : sensitive_) kernel_.request_evaluate(m);
}

void signal_base::mark_pending() { kernel_.request_update(this); }

module::module(kernel& k, std::string name)
    : kernel_(k), name_(std::move(name)) {}

}  // namespace osm::de
