// Hardware module base class for the port/signal modeling style.
#pragma once

#include <string>

namespace osm::de {

class kernel;

/// A hardware module in the hardware-centric (port/wire) modeling style.
/// Subclasses connect to signals, declare sensitivity, and implement
/// `evaluate()` which runs in delta phases whenever an input changes.
class module {
public:
    module(kernel& k, std::string name);
    virtual ~module() = default;
    module(const module&) = delete;
    module& operator=(const module&) = delete;

    const std::string& name() const noexcept { return name_; }
    kernel& owner() const noexcept { return kernel_; }

    /// Combinational / reactive behaviour; invoked by the kernel in a delta
    /// phase after any signal in this module's sensitivity list changed.
    virtual void evaluate() = 0;

protected:
    kernel& kernel_;

private:
    std::string name_;
    bool eval_requested_ = false;

    friend class kernel;
};

}  // namespace osm::de
