// Periodic clock source.  Each rising edge invokes the registered callbacks
// in registration order, then re-arms itself.  Processor models register the
// OSM control step and cycle-driven hardware updates here.
#pragma once

#include <functional>
#include <vector>

#include "de/kernel.hpp"

namespace osm::de {

/// A free-running clock generating edges every `period` ticks.
class clock {
public:
    /// Construct a clock; the first edge fires at `first_edge`.
    clock(kernel& k, tick_t period, tick_t first_edge = 0);

    /// Register a callback run on every edge, after earlier registrants.
    void on_edge(std::function<void()> fn);

    /// Arm the clock (schedules the first edge).  Idempotent.
    void start();

    /// Stop generating further edges after the current one completes.
    void stop() noexcept { running_ = false; }

    /// Number of edges fired so far.
    std::uint64_t edges() const noexcept { return edges_; }

    tick_t period() const noexcept { return period_; }

private:
    void fire();

    kernel& kernel_;
    tick_t period_;
    tick_t next_edge_;
    std::vector<std::function<void()>> callbacks_;
    bool running_ = false;
    bool armed_ = false;
    std::uint64_t edges_ = 0;
};

}  // namespace osm::de
