// Time-ordered event queue for the discrete-event kernel.  Events with equal
// timestamps are delivered in insertion order (stable), which keeps model
// behaviour deterministic regardless of heap layout.
//
// Implemented as an explicit std::vector managed with std::push_heap /
// std::pop_heap rather than std::priority_queue: the earliest entry's action
// must be *moved out* on pop, and priority_queue::top() only exposes a const
// reference (moving through a const_cast is undefined behaviour).  With the
// explicit heap, pop_heap rotates the earliest entry to the back where it is
// legally mutable.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "de/time.hpp"

namespace osm::de {

/// An event action executed when its timestamp is reached.
using event_fn = std::function<void()>;

/// Stable priority queue of (time, action) pairs.
class event_queue {
public:
    event_queue() = default;

    /// Enqueue `fn` to run at absolute time `when`.
    void push(tick_t when, event_fn fn);

    /// True when no events are pending.
    bool empty() const noexcept { return heap_.empty(); }

    std::size_t size() const noexcept { return heap_.size(); }

    /// Timestamp of the earliest pending event.  Precondition: !empty().
    tick_t next_time() const;

    /// Remove and return the earliest event's action.  Precondition: !empty().
    event_fn pop();

    /// Drop all pending events (the insertion-order counter restarts, so
    /// same-tick FIFO delivery is preserved across a clear).
    void clear();

private:
    struct entry {
        tick_t when;
        std::uint64_t seq;
        event_fn fn;
    };
    /// Max-heap comparator: the entry that should run *last* is "largest",
    /// so the heap front is the earliest (time, then insertion order).
    struct later {
        bool operator()(const entry& a, const entry& b) const noexcept {
            if (a.when != b.when) return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::vector<entry> heap_;
    std::uint64_t next_seq_ = 0;
};

}  // namespace osm::de
