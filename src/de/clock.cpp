#include "de/clock.hpp"

namespace osm::de {

clock::clock(kernel& k, tick_t period, tick_t first_edge)
    : kernel_(k), period_(period), next_edge_(first_edge) {}

void clock::on_edge(std::function<void()> fn) {
    callbacks_.push_back(std::move(fn));
}

void clock::start() {
    running_ = true;
    if (armed_) return;
    armed_ = true;
    kernel_.schedule_at(next_edge_, [this] { fire(); });
}

void clock::fire() {
    armed_ = false;
    if (!running_) return;
    ++edges_;
    for (auto& fn : callbacks_) fn();
    next_edge_ += period_;
    if (running_) {
        armed_ = true;
        kernel_.schedule_at(next_edge_, [this] { fire(); });
    }
}

}  // namespace osm::de
