// Discrete-event simulation kernel with SystemC-style delta cycles.
//
// The kernel drives two kinds of clients:
//   * timed events     — arbitrary actions at absolute tick times;
//   * modules/signals  — two-phase signal updates with delta-cycle
//                        evaluation, used by the hardware-centric baseline
//                        models (the paper's "SystemC surrogate").
//
// The OSM simulation kernel of paper Fig. 4 is layered on top of this class
// (see core/sim_kernel.hpp): a regular clock event fires the OSM director's
// control step, which by construction introduces no DE events itself and
// therefore completes in zero simulated time.
#pragma once

#include <cstddef>
#include <vector>

#include "de/event_queue.hpp"
#include "de/time.hpp"

namespace osm::de {

class module;
class signal_base;

/// The discrete-event scheduler.  Single-threaded; all model state is owned
/// by the thread running `run*`.
class kernel {
public:
    kernel() = default;
    kernel(const kernel&) = delete;
    kernel& operator=(const kernel&) = delete;

    /// Current simulation time.
    tick_t now() const noexcept { return now_; }

    /// Schedule `fn` at absolute time `when` (>= now()).
    void schedule_at(tick_t when, event_fn fn);

    /// Schedule `fn` `delay` ticks from now.
    void schedule_in(tick_t delay, event_fn fn);

    /// Request that `m->evaluate()` runs in the next delta phase of the
    /// current timestep (deduplicated per delta).
    void request_evaluate(module* m);

    /// Request that `s` commits its pending value at the end of the current
    /// delta phase (deduplicated per delta).
    void request_update(signal_base* s);

    /// Run until the event queue drains or `deadline` is passed.
    /// Returns the number of timed events executed.
    std::size_t run_until(tick_t deadline = tick_infinity);

    /// Run exactly the events at the single next timestamp (all deltas).
    /// Returns false when nothing was pending.
    bool step();

    /// Drop all pending work and reset time to zero.
    void reset();

    /// Total delta phases executed (model-complexity metric).
    std::uint64_t delta_count() const noexcept { return delta_count_; }

private:
    /// Run update/evaluate delta phases until both sets drain.
    void settle_deltas();

    /// Execute every timed event stamped `t`, interleaving delta settling.
    void run_timestep(tick_t t);

    event_queue events_;
    std::vector<signal_base*> pending_updates_;
    std::vector<module*> pending_evals_;
    tick_t now_ = 0;
    std::uint64_t delta_count_ = 0;
    std::size_t executed_ = 0;
};

}  // namespace osm::de
