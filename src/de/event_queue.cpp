#include "de/event_queue.hpp"

#include <cassert>
#include <utility>

namespace osm::de {

void event_queue::push(tick_t when, event_fn fn) {
    heap_.push(entry{when, next_seq_++, std::move(fn)});
}

tick_t event_queue::next_time() const {
    assert(!heap_.empty());
    return heap_.top().when;
}

event_fn event_queue::pop() {
    assert(!heap_.empty());
    // priority_queue::top() is const; the action must be moved out, so we
    // cast away constness right before the pop — the entry is discarded.
    event_fn fn = std::move(const_cast<entry&>(heap_.top()).fn);
    heap_.pop();
    return fn;
}

void event_queue::clear() {
    while (!heap_.empty()) heap_.pop();
    next_seq_ = 0;
}

}  // namespace osm::de
