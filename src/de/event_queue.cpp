#include "de/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace osm::de {

void event_queue::push(tick_t when, event_fn fn) {
    heap_.push_back(entry{when, next_seq_++, std::move(fn)});
    std::push_heap(heap_.begin(), heap_.end(), later{});
}

tick_t event_queue::next_time() const {
    assert(!heap_.empty());
    return heap_.front().when;
}

event_fn event_queue::pop() {
    assert(!heap_.empty());
    std::pop_heap(heap_.begin(), heap_.end(), later{});
    event_fn fn = std::move(heap_.back().fn);
    heap_.pop_back();
    return fn;
}

void event_queue::clear() {
    heap_.clear();
    next_seq_ = 0;
}

}  // namespace osm::de
