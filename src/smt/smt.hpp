// SMT: simultaneous-multithreaded pipeline model (paper §6).
//
// "When modeling MT with OSM, each OSM carries a tag indicating the thread
// that it belongs to.  The tags are used as part of the identifiers for
// token transactions and may contribute to the ranking of the OSMs."
//
// Both mechanisms are implemented here: a single register-file manager
// serves every hardware thread through thread-tagged identifiers
// (thread*32 + reg), and an optional ranking policy boosts a foreground
// thread's operations ahead of the others in the director.  The pipeline
// is a shared 4-stage in-order core (F, X = execute, W) with per-thread
// fetch state, per-thread control-hazard epochs and a configurable fetch
// policy.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/director.hpp"
#include "core/osm.hpp"
#include "core/osm_graph.hpp"
#include "core/sim_kernel.hpp"
#include "core/token_manager.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "stats/stats.hpp"
#include "uarch/register_file.hpp"
#include "uarch/reset.hpp"

namespace osm::smt {

inline constexpr unsigned max_threads = 4;

/// How the shared fetch stage picks the next thread.
enum class fetch_policy {
    round_robin,  ///< strict rotation over live threads
    icount,       ///< thread with the fewest operations in flight
};

struct smt_config {
    unsigned threads = 2;  ///< 1..max_threads
    bool forwarding = false;
    fetch_policy policy = fetch_policy::round_robin;
    /// Thread whose operations outrank the others in the director (-1 =
    /// plain age ranking) — the paper's "tags may contribute to the
    /// ranking".
    int priority_thread = -1;
    unsigned num_osms = 8;
    bool decode_cache = true;  ///< cache pre-decoded instructions by (pc, word)
    unsigned decode_cache_entries = 4096;
    bool director_batch = false;  ///< skip blocked OSMs via generation memos
};

struct smt_stats {
    std::uint64_t cycles = 0;
    std::array<std::uint64_t, max_threads> retired{};
    std::array<std::uint64_t, max_threads> fetched{};

    std::uint64_t total_retired() const {
        std::uint64_t n = 0;
        for (const auto r : retired) n += r;
        return n;
    }
    double ipc() const {
        return cycles == 0 ? 0.0
                           : static_cast<double>(total_retired()) /
                                 static_cast<double>(cycles);
    }
};

/// An in-flight operation with its thread tag.
class smt_op final : public core::osm {
public:
    using core::osm::osm;
    unsigned thread = 0;
    bool past_end = false;
    std::uint32_t epoch = 0;
    isa::decoded_inst di{};
    std::uint32_t pc = 0;
};

/// The multithreaded pipeline model.
class smt_model {
public:
    smt_model(const smt_config& cfg, mem::main_memory& memory);

    /// Load `img` as thread `t`'s program (memory is shared; threads should
    /// use disjoint text/data ranges).
    void load(unsigned t, const isa::program_image& img);

    /// Adopt checkpointed architectural state as thread 0 (call on a fresh
    /// model): registers, fetch pc, done flag and console.
    void restore_arch(const isa::arch_state& st, const std::string& console);

    /// Run until every thread halts or `max_cycles`.  Returns cycles.
    std::uint64_t run(std::uint64_t max_cycles = ~0ull);

    bool thread_done(unsigned t) const { return done_.at(t); }
    bool all_done() const;
    /// True once every loaded thread's exit has *retired* (not merely been
    /// fetched, which is when `done_` flips): the architectural notion of
    /// halted.  `all_done()` goes true while the exit is still in flight,
    /// so single-cycle steppers must use this instead.
    bool drained() const;
    const smt_stats& stats() const noexcept { return stats_; }
    std::uint32_t gpr(unsigned t, unsigned r) const {
        return m_r_.arch_read(t * 32 + r);
    }
    /// Thread `t`'s next-fetch pc.
    std::uint32_t pc(unsigned t) const { return pc_.at(t); }
    const std::string& console() const { return host_.console(); }
    const isa::decode_cache_stats& decode_stats() const noexcept { return dcode_.stats(); }

    /// Structured report of every counter (JSON-renderable).
    stats::report make_report() const;

    core::director& dir() noexcept { return dir_; }
    core::sim_kernel& kernel() noexcept { return kern_; }
    const core::osm_graph& graph() const noexcept { return graph_; }

private:
    void build();
    unsigned pick_thread();
    unsigned in_flight(unsigned t) const;

    void act_fetch(smt_op& o);
    void act_execute(smt_op& o);
    void act_retire(smt_op& o);
    void note_thread_exit();

    smt_config cfg_;
    mem::main_memory& mem_;
    isa::decode_cache dcode_;
    core::unit_token_manager m_f_, m_x_, m_w_;
    uarch::register_file_manager m_r_;
    uarch::reset_manager m_reset_;
    core::osm_graph graph_;
    core::director dir_;
    core::sim_kernel kern_;
    std::vector<std::unique_ptr<smt_op>> ops_;
    isa::syscall_host host_;

    std::array<std::uint32_t, max_threads> pc_{};
    std::array<std::uint32_t, max_threads> epoch_{};
    std::array<bool, max_threads> loaded_{};
    std::array<bool, max_threads> done_{};
    unsigned rr_next_ = 0;
    unsigned halts_retired_ = 0;
    smt_stats stats_;
};

}  // namespace osm::smt
