#include "smt/smt.hpp"

#include "isa/encoding.hpp"
#include "isa/semantics.hpp"

namespace osm::smt {

using core::ident_expr;
using core::k_null_ident;
using isa::op;

namespace {
core::ident_t tagged_value(unsigned thread, unsigned reg) {
    return uarch::reg_value_ident(thread * 32 + reg);
}
core::ident_t tagged_update(unsigned thread, unsigned reg) {
    return uarch::reg_update_ident(thread * 32 + reg);
}
bool is_exit_syscall(const isa::decoded_inst& di) {
    return di.code == op::syscall_op &&
           static_cast<std::uint16_t>(di.imm) ==
               static_cast<std::uint16_t>(isa::syscall_code::exit);
}
}  // namespace

smt_model::smt_model(const smt_config& cfg, mem::main_memory& memory)
    : cfg_(cfg),
      mem_(memory),
      dcode_(cfg.decode_cache_entries),
      m_f_("m_f"),
      m_x_("m_x"),
      m_w_("m_w"),
      m_r_("m_r", cfg.threads * 32, /*reg0_is_zero=*/false, cfg.forwarding),
      m_reset_("m_reset"),
      graph_("smt"),
      kern_(dir_) {
    // The reset manager is deliberately left generation-untracked (its
    // predicate reads o.past_end, whose write sites are not audited for
    // touch()), so OSMs gated by it never skip — sound either way.
    dir_.cfg().skip_blocked = cfg_.director_batch;
    build();
    for (unsigned i = 0; i < cfg_.num_osms; ++i) {
        ops_.push_back(std::make_unique<smt_op>(graph_, "op" + std::to_string(i)));
        dir_.add(*ops_.back());
    }
    // Control hazards are per thread: victims are stale-epoch operations of
    // the redirecting thread only.
    m_reset_.arm([this](const core::osm& m) {
        const auto& o = static_cast<const smt_op&>(m);
        return !o.past_end && o.epoch != epoch_[o.thread];
    });
    if (cfg_.priority_thread >= 0) {
        // Thread tags contribute to ranking: the foreground thread's
        // operations always outrank background ones of the same stage age.
        const auto fg = static_cast<unsigned>(cfg_.priority_thread);
        dir_.set_rank([fg](const core::osm& m) {
            const auto& o = static_cast<const smt_op&>(m);
            const std::int64_t boost = (!o.at_initial() && o.thread == fg) ? 0 : 1;
            return (boost << 50) + static_cast<std::int64_t>(m.age());
        });
    }
}

void smt_model::build() {
    graph_.set_ident_slots(3);
    const auto I = graph_.add_state("I");
    const auto F = graph_.add_state("F");
    const auto X = graph_.add_state("X");
    const auto W = graph_.add_state("W");

    auto e = graph_.add_edge(I, F);
    graph_.edge_allocate(e, m_f_, ident_expr::value(0));
    graph_.edge_set_action(e, [this](core::osm& m) { act_fetch(static_cast<smt_op&>(m)); });

    e = graph_.add_edge(F, I, /*priority=*/10);
    graph_.edge_inquire(e, m_reset_, ident_expr::value(0));
    graph_.edge_discard_all(e);

    e = graph_.add_edge(F, X);
    graph_.edge_release(e, m_f_, ident_expr::value(0));
    graph_.edge_allocate(e, m_x_, ident_expr::value(0));
    graph_.edge_inquire(e, m_r_, ident_expr::from_slot(0));
    graph_.edge_inquire(e, m_r_, ident_expr::from_slot(1));
    graph_.edge_allocate(e, m_r_, ident_expr::from_slot(2));
    graph_.edge_set_action(e, [this](core::osm& m) { act_execute(static_cast<smt_op&>(m)); });

    e = graph_.add_edge(X, W);
    graph_.edge_release(e, m_x_, ident_expr::value(0));
    graph_.edge_allocate(e, m_w_, ident_expr::value(0));

    e = graph_.add_edge(W, I);
    graph_.edge_release(e, m_w_, ident_expr::value(0));
    graph_.edge_release(e, m_r_, ident_expr::from_slot(2));
    graph_.edge_set_action(e, [this](core::osm& m) { act_retire(static_cast<smt_op&>(m)); });

    graph_.finalize();
}

void smt_model::load(unsigned t, const isa::program_image& img) {
    img.load_into(mem_);
    pc_.at(t) = img.entry;
    loaded_[t] = true;
    done_[t] = false;
    dcode_.invalidate_all();
    dcode_.reset_stats();
}

void smt_model::restore_arch(const isa::arch_state& st, const std::string& console) {
    for (unsigned r = 0; r < 32; ++r) m_r_.arch_write(r, st.gpr[r]);
    pc_[0] = st.pc;
    loaded_[0] = true;
    done_[0] = st.halted;
    if (st.halted) halts_retired_ = 1;  // the exit retired before the save
    host_.seed(console);
}

bool smt_model::all_done() const {
    for (unsigned t = 0; t < cfg_.threads; ++t) {
        if (loaded_[t] && !done_[t]) return false;
    }
    return true;
}

bool smt_model::drained() const {
    unsigned expected = 0;
    for (unsigned t = 0; t < cfg_.threads; ++t) {
        if (loaded_[t]) ++expected;
    }
    return halts_retired_ >= expected;
}

unsigned smt_model::in_flight(unsigned t) const {
    unsigned n = 0;
    for (const auto& o : ops_) {
        if (!o->at_initial() && o->thread == t && !o->past_end) ++n;
    }
    return n;
}

unsigned smt_model::pick_thread() {
    if (cfg_.policy == fetch_policy::icount) {
        unsigned best = ~0u;
        unsigned best_count = ~0u;
        for (unsigned t = 0; t < cfg_.threads; ++t) {
            if (!loaded_[t] || done_[t]) continue;
            const unsigned c = in_flight(t);
            if (c < best_count) {
                best = t;
                best_count = c;
            }
        }
        if (best != ~0u) return best;
    } else {
        for (unsigned step = 0; step < cfg_.threads; ++step) {
            const unsigned t = (rr_next_ + step) % cfg_.threads;
            if (loaded_[t] && !done_[t]) {
                rr_next_ = (t + 1) % cfg_.threads;
                return t;
            }
        }
    }
    // All threads done: keep feeding thread 0's stream as harmless
    // past-end fetches until the halts drain.
    return 0;
}

void smt_model::act_fetch(smt_op& o) {
    const unsigned t = pick_thread();
    o.thread = t;
    o.past_end = done_[t] || !loaded_[t];
    o.epoch = epoch_[t];
    o.pc = pc_[t];
    const std::uint32_t word = mem_.read32(o.pc);
    o.di = cfg_.decode_cache ? dcode_.lookup(o.pc, word).di : isa::decode(word);
    if (!o.past_end) ++stats_.fetched[t];
    // An exit syscall's code is an immediate, so it terminates the thread's
    // fetch stream just like halt: no younger operation may enter the
    // pipeline behind it (the ISS never executes past an exit).  A
    // wrong-path exit parks the thread; the redirect revives it.
    if (o.di.code == op::halt || o.di.code == op::invalid || is_exit_syscall(o.di)) {
        done_[t] = true;
    } else {
        pc_[t] += 4;  // redirects happen at execute
    }

    const op c = o.di.code;
    o.set_ident(0, isa::uses_rs1(c) ? tagged_value(t, o.di.rs1) : k_null_ident);
    o.set_ident(1, isa::uses_rs2(c) ? tagged_value(t, o.di.rs2) : k_null_ident);
    // rd == 0 gets no update token: the shared register-file manager cannot
    // pin r0 per thread (ids are thread-tagged), so x0 writes are dropped
    // here instead.
    o.set_ident(2, isa::writes_rd(c) && !isa::rd_is_fpr(c) && o.di.rd != 0
                       ? tagged_update(t, o.di.rd)
                       : k_null_ident);
}

void smt_model::act_execute(smt_op& o) {
    const op c = o.di.code;
    if (isa::is_system(c) || c == op::invalid || o.past_end) return;
    const std::uint32_t a = m_r_.read(o.thread * 32 + o.di.rs1);
    const std::uint32_t b = m_r_.read(o.thread * 32 + o.di.rs2);
    auto out = isa::compute(o.di, o.pc, a, b);
    if (isa::is_load(c)) {
        out.value = isa::do_load(c, mem_, out.mem_addr);
    } else if (isa::is_store(c)) {
        isa::do_store(c, mem_, out.mem_addr, out.store_data);
    }
    if (isa::writes_rd(c) && !isa::rd_is_fpr(c) && o.di.rd != 0) {
        m_r_.publish(o.thread * 32 + o.di.rd, out.value);
    }
    if (out.redirect) {
        // Per-thread control hazard: only this thread's wrong path dies.
        pc_[o.thread] = out.next_pc;
        ++epoch_[o.thread];
        // A wrong-path fetch may have speculatively decoded a halt and
        // parked the thread; the redirect revives it.
        done_[o.thread] = false;
    }
}

void smt_model::act_retire(smt_op& o) {
    if (o.past_end) return;
    ++stats_.retired[o.thread];
    if (o.di.code == op::syscall_op) {
        isa::arch_state st;
        for (unsigned r = 0; r < 32; ++r) st.gpr[r] = m_r_.arch_read(o.thread * 32 + r);
        host_.handle(static_cast<std::uint16_t>(o.di.imm), st);
        if (st.halted) {
            done_[o.thread] = true;
            note_thread_exit();
        }
        return;
    }
    if (o.di.code == op::halt || o.di.code == op::invalid) note_thread_exit();
}

void smt_model::note_thread_exit() {
    ++halts_retired_;
    unsigned expected = 0;
    for (unsigned t = 0; t < cfg_.threads; ++t) {
        if (loaded_[t]) ++expected;
    }
    if (halts_retired_ >= expected) kern_.request_stop();
}

std::uint64_t smt_model::run(std::uint64_t max_cycles) {
    // A machine restored into the halted state never requested a kernel
    // stop, so it must not enter the cycle loop at all.  `drained()`, not
    // `all_done()`: the latter goes true at *fetch* of the exit, and
    // cutting the run there would strand the exit (and anything older)
    // in the pipeline when the caller steps cycle by cycle.
    if (drained()) {
        stats_.cycles = kern_.cycles();
        return 0;
    }
    const std::uint64_t executed = kern_.run(max_cycles);
    stats_.cycles = kern_.cycles();
    return executed;
}

stats::report smt_model::make_report() const {
    stats::report r;
    r.put("model", "name", std::string("smt"));
    r.put("run", "cycles", stats_.cycles);
    r.put("run", "retired", stats_.total_retired());
    r.put("run", "ipc", stats_.ipc());
    r.put("smt", "threads", static_cast<std::uint64_t>(cfg_.threads));
    for (unsigned t = 0; t < cfg_.threads; ++t) {
        const std::string tag = "t" + std::to_string(t);
        r.put("smt", tag + "_retired", stats_.retired[t]);
        r.put("smt", tag + "_fetched", stats_.fetched[t]);
    }
    r.put("decode_cache", "enabled", static_cast<std::uint64_t>(cfg_.decode_cache ? 1 : 0));
    r.put("decode_cache", "hits", dcode_.stats().hits);
    r.put("decode_cache", "misses", dcode_.stats().misses);
    r.put("decode_cache", "hit_ratio", dcode_.stats().hit_ratio());
    r.put("director", "control_steps", dir_.stats().control_steps);
    r.put("director", "transitions", dir_.stats().transitions);
    r.put("director", "conditions_evaluated", dir_.stats().conditions_evaluated);
    r.put("director", "primitives_evaluated", dir_.stats().primitives_evaluated);
    r.put("director", "skipped_visits", dir_.stats().skipped_visits);
    return r;
}

}  // namespace osm::smt
