// Random program generator for cross-engine equivalence property tests.
//
// Programs are guaranteed to terminate: control flow is restricted to
// forward branches within a window and counted backward loops, stores go to
// a sandboxed data region, and the program ends with a checksum of every
// register followed by halt.  Any two correct execution engines must
// produce identical final architectural state and console output.
#pragma once

#include <cstdint>

#include "isa/program.hpp"

namespace osm::workloads {

struct randprog_options {
    std::uint64_t seed = 1;
    unsigned blocks = 12;           ///< straight-line blocks
    unsigned block_len = 10;        ///< instructions per block
    bool with_mul_div = true;
    bool with_memory = true;
    bool with_branches = true;
    bool with_fp = false;           ///< FP arithmetic, compare, convert, flw/fsw
    unsigned loop_count = 3;        ///< trip count of counted loops
    // Targeted hazard templates: some blocks are emitted as dedicated
    // hazard shapes instead of uniformly random instruction mixes, so
    // fuzzing campaigns stress the hazard classes the pipeline models
    // actually implement (load-use interlocks, branch resolution).
    bool hazard_load_use = false;   ///< load -> immediate-use dependence chains
    bool hazard_branch_dense = false;  ///< a taken/not-taken branch every 2-3 insts
    // Multi-hart shapes (harts > 1 switches to the multi-hart generator;
    // the defaults keep every existing single-hart row bit-identical).
    // Each hart gets a private 4 KiB data sandbox; every block ends with an
    // atomic increment of the shared counter word, so the final counter is
    // exactly harts * blocks under any schedule and either memory model.
    unsigned harts = 1;             ///< hart count (>1 = multi-hart program)
    bool shared_contention = false; ///< plain lw/sw traffic on shared words
    bool fence_dense = false;       ///< fence after roughly half the shared accesses
    bool lrsc_loops = false;        ///< bounded lr.w/sc.w retry increment loops

    bool operator==(const randprog_options&) const = default;
};

/// Shared-word region used by multi-hart random programs: the atomic
/// counter word lives at the base, contention words follow it.
inline constexpr std::uint32_t randprog_shared_base = 0x00090000;

/// The schedule-independent final value of the shared counter word for a
/// multi-hart program: every hart increments it atomically once per block.
/// Zero for single-hart programs (which have no shared counter).
std::uint64_t randprog_expected_counter(const randprog_options& opt);

/// Generate a terminating random program.
isa::program_image make_random_program(const randprog_options& opt);

}  // namespace osm::workloads
