#include "workloads/randprog.hpp"

#include "common/xrandom.hpp"
#include "isa/arch.hpp"
#include "isa/decoded_inst.hpp"

namespace osm::workloads {

using isa::op;
using isa::program_builder;

namespace {

constexpr std::uint32_t k_sandbox_base = 0x00080000;
constexpr std::uint32_t k_sandbox_mask = 0x0FFC;  // 4 KiB, word aligned

/// Registers the generator may clobber: x4..x21 (a0..t9).  s-registers are
/// reserved for loop counters and the sandbox base.
unsigned rand_reg(xrandom& rng) { return 4 + static_cast<unsigned>(rng.next_below(18)); }
unsigned rand_fpr(xrandom& rng) { return static_cast<unsigned>(rng.next_below(16)); }

}  // namespace

isa::program_image make_random_program(const randprog_options& opt) {
    xrandom rng(opt.seed);
    program_builder b;

    const unsigned base_reg = 22;  // s0: sandbox base
    b.li(base_reg, k_sandbox_base);
    // Seed some registers with random values.
    for (unsigned r = 4; r <= 21; ++r) {
        b.li(r, rng.next_u32());
    }
    if (opt.with_fp) {
        for (unsigned f = 0; f < 16; ++f) {
            b.li(4, rng.next_u32() & 0x7FFF);
            b.emit_r(op::fcvt_s_w, f, 4, 0);
        }
        b.li(4, rng.next_u32());
    }

    for (unsigned blk = 0; blk < opt.blocks; ++blk) {
        // Optionally wrap this block in a counted loop (s1 = counter).
        const bool looped = opt.with_branches && rng.chance(1, 3);
        program_builder::label loop_head{};
        if (looped) {
            b.li(23, opt.loop_count);  // s1
            loop_head = b.here();
        }

        program_builder::label skip{};
        bool skipping = false;
        for (unsigned i = 0; i < opt.block_len; ++i) {
            const unsigned kind = static_cast<unsigned>(rng.next_below(10));
            if (kind < 4) {
                // R-type ALU
                static constexpr op alu[] = {op::add_r, op::sub_r, op::and_r,
                                             op::or_r,  op::xor_r, op::nor_r,
                                             op::sll_r, op::srl_r, op::sra_r,
                                             op::slt_r, op::sltu_r};
                b.emit_r(alu[rng.next_below(std::size(alu))], rand_reg(rng),
                         rand_reg(rng), rand_reg(rng));
            } else if (kind < 6) {
                // I-type ALU
                static constexpr op alui[] = {op::addi, op::slti, op::sltiu,
                                              op::slli, op::srli, op::srai};
                const op c = alui[rng.next_below(std::size(alui))];
                const std::int32_t imm =
                    (c == op::slli || c == op::srli || c == op::srai)
                        ? static_cast<std::int32_t>(rng.next_below(32))
                        : static_cast<std::int32_t>(rng.next_range(-2048, 2047));
                b.emit_i(c, rand_reg(rng), rand_reg(rng), imm);
            } else if (kind == 6 && opt.with_mul_div) {
                static constexpr op md[] = {op::mul, op::mulh, op::mulhu,
                                            op::div_s, op::div_u, op::rem_s,
                                            op::rem_u};
                b.emit_r(md[rng.next_below(std::size(md))], rand_reg(rng),
                         rand_reg(rng), rand_reg(rng));
            } else if (kind == 7 && opt.with_memory) {
                // Sandboxed load or store: mask an arbitrary register into
                // the sandbox, then access.
                const unsigned addr_reg = rand_reg(rng);
                const unsigned val_reg = rand_reg(rng);
                b.emit_i(op::andi, addr_reg, addr_reg,
                         static_cast<std::int32_t>(k_sandbox_mask));
                b.emit_r(op::add_r, addr_reg, addr_reg, base_reg);
                static constexpr op mops[] = {op::lw, op::lh, op::lhu, op::lb,
                                              op::lbu, op::sw, op::sh, op::sb};
                const op c = mops[rng.next_below(std::size(mops))];
                if (isa::is_load(c)) {
                    b.emit_load(c, val_reg, addr_reg, 0);
                } else {
                    b.emit_store(c, val_reg, addr_reg, 0);
                }
            } else if (kind == 8 && opt.with_fp) {
                static constexpr op fops[] = {op::fadd, op::fsub, op::fmul,
                                              op::fmin, op::fmax, op::fabs_f,
                                              op::fneg_f};
                const op c = fops[rng.next_below(std::size(fops))];
                b.emit_r(c, rand_fpr(rng), rand_fpr(rng), rand_fpr(rng));
            } else if (kind == 9 && opt.with_branches && !skipping && i + 2 < opt.block_len) {
                // Forward conditional branch over the rest of the block.
                skip = b.new_label();
                skipping = true;
                static constexpr op br[] = {op::beq, op::bne, op::blt,
                                            op::bge, op::bltu, op::bgeu};
                b.emit_branch(br[rng.next_below(std::size(br))], rand_reg(rng),
                              rand_reg(rng), skip);
            } else {
                b.emit_r(op::add_r, rand_reg(rng), rand_reg(rng), rand_reg(rng));
            }
        }
        if (skipping) b.bind(skip);
        if (looped) {
            b.emit_i(op::addi, 23, 23, -1);
            b.emit_branch(op::bne, 23, 0, loop_head);
        }
    }

    // Checksum every register into a0 (multiply-accumulate hash) and print
    // it, so engines cannot agree by accident.
    b.emit_i(op::addi, 24, 0, 0);   // s2 = 0
    b.emit_i(op::addi, 25, 0, 31);  // s3 = hash multiplier
    for (unsigned r = 4; r <= 21; ++r) {
        b.emit_r(op::mul, 24, 24, 25);
        b.emit_r(op::add_r, 24, 24, r);
    }
    b.mv(4, 24);
    b.syscall(2);  // print checksum
    b.syscall(0);  // exit
    return b.finish();
}

}  // namespace osm::workloads
