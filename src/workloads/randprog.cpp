#include "workloads/randprog.hpp"

#include "common/xrandom.hpp"
#include "isa/arch.hpp"
#include "isa/decoded_inst.hpp"

namespace osm::workloads {

using isa::op;
using isa::program_builder;

namespace {

constexpr std::uint32_t k_sandbox_base = 0x00080000;
constexpr std::uint32_t k_sandbox_mask = 0x0FFC;  // 4 KiB, word aligned

/// Registers the generator may clobber: x4..x21 (a0..t9).  s-registers are
/// reserved for loop counters and the sandbox base.
unsigned rand_reg(xrandom& rng) { return 4 + static_cast<unsigned>(rng.next_below(18)); }
unsigned rand_fpr(xrandom& rng) { return static_cast<unsigned>(rng.next_below(16)); }

/// Mask `reg` into the data sandbox and rebase it; afterwards `reg` is a
/// safe load/store address no matter what it held before.
void sandbox_addr(program_builder& b, unsigned reg, unsigned base_reg) {
    b.emit_i(op::andi, reg, reg, static_cast<std::int32_t>(k_sandbox_mask));
    b.emit_r(op::add_r, reg, reg, base_reg);
}

/// Load-use dependence chain: each loaded value feeds the very next
/// instruction (the classic one-cycle interlock) and then becomes the next
/// iteration's address seed, so address generation itself depends on the
/// preceding load.
void emit_load_use_chain(program_builder& b, xrandom& rng, unsigned len,
                         unsigned base_reg) {
    unsigned addr = rand_reg(rng);
    for (unsigned k = 0; k * 4 < len; ++k) {
        sandbox_addr(b, addr, base_reg);
        unsigned val = rand_reg(rng);
        if (val == addr) val = (val == 21) ? 4 : val + 1;
        b.emit_load(op::lw, val, addr, 0);
        const unsigned use = rand_reg(rng);
        b.emit_r(op::add_r, use, val, val);  // load-use: consumed next inst
        b.emit_store(op::sw, use, addr, 0);  // store-to-load forwarding pressure
        addr = use;                          // chain into next address
    }
}

/// Branch-dense block: a conditional branch every 2-3 instructions, each
/// hopping over a single ALU op, mixing taken and not-taken at high density.
void emit_branch_dense(program_builder& b, xrandom& rng, unsigned len) {
    static constexpr op br[] = {op::beq, op::bne, op::blt,
                                op::bge, op::bltu, op::bgeu};
    for (unsigned k = 0; k * 3 < len; ++k) {
        const auto skip = b.new_label();
        b.emit_branch(br[rng.next_below(std::size(br))], rand_reg(rng),
                      rand_reg(rng), skip);
        b.emit_r(op::xor_r, rand_reg(rng), rand_reg(rng), rand_reg(rng));
        b.bind(skip);
        b.emit_i(op::addi, rand_reg(rng), rand_reg(rng),
                 static_cast<std::int32_t>(rng.next_range(-64, 64)));
    }
}

/// Uniformly random straight-line/branchy block: the default block shape.
void emit_random_block(program_builder& b, xrandom& rng,
                       const randprog_options& opt, unsigned base_reg) {
    program_builder::label skip{};
    bool skipping = false;
    for (unsigned i = 0; i < opt.block_len; ++i) {
        const unsigned kind = static_cast<unsigned>(rng.next_below(10));
        if (kind < 4) {
            // R-type ALU
            static constexpr op alu[] = {op::add_r, op::sub_r, op::and_r,
                                         op::or_r,  op::xor_r, op::nor_r,
                                         op::sll_r, op::srl_r, op::sra_r,
                                         op::slt_r, op::sltu_r};
            b.emit_r(alu[rng.next_below(std::size(alu))], rand_reg(rng),
                     rand_reg(rng), rand_reg(rng));
        } else if (kind < 6) {
            // I-type ALU
            static constexpr op alui[] = {op::addi, op::slti, op::sltiu,
                                          op::slli, op::srli, op::srai};
            const op c = alui[rng.next_below(std::size(alui))];
            const std::int32_t imm =
                (c == op::slli || c == op::srli || c == op::srai)
                    ? static_cast<std::int32_t>(rng.next_below(32))
                    : static_cast<std::int32_t>(rng.next_range(-2048, 2047));
            b.emit_i(c, rand_reg(rng), rand_reg(rng), imm);
        } else if (kind == 6 && opt.with_mul_div) {
            static constexpr op md[] = {op::mul, op::mulh, op::mulhu,
                                        op::div_s, op::div_u, op::rem_s,
                                        op::rem_u};
            b.emit_r(md[rng.next_below(std::size(md))], rand_reg(rng),
                     rand_reg(rng), rand_reg(rng));
        } else if (kind == 7 && opt.with_memory) {
            // Sandboxed load or store: mask an arbitrary register into
            // the sandbox, then access.
            const unsigned addr_reg = rand_reg(rng);
            const unsigned val_reg = rand_reg(rng);
            b.emit_i(op::andi, addr_reg, addr_reg,
                     static_cast<std::int32_t>(k_sandbox_mask));
            b.emit_r(op::add_r, addr_reg, addr_reg, base_reg);
            if (opt.with_fp && rng.chance(1, 4)) {
                // FP memory: word-aligned flw/fsw against the sandbox.
                if (rng.chance(1, 2)) {
                    b.emit_load(op::flw, rand_fpr(rng), addr_reg, 0);
                } else {
                    b.emit_store(op::fsw, rand_fpr(rng), addr_reg, 0);
                }
            } else {
                static constexpr op mops[] = {op::lw, op::lh, op::lhu,
                                              op::lb, op::lbu, op::sw,
                                              op::sh, op::sb};
                const op c = mops[rng.next_below(std::size(mops))];
                if (isa::is_load(c)) {
                    b.emit_load(c, val_reg, addr_reg, 0);
                } else {
                    b.emit_store(c, val_reg, addr_reg, 0);
                }
            }
        } else if (kind == 8 && opt.with_fp) {
            const unsigned sel = static_cast<unsigned>(rng.next_below(12));
            if (sel < 7) {
                static constexpr op fops[] = {op::fadd, op::fsub, op::fmul,
                                              op::fmin, op::fmax, op::fabs_f,
                                              op::fneg_f};
                const op c = fops[sel];
                const unsigned rd = rand_fpr(rng);
                const unsigned rs1 = rand_fpr(rng);
                // fabs/fneg ignore rs2; emit the canonical zero field the
                // assembler produces, so the image disassembles and
                // reassembles word-identically.
                const unsigned rs2 = (c == op::fabs_f || c == op::fneg_f)
                                         ? 0u
                                         : rand_fpr(rng);
                b.emit_r(c, rd, rs1, rs2);
            } else if (sel < 10) {
                // FP compares write a GPR, so FP dataflow reaches the
                // integer checksum even on engines that only diff GPRs.
                static constexpr op fcmp[] = {op::feq, op::flt_f, op::fle};
                b.emit_r(fcmp[sel - 7], rand_reg(rng), rand_fpr(rng),
                         rand_fpr(rng));
            } else if (sel == 10) {
                // Converts cross the register files in both directions.
                if (rng.chance(1, 2)) {
                    b.emit_r(op::fcvt_w_s, rand_reg(rng), rand_fpr(rng), 0);
                } else {
                    b.emit_r(op::fcvt_s_w, rand_fpr(rng), rand_reg(rng), 0);
                }
            } else {
                if (rng.chance(1, 2)) {
                    b.emit_r(op::fmv_x_w, rand_reg(rng), rand_fpr(rng), 0);
                } else {
                    b.emit_r(op::fmv_w_x, rand_fpr(rng), rand_reg(rng), 0);
                }
            }
        } else if (kind == 9 && opt.with_branches && !skipping && i + 2 < opt.block_len) {
            // Forward conditional branch over the rest of the block.
            skip = b.new_label();
            skipping = true;
            static constexpr op br[] = {op::beq, op::bne, op::blt,
                                        op::bge, op::bltu, op::bgeu};
            b.emit_branch(br[rng.next_below(std::size(br))], rand_reg(rng),
                          rand_reg(rng), skip);
        } else {
            b.emit_r(op::add_r, rand_reg(rng), rand_reg(rng), rand_reg(rng));
        }
    }
    if (skipping) b.bind(skip);
}

constexpr unsigned k_mh_contention_words = 4;  ///< shared words after the counter
constexpr unsigned k_mh_lrsc_retries = 8;      ///< sc.w attempts before amoadd fallback

/// Registers the multi-hart shapes reserve beyond the single-hart set:
/// x26 = shared base, x27..x29 = atomic-sequence scratch.
constexpr unsigned k_shared_base_reg = 26;

/// One guaranteed-exactly-once atomic increment of the shared counter.
/// The lr/sc shape retries a bounded number of times and falls back to
/// amoadd.w when contention exhausts the budget, so the increment happens
/// exactly once on every path and the program terminates under any
/// schedule — which is what keeps the final counter value a
/// schedule-independent invariant the campaign can check.
void emit_counter_increment(program_builder& b, const randprog_options& opt) {
    if (opt.lrsc_loops) {
        b.li(27, k_mh_lrsc_retries);
        const auto retry = b.here();
        const auto done = b.new_label();
        b.emit_r(op::lr_w, 28, k_shared_base_reg, 0);
        b.emit_i(op::addi, 28, 28, 1);
        b.emit_r(op::sc_w, 29, k_shared_base_reg, 28);
        b.emit_branch(op::beq, 29, 0, done);  // sc.w rd == 0: store landed
        b.emit_i(op::addi, 27, 27, -1);
        b.emit_branch(op::bne, 27, 0, retry);
        b.li(28, 1);  // budget exhausted: amoadd.w still increments exactly once
        b.emit_r(op::amoadd_w, 29, k_shared_base_reg, 28);
        b.bind(done);
    } else {
        b.li(27, 1);
        b.emit_r(op::amoadd_w, 28, k_shared_base_reg, 27);
    }
}

/// Random lw/sw traffic (plus optional fences) on the small shared-word
/// set every hart hammers; loads land in the clobber registers so shared
/// values flow into the final checksum.
void emit_shared_contention(program_builder& b, xrandom& rng,
                            const randprog_options& opt) {
    const unsigned accesses = 2 + static_cast<unsigned>(rng.next_below(3));
    for (unsigned i = 0; i < accesses; ++i) {
        const std::int32_t off =
            4 * (1 + static_cast<std::int32_t>(rng.next_below(k_mh_contention_words)));
        if (rng.chance(1, 2)) {
            b.li(27, rng.next_u32());
            b.emit_store(op::sw, 27, k_shared_base_reg, off);
        } else {
            b.emit_load(op::lw, rand_reg(rng), k_shared_base_reg, off);
        }
        if (opt.fence_dense && rng.chance(1, 2)) b.emit(isa::decoded_inst{op::fence});
    }
}

/// Multi-hart program: per-hart code blocks (each over a private sandbox,
/// ending in an atomic shared-counter increment), hart 0 printing its
/// checksum.  Entry points land in img.hart_entries.
isa::program_image make_random_mh_program(const randprog_options& opt) {
    program_builder b;
    std::vector<std::uint32_t> entries;
    for (unsigned h = 0; h < opt.harts; ++h) {
        // Per-hart stream: hart programs stay identical whatever the other
        // harts' shapes consumed from the generator.
        xrandom rng(opt.seed ^ (0x9E3779B97F4A7C15ULL * (h + 1)));
        entries.push_back(b.text_pos());

        const unsigned base_reg = 22;  // s0: this hart's private sandbox
        b.li(base_reg, k_sandbox_base + h * 0x1000);
        b.li(k_shared_base_reg, randprog_shared_base);
        for (unsigned r = 4; r <= 21; ++r) b.li(r, rng.next_u32());

        for (unsigned blk = 0; blk < opt.blocks; ++blk) {
            emit_random_block(b, rng, opt, base_reg);
            if (opt.shared_contention) emit_shared_contention(b, rng, opt);
            emit_counter_increment(b, opt);
        }

        if (h == 0) {
            // Checksum as in the single-hart tail; only hart 0 prints, so
            // the console stream is a pure function of the schedule seed.
            b.emit_i(op::addi, 24, 0, 0);
            b.emit_i(op::addi, 25, 0, 31);
            for (unsigned r = 4; r <= 21; ++r) {
                b.emit_r(op::mul, 24, 24, 25);
                b.emit_r(op::add_r, 24, 24, r);
            }
            b.mv(4, 24);
            b.syscall(2);  // print checksum
        }
        b.syscall(0);  // exit this hart
    }
    auto img = b.finish();
    img.hart_entries = std::move(entries);
    img.entry = img.hart_entries.front();
    return img;
}

}  // namespace

std::uint64_t randprog_expected_counter(const randprog_options& opt) {
    if (opt.harts <= 1) return 0;
    return static_cast<std::uint64_t>(opt.harts) * opt.blocks;
}

isa::program_image make_random_program(const randprog_options& opt) {
    if (opt.harts > 1) return make_random_mh_program(opt);
    xrandom rng(opt.seed);
    program_builder b;

    const unsigned base_reg = 22;  // s0: sandbox base
    b.li(base_reg, k_sandbox_base);
    // Seed some registers with random values.
    for (unsigned r = 4; r <= 21; ++r) {
        b.li(r, rng.next_u32());
    }
    if (opt.with_fp) {
        for (unsigned f = 0; f < 16; ++f) {
            b.li(4, rng.next_u32() & 0x7FFF);
            b.emit_r(op::fcvt_s_w, f, 4, 0);
        }
        b.li(4, rng.next_u32());
    }

    for (unsigned blk = 0; blk < opt.blocks; ++blk) {
        // Optionally wrap this block in a counted loop (s1 = counter).
        const bool looped = opt.with_branches && rng.chance(1, 3);
        program_builder::label loop_head{};
        if (looped) {
            b.li(23, opt.loop_count);  // s1
            loop_head = b.here();
        }

        // Hazard-template blocks replace the uniform random mix for a
        // third of the blocks when the corresponding knob is on.
        const unsigned shape =
            (opt.hazard_load_use || opt.hazard_branch_dense)
                ? static_cast<unsigned>(rng.next_below(3))
                : 0;
        if (opt.hazard_load_use && shape == 1) {
            emit_load_use_chain(b, rng, opt.block_len, base_reg);
        } else if (opt.hazard_branch_dense && opt.with_branches && shape == 2) {
            emit_branch_dense(b, rng, opt.block_len);
        } else {
            emit_random_block(b, rng, opt, base_reg);
        }
        if (looped) {
            b.emit_i(op::addi, 23, 23, -1);
            b.emit_branch(op::bne, 23, 0, loop_head);
        }
    }

    // Checksum every register into a0 (multiply-accumulate hash) and print
    // it, so engines cannot agree by accident.
    b.emit_i(op::addi, 24, 0, 0);   // s2 = 0
    b.emit_i(op::addi, 25, 0, 31);  // s3 = hash multiplier
    for (unsigned r = 4; r <= 21; ++r) {
        b.emit_r(op::mul, 24, 24, 25);
        b.emit_r(op::add_r, 24, 24, r);
    }
    b.mv(4, 24);
    b.syscall(2);  // print checksum
    b.syscall(0);  // exit
    return b.finish();
}

}  // namespace osm::workloads
