#include "workloads/randprog_cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace osm::workloads {

namespace {

unsigned parse_count(const char* flag, int argc, char** argv, int& i) {
    if (i + 1 >= argc) {
        throw std::invalid_argument(std::string(flag) + " needs a value");
    }
    char* end = nullptr;
    const unsigned long v = std::strtoul(argv[++i], &end, 0);
    if (end == argv[i] || *end != '\0' || v == 0 || v > 1'000'000) {
        throw std::invalid_argument(std::string(flag) + ": bad value '" +
                                    argv[i] + "'");
    }
    return static_cast<unsigned>(v);
}

}  // namespace

bool parse_randprog_flag(int argc, char** argv, int& i, randprog_options& opt) {
    const std::string arg = argv[i];
    if (arg == "--rand-blocks") opt.blocks = parse_count(argv[i], argc, argv, i);
    else if (arg == "--rand-block-len") opt.block_len = parse_count(argv[i], argc, argv, i);
    else if (arg == "--rand-loops") opt.loop_count = parse_count(argv[i], argc, argv, i);
    else if (arg == "--rand-fp") opt.with_fp = true;
    else if (arg == "--rand-no-fp") opt.with_fp = false;
    else if (arg == "--rand-no-mul-div") opt.with_mul_div = false;
    else if (arg == "--rand-no-memory") opt.with_memory = false;
    else if (arg == "--rand-no-branches") opt.with_branches = false;
    else if (arg == "--rand-hazard-load-use") opt.hazard_load_use = true;
    else if (arg == "--rand-hazard-branches") opt.hazard_branch_dense = true;
    else if (arg == "--rand-harts") {
        opt.harts = parse_count(argv[i], argc, argv, i);
        if (opt.harts > 8) {
            throw std::invalid_argument("--rand-harts: at most 8 harts");
        }
    }
    else if (arg == "--rand-shared-contention") opt.shared_contention = true;
    else if (arg == "--rand-fence-dense") opt.fence_dense = true;
    else if (arg == "--rand-lrsc-loops") opt.lrsc_loops = true;
    else return false;
    return true;
}

std::string randprog_flags_help() {
    return
        "  --rand-blocks N          straight-line blocks (default 12)\n"
        "  --rand-block-len N       instructions per block (default 10)\n"
        "  --rand-loops N           counted-loop trip count (default 3)\n"
        "  --rand-fp                include FP arithmetic/compare/convert\n"
        "  --rand-no-mul-div        drop integer multiply/divide\n"
        "  --rand-no-memory         drop loads/stores\n"
        "  --rand-no-branches       straight-line code only\n"
        "  --rand-hazard-load-use   load->use dependence-chain blocks\n"
        "  --rand-hazard-branches   branch-dense blocks\n"
        "  --rand-harts N           multi-hart program with N harts (max 8)\n"
        "  --rand-shared-contention shared-word lw/sw traffic between harts\n"
        "  --rand-fence-dense       fences after roughly half the shared accesses\n"
        "  --rand-lrsc-loops        bounded lr.w/sc.w retry increment loops\n";
}

std::string randprog_flags(const randprog_options& opt) {
    const randprog_options def{};
    std::string s;
    auto add = [&s](const std::string& f) {
        if (!s.empty()) s += ' ';
        s += f;
    };
    if (opt.blocks != def.blocks) add("--rand-blocks " + std::to_string(opt.blocks));
    if (opt.block_len != def.block_len) add("--rand-block-len " + std::to_string(opt.block_len));
    if (opt.loop_count != def.loop_count) add("--rand-loops " + std::to_string(opt.loop_count));
    if (opt.with_fp) add("--rand-fp");
    if (!opt.with_mul_div) add("--rand-no-mul-div");
    if (!opt.with_memory) add("--rand-no-memory");
    if (!opt.with_branches) add("--rand-no-branches");
    if (opt.hazard_load_use) add("--rand-hazard-load-use");
    if (opt.hazard_branch_dense) add("--rand-hazard-branches");
    if (opt.harts != def.harts) add("--rand-harts " + std::to_string(opt.harts));
    if (opt.shared_contention) add("--rand-shared-contention");
    if (opt.fence_dense) add("--rand-fence-dense");
    if (opt.lrsc_loops) add("--rand-lrsc-loops");
    return s;
}

}  // namespace osm::workloads
