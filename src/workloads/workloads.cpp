#include "workloads/workloads.hpp"

#include "isa/assembler.hpp"

namespace osm::workloads {

namespace {

std::string num(std::uint64_t v) { return std::to_string(v); }

/// Emit an LCG fill loop writing `words` pseudo-random words (masked to 15
/// bits, always positive) starting at `base`.  `tag` keeps labels unique.
std::string fill(const std::string& tag, std::uint32_t base, unsigned words,
                 std::uint32_t seed) {
    std::string s;
    s += "        li t0, " + num(base) + "\n";
    s += "        li t1, " + num(words) + "\n";
    s += "        li t2, " + num(seed) + "\n";
    s += "        li t5, 0x41C6\n";  // LCG multiplier (fits logical imm path)
    s += "fill_" + tag + ":\n";
    s += "        mul t2, t2, t5\n";
    s += "        addi t2, t2, 12345\n";
    s += "        srli t4, t2, 7\n";
    s += "        li t6, 0x7FFF\n";
    s += "        and t4, t4, t6\n";
    s += "        sw t4, 0(t0)\n";
    s += "        addi t0, t0, 4\n";
    s += "        addi t1, t1, -1\n";
    s += "        bne t1, zero, fill_" + tag + "\n";
    return s;
}

workload assemble_workload(std::string name, const std::string& src) {
    return {std::move(name), isa::assemble(src)};
}

}  // namespace

// ---------------------------------------------------------------------------
// GSM 06.10 surrogate: LPC short-term analysis/synthesis filtering.
// ---------------------------------------------------------------------------

namespace {
std::string gsm_filter_core(unsigned frames, bool encode) {
    std::string s;
    s += fill("in", 0x20000, 256, 0xBEEF);
    s += fill("h", 0x21000, 8, 0x1234);
    // a0 = out, a1 = in, a2 = h
    s += R"(
        li a0, 0x22000
        li a1, 0x20000
        li a2, 0x21000
        li s0, )" + num(frames) + R"(   ; frames
frame:  li s1, 0              ; i
iloop:  li s2, 0              ; j
        li a3, 0              ; acc
jloop:  add t2, s1, s2
        andi t2, t2, 255
        slli t3, t2, 2
        add t3, t3, a1
        lw t4, 0(t3)          ; s[i+j]
        slli t5, s2, 2
        add t5, t5, a2
        lw t6, 0(t5)          ; h[j]
        mul t7, t4, t6
        add a3, a3, t7
        addi s2, s2, 1
        slti t8, s2, 8
        bne t8, zero, jloop
        li t9, 8388607        ; saturation
        blt a3, t9, nosat1
        mv a3, t9
nosat1: srai a3, a3, 6
        andi t3, s1, 255
        slli t3, t3, 2
        add t3, t3, a0
        sw a3, 0(t3)
        addi s1, s1, 1
        slti t8, s1, 160
        bne t8, zero, iloop
)";
    if (encode) {
        // Residual-energy pass with a division per 16 samples.
        s += R"(
        li s1, 0
        li s3, 0              ; energy
eloop:  slli t3, s1, 2
        add t4, t3, a0
        lw t5, 0(t4)
        add t4, t3, a1
        lw t6, 0(t4)
        sub t7, t6, t5
        mul t7, t7, t7
        add s3, s3, t7
        andi t8, s1, 15
        bne t8, zero, skipdiv
        addi t9, s1, 1
        div s4, s3, t9        ; quantizer step estimate
skipdiv:
        addi s1, s1, 1
        slti t8, s1, 160
        bne t8, zero, eloop
)";
    }
    s += R"(
        addi s0, s0, -1
        bne s0, zero, frame
        halt
)";
    return s;
}
}  // namespace

workload make_gsm_dec(unsigned scale) {
    return assemble_workload("gsm/dec", gsm_filter_core(12 * scale, false));
}

workload make_gsm_enc(unsigned scale) {
    return assemble_workload("gsm/enc", gsm_filter_core(10 * scale, true));
}

// ---------------------------------------------------------------------------
// G.721 surrogate: ADPCM predictor (branch-heavy integer code).
// ---------------------------------------------------------------------------

namespace {
std::string g721_core(unsigned samples, bool encode) {
    std::string s;
    s += fill("in", 0x20000, 256, 0xACE1);
    s += fill("stab", 0x21000, 64, 0x777);
    // s3 = step index, s4 = predictor, s5 = sample counter
    s += R"(
        li a1, 0x20000
        li a2, 0x21000
        li s3, 0
        li s4, 0
        li s5, )" + num(samples) + R"(
sample: andi t0, s5, 255
        slli t0, t0, 2
        add t0, t0, a1
        lw t1, 0(t0)          ; x
        sub t2, t1, s4        ; diff
        li s6, 0              ; sign
        bge t2, zero, pos
        li s6, 1
        sub t2, zero, t2
pos:    andi t3, s3, 63
        slli t3, t3, 2
        add t3, t3, a2
        lw t4, 0(t3)          ; step
        li s7, 0              ; quantized code
)";
    if (encode) {
        s += R"(
        blt t2, t4, q1
        ori s7, s7, 4
        sub t2, t2, t4
q1:     srai t4, t4, 1
        blt t2, t4, q2
        ori s7, s7, 2
        sub t2, t2, t4
q2:     srai t4, t4, 1
        blt t2, t4, q3
        ori s7, s7, 1
q3:
)";
    } else {
        s += R"(
        andi s7, t1, 7        ; decode path: code comes from the stream
        srai t4, t4, 1
)";
    }
    s += R"(
        ; reconstruct: d = ((2*code + 1) * step) >> 3
        slli t5, s7, 1
        addi t5, t5, 1
        mul t5, t5, t4
        srai t5, t5, 3
        beq s6, zero, addp
        sub s4, s4, t5
        j updix
addp:   add s4, s4, t5
updix:  ; clamp predictor to 16 bits
        li t6, 32767
        blt s4, t6, cl1
        mv s4, t6
cl1:    li t6, -32768
        bge s4, t6, cl2
        mv s4, t6
cl2:    ; index update: +2 for big codes, -1 otherwise; clamp 0..48
        slti t7, s7, 4
        beq t7, zero, big
        addi s3, s3, -1
        bge s3, zero, ixok
        li s3, 0
        j ixok
big:    addi s3, s3, 2
        li t8, 48
        blt s3, t8, ixok
        mv s3, t8
ixok:   addi s5, s5, -1
        bne s5, zero, sample
        halt
)";
    return s;
}
}  // namespace

workload make_g721_dec(unsigned scale) {
    return assemble_workload("g721/dec", g721_core(9000 * scale, false));
}

workload make_g721_enc(unsigned scale) {
    return assemble_workload("g721/enc", g721_core(8000 * scale, true));
}

// ---------------------------------------------------------------------------
// MPEG-2 surrogate: 8x8 block DCT/IDCT rows over a frame buffer.
// ---------------------------------------------------------------------------

namespace {
std::string mpeg2_core(unsigned blocks, bool encode) {
    std::string s;
    s += fill("frame", 0x40000, 4096, 0xD1CE);  // 16 KiB frame buffer
    s += fill("cos", 0x21000, 64, 0xC05);
    if (encode) s += fill("ref", 0x50000, 4096, 0x0DD5);
    s += R"(
        li a1, 0x40000        ; frame
        li a2, 0x21000        ; cos table
        li a4, 0x44000        ; coefficient output
        li s0, )" + num(blocks) + R"(   ; blocks
block:  ; block base: cycle through 64 blocks of 64 words
        addi t0, s0, 0
        andi t0, t0, 63
        slli t0, t0, 8        ; *256 bytes
        add s1, t0, a1        ; blk base
        li s2, 0              ; row
row:    li s3, 0              ; u
uloop:  li s4, 0              ; x
        li s5, 0              ; acc
xloop:  slli t1, s4, 2
        slli t2, s2, 5        ; row*32 bytes
        add t1, t1, t2
        add t1, t1, s1
        lw t3, 0(t1)          ; blk[row][x]
        slli t4, s3, 5
        slli t5, s4, 2
        add t4, t4, t5
        add t4, t4, a2
        lw t6, 0(t4)          ; cos[u][x]
        mul t7, t3, t6
        add s5, s5, t7
        addi s4, s4, 1
        slti t8, s4, 8
        bne t8, zero, xloop
        srai s5, s5, 10
        slli t1, s3, 2
        slli t2, s2, 5
        add t1, t1, t2
        add t1, t1, a4
        sw s5, 0(t1)          ; coef[row][u]
        addi s3, s3, 1
        slti t8, s3, 8
        bne t8, zero, uloop
        addi s2, s2, 1
        slti t8, s2, 8
        bne t8, zero, row
)";
    if (encode) {
        // Motion-search SAD over the co-located reference block.
        s += R"(
        li s6, 0x50000
        addi t0, s0, 0
        andi t0, t0, 63
        slli t0, t0, 8
        add s6, s6, t0        ; ref block base
        li s7, 0              ; i
        li s8, 0              ; sad
sad:    slli t1, s7, 2
        add t2, t1, s1
        lw t3, 0(t2)
        add t2, t1, s6
        lw t4, 0(t2)
        sub t5, t3, t4
        bge t5, zero, absok
        sub t5, zero, t5
absok:  add s8, s8, t5
        addi s7, s7, 1
        slti t8, s7, 64
        bne t8, zero, sad
)";
    }
    s += R"(
        addi s0, s0, -1
        bne s0, zero, block
        halt
)";
    return s;
}
}  // namespace

workload make_mpeg2_dec(unsigned scale) {
    return assemble_workload("mpeg2/dec", mpeg2_core(220 * scale, false));
}

workload make_mpeg2_enc(unsigned scale) {
    return assemble_workload("mpeg2/enc", mpeg2_core(150 * scale, true));
}

std::vector<workload> mediabench_suite(unsigned scale) {
    std::vector<workload> out;
    out.push_back(make_gsm_dec(scale));
    out.push_back(make_gsm_enc(scale));
    out.push_back(make_g721_dec(scale));
    out.push_back(make_g721_enc(scale));
    out.push_back(make_mpeg2_dec(scale));
    out.push_back(make_mpeg2_enc(scale));
    return out;
}

// ---------------------------------------------------------------------------
// SPECint-like mix.
// ---------------------------------------------------------------------------

workload make_compress(unsigned scale) {
    std::string s;
    s += fill("data", 0x20000, 1024, 0xC0DE);
    s += fill("htab", 0x30000, 1024, 0x0);
    s += R"(
        li a1, 0x20000
        li a2, 0x30000
        li s0, )" + num(60000 * scale) + R"(   ; input length
        li s1, 0              ; position
        li s2, 0              ; hash
        li s3, 0              ; matches
cloop:  andi t0, s1, 1023
        slli t0, t0, 2
        add t0, t0, a1
        lw t1, 0(t0)          ; c = data[i]
        slli t2, s2, 5
        xor t2, t2, t1
        li t7, 1023
        and s2, t2, t7        ; h = ((h<<5)^c) & 1023
        slli t3, s2, 2
        add t3, t3, a2
        lw t4, 0(t3)          ; cand = htab[h]
        sw s1, 0(t3)          ; htab[h] = i
        beq t4, zero, nomatch
        andi t5, t4, 1023
        slli t5, t5, 2
        add t5, t5, a1
        lw t6, 0(t5)
        bne t6, t1, nomatch
        addi s3, s3, 1
nomatch:
        addi s1, s1, 1
        blt s1, s0, cloop
        halt
)";
    return assemble_workload("spec/compress", s);
}

workload make_dijkstra(unsigned scale) {
    const unsigned n = 48;
    std::string s;
    s += fill("adj", 0x20000, n * n, 0xD175);
    s += fill("dist", 0x30000, n, 0x7F);
    s += R"(
        li a1, 0x20000        ; adjacency matrix
        li a2, 0x30000        ; dist[]
        li a3, 0x31000        ; visited[]
        li s9, )" + num(4 * scale) + R"(   ; repetitions
rep:    ; reset dist/visited
        li t0, 0
init:   slli t1, t0, 2
        add t2, t1, a2
        li t3, 0x7FFF
        sw t3, 0(t2)
        add t2, t1, a3
        sw zero, 0(t2)
        addi t0, t0, 1
        slti t4, t0, )" + num(n) + R"(
        bne t4, zero, init
        sw zero, 0(a2)        ; dist[0] = 0
        li s0, 0              ; iteration
outer:  ; select unvisited min
        li s1, -1             ; best node
        li s2, 0x7FFF         ; best dist (use sentinel; strictly-less scan)
        li t0, 0
scan:   slli t1, t0, 2
        add t2, t1, a3
        lw t3, 0(t2)
        bne t3, zero, next
        add t2, t1, a2
        lw t4, 0(t2)
        bge t4, s2, next
        mv s2, t4
        mv s1, t0
next:   addi t0, t0, 1
        slti t5, t0, )" + num(n) + R"(
        bne t5, zero, scan
        blt s1, zero, done_rep
        ; mark visited, relax row
        slli t1, s1, 2
        add t2, t1, a3
        li t3, 1
        sw t3, 0(t2)
        li t0, 0
relax:  slli t4, s1, 2
        li t9, )" + num(n) + R"(
        mul t4, t4, t9
        slli t5, t0, 2
        add t4, t4, t5
        add t4, t4, a1
        lw t6, 0(t4)          ; w(s1,t0)
        add t6, t6, s2        ; dist[s1] + w
        slli t7, t0, 2
        add t7, t7, a2
        lw t8, 0(t7)
        bge t6, t8, norelax
        sw t6, 0(t7)
norelax:
        addi t0, t0, 1
        slti t5, t0, )" + num(n) + R"(
        bne t5, zero, relax
        addi s0, s0, 1
        slti t5, s0, )" + num(n) + R"(
        bne t5, zero, outer
done_rep:
        addi s9, s9, -1
        bne s9, zero, rep
        halt
)";
    return assemble_workload("spec/dijkstra", s);
}

workload make_sort(unsigned scale) {
    std::string s;
    s += R"(
        li s9, )" + num(6 * scale) + R"(   ; repetitions
rep:
)";
    s += fill("arr", 0x20000, 256, 0x5027);
    s += R"(
        li a1, 0x20000
        li s0, 1              ; i
isort:  slli t0, s0, 2
        add t0, t0, a1
        lw t1, 0(t0)          ; key
        addi t2, s0, -1       ; j
inner:  blt t2, zero, place
        slli t3, t2, 2
        add t3, t3, a1
        lw t4, 0(t3)
        bge t1, t4, place
        addi t5, t3, 4
        sw t4, 0(t5)
        addi t2, t2, -1
        j inner
place:  addi t6, t2, 1
        slli t6, t6, 2
        add t6, t6, a1
        sw t1, 0(t6)
        addi s0, s0, 1
        slti t7, s0, 256
        bne t7, zero, isort
        addi s9, s9, -1
        bne s9, zero, rep
        halt
)";
    return assemble_workload("spec/sort", s);
}


workload make_crc32(unsigned scale) {
    std::string s;
    s += fill("data", 0x20000, 2048, 0xC12C);
    s += R"(
        ; build the CRC table: t[i] = classic reflected polynomial steps
        li a2, 0x30000        ; table
        li t0, 0
tab:    mv t1, t0
        li t2, 8
tbit:   andi t3, t1, 1
        srli t1, t1, 1
        beq t3, zero, noxor
        li t4, 0xEDB88320
        xor t1, t1, t4
noxor:  addi t2, t2, -1
        bne t2, zero, tbit
        slli t5, t0, 2
        add t5, t5, a2
        sw t1, 0(t5)
        addi t0, t0, 1
        slti t6, t0, 256
        bne t6, zero, tab
        ; stream the data through the table
        li a1, 0x20000
        li s0, )" + num(30000 * scale) + R"(
        li s1, 0              ; position
        li s2, 0xFFFFFFFF     ; crc
crc:    andi t0, s1, 2047
        slli t0, t0, 2
        add t0, t0, a1
        lw t1, 0(t0)          ; next word (use low byte)
        andi t1, t1, 255
        xor t2, s2, t1
        andi t2, t2, 255
        slli t2, t2, 2
        add t2, t2, a2
        lw t3, 0(t2)          ; table[(crc ^ b) & 0xff]
        srli t4, s2, 8
        xor s2, t3, t4
        addi s1, s1, 1
        blt s1, s0, crc
        halt
)";
    return assemble_workload("spec/crc32", s);
}

workload make_fft(unsigned scale) {
    std::string s;
    s += fill("re", 0x20000, 256, 0xF0F7);
    s += fill("im", 0x21000, 256, 0x1F57);
    s += fill("tw", 0x22000, 256, 0x7117);
    // Fixed-point butterflies: log2(256)=8 passes over stride-halved pairs.
    s += R"(
        li a1, 0x20000
        li a2, 0x21000
        li a3, 0x22000
        li s9, )" + num(12 * scale) + R"(   ; repetitions
rep:    li s0, 128            ; stride
pass:   li s1, 0              ; i
bfly:   add t0, s1, s0        ; partner index
        andi t0, t0, 255
        slli t1, s1, 2
        slli t2, t0, 2
        add t3, t1, a1
        lw t4, 0(t3)          ; re[i]
        add t5, t2, a1
        lw t6, 0(t5)          ; re[j]
        add t7, t1, a3
        lw t8, 0(t7)          ; twiddle
        mul t9, t6, t8
        srai t9, t9, 12
        add s2, t4, t9        ; re[i]'
        sub s3, t4, t9        ; re[j]'
        sw s2, 0(t3)
        sw s3, 0(t5)
        ; imaginary part, same butterfly
        add t3, t1, a2
        lw t4, 0(t3)
        add t5, t2, a2
        lw t6, 0(t5)
        mul t9, t6, t8
        srai t9, t9, 12
        add s2, t4, t9
        sub s3, t4, t9
        sw s2, 0(t3)
        sw s3, 0(t5)
        addi s1, s1, 1
        slti t0, s1, 256
        bne t0, zero, bfly
        srli s0, s0, 1
        bne s0, zero, pass
        addi s9, s9, -1
        bne s9, zero, rep
        halt
)";
    return assemble_workload("spec/fft", s);
}

workload make_strsearch(unsigned scale) {
    std::string s;
    s += fill("text", 0x20000, 2048, 0x7357);
    s += R"(
        li a1, 0x20000
        li s9, )" + num(25 * scale) + R"(   ; repetitions
rep:    li s0, 0              ; position (bytes)
        li s1, 8100           ; limit
        li s2, 0              ; matches
        li s3, 0x4D           ; pattern byte 0
        li s4, 0x3A           ; pattern byte 1
scan:   add t0, s0, a1
        lbu t1, 0(t0)
        bne t1, s3, next
        lbu t2, 1(t0)
        bne t2, s4, next
        addi s2, s2, 1        ; two-byte match
next:   addi s0, s0, 1
        blt s0, s1, scan
        addi s9, s9, -1
        bne s9, zero, rep
        halt
)";
    return assemble_workload("spec/strsearch", s);
}

std::vector<workload> mixed_suite(unsigned scale) {
    std::vector<workload> out;
    out.push_back(make_gsm_dec(scale));
    out.push_back(make_g721_enc(scale));
    out.push_back(make_mpeg2_dec(scale));
    out.push_back(make_compress(scale));
    out.push_back(make_dijkstra(scale));
    out.push_back(make_sort(scale));
    return out;
}

workload make_fp_kernel(unsigned scale) {
    std::string s;
    s += fill("ia", 0x20000, 256, 0xF00D);
    s += fill("ib", 0x21000, 256, 0xFEED);
    s += R"(
        li a1, 0x20000
        li a2, 0x21000
        li a3, 0x22000        ; float outputs
        ; convert both arrays to float in place at a3 / a3+0x1000
        li t0, 0
cvt:    slli t1, t0, 2
        add t2, t1, a1
        lw t3, 0(t2)
        fcvt.s.w f1, t3
        add t2, t1, a3
        fsw f1, 0(t2)
        add t2, t1, a2
        lw t3, 0(t2)
        fcvt.s.w f2, t3
        add t2, t1, a3
        fsw f2, 0x1000(t2)
        addi t0, t0, 1
        slti t4, t0, 256
        bne t4, zero, cvt
        li s0, )" + num(400 * scale) + R"(   ; passes
pass:   li t0, 0
        fmv.w.x f10, zero     ; dot = 0.0
dot:    slli t1, t0, 2
        add t2, t1, a3
        flw f1, 0(t2)
        flw f2, 0x1000(t2)
        fmul f3, f1, f2
        fadd f10, f10, f3
        addi t0, t0, 1
        slti t4, t0, 256
        bne t4, zero, dot
        ; accumulate into integer checksum when dot > threshold
        fcvt.w.s t5, f10
        srai t5, t5, 8
        add s1, s1, t5
        addi s0, s0, -1
        bne s0, zero, pass
        halt
)";
    return assemble_workload("fp/dot", s);
}

}  // namespace osm::workloads
