// Synthetic benchmark workloads standing in for the paper's MediaBench and
// SPECint 2000 programs (see DESIGN.md substitution log).  Each generator
// emits a VR32 assembly kernel with the same character as the original:
//
//   gsm/dec, gsm/enc     — GSM 06.10-style LPC short-term filtering:
//                          multiply-accumulate over small arrays with
//                          saturation branches (enc adds a residual-energy
//                          pass with divisions);
//   g721/dec, g721/enc   — G.721-style ADPCM predictor: table lookups,
//                          sign/magnitude branches, shifts, saturation
//                          (branch-heavy integer code);
//   mpeg2/dec, mpeg2/enc — 8x8 block IDCT/DCT-style transforms over a
//                          frame-sized buffer (multiply- and memory-heavy;
//                          enc adds a motion-search SAD loop);
//   compress             — LZ-style hash/match loop (SPECint-like);
//   dijkstra             — array-based shortest path relaxation;
//   sort                 — in-place insertion sort (data-dependent branches).
//
// All input data is generated in-program by a small LCG fill loop, so every
// engine sees bit-identical inputs with no external files.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "isa/program.hpp"

namespace osm::workloads {

/// A named runnable workload.
struct workload {
    std::string name;
    isa::program_image image;
};

// MediaBench surrogates (paper Table 1 rows).  `scale` multiplies the
// outer iteration count (1 = a few hundred thousand dynamic instructions).
workload make_gsm_dec(unsigned scale = 1);
workload make_gsm_enc(unsigned scale = 1);
workload make_g721_dec(unsigned scale = 1);
workload make_g721_enc(unsigned scale = 1);
workload make_mpeg2_dec(unsigned scale = 1);
workload make_mpeg2_enc(unsigned scale = 1);

/// The six Table-1 workloads in paper order.
std::vector<workload> mediabench_suite(unsigned scale = 1);

// SPECint-like mix (paper §5.2 "benchmark mix from MediaBench and
// SPECint 2000").
workload make_compress(unsigned scale = 1);
workload make_dijkstra(unsigned scale = 1);
workload make_sort(unsigned scale = 1);
workload make_crc32(unsigned scale = 1);     ///< table-driven CRC (shift/xor/load)
workload make_fft(unsigned scale = 1);       ///< fixed-point butterfly passes
workload make_strsearch(unsigned scale = 1); ///< byte-wise pattern scan

/// MediaBench + SPECint-like mix used for the P750 experiments.
std::vector<workload> mixed_suite(unsigned scale = 1);

/// Tiny FP kernel (dot products + conversions) exercising the FPU path.
workload make_fp_kernel(unsigned scale = 1);

}  // namespace osm::workloads
