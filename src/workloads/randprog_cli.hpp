// Shared command-line surface for the random-program generator.
//
// osm-run and osm-fuzz both expose the generator's knobs; keeping the flag
// parsing (and the inverse: rendering options back to a canonical flag
// string for reproducer metadata) in one place guarantees the two tools
// never drift apart.
#pragma once

#include <string>

#include "workloads/randprog.hpp"

namespace osm::workloads {

/// If argv[i] is a --rand-* generator flag, apply it to `opt`, advance `i`
/// past any consumed value, and return true; otherwise leave both alone.
/// Throws std::invalid_argument for a flag with a missing/garbage value.
bool parse_randprog_flag(int argc, char** argv, int& i, randprog_options& opt);

/// Usage text block listing every flag parse_randprog_flag understands.
std::string randprog_flags_help();

/// Canonical flag string for `opt` (only non-default knobs, stable order).
/// parse_randprog_flag round-trips it; reproducer metadata records it.
std::string randprog_flags(const randprog_options& opt);

}  // namespace osm::workloads
