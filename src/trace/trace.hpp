// Tracing and observability for OSM models.
//
// Two complementary views:
//   * pipeline_tracer — samples every OSM's state at the end of each cycle
//     and renders a pipeview-style occupancy chart (rows = operation slots,
//     columns = cycles), the classic way to eyeball hazards;
//   * transition_log  — records individual committed transitions through
//     the director's observer hook, with an optional filter, for
//     fine-grained debugging and for asserting scheduling properties in
//     tests.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/director.hpp"
#include "core/sim_kernel.hpp"

namespace osm::trace {

/// Cycle-by-cycle state sampling of every OSM registered with a director.
class pipeline_tracer {
public:
    /// Attaches an end-of-cycle sampling hook to `kern`.  Tracing is off
    /// until start() and may be bounded by `max_cycles` to cap memory.
    pipeline_tracer(core::director& dir, core::sim_kernel& kern,
                    std::size_t max_cycles = 4096);

    void start() noexcept { active_ = true; }
    void stop() noexcept { active_ = false; }
    void clear();

    /// Number of sampled cycles.
    std::size_t cycles() const noexcept { return samples_.size(); }

    /// State of OSM row `r` at sampled cycle `c` (single-character cell:
    /// first letter of the state name; '.' for the initial state).
    char cell(std::size_t r, std::size_t c) const;

    /// Render the last `last_n` sampled cycles as an ASCII chart.
    std::string render(std::size_t last_n = 64) const;

private:
    core::director& dir_;
    bool active_ = false;
    std::size_t max_cycles_;
    std::vector<std::string> rows_;          // OSM names (fixed at attach)
    std::vector<std::vector<char>> samples_;  // per cycle: one char per OSM
    std::uint64_t first_cycle_ = 0;
    const core::sim_kernel* kern_ = nullptr;
};

/// One committed transition.
struct transition_record {
    std::uint64_t seq = 0;  ///< global commit order
    std::string osm_name;
    std::string from;
    std::string to;
    std::int32_t edge = -1;
};

/// Records transitions via director::set_observer.
class transition_log {
public:
    using filter_fn = std::function<bool(const core::osm&, const core::graph_edge&)>;

    /// Installs itself as the director's observer (replacing any previous
    /// observer).  `filter` (optional) selects which transitions to keep.
    explicit transition_log(core::director& dir, filter_fn filter = nullptr,
                            std::size_t capacity = 65536);
    ~transition_log();
    transition_log(const transition_log&) = delete;
    transition_log& operator=(const transition_log&) = delete;

    const std::vector<transition_record>& records() const noexcept { return records_; }
    std::uint64_t total_transitions() const noexcept { return total_; }
    void clear();

    /// Count of recorded transitions along `from` -> `to`.
    std::size_t count(const std::string& from, const std::string& to) const;

private:
    core::director& dir_;
    filter_fn filter_;
    std::size_t capacity_;
    std::vector<transition_record> records_;
    std::uint64_t total_ = 0;
};

}  // namespace osm::trace
