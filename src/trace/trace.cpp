#include "trace/trace.hpp"

#include <sstream>

namespace osm::trace {

pipeline_tracer::pipeline_tracer(core::director& dir, core::sim_kernel& kern,
                                 std::size_t max_cycles)
    : dir_(dir), max_cycles_(max_cycles), kern_(&kern) {
    for (const core::osm* m : dir.osms()) rows_.push_back(m->name());
    kern.on_cycle_end([this] {
        if (!active_ || samples_.size() >= max_cycles_) return;
        if (samples_.empty() && kern_ != nullptr) first_cycle_ = kern_->cycles();
        std::vector<char> snap;
        snap.reserve(dir_.osms().size());
        for (const core::osm* m : dir_.osms()) {
            snap.push_back(m->at_initial() ? '.' : m->state_name()[0]);
        }
        samples_.push_back(std::move(snap));
    });
}

void pipeline_tracer::clear() {
    samples_.clear();
    first_cycle_ = 0;
}

char pipeline_tracer::cell(std::size_t r, std::size_t c) const {
    return samples_.at(c).at(r);
}

std::string pipeline_tracer::render(std::size_t last_n) const {
    std::ostringstream os;
    const std::size_t n = samples_.size();
    const std::size_t begin = n > last_n ? n - last_n : 0;
    os << "cycle " << (first_cycle_ + begin) << "..+" << (n - begin) << "\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
        os.width(8);
        os << std::left << rows_[r];
        for (std::size_t c = begin; c < n; ++c) {
            os << (r < samples_[c].size() ? samples_[c][r] : '?');
        }
        os << "\n";
    }
    return os.str();
}

transition_log::transition_log(core::director& dir, filter_fn filter,
                               std::size_t capacity)
    : dir_(dir), filter_(std::move(filter)), capacity_(capacity) {
    dir_.set_observer([this](const core::osm& m, const core::graph_edge& e) {
        ++total_;
        if (filter_ && !filter_(m, e)) return;
        if (records_.size() >= capacity_) return;
        transition_record rec;
        rec.seq = total_;
        rec.osm_name = m.name();
        rec.from = m.graph().state_name(e.from);
        rec.to = m.graph().state_name(e.to);
        rec.edge = e.index;
        records_.push_back(std::move(rec));
    });
}

transition_log::~transition_log() { dir_.set_observer(nullptr); }

void transition_log::clear() {
    records_.clear();
    total_ = 0;
}

std::size_t transition_log::count(const std::string& from, const std::string& to) const {
    std::size_t n = 0;
    for (const transition_record& r : records_) {
        if (r.from == from && r.to == to) ++n;
    }
    return n;
}

}  // namespace osm::trace
