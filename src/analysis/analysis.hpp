// Model analysis (paper §6 "Discussions"): because OSM graphs are
// declarative, properties can be extracted mechanically —
//   * operand latencies and reservation tables for a retargetable
//     compiler's scheduler;
//   * an abstract-state-machine (ASM) style textual rendering and a
//     Graphviz export for documentation/verification;
//   * structural lint: unreachable states, edges that can never fire,
//     token leaks (paths that return to I holding tokens);
//   * static resource-dependency analysis over the managers referenced by
//     a graph (conservative deadlock-freedom evidence).
#pragma once

#include <string>
#include <vector>

#include "core/osm_graph.hpp"

namespace osm::analysis {

/// One row of a reservation table: the resources (managers) an operation
/// holds during each step of one path through the state machine.
struct reservation_step {
    std::string state;                      ///< state occupied this step
    std::vector<std::string> held_tokens;   ///< manager names held
};

/// A path through the OSM from the initial state back to it, plus derived
/// scheduler-facing properties.
struct operation_timing {
    std::vector<reservation_step> table;
    int result_latency = -1;   ///< steps from start until the writeback step
};

/// Extract the reservation table along the highest-priority cycle
/// I -> ... -> I.  `writeback_manager` (may be empty) names the manager
/// whose release marks the result latency.
operation_timing extract_reservation_table(const core::osm_graph& g,
                                           const std::string& writeback_manager = "");

/// Findings from structural lint.
struct lint_report {
    std::vector<std::string> unreachable_states;
    std::vector<std::string> sink_states;        ///< no outgoing edges (non-I)
    std::vector<std::string> token_leaks;        ///< edges into I that may retain tokens
    std::vector<std::string> notes;

    bool clean() const {
        return unreachable_states.empty() && sink_states.empty() && token_leaks.empty();
    }
};

/// Statically lint a graph.
lint_report lint(const core::osm_graph& g);

/// Render the OSM in Graphviz dot syntax (states as nodes, edges labeled
/// with their primitives and priorities).
std::string to_dot(const core::osm_graph& g);

/// Render the OSM as guarded-update rules in an abstract-state-machine
/// (ASM) flavoured textual formalism (paper §6: "the state machines in the
/// model can be expressed in the ASM formalism").
std::string to_asm_rules(const core::osm_graph& g);

/// Managers a graph transacts with, in first-reference order.
std::vector<const core::token_manager*> referenced_managers(const core::osm_graph& g);

/// Conservative static check: true when no cycle of allocate-before-release
/// dependencies exists between managers along any single path of the graph
/// (a sufficient condition for the director never aborting on deadlock when
/// all OSMs share this graph and ranking is by age).
bool allocation_order_consistent(const core::osm_graph& g);

}  // namespace osm::analysis
