#include "analysis/analysis.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <set>
#include <sstream>

namespace osm::analysis {

using core::graph_edge;
using core::osm_graph;
using core::prim_kind;
using core::primitive;
using core::state_id;
using core::token_manager;

namespace {

const char* kind_name(prim_kind k) {
    switch (k) {
        case prim_kind::allocate: return "allocate";
        case prim_kind::inquire: return "inquire";
        case prim_kind::release: return "release";
        case prim_kind::discard: return "discard";
        case prim_kind::discard_all: return "discard_all";
    }
    return "?";
}

std::string prim_text(const primitive& p) {
    std::string s = kind_name(p.kind);
    if (p.mgr != nullptr) {
        s += '(';
        s += p.mgr->name();
        if (p.ident.slot >= 0) {
            s += ", slot" + std::to_string(p.ident.slot);
        } else {
            s += ", " + std::to_string(p.ident.fixed);
        }
        s += ')';
    }
    return s;
}

/// Apply an edge's token effects to a held multiset.
void apply_edge(const graph_edge& e, std::multiset<const token_manager*>& held) {
    for (const primitive& p : e.prims) {
        switch (p.kind) {
            case prim_kind::allocate:
                held.insert(p.mgr);
                break;
            case prim_kind::release:
            case prim_kind::discard: {
                const auto it = held.find(p.mgr);
                if (it != held.end()) held.erase(it);
                break;
            }
            case prim_kind::discard_all:
                held.clear();
                break;
            case prim_kind::inquire:
                break;
        }
    }
}

/// Choose the "main path" successor edge of `s`: the highest-priority edge
/// that makes progress (prefers non-initial targets so reset edges are not
/// mistaken for the operation flow).
const graph_edge* main_edge(const osm_graph& g, state_id s) {
    const graph_edge* fallback = nullptr;
    for (const std::int32_t ei : g.out_edges(s)) {
        const graph_edge& e = g.edge(ei);
        if (e.to != g.initial()) return &e;  // priority order already
        if (fallback == nullptr) fallback = &e;
    }
    return fallback;
}

}  // namespace

operation_timing extract_reservation_table(const osm_graph& g,
                                           const std::string& writeback_manager) {
    operation_timing out;
    std::multiset<const token_manager*> held;
    state_id s = g.initial();
    const int limit = g.num_states() + 2;
    for (int step = 0; step < limit; ++step) {
        const graph_edge* e = main_edge(g, s);
        if (e == nullptr) break;
        // Record the release of the writeback resource.
        if (!writeback_manager.empty() && out.result_latency < 0) {
            for (const primitive& p : e->prims) {
                if (p.kind == prim_kind::release && p.mgr != nullptr &&
                    p.mgr->name() == writeback_manager) {
                    out.result_latency = step;
                }
            }
        }
        apply_edge(*e, held);
        s = e->to;
        if (s == g.initial()) break;
        reservation_step rs;
        rs.state = g.state_name(s);
        for (const token_manager* m : held) rs.held_tokens.push_back(m->name());
        out.table.push_back(std::move(rs));
    }
    return out;
}

lint_report lint(const osm_graph& g) {
    lint_report rep;

    // Reachability from the initial state.
    std::vector<bool> reach(static_cast<std::size_t>(g.num_states()), false);
    std::vector<state_id> stack{g.initial()};
    reach[static_cast<std::size_t>(g.initial())] = true;
    while (!stack.empty()) {
        const state_id s = stack.back();
        stack.pop_back();
        for (const std::int32_t ei : g.out_edges(s)) {
            const state_id t = g.edge(ei).to;
            if (!reach[static_cast<std::size_t>(t)]) {
                reach[static_cast<std::size_t>(t)] = true;
                stack.push_back(t);
            }
        }
    }
    for (state_id s = 0; s < g.num_states(); ++s) {
        if (!reach[static_cast<std::size_t>(s)]) {
            rep.unreachable_states.push_back(g.state_name(s));
        } else if (g.out_edges(s).empty()) {
            rep.sink_states.push_back(g.state_name(s));
        }
    }

    // May-hold fixpoint: which managers might an operation hold in each
    // state?  Token-leak check: every edge into I must provably empty the
    // buffer (discard_all, or releases covering the whole may-hold set).
    std::vector<std::set<const token_manager*>> may(
        static_cast<std::size_t>(g.num_states()));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
            const graph_edge& e = g.edge(ei);
            if (!reach[static_cast<std::size_t>(e.from)]) continue;
            std::set<const token_manager*> after = may[static_cast<std::size_t>(e.from)];
            bool discard_all = false;
            for (const primitive& p : e.prims) {
                if (p.kind == prim_kind::discard_all) discard_all = true;
            }
            if (discard_all) {
                after.clear();
            } else {
                for (const primitive& p : e.prims) {
                    // A release can only commit when the token is held, so
                    // the manager's tokens are gone after the edge fires
                    // (manager-granular approximation).
                    if (p.kind == prim_kind::release || p.kind == prim_kind::discard) {
                        after.erase(p.mgr);
                    }
                }
                for (const primitive& p : e.prims) {
                    if (p.kind == prim_kind::allocate) after.insert(p.mgr);
                }
            }
            auto& dst = may[static_cast<std::size_t>(e.to)];
            for (const token_manager* m : after) {
                if (dst.insert(m).second) changed = true;
            }
        }
    }
    for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
        const graph_edge& e = g.edge(ei);
        if (e.to != g.initial() || !reach[static_cast<std::size_t>(e.from)]) continue;
        bool discard_all = false;
        std::set<const token_manager*> freed;
        for (const primitive& p : e.prims) {
            if (p.kind == prim_kind::discard_all) discard_all = true;
            if (p.kind == prim_kind::release || p.kind == prim_kind::discard) {
                freed.insert(p.mgr);
            }
        }
        if (discard_all) continue;
        for (const token_manager* m : may[static_cast<std::size_t>(e.from)]) {
            if (!freed.count(m)) {
                rep.token_leaks.push_back(
                    "edge " + g.state_name(e.from) + "->" + g.state_name(e.to) +
                    " may retain a token of " + m->name());
            }
        }
    }

    rep.notes.push_back("states=" + std::to_string(g.num_states()) +
                        " edges=" + std::to_string(g.num_edges()));
    return rep;
}

std::string to_dot(const osm_graph& g) {
    std::ostringstream os;
    os << "digraph \"" << g.name() << "\" {\n";
    os << "  rankdir=LR;\n";
    for (state_id s = 0; s < g.num_states(); ++s) {
        os << "  s" << s << " [label=\"" << g.state_name(s) << "\""
           << (s == g.initial() ? ", shape=doublecircle" : ", shape=circle")
           << "];\n";
    }
    for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
        const graph_edge& e = g.edge(ei);
        os << "  s" << e.from << " -> s" << e.to << " [label=\"";
        os << "e" << e.index << " p" << e.priority;
        for (const primitive& p : e.prims) os << "\\n" << prim_text(p);
        os << "\"];\n";
    }
    os << "}\n";
    return os.str();
}

std::string to_asm_rules(const osm_graph& g) {
    std::ostringstream os;
    os << "asm-machine " << g.name() << "\n";
    os << "  ctl ranges over {";
    for (state_id s = 0; s < g.num_states(); ++s) {
        os << (s ? ", " : "") << g.state_name(s);
    }
    os << "}, initially " << g.state_name(g.initial()) << "\n\n";
    for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
        const graph_edge& e = g.edge(ei);
        os << "rule e" << e.index << " (priority " << e.priority << "):\n";
        os << "  if ctl = " << g.state_name(e.from);
        for (const primitive& p : e.prims) {
            if (p.kind == prim_kind::allocate || p.kind == prim_kind::inquire ||
                p.kind == prim_kind::release) {
                os << " and ok(" << prim_text(p) << ")";
            }
        }
        os << " then\n";
        for (const primitive& p : e.prims) os << "    " << prim_text(p) << "\n";
        os << "    ctl := " << g.state_name(e.to) << "\n\n";
    }
    return os.str();
}

std::vector<const token_manager*> referenced_managers(const osm_graph& g) {
    std::vector<const token_manager*> out;
    for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
        for (const primitive& p : g.edge(ei).prims) {
            if (p.mgr != nullptr &&
                std::find(out.begin(), out.end(), p.mgr) == out.end()) {
                out.push_back(p.mgr);
            }
        }
    }
    return out;
}

bool allocation_order_consistent(const osm_graph& g) {
    // Build "A held while allocating B" edges using the may-hold sets, then
    // test for a cycle.  Acyclic order => no two operations can deadlock on
    // each other's held resources via this graph alone.
    const auto mgrs = referenced_managers(g);
    std::map<const token_manager*, std::set<const token_manager*>> order;

    // Recompute a light may-hold (as in lint) keyed by state.
    std::vector<std::set<const token_manager*>> may(
        static_cast<std::size_t>(g.num_states()));
    bool changed = true;
    while (changed) {
        changed = false;
        for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
            const graph_edge& e = g.edge(ei);
            std::set<const token_manager*> after = may[static_cast<std::size_t>(e.from)];
            for (const primitive& p : e.prims) {
                if (p.kind == prim_kind::discard_all) after.clear();
                if (p.kind == prim_kind::release || p.kind == prim_kind::discard) {
                    after.erase(p.mgr);
                }
            }
            for (const primitive& p : e.prims) {
                if (p.kind == prim_kind::allocate) after.insert(p.mgr);
            }
            auto& dst = may[static_cast<std::size_t>(e.to)];
            for (const token_manager* m : after) {
                if (dst.insert(m).second) changed = true;
            }
        }
    }
    for (std::int32_t ei = 0; ei < g.num_edges(); ++ei) {
        const graph_edge& e = g.edge(ei);
        for (const primitive& p : e.prims) {
            if (p.kind != prim_kind::allocate) continue;
            for (const token_manager* h : may[static_cast<std::size_t>(e.from)]) {
                if (h != p.mgr) order[h].insert(p.mgr);
            }
        }
    }

    // DFS cycle check.
    std::map<const token_manager*, int> color;
    std::function<bool(const token_manager*)> dfs =
        [&](const token_manager* v) -> bool {
        color[v] = 1;
        for (const token_manager* w : order[v]) {
            if (color[w] == 1) return true;
            if (color[w] == 0 && dfs(w)) return true;
        }
        color[v] = 2;
        return false;
    };
    for (const token_manager* m : mgrs) {
        if (color[m] == 0 && dfs(m)) return false;
    }
    return true;
}

}  // namespace osm::analysis
