// osm-bench: machine-readable throughput snapshot over the mixed workload
// suite.  Emits exactly one stable-schema JSON document ("osm-bench-1") on
// stdout: per-engine steady-state Minst/s and cycles/sec plus decode- and
// block-cache hit ratios, and the ISS block-/decode-cache ablation rows.
//
//   osm-bench [--scale N] [--reps N] [--engines a,b,...|all]
//   osm-bench --serve [--seeds LO:HI] [--jobs N]
//
// scripts/bench.sh redirects this into BENCH_1.json (the committed
// snapshot); scripts/bench_gate.py re-runs it under ctest and fails on a
// >10% throughput loss against that snapshot.  Every run does one untimed
// warmup pass per workload so the timed region is steady-state (the same
// protocol as the §5 speed benches).
//
// --serve switches to the sharded-campaign benchmark instead: the same
// quick-matrix fuzz campaign is timed serially (jobs=1), on a --jobs worker
// pool, and twice against an on-disk result cache (cold fill, then warm
// replay).  It emits a separate "osm-bench-serve-1" document, which
// scripts/bench.sh commits as BENCH_2.json.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "fuzz/campaign.hpp"
#include "ppc32/randprog.hpp"
#include "serve/campaign_service.hpp"
#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

struct measurement {
    double secs = 0;
    double insts = 0;
    double cycles = 0;
    double dcache_hits = 0;
    double dcache_misses = 0;
    double bcache_hits = 0;
    double bcache_misses = 0;
    bool ran = false;

    void merge(const measurement& o) {
        secs += o.secs;
        insts += o.insts;
        cycles += o.cycles;
        dcache_hits += o.dcache_hits;
        dcache_misses += o.dcache_misses;
        bcache_hits += o.bcache_hits;
        bcache_misses += o.bcache_misses;
        ran = ran || o.ran;
    }

    double mips() const { return secs > 0 ? insts / secs / 1e6 : 0.0; }
    double cyc_per_sec() const { return secs > 0 ? cycles / secs : 0.0; }
    static double ratio(double h, double m) {
        return (h + m) > 0 ? h / (h + m) : 0.0;
    }
    double dcache_ratio() const { return ratio(dcache_hits, dcache_misses); }
    double bcache_ratio() const { return ratio(bcache_hits, bcache_misses); }
};

/// Pull a counter from a report section, tolerating engines that do not
/// expose it (only the ISS has a block_cache section today).
double counter(const stats::report& r, const std::string& sec,
               const std::string& key) {
    try {
        return static_cast<double>(std::get<std::uint64_t>(r.at(sec, key)));
    } catch (const std::out_of_range&) {
        return 0.0;
    }
}

/// Repetition counts matching the speed benches: the functional ISS needs
/// more reps to rise above timer noise.
unsigned reps_for(const std::string& name, unsigned mult) {
    unsigned base = 1;
    if (name == "iss" || name == "ppc32") base = 4;
    else if (name == "hw") base = 2;
    return base * mult;
}

/// The guest ISA of a registered engine ("vr32" for unknown names: the
/// make_engine call below reports those with a proper error).
std::string isa_of(const std::string& name) {
    const auto* e = sim::engine_registry::instance().find(name);
    return e != nullptr ? e->isa : "vr32";
}

/// PPC32 engines can't run the VR32 mixed suite, so they are measured on
/// a fixed random-program suite from the ppc32 generator: loop-heavy so
/// the dynamic instruction count rises above timer noise.
std::vector<isa::program_image> ppc32_suite(unsigned scale) {
    std::vector<isa::program_image> out;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        ppc32::randprog_options opt;
        opt.seed = seed * 7919u;
        opt.blocks = 10;
        opt.block_len = 10;
        opt.loop_count = 4000u * scale;
        out.push_back(ppc32::make_random_program(opt));
    }
    return out;
}

measurement measure_engine(const std::string& name, const sim::engine_config& cfg,
                           unsigned scale, unsigned reps) {
    measurement m;
    if (isa_of(name) == "ppc32") {
        for (const auto& img : ppc32_suite(scale)) {
            {
                auto warm = sim::make_engine(name, cfg);
                warm->load(img);
                warm->run(2'000'000'000ull);
            }
            for (unsigned r = 0; r < reps; ++r) {
                auto eng = sim::make_engine(name, cfg);
                eng->load(img);
                const auto t0 = std::chrono::steady_clock::now();
                eng->run(2'000'000'000ull);
                m.secs += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
                m.insts += static_cast<double>(eng->retired());
                m.cycles += static_cast<double>(eng->cycles());
                m.ran = true;
            }
        }
        return m;
    }
    const bool fp_ok = sim::make_engine(name, cfg)->executes_fp();
    for (auto& w : workloads::mixed_suite(scale)) {
        if (!fp_ok && sim::program_uses_fp(w.image)) continue;
        {
            // Untimed warmup: cold-start host costs stay out of the
            // timed region.
            auto warm = sim::make_engine(name, cfg);
            warm->load(w.image);
            warm->run(2'000'000'000ull);
        }
        for (unsigned r = 0; r < reps; ++r) {
            auto eng = sim::make_engine(name, cfg);
            eng->load(w.image);
            const auto t0 = std::chrono::steady_clock::now();
            eng->run(2'000'000'000ull);
            m.secs += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
            m.insts += static_cast<double>(eng->retired());
            m.cycles += static_cast<double>(eng->cycles());
            const auto rep = eng->stats_report();
            m.dcache_hits += counter(rep, "decode_cache", "hits");
            m.dcache_misses += counter(rep, "decode_cache", "misses");
            m.bcache_hits += counter(rep, "block_cache", "hits");
            m.bcache_misses += counter(rep, "block_cache", "misses");
            m.ran = true;
        }
    }
    return m;
}

std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

double time_of(const std::function<void()>& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
}

/// The sharded-campaign benchmark: one quick-matrix campaign, measured
/// serial / pooled / cache-cold / cache-warm.  The interesting column on a
/// single-core host is the warm-cache replay (pure memoization); the
/// jobs-N column only scales with real cores.
int run_serve_bench(std::uint64_t seed_lo, std::uint64_t seed_hi, unsigned jobs) {
    fuzz::campaign_options copt;
    copt.seed_lo = seed_lo;
    copt.seed_hi = seed_hi;
    copt.quick = true;
    copt.minimize = false;
    const double seeds = static_cast<double>(seed_hi - seed_lo + 1);

    // Untimed warmup so host cold-start costs stay out of every column.
    (void)fuzz::run_campaign(copt);

    const double serial_s = time_of([&] { (void)fuzz::run_campaign(copt); });

    serve::serve_options so;
    so.campaign = copt;
    so.jobs = jobs;
    const double pool_s = time_of([&] { (void)serve::run_campaign_service(so); });

    const auto cache_dir =
        std::filesystem::temp_directory_path() /
        ("osm-bench-serve-" + std::to_string(static_cast<unsigned long>(::getpid())));
    serve::serve_options sc = so;
    sc.cache_dir = cache_dir.string();
    double cold_s = 0, warm_s = 0;
    std::uint64_t warm_hits = 0, warm_lookups = 0;
    try {
        cold_s = time_of([&] { (void)serve::run_campaign_service(sc); });
        serve::serve_result warm_res;
        warm_s = time_of([&] { warm_res = serve::run_campaign_service(sc); });
        warm_hits = warm_res.cache.hits + warm_res.cache.disk_hits;
        warm_lookups = warm_res.cache.lookups;
    } catch (...) {
        std::error_code ec;
        std::filesystem::remove_all(cache_dir, ec);
        throw;
    }
    std::error_code ec;
    std::filesystem::remove_all(cache_dir, ec);

    const auto rate = [&](double s) { return s > 0 ? seeds / s : 0.0; };
    std::fprintf(stderr,
                 "osm-bench: serve %6.2f seeds/s serial, %6.2f at jobs=%u, "
                 "%6.2f cache-warm (%.2fx)\n",
                 rate(serial_s), rate(pool_s), jobs, rate(warm_s),
                 warm_s > 0 ? cold_s / warm_s : 0.0);
    std::printf("{\n");
    std::printf("  \"schema\": \"osm-bench-serve-1\",\n");
    std::printf("  \"suite\": \"fuzz-quick\",\n");
    std::printf("  \"seeds\": %.0f,\n", seeds);
    std::printf("  \"jobs\": %u,\n", jobs);
    std::printf("  \"serial_seeds_per_sec\": %.3f,\n", rate(serial_s));
    std::printf("  \"jobs_seeds_per_sec\": %.3f,\n", rate(pool_s));
    std::printf("  \"jobs_speedup\": %.3f,\n", pool_s > 0 ? serial_s / pool_s : 0.0);
    std::printf("  \"cache_cold_seeds_per_sec\": %.3f,\n", rate(cold_s));
    std::printf("  \"cache_warm_seeds_per_sec\": %.3f,\n", rate(warm_s));
    std::printf("  \"cache_warm_speedup\": %.3f,\n", warm_s > 0 ? cold_s / warm_s : 0.0);
    std::printf("  \"cache_warm_hit_ratio\": %.6f\n",
                warm_lookups > 0 ? static_cast<double>(warm_hits) /
                                       static_cast<double>(warm_lookups)
                                 : 0.0);
    std::printf("}\n");
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    unsigned scale = 2;
    unsigned mult = 1;
    std::string engine_spec = "all";
    bool serve = false;
    std::uint64_t serve_lo = 1, serve_hi = 48;
    unsigned serve_jobs = 4;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) scale = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        else if (arg == "--reps" && i + 1 < argc) mult = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        else if (arg == "--engines" && i + 1 < argc) engine_spec = argv[++i];
        else if (arg == "--serve") serve = true;
        else if (arg == "--seeds" && i + 1 < argc) {
            const std::string range = argv[++i];
            const auto colon = range.find(':');
            if (colon == std::string::npos) {
                std::fprintf(stderr, "osm-bench: --seeds wants LO:HI\n");
                return 2;
            }
            serve_lo = std::strtoull(range.substr(0, colon).c_str(), nullptr, 0);
            serve_hi = std::strtoull(range.substr(colon + 1).c_str(), nullptr, 0);
        } else if (arg == "--jobs" && i + 1 < argc) {
            serve_jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else {
            std::fprintf(stderr,
                         "usage: osm-bench [--scale N] [--reps N] [--engines a,b,...|all]\n"
                         "       osm-bench --serve [--seeds LO:HI] [--jobs N]\n");
            return 2;
        }
    }
    if (serve) {
        if (serve_jobs == 0 || serve_hi < serve_lo) {
            std::fprintf(stderr, "osm-bench: bad --serve parameters\n");
            return 2;
        }
        return run_serve_bench(serve_lo, serve_hi, serve_jobs);
    }
    if (scale == 0 || mult == 0) {
        std::fprintf(stderr, "osm-bench: --scale/--reps must be >= 1\n");
        return 2;
    }

    std::vector<std::string> names;
    if (engine_spec == "all") {
        // The VR32 engines share the mixed workload suite; the PPC32
        // functional ISS rides along on its own generator suite (the
        // ppc32-750 timing model is diffable but not benched by default).
        names = sim::engine_registry::instance().names_for_isa("vr32");
        names.push_back("ppc32");
    } else {
        names = split_names(engine_spec);
    }

    std::printf("{\n");
    std::printf("  \"schema\": \"osm-bench-1\",\n");
    std::printf("  \"suite\": \"mixed\",\n");
    std::printf("  \"scale\": %u,\n", scale);
    std::printf("  \"engines\": {\n");
    bool first = true;
    for (const auto& name : names) {
        sim::engine_config cfg;  // defaults: caches on, batching on
        const auto m = measure_engine(name, cfg, scale, reps_for(name, mult));
        if (!m.ran) continue;
        std::fprintf(stderr, "osm-bench: %-6s %10.2f Minst/s\n", name.c_str(),
                     m.mips());
        std::printf("%s    \"%s\": {\n", first ? "" : ",\n", name.c_str());
        std::printf("      \"mips\": %.3f,\n", m.mips());
        std::printf("      \"cycles_per_sec\": %.1f,\n", m.cyc_per_sec());
        std::printf("      \"decode_cache_hit_ratio\": %.6f,\n", m.dcache_ratio());
        std::printf("      \"block_cache_hit_ratio\": %.6f\n", m.bcache_ratio());
        std::printf("    }");
        first = false;
    }
    std::printf("\n  },\n");

    // ISS ablations.  Block cache: off-column keeps the decode cache on, so
    // the ratio is translated-block dispatch vs the decode-cache baseline
    // (target >= 5x).  Decode cache: both caches off vs decode-only.  The
    // on/off measurements are interleaved rep-by-rep so slow host-frequency
    // drift hits both columns equally instead of biasing the ratio.
    sim::engine_config on_cfg, off_cfg, dc_cfg;
    off_cfg.block_cache = false;
    dc_cfg.block_cache = false;
    dc_cfg.decode_cache = false;
    const unsigned reps = reps_for("iss", mult);
    measurement bc_on, bc_off, dc_off;
    for (unsigned r = 0; r < reps; ++r) {
        bc_on.merge(measure_engine("iss", on_cfg, scale, 1));
        bc_off.merge(measure_engine("iss", off_cfg, scale, 1));
        dc_off.merge(measure_engine("iss", dc_cfg, scale, 1));
    }
    const double bc_speedup = bc_off.mips() > 0 ? bc_on.mips() / bc_off.mips() : 0;
    const double dc_speedup = dc_off.mips() > 0 ? bc_off.mips() / dc_off.mips() : 0;
    std::fprintf(stderr,
                 "osm-bench: iss block-cache ablation %.2f / %.2f Minst/s = %.2fx\n",
                 bc_on.mips(), bc_off.mips(), bc_speedup);
    std::printf("  \"ablation\": {\n");
    std::printf("    \"iss_block_cache_on_mips\": %.3f,\n", bc_on.mips());
    std::printf("    \"iss_block_cache_off_mips\": %.3f,\n", bc_off.mips());
    std::printf("    \"iss_block_cache_speedup\": %.3f,\n", bc_speedup);
    std::printf("    \"iss_decode_cache_off_mips\": %.3f,\n", dc_off.mips());
    std::printf("    \"iss_decode_cache_speedup\": %.3f\n", dc_speedup);
    std::printf("  }\n");
    std::printf("}\n");
    return 0;
}
