// osm-bench: machine-readable throughput snapshot over the mixed workload
// suite.  Emits exactly one stable-schema JSON document ("osm-bench-1") on
// stdout: per-engine steady-state Minst/s and cycles/sec plus decode- and
// block-cache hit ratios, and the ISS block-/decode-cache ablation rows.
//
//   osm-bench [--scale N] [--reps N] [--engines a,b,...|all]
//
// scripts/bench.sh redirects this into BENCH_1.json (the committed
// snapshot); scripts/bench_gate.py re-runs it under ctest and fails on a
// >10% throughput loss against that snapshot.  Every run does one untimed
// warmup pass per workload so the timed region is steady-state (the same
// protocol as the §5 speed benches).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "ppc32/randprog.hpp"
#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "workloads/workloads.hpp"

using namespace osm;

namespace {

struct measurement {
    double secs = 0;
    double insts = 0;
    double cycles = 0;
    double dcache_hits = 0;
    double dcache_misses = 0;
    double bcache_hits = 0;
    double bcache_misses = 0;
    bool ran = false;

    void merge(const measurement& o) {
        secs += o.secs;
        insts += o.insts;
        cycles += o.cycles;
        dcache_hits += o.dcache_hits;
        dcache_misses += o.dcache_misses;
        bcache_hits += o.bcache_hits;
        bcache_misses += o.bcache_misses;
        ran = ran || o.ran;
    }

    double mips() const { return secs > 0 ? insts / secs / 1e6 : 0.0; }
    double cyc_per_sec() const { return secs > 0 ? cycles / secs : 0.0; }
    static double ratio(double h, double m) {
        return (h + m) > 0 ? h / (h + m) : 0.0;
    }
    double dcache_ratio() const { return ratio(dcache_hits, dcache_misses); }
    double bcache_ratio() const { return ratio(bcache_hits, bcache_misses); }
};

/// Pull a counter from a report section, tolerating engines that do not
/// expose it (only the ISS has a block_cache section today).
double counter(const stats::report& r, const std::string& sec,
               const std::string& key) {
    try {
        return static_cast<double>(std::get<std::uint64_t>(r.at(sec, key)));
    } catch (const std::out_of_range&) {
        return 0.0;
    }
}

/// Repetition counts matching the speed benches: the functional ISS needs
/// more reps to rise above timer noise.
unsigned reps_for(const std::string& name, unsigned mult) {
    unsigned base = 1;
    if (name == "iss" || name == "ppc32") base = 4;
    else if (name == "hw") base = 2;
    return base * mult;
}

/// The guest ISA of a registered engine ("vr32" for unknown names: the
/// make_engine call below reports those with a proper error).
std::string isa_of(const std::string& name) {
    const auto* e = sim::engine_registry::instance().find(name);
    return e != nullptr ? e->isa : "vr32";
}

/// PPC32 engines can't run the VR32 mixed suite, so they are measured on
/// a fixed random-program suite from the ppc32 generator: loop-heavy so
/// the dynamic instruction count rises above timer noise.
std::vector<isa::program_image> ppc32_suite(unsigned scale) {
    std::vector<isa::program_image> out;
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        ppc32::randprog_options opt;
        opt.seed = seed * 7919u;
        opt.blocks = 10;
        opt.block_len = 10;
        opt.loop_count = 4000u * scale;
        out.push_back(ppc32::make_random_program(opt));
    }
    return out;
}

measurement measure_engine(const std::string& name, const sim::engine_config& cfg,
                           unsigned scale, unsigned reps) {
    measurement m;
    if (isa_of(name) == "ppc32") {
        for (const auto& img : ppc32_suite(scale)) {
            {
                auto warm = sim::make_engine(name, cfg);
                warm->load(img);
                warm->run(2'000'000'000ull);
            }
            for (unsigned r = 0; r < reps; ++r) {
                auto eng = sim::make_engine(name, cfg);
                eng->load(img);
                const auto t0 = std::chrono::steady_clock::now();
                eng->run(2'000'000'000ull);
                m.secs += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
                m.insts += static_cast<double>(eng->retired());
                m.cycles += static_cast<double>(eng->cycles());
                m.ran = true;
            }
        }
        return m;
    }
    const bool fp_ok = sim::make_engine(name, cfg)->executes_fp();
    for (auto& w : workloads::mixed_suite(scale)) {
        if (!fp_ok && sim::program_uses_fp(w.image)) continue;
        {
            // Untimed warmup: cold-start host costs stay out of the
            // timed region.
            auto warm = sim::make_engine(name, cfg);
            warm->load(w.image);
            warm->run(2'000'000'000ull);
        }
        for (unsigned r = 0; r < reps; ++r) {
            auto eng = sim::make_engine(name, cfg);
            eng->load(w.image);
            const auto t0 = std::chrono::steady_clock::now();
            eng->run(2'000'000'000ull);
            m.secs += std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
            m.insts += static_cast<double>(eng->retired());
            m.cycles += static_cast<double>(eng->cycles());
            const auto rep = eng->stats_report();
            m.dcache_hits += counter(rep, "decode_cache", "hits");
            m.dcache_misses += counter(rep, "decode_cache", "misses");
            m.bcache_hits += counter(rep, "block_cache", "hits");
            m.bcache_misses += counter(rep, "block_cache", "misses");
            m.ran = true;
        }
    }
    return m;
}

std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    unsigned scale = 2;
    unsigned mult = 1;
    std::string engine_spec = "all";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--scale" && i + 1 < argc) scale = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        else if (arg == "--reps" && i + 1 < argc) mult = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        else if (arg == "--engines" && i + 1 < argc) engine_spec = argv[++i];
        else {
            std::fprintf(stderr,
                         "usage: osm-bench [--scale N] [--reps N] [--engines a,b,...|all]\n");
            return 2;
        }
    }
    if (scale == 0 || mult == 0) {
        std::fprintf(stderr, "osm-bench: --scale/--reps must be >= 1\n");
        return 2;
    }

    std::vector<std::string> names;
    if (engine_spec == "all") {
        // The VR32 engines share the mixed workload suite; the PPC32
        // functional ISS rides along on its own generator suite (the
        // ppc32-750 timing model is diffable but not benched by default).
        names = sim::engine_registry::instance().names_for_isa("vr32");
        names.push_back("ppc32");
    } else {
        names = split_names(engine_spec);
    }

    std::printf("{\n");
    std::printf("  \"schema\": \"osm-bench-1\",\n");
    std::printf("  \"suite\": \"mixed\",\n");
    std::printf("  \"scale\": %u,\n", scale);
    std::printf("  \"engines\": {\n");
    bool first = true;
    for (const auto& name : names) {
        sim::engine_config cfg;  // defaults: caches on, batching on
        const auto m = measure_engine(name, cfg, scale, reps_for(name, mult));
        if (!m.ran) continue;
        std::fprintf(stderr, "osm-bench: %-6s %10.2f Minst/s\n", name.c_str(),
                     m.mips());
        std::printf("%s    \"%s\": {\n", first ? "" : ",\n", name.c_str());
        std::printf("      \"mips\": %.3f,\n", m.mips());
        std::printf("      \"cycles_per_sec\": %.1f,\n", m.cyc_per_sec());
        std::printf("      \"decode_cache_hit_ratio\": %.6f,\n", m.dcache_ratio());
        std::printf("      \"block_cache_hit_ratio\": %.6f\n", m.bcache_ratio());
        std::printf("    }");
        first = false;
    }
    std::printf("\n  },\n");

    // ISS ablations.  Block cache: off-column keeps the decode cache on, so
    // the ratio is translated-block dispatch vs the decode-cache baseline
    // (target >= 5x).  Decode cache: both caches off vs decode-only.  The
    // on/off measurements are interleaved rep-by-rep so slow host-frequency
    // drift hits both columns equally instead of biasing the ratio.
    sim::engine_config on_cfg, off_cfg, dc_cfg;
    off_cfg.block_cache = false;
    dc_cfg.block_cache = false;
    dc_cfg.decode_cache = false;
    const unsigned reps = reps_for("iss", mult);
    measurement bc_on, bc_off, dc_off;
    for (unsigned r = 0; r < reps; ++r) {
        bc_on.merge(measure_engine("iss", on_cfg, scale, 1));
        bc_off.merge(measure_engine("iss", off_cfg, scale, 1));
        dc_off.merge(measure_engine("iss", dc_cfg, scale, 1));
    }
    const double bc_speedup = bc_off.mips() > 0 ? bc_on.mips() / bc_off.mips() : 0;
    const double dc_speedup = dc_off.mips() > 0 ? bc_off.mips() / dc_off.mips() : 0;
    std::fprintf(stderr,
                 "osm-bench: iss block-cache ablation %.2f / %.2f Minst/s = %.2fx\n",
                 bc_on.mips(), bc_off.mips(), bc_speedup);
    std::printf("  \"ablation\": {\n");
    std::printf("    \"iss_block_cache_on_mips\": %.3f,\n", bc_on.mips());
    std::printf("    \"iss_block_cache_off_mips\": %.3f,\n", bc_off.mips());
    std::printf("    \"iss_block_cache_speedup\": %.3f,\n", bc_speedup);
    std::printf("    \"iss_decode_cache_off_mips\": %.3f,\n", dc_off.mips());
    std::printf("    \"iss_decode_cache_speedup\": %.3f\n", dc_speedup);
    std::printf("  }\n");
    std::printf("}\n");
    return 0;
}
