// osm-fuzz: differential fuzzing of every registered execution engine.
//
//   osm-fuzz campaign [--seeds LO:HI] [--engines a,b,...|all] [--matrix quick|full]
//            [--max-cycles N] [--no-minimize] [--save DIR] [--replay DIR] [--json]
//            [--no-forwarding] [--no-decode-cache]
//            [--jobs N] [--cache-dir DIR] [--watchdog-ms N]
//   osm-fuzz minimize --rand SEED [--rand-* flags] --engines a,b [--save DIR]
//            [--name NAME] [--max-cycles N] [--jobs N] [--json]
//   osm-fuzz minimize prog.s --engines a,b [--save DIR] [--name NAME] [--json]
//   osm-fuzz replay prog.s|DIR [--engines a,b,...] [--json]
//   osm-fuzz litmus [--seeds LO:HI] [--schedules N] [--save DIR]
//            [--replay DIR|file.litmus] [--suite-out DIR] [--json]
//
// A campaign sweeps the feature matrix over the seed range, diffing every
// generated program across the engines; `minimize` delta-debugs one
// divergent program to a minimal reproducer; `replay` re-runs committed
// corpus artifacts (tests/corpus/).  `litmus` differentially checks the
// multi-hart ISS against the exhaustive SC/TSO outcome enumerator on the
// canonical suite plus randomized variants, writing out-of-model tests as
// .litmus corpus reproducers (tests/corpus/litmus/).  With --json, stdout
// carries exactly one deterministic JSON summary (byte-identical across
// repeat runs).
//
// Exit codes: 0 = no divergence, 2 = usage, 4 = divergence found
// (campaign/replay) or, for minimize, 1 when the input does not diverge;
// 1 also covers setup errors (unknown engine, unreadable input).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "fuzz/corpus.hpp"
#include "fuzz/litmus.hpp"
#include "fuzz/minimize.hpp"
#include "isa/assembler.hpp"
#include "serve/campaign_service.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"
#include "workloads/randprog_cli.hpp"

using namespace osm;

namespace {

constexpr int exit_ok = 0;
constexpr int exit_setup = 1;
constexpr int exit_usage = 2;
constexpr int exit_divergence = 4;

void usage() {
    std::fprintf(stderr,
                 "usage: osm-fuzz campaign [--seeds LO:HI] [--engines LIST|all]\n"
                 "                [--matrix quick|full] [--max-cycles N] [--no-minimize]\n"
                 "                [--save DIR] [--replay DIR] [--json]\n"
                 "                [--no-forwarding] [--no-decode-cache]\n"
                 "                [--jobs N] [--cache-dir DIR] [--watchdog-ms N]\n"
                 "                jobs > 1 or a cache dir shards the campaign over the\n"
                 "                serve worker pool; the JSON summary stays byte-identical\n"
                 "       osm-fuzz minimize (--rand SEED [--rand-* flags] | prog.s)\n"
                 "                [--engines a,b] [--save DIR] [--name NAME] [--jobs N]\n"
                 "                [--json]\n"
                 "                [--checkpoint [--interval N]]  lockstep re-validation:\n"
                 "                reject failing candidates at the first mismatching\n"
                 "                boundary and bisect the first divergent retirement\n"
                 "       osm-fuzz replay prog.s|DIR [--engines LIST] [--json]\n"
                 "       osm-fuzz litmus [--seeds LO:HI] [--schedules N] [--save DIR]\n"
                 "                [--replay DIR|file.litmus] [--suite-out DIR] [--json]\n"
                 "                diff the multi-hart ISS against the exhaustive SC/TSO\n"
                 "                outcome enumerator (canonical suite + random variants)\n"
                 "generator flags (shared with osm-run --rand):\n%s",
                 workloads::randprog_flags_help().c_str());
    std::exit(exit_usage);
}

std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

struct cli {
    std::string command;
    std::string input;              // minimize/replay positional argument
    std::uint64_t seed_lo = 1, seed_hi = 100;
    std::uint64_t rand_seed = 0;
    bool have_rand = false;
    std::vector<std::string> engines;
    std::uint64_t max_cycles = 50'000'000;
    bool quick = false;
    bool minimize = true;
    bool json = false;
    std::string save_dir;
    std::string replay_dir;
    std::string name;
    bool checkpoint = false;
    std::uint64_t interval = 256;
    std::uint64_t schedules = 200;
    std::string suite_out;
    unsigned jobs = 1;
    std::string cache_dir;
    std::uint64_t watchdog_ms = 0;
    workloads::randprog_options rand_opt;
    sim::engine_config config;
};

cli parse_args(int argc, char** argv) {
    cli c;
    int i = 1;
    if (i < argc) {
        std::string cmd = argv[i];
        // Accept both subcommand and --flag spellings.
        if (!cmd.empty() && cmd.rfind("--", 0) == 0) cmd = cmd.substr(2);
        if (cmd == "campaign" || cmd == "minimize" || cmd == "replay" ||
            cmd == "litmus") {
            c.command = cmd;
            ++i;
        }
    }
    if (c.command.empty()) usage();

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (workloads::parse_randprog_flag(argc, argv, i, c.rand_opt)) continue;
        if (arg == "--seeds" && i + 1 < argc) {
            const std::string range = argv[++i];
            const auto colon = range.find(':');
            if (colon == std::string::npos) usage();
            c.seed_lo = std::strtoull(range.substr(0, colon).c_str(), nullptr, 0);
            c.seed_hi = std::strtoull(range.substr(colon + 1).c_str(), nullptr, 0);
            if (c.seed_hi < c.seed_lo) usage();
        } else if (arg == "--engines" && i + 1 < argc) {
            const std::string list = argv[++i];
            c.engines = (list == "all") ? std::vector<std::string>{} : split_names(list);
        } else if (arg == "--matrix" && i + 1 < argc) {
            const std::string m = argv[++i];
            if (m == "quick") c.quick = true;
            else if (m == "full") c.quick = false;
            else usage();
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            c.max_cycles = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--rand" && i + 1 < argc) {
            c.rand_seed = std::strtoull(argv[++i], nullptr, 0);
            c.have_rand = true;
        } else if (arg == "--save" && i + 1 < argc) {
            c.save_dir = argv[++i];
        } else if (arg == "--replay" && i + 1 < argc) {
            c.replay_dir = argv[++i];
        } else if (arg == "--name" && i + 1 < argc) {
            c.name = argv[++i];
        } else if (arg == "--checkpoint") {
            c.checkpoint = true;
        } else if (arg == "--interval" && i + 1 < argc) {
            c.interval = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--schedules" && i + 1 < argc) {
            c.schedules = std::strtoull(argv[++i], nullptr, 0);
            if (c.schedules == 0) usage();
        } else if (arg == "--suite-out" && i + 1 < argc) {
            c.suite_out = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            c.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
            if (c.jobs == 0) usage();
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            c.cache_dir = argv[++i];
        } else if (arg == "--watchdog-ms" && i + 1 < argc) {
            c.watchdog_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--no-minimize") {
            c.minimize = false;
        } else if (arg == "--json") {
            c.json = true;
        } else if (arg == "--no-forwarding") {
            c.config.forwarding = false;
        } else if (arg == "--no-decode-cache") {
            c.config.decode_cache = false;
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else if (c.input.empty()) {
            c.input = arg;
        } else {
            usage();
        }
    }
    return c;
}

int run_campaign_cmd(const cli& c) {
    fuzz::campaign_options opt;
    opt.seed_lo = c.seed_lo;
    opt.seed_hi = c.seed_hi;
    opt.engines = c.engines;
    opt.config = c.config;
    opt.max_cycles = c.max_cycles;
    opt.quick = c.quick;
    opt.minimize = c.minimize;
    opt.save_dir = c.save_dir;
    opt.replay_dir = c.replay_dir;

    // Any serve flag routes the campaign through the sharded service; its
    // merged summary is byte-identical to the serial loop, so --json output
    // does not depend on which path ran.
    const bool use_serve = c.jobs > 1 || !c.cache_dir.empty() || c.watchdog_ms > 0;
    fuzz::campaign_result res;
    if (use_serve) {
        serve::serve_options so;
        so.campaign = opt;
        so.jobs = c.jobs;
        so.cache_dir = c.cache_dir;
        so.watchdog_ms = c.watchdog_ms;
        auto sr = serve::run_campaign_service(so);
        std::fprintf(stderr, "%s", sr.serve_report().to_json().c_str());
        if (!sr.timeouts.empty()) {
            for (const auto& t : sr.timeouts) {
                std::fprintf(stderr, "osm-fuzz: job %llu timed out: %s\n",
                             static_cast<unsigned long long>(t.id),
                             t.detail.c_str());
            }
        }
        res = std::move(sr.campaign);
    } else {
        res = fuzz::run_campaign(opt);
    }

    FILE* human = c.json ? stderr : stdout;
    std::fprintf(human,
                 "campaign: %llu programs (%llu corpus replays), %llu engine runs, "
                 "%llu instructions, %zu divergence(s)\n",
                 static_cast<unsigned long long>(res.programs),
                 static_cast<unsigned long long>(res.corpus_replayed),
                 static_cast<unsigned long long>(res.engine_runs),
                 static_cast<unsigned long long>(res.instructions),
                 res.findings.size());
    for (const auto& f : res.findings) {
        std::fprintf(human, "  seed %llu row %s: %s\n",
                     static_cast<unsigned long long>(f.seed), f.row.c_str(),
                     f.first.to_string().c_str());
        if (!f.artifact.empty()) {
            std::fprintf(human, "    reproducer: %s\n", f.artifact.c_str());
        }
    }
    if (c.json) std::printf("%s", res.summary().to_json().c_str());
    return res.ok() ? exit_ok : exit_divergence;
}

int run_minimize_cmd(const cli& c) {
    if (c.have_rand == !c.input.empty()) usage();  // exactly one input source
    isa::program_image img;
    workloads::randprog_options po = c.rand_opt;
    if (c.have_rand) {
        po.seed = c.rand_seed;
        img = workloads::make_random_program(po);
    } else {
        std::ifstream in(c.input);
        if (!in) {
            std::fprintf(stderr, "osm-fuzz: cannot open %s\n", c.input.c_str());
            return exit_setup;
        }
        std::ostringstream src;
        src << in.rdbuf();
        img = isa::assemble(src.str());
    }

    fuzz::minimize_options mo;
    mo.engines = c.engines.empty()
                     ? sim::engine_registry::instance().names_for_isa("vr32")
                     : c.engines;
    mo.config = c.config;
    mo.max_cycles = c.max_cycles;
    mo.checkpoint_revalidate = c.checkpoint;
    mo.checkpoint_interval = c.interval;
    mo.jobs = c.jobs;
    const auto res = fuzz::minimize_divergence(img, mo);

    FILE* human = c.json ? stderr : stdout;
    if (!res.was_divergent) {
        std::fprintf(human, "minimize: input does not diverge (%u probes)\n",
                     res.probes);
        return exit_setup;
    }
    std::fprintf(human, "minimize: %zu -> %zu instructions in %u probes\n",
                 res.original_words, res.minimized_words, res.probes);
    std::fprintf(human, "minimize: %s\n", res.first.to_string().c_str());
    if (res.located) {
        std::fprintf(human, "minimize: first divergent retirement = %llu\n",
                     static_cast<unsigned long long>(res.first_divergent_retired));
    }

    std::string artifact;
    if (!c.save_dir.empty()) {
        fuzz::reproducer_meta meta;
        meta.name = !c.name.empty()
                        ? c.name
                        : (c.have_rand ? "min_seed_" + std::to_string(c.rand_seed)
                                       : std::filesystem::path(c.input).stem().string() +
                                             "_min");
        meta.kind = "fuzz";
        meta.engines = res.first.reference + "," + res.first.engine;
        meta.seed = c.have_rand ? c.rand_seed : 0;
        meta.rand_options = c.have_rand ? workloads::randprog_flags(po) : "";
        meta.max_cycles = c.max_cycles;
        meta.divergence = res.first.to_string();
        artifact = fuzz::save_reproducer(c.save_dir, meta, res.image);
        std::fprintf(human, "minimize: saved %s\n", artifact.c_str());
    } else {
        std::fprintf(human, "%s", fuzz::image_to_asm(res.image).c_str());
    }
    if (c.json) {
        stats::report rep;
        rep.put("minimize", "original_words",
                static_cast<std::uint64_t>(res.original_words));
        rep.put("minimize", "minimized_words",
                static_cast<std::uint64_t>(res.minimized_words));
        rep.put("minimize", "probes", static_cast<std::uint64_t>(res.probes));
        rep.put("minimize", "divergence", res.first.to_string());
        if (res.located) {
            rep.put("minimize", "first_divergent_retired", res.first_divergent_retired);
        }
        if (!artifact.empty()) rep.put("minimize", "artifact", artifact);
        std::printf("%s", rep.to_json().c_str());
    }
    return exit_ok;
}

int run_replay_cmd(const cli& c) {
    if (c.input.empty()) usage();
    std::vector<std::string> paths;
    if (std::filesystem::is_directory(c.input)) {
        paths = fuzz::list_corpus(c.input);
        if (paths.empty()) {
            std::fprintf(stderr, "osm-fuzz: no .s artifacts under %s\n",
                         c.input.c_str());
            return exit_setup;
        }
    } else {
        paths.push_back(c.input);
    }

    FILE* human = c.json ? stderr : stdout;
    stats::report rep;
    std::uint64_t failures = 0;
    for (const auto& path : paths) {
        const auto rr = fuzz::replay_artifact(path, c.engines, c.config);
        const bool ok = rr.ok();
        failures += ok ? 0 : 1;
        std::fprintf(human, "replay %-40s %s\n", path.c_str(),
                     ok ? "ok" : "DIVERGED");
        for (const auto& d : rr.diff.divergences) {
            std::fprintf(human, "  %s\n", d.to_string().c_str());
        }
        rep.put("replay", rr.meta.name.empty() ? path : rr.meta.name,
                ok ? std::string("ok") : rr.diff.divergences.front().to_string());
    }
    rep.put("summary", "artifacts", static_cast<std::uint64_t>(paths.size()));
    rep.put("summary", "failures", failures);
    if (c.json) std::printf("%s", rep.to_json().c_str());
    return failures == 0 ? exit_ok : exit_divergence;
}

// ---- litmus -----------------------------------------------------------------

std::string outcome_set_string(const std::set<fuzz::litmus_outcome>& s) {
    std::string out;
    for (const auto& o : s) {
        if (!out.empty()) out += ' ';
        out += fuzz::outcome_to_string(o);
    }
    return out.empty() ? "(none)" : out;
}

/// Check one litmus test: the ISS under each model must stay inside the
/// enumerated outcome set, SC must be a refinement of TSO, and recorded
/// corpus sets (when present) must match the enumeration exactly.  Returns
/// the failure descriptions (empty = pass) and leaves the enumerated sets
/// in `t` so reproducers carry them.
std::vector<std::string> check_litmus(fuzz::litmus_test& t, std::uint64_t schedules) {
    std::vector<std::string> failures;
    const auto enum_sc = fuzz::enumerate_outcomes(t, mem::memory_model::sc);
    const auto enum_tso = fuzz::enumerate_outcomes(t, mem::memory_model::tso);
    if (!t.sc_allowed.empty() && t.sc_allowed != enum_sc) {
        failures.push_back("recorded SC set {" + outcome_set_string(t.sc_allowed) +
                           "} != enumerated {" + outcome_set_string(enum_sc) + "}");
    }
    if (!t.tso_allowed.empty() && t.tso_allowed != enum_tso) {
        failures.push_back("recorded TSO set {" + outcome_set_string(t.tso_allowed) +
                           "} != enumerated {" + outcome_set_string(enum_tso) + "}");
    }
    t.sc_allowed = enum_sc;
    t.tso_allowed = enum_tso;
    for (const auto& o : enum_sc) {
        if (enum_tso.count(o) == 0) {
            failures.push_back("SC outcome " + fuzz::outcome_to_string(o) +
                               " missing from TSO set (TSO must be weaker)");
        }
    }
    const struct {
        mem::memory_model model;
        const char* tag;
        const std::set<fuzz::litmus_outcome>& allowed;
    } runs[] = {{mem::memory_model::sc, "SC", enum_sc},
                {mem::memory_model::tso, "TSO", enum_tso}};
    for (const auto& r : runs) {
        const auto observed = fuzz::run_litmus(t, r.model, 1, schedules);
        for (const auto& o : observed) {
            if (r.allowed.count(o) == 0) {
                failures.push_back(std::string("out-of-model outcome under ") + r.tag +
                                   ": " + fuzz::outcome_to_string(o) + " not in {" +
                                   outcome_set_string(r.allowed) + "}");
            }
        }
    }
    return failures;
}

std::string save_litmus(const std::string& dir, const fuzz::litmus_test& t) {
    std::filesystem::create_directories(dir);
    const std::string path = dir + "/" + t.name + ".litmus";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << fuzz::to_text(t);
    return path;
}

int run_litmus_cmd(const cli& c) {
    FILE* human = c.json ? stderr : stdout;

    if (!c.suite_out.empty()) {
        // Corpus generator: canonical suite with enumerated outcome sets.
        for (fuzz::litmus_test t : fuzz::litmus_suite()) {
            t.sc_allowed = fuzz::enumerate_outcomes(t, mem::memory_model::sc);
            t.tso_allowed = fuzz::enumerate_outcomes(t, mem::memory_model::tso);
            std::fprintf(human, "wrote %s\n", save_litmus(c.suite_out, t).c_str());
        }
        return exit_ok;
    }

    std::vector<fuzz::litmus_test> tests;
    if (!c.replay_dir.empty()) {
        std::vector<std::string> paths;
        if (std::filesystem::is_directory(c.replay_dir)) {
            for (const auto& e : std::filesystem::directory_iterator(c.replay_dir)) {
                if (e.path().extension() == ".litmus") paths.push_back(e.path().string());
            }
            std::sort(paths.begin(), paths.end());
        } else {
            paths.push_back(c.replay_dir);
        }
        if (paths.empty()) {
            std::fprintf(stderr, "osm-fuzz: no .litmus files under %s\n",
                         c.replay_dir.c_str());
            return exit_setup;
        }
        for (const auto& p : paths) {
            std::ifstream in(p, std::ios::binary);
            if (!in) {
                std::fprintf(stderr, "osm-fuzz: cannot open %s\n", p.c_str());
                return exit_setup;
            }
            std::ostringstream text;
            text << in.rdbuf();
            tests.push_back(fuzz::parse_litmus(text.str()));
        }
    } else {
        tests = fuzz::litmus_suite();
        for (std::uint64_t seed = c.seed_lo; seed <= c.seed_hi; ++seed) {
            xrandom rng(seed);
            fuzz::litmus_test t = fuzz::random_litmus(rng);
            t.name = "rand_" + std::to_string(seed);
            tests.push_back(std::move(t));
        }
    }

    stats::report rep;
    std::uint64_t failures = 0;
    for (fuzz::litmus_test& t : tests) {
        const auto fails = check_litmus(t, c.schedules);
        std::fprintf(human, "litmus %-16s %zu harts  sc=%zu tso=%zu  %s\n",
                     t.name.c_str(), t.harts.size(), t.sc_allowed.size(),
                     t.tso_allowed.size(), fails.empty() ? "ok" : "FAILED");
        for (const auto& f : fails) std::fprintf(human, "  %s\n", f.c_str());
        if (!fails.empty()) {
            ++failures;
            if (!c.save_dir.empty()) {
                std::fprintf(human, "  reproducer: %s\n",
                             save_litmus(c.save_dir, t).c_str());
            }
        }
        rep.put("litmus", t.name,
                fails.empty() ? std::string("ok") : fails.front());
    }
    rep.put("summary", "tests", static_cast<std::uint64_t>(tests.size()));
    rep.put("summary", "schedules", c.schedules);
    rep.put("summary", "failures", failures);
    if (c.json) std::printf("%s", rep.to_json().c_str());
    return failures == 0 ? exit_ok : exit_divergence;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli c = parse_args(argc, argv);
        if (c.command == "campaign") return run_campaign_cmd(c);
        if (c.command == "minimize") return run_minimize_cmd(c);
        if (c.command == "litmus") return run_litmus_cmd(c);
        return run_replay_cmd(c);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-fuzz: %s\n", e.what());
        return exit_setup;
    }
}
