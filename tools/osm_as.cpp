// osm-as: assemble a VR32 assembly file into a VRI image.
//
//   osm-as input.s [-o output.vri] [--text-base ADDR] [--data-base ADDR]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "isa/assembler.hpp"
#include "isa/image_io.hpp"

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: osm-as input.s [-o output.vri] [--text-base ADDR] "
                 "[--data-base ADDR]\n");
    std::exit(2);
}

std::uint32_t parse_addr(const char* s) {
    return static_cast<std::uint32_t>(std::strtoul(s, nullptr, 0));
}

}  // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string output;
    std::uint32_t text_base = 0x1000;
    std::uint32_t data_base = 0x00100000;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-o" && i + 1 < argc) {
            output = argv[++i];
        } else if (arg == "--text-base" && i + 1 < argc) {
            text_base = parse_addr(argv[++i]);
        } else if (arg == "--data-base" && i + 1 < argc) {
            data_base = parse_addr(argv[++i]);
        } else if (!arg.empty() && arg[0] == '-') {
            usage();
        } else if (input.empty()) {
            input = arg;
        } else {
            usage();
        }
    }
    if (input.empty()) usage();
    if (output.empty()) {
        output = input;
        const auto dot = output.rfind('.');
        if (dot != std::string::npos) output.resize(dot);
        output += ".vri";
    }

    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "osm-as: cannot open %s\n", input.c_str());
        return 1;
    }
    std::ostringstream src;
    src << in.rdbuf();

    try {
        const auto img = osm::isa::assemble(src.str(), text_base, data_base);
        osm::isa::save_image(output, img);
        std::printf("osm-as: %s -> %s (%zu bytes, entry 0x%X)\n", input.c_str(),
                    output.c_str(), img.total_bytes(), img.entry);
    } catch (const osm::isa::asm_error& e) {
        std::fprintf(stderr, "osm-as: %s: %s\n", input.c_str(), e.what());
        return 1;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-as: %s\n", e.what());
        return 1;
    }
    return 0;
}
