// osm-run: execute a program (assembly, VRI image, or a generated random
// program) on any registered execution engine, or differentially across
// several engines at once.
//
//   osm-run prog.s|prog.vri [--engine NAME] [--max-cycles N] [--trace]
//           [--regs] [--json] [--no-forwarding] [--no-decode-cache]
//   osm-run prog --diff iss,sarm,p750     first engine is the reference
//   osm-run prog --diff all               every VR32 engine vs iss
//   osm-run --rand SEED [...]             random terminating program input
//   osm-run --list-engines
//
// The selected engine's guest ISA picks the assembler and random-program
// generator: `--engine ppc32` (or `--diff ppc32,ppc32-750`) assembles the
// input as PPC32.  `--diff all` expands to the VR32 engines only; mixed-ISA
// engine lists are reported as skipped by the differential runner.
//
// Engines come from the sim::engine_registry: unknown names are rejected
// with the registered list, and a newly registered engine is immediately
// runnable and diffable here with no tool changes.
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "isa/arch.hpp"
#include "isa/assembler.hpp"
#include "isa/image_io.hpp"
#include "ppc32/arch.hpp"
#include "ppc32/assembler.hpp"
#include "ppc32/randprog.hpp"
#include "sim/checkpoint.hpp"
#include "sim/diff_runner.hpp"
#include "sim/registry.hpp"
#include "trace/trace.hpp"
#include "workloads/randprog.hpp"
#include "workloads/randprog_cli.hpp"

using namespace osm;

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: osm-run prog.s|prog.vri [--engine NAME] [--diff a,b,...|all]\n"
                 "               [--max-cycles N] [--trace] [--regs] [--json]\n"
                 "               [--no-forwarding] [--no-decode-cache]\n"
                 "               [--block-cache|--no-block-cache] [--director-batch|--no-director-batch]\n"
                 "               [--save-at N] [--save FILE] [--dump-arch]\n"
                 "       osm-run prog --lockstep ENGINE [--interval N]\n"
                 "                                       retirement-lockstep vs iss; on\n"
                 "                                       divergence, bisect via checkpoints\n"
                 "       osm-run --restore FILE [--engine NAME] [options]\n"
                 "                                       resume from a checkpoint (no program)\n"
                 "       osm-run --rand SEED [options]   run a generated random program\n"
                 "       osm-run --list-engines\n"
                 "checkpoint flags: --save FILE writes FILE and FILE.json after the run;\n"
                 "--save-at N saves at retirement N and then keeps running; --dump-arch\n"
                 "prints a deterministic architectural-state dump after the run.\n"
                 "generator flags (with --rand, shared with osm-fuzz):\n%s",
                 workloads::randprog_flags_help().c_str());
    std::exit(2);
}

void list_engines() {
    for (const auto& e : sim::engine_registry::instance().entries()) {
        std::printf("%-10s %-6s %s\n", e.name.c_str(), e.isa.c_str(),
                    e.description.c_str());
    }
}

void dump_regs(const sim::engine& eng) {
    const bool ppc = eng.isa() == "ppc32";
    for (unsigned r = 0; r < isa::num_gprs; ++r) {
        const std::string name =
            ppc ? ppc32::reg_name(r) : std::string(isa::gpr_name(r));
        std::printf("%5s=%08X%s", name.c_str(), eng.gpr(r),
                    (r % 4 == 3) ? "\n" : "  ");
    }
}

/// Deterministic line-per-field architectural dump: scripts diff a straight
/// run against a save/restore run (dropping pc=/cycles= lines for timing
/// engines, whose pipeline refill legitimately changes both).
void dump_arch(const sim::engine& eng) {
    std::printf("halted=%d\n", eng.halted() ? 1 : 0);
    std::printf("retired=%llu\n", static_cast<unsigned long long>(eng.retired()));
    std::printf("cycles=%llu\n", static_cast<unsigned long long>(eng.cycles()));
    std::printf("pc=%08X\n", eng.pc());
    for (unsigned r = 0; r < isa::num_gprs; ++r) std::printf("gpr%02u=%08X\n", r, eng.gpr(r));
    for (unsigned r = 0; r < isa::num_fprs; ++r) std::printf("fpr%02u=%08X\n", r, eng.fpr(r));
    std::printf("console_bytes=%zu\n", eng.console().size());
    std::printf("console=");
    for (const char c : eng.console()) {
        if (c == '\n') std::printf("\\n");
        else if (std::isprint(static_cast<unsigned char>(c))) std::printf("%c", c);
        else std::printf("\\x%02x", static_cast<unsigned char>(c));
    }
    std::printf("\n");
}

std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

int run_diff(const std::string& spec, const isa::program_image& img,
             const sim::diff_options& opt) {
    std::vector<std::string> names;
    if (spec == "all") {
        // "all" means all VR32 engines; diff PPC32 engines with an explicit
        // list (--diff ppc32,ppc32-750).
        names = sim::engine_registry::instance().names_for_isa("vr32");
    } else {
        names = split_names(spec);
    }
    if (names.size() < 2) {
        std::fprintf(stderr, "osm-run: --diff needs at least two engines\n");
        return 2;
    }
    const auto result = sim::diff_engines(names, img, opt);
    for (const auto& run : result.runs) {
        if (!run.ran) {
            std::printf("%-6s skipped (%s)\n", run.engine.c_str(),
                        run.skip_reason.c_str());
            continue;
        }
        std::printf("%-6s cycles=%-12llu retired=%-10llu halted=%d\n",
                    run.engine.c_str(), static_cast<unsigned long long>(run.cycles),
                    static_cast<unsigned long long>(run.retired), run.halted);
    }
    if (result.ok()) {
        std::printf("diff: no architectural divergence across %zu engine(s)\n",
                    result.runs.size());
        return 0;
    }
    for (const auto& d : result.divergences) {
        std::printf("diff: %s\n", d.to_string().c_str());
    }
    return 4;
}

}  // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string engine = "sarm";
    std::string diff_spec;
    std::uint64_t max_cycles = 2'000'000'000ull;
    std::uint64_t rand_seed = 0;
    bool have_rand = false;
    bool want_trace = false;
    bool want_regs = false;
    bool want_json = false;
    bool want_dump_arch = false;
    bool have_save_at = false;
    std::uint64_t save_at = 0;
    std::string save_path;
    std::string restore_path;
    std::string lockstep_eng;
    std::uint64_t interval = 256;
    sim::engine_config cfg;
    workloads::randprog_options rand_opt;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        try {
            if (workloads::parse_randprog_flag(argc, argv, i, rand_opt)) continue;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "osm-run: %s\n", e.what());
            return 2;
        }
        if (arg == "--engine" && i + 1 < argc) engine = argv[++i];
        else if (arg == "--diff" && i + 1 < argc) diff_spec = argv[++i];
        else if (arg == "--max-cycles" && i + 1 < argc) max_cycles = std::strtoull(argv[++i], nullptr, 0);
        else if (arg == "--rand" && i + 1 < argc) { rand_seed = std::strtoull(argv[++i], nullptr, 0); have_rand = true; }
        else if (arg == "--trace") want_trace = true;
        else if (arg == "--json") want_json = true;
        else if (arg == "--regs") want_regs = true;
        else if (arg == "--dump-arch") want_dump_arch = true;
        else if (arg == "--save-at" && i + 1 < argc) { save_at = std::strtoull(argv[++i], nullptr, 0); have_save_at = true; }
        else if (arg == "--save" && i + 1 < argc) save_path = argv[++i];
        else if (arg == "--restore" && i + 1 < argc) restore_path = argv[++i];
        else if (arg == "--lockstep" && i + 1 < argc) lockstep_eng = argv[++i];
        else if (arg == "--interval" && i + 1 < argc) interval = std::strtoull(argv[++i], nullptr, 0);
        else if (arg == "--no-forwarding") cfg.forwarding = false;
        else if (arg == "--no-decode-cache") cfg.decode_cache = false;
        else if (arg == "--block-cache") cfg.block_cache = true;
        else if (arg == "--no-block-cache") cfg.block_cache = false;
        else if (arg == "--director-batch") cfg.director_batch = true;
        else if (arg == "--no-director-batch") cfg.director_batch = false;
        else if (arg == "--list-engines") { list_engines(); return 0; }
        else if (!arg.empty() && arg[0] == '-') usage();
        else if (input.empty()) input = arg;
        else usage();
    }
    if (input.empty() && !have_rand && restore_path.empty()) usage();
    if (have_save_at && save_path.empty()) {
        std::fprintf(stderr, "osm-run: --save-at requires --save FILE\n");
        return 2;
    }

    // The target ISA (from the engine or the first --diff engine) picks the
    // assembler and random-program generator.  Lockstep and --diff all run
    // against the VR32 iss reference.
    std::string target_isa = "vr32";
    {
        std::string first;
        if (!diff_spec.empty() && diff_spec != "all") {
            const auto names = split_names(diff_spec);
            if (!names.empty()) first = names.front();
        } else if (diff_spec.empty() && lockstep_eng.empty()) {
            first = engine;
        }
        if (!first.empty()) {
            if (const auto* e = sim::engine_registry::instance().find(first)) {
                target_isa = e->isa;
            }
        }
    }

    isa::program_image img;
    const bool have_program = !input.empty() || have_rand;
    try {
        if (!have_program) {
            // --restore only: the checkpoint is the whole machine state.
        } else if (have_rand) {
            rand_opt.seed = rand_seed;
            if (target_isa == "ppc32") {
                ppc32::randprog_options po;
                po.seed = rand_opt.seed;
                po.blocks = rand_opt.blocks;
                po.block_len = rand_opt.block_len;
                po.with_mul_div = rand_opt.with_mul_div;
                po.with_memory = rand_opt.with_memory;
                po.with_branches = rand_opt.with_branches;
                po.loop_count = rand_opt.loop_count;
                img = ppc32::make_random_program(po);
            } else {
                img = workloads::make_random_program(rand_opt);
            }
        } else if (input.size() > 4 && input.substr(input.size() - 4) == ".vri") {
            img = isa::load_image(input);
        } else {
            std::ifstream in(input);
            if (!in) throw std::runtime_error("cannot open " + input);
            std::ostringstream src;
            src << in.rdbuf();
            img = target_isa == "ppc32" ? ppc32::assemble(src.str())
                                        : isa::assemble(src.str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-run: %s\n", e.what());
        return 1;
    }

    if (!diff_spec.empty()) {
        sim::diff_options opt;
        opt.config = cfg;
        opt.max_cycles = max_cycles;
        try {
            return run_diff(diff_spec, img, opt);
        } catch (const std::exception& e) {
            std::fprintf(stderr, "osm-run: %s\n", e.what());
            return 1;
        }
    }

    if (!lockstep_eng.empty()) {
        if (!have_program) {
            std::fprintf(stderr, "osm-run: --lockstep needs a program\n");
            return 2;
        }
        sim::lockstep_options opt;
        opt.config = cfg;
        opt.interval = interval;
        try {
            const auto r = sim::lockstep_diff(lockstep_eng, img, opt);
            if (!r.ran) {
                std::printf("lockstep: %s skipped (%s)\n", lockstep_eng.c_str(),
                            r.skip_reason.c_str());
                return 0;
            }
            if (!r.diverged) {
                std::printf("lockstep: %s agrees with %s through %llu retirement(s) "
                            "(%llu compare(s))%s\n",
                            lockstep_eng.c_str(), opt.reference.c_str(),
                            static_cast<unsigned long long>(r.final_retired),
                            static_cast<unsigned long long>(r.compares),
                            r.hit_budget ? ", budget hit" : "");
                return r.hit_budget ? 3 : 0;
            }
            std::printf("lockstep: %s\n", r.div.to_string().c_str());
            if (r.located) {
                std::printf("lockstep: first divergent retirement = %llu "
                            "(%s bisection, %llu restore(s))\n",
                            static_cast<unsigned long long>(r.first_divergent_retired),
                            r.used_checkpoint_bisect ? "checkpoint" : "rerun",
                            static_cast<unsigned long long>(r.restores));
            }
            return 4;
        } catch (const std::exception& e) {
            std::fprintf(stderr, "osm-run: %s\n", e.what());
            return 1;
        }
    }

    std::unique_ptr<sim::engine> sim;
    try {
        sim = sim::make_engine(engine, cfg);
    } catch (const sim::unknown_engine& e) {
        std::fprintf(stderr, "osm-run: %s\n", e.what());
        return 1;
    }

    std::unique_ptr<trace::pipeline_tracer> tracer;
    if (want_trace) {
        if (sim->director() && sim->kernel()) {
            tracer = std::make_unique<trace::pipeline_tracer>(*sim->director(),
                                                              *sim->kernel());
            tracer->start();
        } else {
            std::fprintf(stderr,
                         "osm-run: engine '%s' is not OSM-director based; --trace ignored\n",
                         engine.c_str());
        }
    }

    try {
        if (!restore_path.empty()) {
            sim->restore_state(sim::load_checkpoint_file(restore_path));
        } else {
            sim->load(img);
        }
        if (have_save_at) {
            sim->run_until_retired(save_at);
            sim::save_checkpoint_file(sim->save_state(), save_path);
            sim->run(max_cycles);
        } else {
            sim->run(max_cycles);
            if (!save_path.empty()) {
                sim::save_checkpoint_file(sim->save_state(), save_path);
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-run: %s\n", e.what());
        return 1;
    }

    // With --json, stdout carries exactly one JSON document; the program's
    // console stream and the human summary move to stderr so scripts can
    // pipe the report straight into a parser.
    FILE* human = want_json ? stderr : stdout;
    std::fprintf(human, "%s", sim->console().c_str());
    std::fprintf(human, "[%s] cycles=%llu retired=%llu ipc=%.3f halted=%d\n",
                 std::string(sim->name()).c_str(),
                 static_cast<unsigned long long>(sim->cycles()),
                 static_cast<unsigned long long>(sim->retired()), sim->ipc(),
                 sim->halted());
    if (tracer) std::fprintf(human, "%s", tracer->render(72).c_str());
    if (want_json) std::printf("%s", sim->stats_report().to_json().c_str());
    if (want_regs) dump_regs(*sim);
    if (want_dump_arch) dump_arch(*sim);
    return sim->halted() ? 0 : 3;
}
