// osm-run: execute a VR32 program (assembly or VRI image) on any of the
// framework's execution engines.
//
//   osm-run prog.s|prog.vri [--engine iss|sarm|hw|p750|port]
//           [--max-cycles N] [--trace] [--regs] [--json] [--no-forwarding]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "baseline/hardwired_sarm.hpp"
#include "baseline/port_ppc.hpp"
#include "isa/arch.hpp"
#include "isa/assembler.hpp"
#include "isa/image_io.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "ppc750/ppc750.hpp"
#include "sarm/sarm.hpp"
#include "trace/trace.hpp"

using namespace osm;

namespace {

void usage() {
    std::fprintf(stderr,
                 "usage: osm-run prog.s|prog.vri [--engine iss|sarm|hw|p750|port]\n"
                 "               [--max-cycles N] [--trace] [--regs] [--json] "
                 "[--no-forwarding]\n");
    std::exit(2);
}

void dump_regs(const std::function<std::uint32_t(unsigned)>& gpr) {
    for (unsigned r = 0; r < isa::num_gprs; ++r) {
        std::printf("%5s=%08X%s", std::string(isa::gpr_name(r)).c_str(), gpr(r),
                    (r % 4 == 3) ? "\n" : "  ");
    }
}

}  // namespace

int main(int argc, char** argv) {
    std::string input;
    std::string engine = "sarm";
    std::uint64_t max_cycles = 2'000'000'000ull;
    bool want_trace = false;
    bool want_regs = false;
    bool want_json = false;
    bool forwarding = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--engine" && i + 1 < argc) engine = argv[++i];
        else if (arg == "--max-cycles" && i + 1 < argc) max_cycles = std::strtoull(argv[++i], nullptr, 0);
        else if (arg == "--trace") want_trace = true;
        else if (arg == "--json") want_json = true;
        else if (arg == "--regs") want_regs = true;
        else if (arg == "--no-forwarding") forwarding = false;
        else if (!arg.empty() && arg[0] == '-') usage();
        else if (input.empty()) input = arg;
        else usage();
    }
    if (input.empty()) usage();

    isa::program_image img;
    try {
        if (input.size() > 4 && input.substr(input.size() - 4) == ".vri") {
            img = isa::load_image(input);
        } else {
            std::ifstream in(input);
            if (!in) throw std::runtime_error("cannot open " + input);
            std::ostringstream src;
            src << in.rdbuf();
            img = isa::assemble(src.str());
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-run: %s\n", e.what());
        return 1;
    }

    mem::main_memory memory;
    if (engine == "iss") {
        isa::iss sim(memory);
        sim.load(img);
        sim.run(max_cycles);
        std::printf("%s", sim.host().console().c_str());
        std::printf("[iss] retired=%llu halted=%d\n",
                    static_cast<unsigned long long>(sim.instret()),
                    sim.state().halted);
        if (want_regs) dump_regs([&](unsigned r) { return sim.state().gpr[r]; });
        return sim.state().halted ? 0 : 3;
    }
    if (engine == "sarm" || engine == "hw") {
        sarm::sarm_config cfg;
        cfg.forwarding = forwarding;
        if (engine == "hw") {
            baseline::hardwired_sarm sim(cfg, memory);
            sim.load(img);
            sim.run(max_cycles);
            std::printf("%s", sim.console().c_str());
            std::printf("[hw] cycles=%llu retired=%llu ipc=%.3f halted=%d\n",
                        static_cast<unsigned long long>(sim.cycles()),
                        static_cast<unsigned long long>(sim.retired()), sim.ipc(),
                        sim.halted());
            if (want_regs) dump_regs([&](unsigned r) { return sim.gpr(r); });
            return sim.halted() ? 0 : 3;
        }
        sarm::sarm_model sim(cfg, memory);
        std::unique_ptr<trace::pipeline_tracer> tracer;
        if (want_trace) {
            tracer = std::make_unique<trace::pipeline_tracer>(sim.dir(), sim.kernel());
            tracer->start();
        }
        sim.load(img);
        sim.run(max_cycles);
        std::printf("%s", sim.console().c_str());
        const auto& st = sim.stats();
        std::printf("[sarm] cycles=%llu retired=%llu ipc=%.3f branches=%llu "
                    "redirects=%llu kills=%llu halted=%d\n",
                    static_cast<unsigned long long>(st.cycles),
                    static_cast<unsigned long long>(st.retired), st.ipc(),
                    static_cast<unsigned long long>(st.branches),
                    static_cast<unsigned long long>(st.redirects),
                    static_cast<unsigned long long>(st.kills), sim.halted());
        if (tracer) std::printf("%s", tracer->render(72).c_str());
        if (want_json) std::printf("%s", sim.make_report().to_json().c_str());
        if (want_regs) dump_regs([&](unsigned r) { return sim.gpr(r); });
        return sim.halted() ? 0 : 3;
    }
    if (engine == "p750" || engine == "port") {
        ppc750::p750_config cfg;
        if (engine == "port") {
            baseline::port_ppc sim(cfg, memory);
            sim.load(img);
            sim.run(max_cycles);
            std::printf("%s", sim.console().c_str());
            std::printf("[port] cycles=%llu retired=%llu ipc=%.3f halted=%d\n",
                        static_cast<unsigned long long>(sim.stats().cycles),
                        static_cast<unsigned long long>(sim.stats().retired),
                        sim.stats().ipc(), sim.halted());
            if (want_regs) dump_regs([&](unsigned r) { return sim.gpr(r); });
            return sim.halted() ? 0 : 3;
        }
        ppc750::p750_model sim(cfg, memory);
        std::unique_ptr<trace::pipeline_tracer> tracer;
        if (want_trace) {
            tracer = std::make_unique<trace::pipeline_tracer>(sim.dir(), sim.kernel());
            tracer->start();
        }
        sim.load(img);
        sim.run(max_cycles);
        std::printf("%s", sim.console().c_str());
        const auto& st = sim.stats();
        std::printf("[p750] cycles=%llu retired=%llu ipc=%.3f mispred=%llu "
                    "squashed=%llu halted=%d\n",
                    static_cast<unsigned long long>(st.cycles),
                    static_cast<unsigned long long>(st.retired), st.ipc(),
                    static_cast<unsigned long long>(st.mispredicts),
                    static_cast<unsigned long long>(st.squashed), sim.halted());
        if (tracer) std::printf("%s", tracer->render(72).c_str());
        if (want_json) std::printf("%s", sim.make_report().to_json().c_str());
        if (want_regs) dump_regs([&](unsigned r) { return sim.gpr(r); });
        return sim.halted() ? 0 : 3;
    }
    usage();
}
