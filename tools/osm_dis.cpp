// osm-dis: disassemble a VRI image.
//
//   osm-dis image.vri [--all]    (default: the segment containing entry)
#include <cstdio>
#include <cstring>
#include <string>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/image_io.hpp"

int main(int argc, char** argv) {
    std::string input;
    bool all = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--all") == 0) {
            all = true;
        } else if (input.empty()) {
            input = argv[i];
        } else {
            std::fprintf(stderr, "usage: osm-dis image.vri [--all]\n");
            return 2;
        }
    }
    if (input.empty()) {
        std::fprintf(stderr, "usage: osm-dis image.vri [--all]\n");
        return 2;
    }

    try {
        const auto img = osm::isa::load_image(input);
        std::printf("; %s  entry=0x%X  segments=%zu\n", input.c_str(), img.entry,
                    img.segments.size());
        for (const auto& seg : img.segments) {
            const bool is_text =
                img.entry >= seg.base && img.entry < seg.base + seg.bytes.size();
            if (!is_text && !all) continue;
            std::printf("\n; segment 0x%08X..0x%08zX%s\n", seg.base,
                        seg.base + seg.bytes.size(), is_text ? " (text)" : "");
            for (std::size_t off = 0; off + 4 <= seg.bytes.size(); off += 4) {
                const std::uint32_t w =
                    static_cast<std::uint32_t>(seg.bytes[off]) |
                    static_cast<std::uint32_t>(seg.bytes[off + 1]) << 8 |
                    static_cast<std::uint32_t>(seg.bytes[off + 2]) << 16 |
                    static_cast<std::uint32_t>(seg.bytes[off + 3]) << 24;
                const auto pc = seg.base + static_cast<std::uint32_t>(off);
                const auto di = osm::isa::decode(w);
                std::printf("%08X:  %08X  %s\n", pc, w,
                            osm::isa::disassemble(di, pc).c_str());
            }
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-dis: %s\n", e.what());
        return 1;
    }
    return 0;
}
