// osm-decgen: compile a declarative ISA bit-pattern spec
// (src/isa/specs/<isa>.spec) into the constexpr decode/encode tables
// consumed by src/isa/table_isa.hpp.
//
// Outputs (committed under src/isa/gen/, verified by the CI staleness
// gate `generated_sources_fresh`):
//   <isa>_ops.inc     enum entries, one per instruction, in spec order
//   <isa>_tables.inc  inst_desc/bucket/sub-index data + isa_tables
//
// With --md-splice FILE the encoding table section of a markdown doc is
// regenerated in place between the markers
//   <!-- BEGIN GENERATED (osm-decgen: <isa>) -->
//   <!-- END GENERATED (osm-decgen: <isa>) -->
//
// The generator is deliberately deterministic: identical spec input
// yields byte-identical output (no timestamps, spec-order iteration).
//
// Usage: osm-decgen SPEC [--out DIR] [--md-splice FILE]
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct field {
    char letter;  // canonical lowercase
    int shift = 0;
    int width = 0;
    bool enc_only = false;
};

struct imm_field {
    bool present = false;
    bool in_decode = false;
    bool sign = false;
    int shift = 0;
    int width = 0;
    int scale = 1;
};

struct inst {
    std::string id;
    std::string mnemonic;
    std::string pattern;
    std::uint32_t match = 0;
    std::uint32_t mask = 0;
    std::vector<field> fields;
    imm_field imm;
    std::string cls = "alu";
    int rd = 0, rs1 = 0, rs2 = 0;  // 0=none 1=gpr 2=fpr
    int lat = 0;
    int line = 0;
};

struct spec {
    std::string isa;
    int pshift = -1;
    int pbits = 0;
    std::vector<inst> insts;
};

[[noreturn]] void die(const std::string& msg) {
    std::fprintf(stderr, "osm-decgen: %s\n", msg.c_str());
    std::exit(1);
}

[[noreturn]] void die_at(const std::string& file, int line, const std::string& msg) {
    die(file + ":" + std::to_string(line) + ": " + msg);
}

std::vector<std::string> tokens_of(const std::string& line) {
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i >= line.size()) break;
        if (line[i] == '"') {
            const std::size_t close = line.find('"', i + 1);
            if (close == std::string::npos) return {};  // caller reports
            out.push_back(line.substr(i, close - i + 1));
            i = close + 1;
        } else {
            std::size_t j = i;
            while (j < line.size() && !std::isspace(static_cast<unsigned char>(line[j]))) ++j;
            out.push_back(line.substr(i, j - i));
            i = j;
        }
    }
    return out;
}

bool valid_identifier(const std::string& s) {
    if (s.empty()) return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') return false;
    for (const char c : s) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') return false;
    }
    return true;
}

const std::set<std::string>& known_classes() {
    static const std::set<std::string> k = {
        "alu", "muldiv", "load", "store", "branch", "jump", "fpc", "fpx", "sys",
        "amo",  "sync"};
    return k;
}

void parse_pattern(const std::string& file, inst& in) {
    if (in.pattern.size() != 32) {
        die_at(file, in.line, "pattern must be exactly 32 chars, got " +
                                  std::to_string(in.pattern.size()));
    }
    // Collect contiguous runs per letter (case-sensitive for enc_only).
    struct run {
        char c;
        int hi_index;  // leftmost index in the string
        int len;
    };
    std::vector<run> runs;
    for (std::size_t i = 0; i < 32;) {
        std::size_t j = i;
        while (j < 32 && in.pattern[j] == in.pattern[i]) ++j;
        runs.push_back({in.pattern[i], static_cast<int>(i), static_cast<int>(j - i)});
        i = j;
    }
    std::set<char> seen;
    for (const run& r : runs) {
        const int shift = 31 - (r.hi_index + r.len - 1);
        if (r.c == '0' || r.c == '1') {
            for (int b = shift; b < shift + r.len; ++b) {
                in.mask |= 1u << b;
                if (r.c == '1') in.match |= 1u << b;
            }
            continue;
        }
        if (r.c == 'x') continue;
        if (!std::isalpha(static_cast<unsigned char>(r.c))) {
            die_at(file, in.line, std::string("bad pattern char '") + r.c + "'");
        }
        const char lower = static_cast<char>(std::tolower(static_cast<unsigned char>(r.c)));
        if (seen.count(r.c) || seen.count(lower) ||
            seen.count(static_cast<char>(std::toupper(static_cast<unsigned char>(r.c))))) {
            die_at(file, in.line,
                   std::string("field '") + r.c + "' is not contiguous / appears twice");
        }
        seen.insert(r.c);
        const bool enc_only = std::isupper(static_cast<unsigned char>(r.c)) != 0;
        if (lower == 'i') {
            in.imm.present = true;
            in.imm.in_decode = !enc_only;
            in.imm.shift = shift;
            in.imm.width = r.len;
        } else {
            in.fields.push_back({lower, shift, r.len, enc_only});
        }
    }
}

spec parse_spec(const std::string& path) {
    std::ifstream f(path);
    if (!f) die("cannot open " + path);
    spec sp;
    std::string raw;
    int line_no = 0;
    while (std::getline(f, raw)) {
        ++line_no;
        const std::size_t hash = raw.find('#');
        std::string line = hash == std::string::npos ? raw : raw.substr(0, hash);
        const auto toks = tokens_of(line);
        if (toks.empty()) continue;
        if (toks[0] == "isa") {
            if (toks.size() != 2) die_at(path, line_no, "isa needs one name");
            sp.isa = toks[1];
        } else if (toks[0] == "primary") {
            if (toks.size() != 3) die_at(path, line_no, "primary needs shift and width");
            sp.pshift = std::stoi(toks[1]);
            sp.pbits = std::stoi(toks[2]);
            if (sp.pshift < 0 || sp.pbits <= 0 || sp.pshift + sp.pbits > 32) {
                die_at(path, line_no, "primary field out of range");
            }
        } else if (toks[0] == "inst") {
            if (toks.size() < 4) die_at(path, line_no, "inst needs id, mnemonic, pattern");
            inst in;
            in.line = line_no;
            in.id = toks[1];
            if (!valid_identifier(in.id)) die_at(path, line_no, "bad id '" + in.id + "'");
            if (toks[2].size() < 2 || toks[2].front() != '"' || toks[2].back() != '"') {
                die_at(path, line_no, "mnemonic must be quoted");
            }
            in.mnemonic = toks[2].substr(1, toks[2].size() - 2);
            if (in.mnemonic.empty()) die_at(path, line_no, "empty mnemonic");
            in.pattern = toks[3];
            parse_pattern(path, in);
            bool imm_attr_seen = false;
            for (std::size_t i = 4; i < toks.size(); ++i) {
                const std::string& t = toks[i];
                const std::size_t eq = t.find('=');
                if (eq == std::string::npos) die_at(path, line_no, "bad attribute '" + t + "'");
                const std::string key = t.substr(0, eq);
                const std::string val = t.substr(eq + 1);
                if (key == "cls") {
                    if (!known_classes().count(val)) {
                        die_at(path, line_no, "unknown class '" + val + "'");
                    }
                    in.cls = val;
                } else if (key == "rd" || key == "rs1" || key == "rs2") {
                    int kind;
                    if (val == "g") kind = 1;
                    else if (val == "f") kind = 2;
                    else die_at(path, line_no, key + " must be g or f");
                    (key == "rd" ? in.rd : key == "rs1" ? in.rs1 : in.rs2) = kind;
                } else if (key == "imm") {
                    if (val == "sext") in.imm.sign = true;
                    else if (val == "zext") in.imm.sign = false;
                    else die_at(path, line_no, "imm must be sext or zext");
                    imm_attr_seen = true;
                } else if (key == "scale") {
                    in.imm.scale = std::stoi(val);
                    if (in.imm.scale <= 0) die_at(path, line_no, "bad scale");
                } else if (key == "lat") {
                    in.lat = std::stoi(val);
                    if (in.lat < 0 || in.lat > 255) die_at(path, line_no, "bad lat");
                } else {
                    die_at(path, line_no, "unknown attribute '" + key + "'");
                }
            }
            if (in.imm.present && !imm_attr_seen) {
                die_at(path, line_no, "pattern has an immediate field: add imm=sext|zext");
            }
            if (!in.imm.present && imm_attr_seen) {
                die_at(path, line_no, "imm attribute without an immediate field");
            }
            sp.insts.push_back(std::move(in));
        } else {
            die_at(path, line_no, "unknown directive '" + toks[0] + "'");
        }
    }
    if (sp.isa.empty()) die(path + ": missing `isa` directive");
    if (!valid_identifier(sp.isa)) die(path + ": bad isa name");
    if (sp.pshift < 0) die(path + ": missing `primary` directive");
    if (sp.insts.empty()) die(path + ": no instructions");
    if (sp.insts.size() > 0xFFFE) die(path + ": too many instructions");
    return sp;
}

void validate(const std::string& path, const spec& sp) {
    const std::uint32_t pmask = ((sp.pbits >= 32 ? 0u : (1u << sp.pbits)) - 1u)
                                << sp.pshift;
    std::set<std::string> ids, mnems;
    for (const inst& in : sp.insts) {
        if (!ids.insert(in.id).second) die_at(path, in.line, "duplicate id '" + in.id + "'");
        if (!mnems.insert(in.mnemonic).second) {
            die_at(path, in.line, "duplicate mnemonic '" + in.mnemonic + "'");
        }
        if ((in.mask & pmask) != pmask) {
            die_at(path, in.line, "primary opcode field is not fully fixed");
        }
    }
    // Pairwise overlap check: two patterns are ambiguous iff some word
    // matches both, i.e. their matches agree on all commonly-fixed bits.
    for (std::size_t i = 0; i < sp.insts.size(); ++i) {
        for (std::size_t j = i + 1; j < sp.insts.size(); ++j) {
            const std::uint32_t m = sp.insts[i].mask & sp.insts[j].mask;
            if ((sp.insts[i].match & m) == (sp.insts[j].match & m)) {
                die_at(path, sp.insts[j].line,
                       "pattern overlaps '" + sp.insts[i].id + "' (line " +
                           std::to_string(sp.insts[i].line) + ")");
            }
        }
    }
}

struct bucket {
    int sub_shift = 0;
    int sub_bits = 0;
    std::size_t sub_off = 0;
    std::size_t first = 0;
    std::vector<std::size_t> members;  // inst indices, spec order
};

struct decode_plan {
    std::vector<bucket> buckets;          // 1 << pbits
    std::vector<std::uint16_t> sub;       // dense sub-tables
    std::vector<std::uint16_t> order;     // linear lists
};

decode_plan plan_decode(const spec& sp) {
    decode_plan plan;
    plan.buckets.resize(std::size_t{1} << sp.pbits);
    for (std::size_t i = 0; i < sp.insts.size(); ++i) {
        const std::uint32_t primary = (sp.insts[i].match >> sp.pshift) &
                                      ((1u << sp.pbits) - 1u);
        plan.buckets[primary].members.push_back(i);
    }
    for (bucket& b : plan.buckets) {
        if (b.members.empty()) continue;
        // Bits fixed in every member (outside the primary field) whose
        // values differ somewhere: candidates for a dense sub-index.
        std::uint32_t fixed_all = ~0u;
        for (const std::size_t m : b.members) fixed_all &= sp.insts[m].mask;
        std::uint32_t differ = 0;
        const std::uint32_t ref = sp.insts[b.members[0]].match;
        for (const std::size_t m : b.members) {
            differ |= (sp.insts[m].match ^ ref) & fixed_all;
        }
        bool dense = false;
        if (b.members.size() > 1 && differ != 0) {
            int lo = 0, hi = 31;
            while (!((differ >> lo) & 1u)) ++lo;
            while (!((differ >> hi) & 1u)) --hi;
            const int width = hi - lo + 1;
            // The whole contiguous span must be fixed in every member,
            // and span values must be collision-free.
            std::uint32_t span_mask =
                (width >= 32 ? ~0u : ((1u << width) - 1u)) << lo;
            if (width <= 12 && (fixed_all & span_mask) == span_mask) {
                std::set<std::uint32_t> values;
                bool ok = true;
                for (const std::size_t m : b.members) {
                    const std::uint32_t v = (sp.insts[m].match >> lo) &
                                            ((1u << width) - 1u);
                    if (!values.insert(v).second) { ok = false; break; }
                }
                if (ok) {
                    dense = true;
                    b.sub_shift = lo;
                    b.sub_bits = width;
                    b.sub_off = plan.sub.size();
                    plan.sub.resize(plan.sub.size() + (std::size_t{1} << width),
                                    0xFFFF);
                    for (const std::size_t m : b.members) {
                        const std::uint32_t v = (sp.insts[m].match >> lo) &
                                                ((1u << width) - 1u);
                        plan.sub[b.sub_off + v] = static_cast<std::uint16_t>(m);
                    }
                }
            }
        }
        if (!dense) {
            b.first = plan.order.size();
            for (const std::size_t m : b.members) {
                plan.order.push_back(static_cast<std::uint16_t>(m));
            }
        }
    }
    return plan;
}

std::string hex32(std::uint32_t v) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%08Xu", v);
    return buf;
}

const char* cls_name(const std::string& c) {
    if (c == "alu") return "c_alu";
    if (c == "muldiv") return "c_muldiv";
    if (c == "load") return "c_load";
    if (c == "store") return "c_store";
    if (c == "branch") return "c_branch";
    if (c == "jump") return "c_jump";
    if (c == "fpc") return "c_fpc";
    if (c == "fpx") return "c_fpx";
    if (c == "amo") return "c_amo";
    if (c == "sync") return "c_sync";
    return "c_sys";
}

const char* kind_name(int k) {
    return k == 1 ? "k_gpr" : k == 2 ? "k_fpr" : "k_none";
}

std::string header(const spec& sp) {
    return "// Generated by osm-decgen from src/isa/specs/" + sp.isa +
           ".spec — DO NOT EDIT.\n"
           "// Regenerate: osm-decgen src/isa/specs/" + sp.isa +
           ".spec --out src/isa/gen\n"
           "// clang-format off\n";
}

std::string emit_ops(const spec& sp) {
    std::string out = header(sp);
    out += "// One enum entry per instruction, in spec order (ids start at 1;\n"
           "// 0 is reserved for the invalid op).\n";
    for (const inst& in : sp.insts) out += in.id + ",\n";
    return out;
}

std::string emit_tables(const spec& sp, const decode_plan& plan) {
    std::ostringstream o;
    o << header(sp);
    o << "namespace osm_tbl = ::osm::isa::tbl;\n\n";

    // Flattened non-imm field array; per-inst offsets.
    std::vector<std::size_t> field_off(sp.insts.size());
    o << "static constexpr osm_tbl::field_desc k_" << sp.isa << "_field_data[] = {\n";
    std::size_t off = 0;
    bool any_field = false;
    for (std::size_t i = 0; i < sp.insts.size(); ++i) {
        field_off[i] = off;
        for (const field& f : sp.insts[i].fields) {
            o << "    {'" << f.letter << "', " << f.shift << ", " << f.width << ", "
              << (f.enc_only ? "true" : "false") << "},  // " << sp.insts[i].id << "\n";
            ++off;
            any_field = true;
        }
    }
    if (!any_field) o << "    {'?', 0, 0, false},  // placeholder: no fields\n";
    o << "};\n\n";

    o << "static constexpr osm_tbl::inst_desc k_" << sp.isa << "_inst_data[] = {\n";
    for (std::size_t i = 0; i < sp.insts.size(); ++i) {
        const inst& in = sp.insts[i];
        const imm_field& im = in.imm;
        o << "    {" << (i + 1) << ", \"" << in.mnemonic << "\", " << hex32(in.match)
          << ", " << hex32(in.mask) << ",\n     k_" << sp.isa << "_field_data + "
          << field_off[i] << ", " << in.fields.size() << ",\n     {"
          << (im.present ? "true" : "false") << ", " << (im.in_decode ? "true" : "false")
          << ", " << (im.sign ? "true" : "false") << ", " << im.shift << ", " << im.width
          << ", " << im.scale << "},\n     osm_tbl::" << cls_name(in.cls)
          << ", osm_tbl::" << kind_name(in.rd) << ", osm_tbl::" << kind_name(in.rs1)
          << ", osm_tbl::" << kind_name(in.rs2) << ", " << in.lat << "},  // " << in.id
          << "\n";
    }
    o << "};\n\n";

    o << "static constexpr osm_tbl::bucket_desc k_" << sp.isa << "_bucket_data[] = {\n";
    for (std::size_t p = 0; p < plan.buckets.size(); ++p) {
        const bucket& b = plan.buckets[p];
        o << "    {" << b.sub_shift << ", " << b.sub_bits << ", " << b.sub_off << ", "
          << (b.sub_bits != 0 ? 0 : b.first) << ", " << b.members.size() << "},  // primary "
          << p << "\n";
    }
    o << "};\n\n";

    o << "static constexpr std::uint16_t k_" << sp.isa << "_sub_data[] = {\n";
    if (plan.sub.empty()) {
        o << "    osm_tbl::no_inst,  // placeholder: no dense sub-tables\n";
    } else {
        for (std::size_t i = 0; i < plan.sub.size(); ++i) {
            if (i % 8 == 0) o << "    ";
            if (plan.sub[i] == 0xFFFF) o << "osm_tbl::no_inst,";
            else o << plan.sub[i] << ",";
            o << (i % 8 == 7 || i + 1 == plan.sub.size() ? "\n" : " ");
        }
    }
    o << "};\n\n";

    o << "static constexpr std::uint16_t k_" << sp.isa << "_order_data[] = {\n    ";
    if (plan.order.empty()) {
        o << "osm_tbl::no_inst,  // placeholder: no linear lists\n";
    } else {
        for (std::size_t i = 0; i < plan.order.size(); ++i) {
            o << plan.order[i] << (i + 1 == plan.order.size() ? ",\n" : ", ");
        }
    }
    o << "};\n\n";

    o << "static constexpr osm_tbl::isa_tables k_" << sp.isa << "_tables = {\n"
      << "    \"" << sp.isa << "\", k_" << sp.isa << "_inst_data, " << sp.insts.size()
      << ", " << sp.pshift << ", " << sp.pbits << ",\n    k_" << sp.isa
      << "_bucket_data, k_" << sp.isa << "_sub_data, k_" << sp.isa << "_order_data};\n";
    return o.str();
}

std::string operand_summary(const inst& in) {
    std::string out;
    const auto add = [&](const char* slot, int kind) {
        if (kind == 0) return;
        if (!out.empty()) out += ", ";
        out += slot;
        out += kind == 2 ? ":fpr" : ":gpr";
    };
    add("rd", in.rd);
    add("rs1", in.rs1);
    add("rs2", in.rs2);
    return out.empty() ? "—" : out;
}

std::string emit_markdown(const spec& sp) {
    std::ostringstream o;
    o << "Regenerated by `osm-decgen` from `src/isa/specs/" << sp.isa
      << ".spec` — edit the spec, not this table.\n\n"
      << "Pattern bits: bit 31 leftmost; `0`/`1` fixed opcode bits, letters are\n"
      << "operand fields (`d`=rd `a`=rs1 `b`=rs2 `i`=imm; uppercase = inserted on\n"
      << "encode but ignored by decode), `x` = ignored on decode, 0 on encode.\n\n";
    o << "| # | mnemonic | pattern (bit 31 … 0) | class | operands | imm | lat |\n";
    o << "|---|----------|----------------------|-------|----------|-----|-----|\n";
    for (std::size_t i = 0; i < sp.insts.size(); ++i) {
        const inst& in = sp.insts[i];
        std::string immdesc = "—";
        if (in.imm.present) {
            immdesc = (in.imm.sign ? "s" : "u") + std::to_string(in.imm.width);
            if (in.imm.scale != 1) immdesc += "×" + std::to_string(in.imm.scale);
            if (!in.imm.in_decode) immdesc += " (enc-only)";
        }
        o << "| " << (i + 1) << " | `" << in.mnemonic << "` | `" << in.pattern
          << "` | " << in.cls << " | " << operand_summary(in) << " | " << immdesc
          << " | " << in.lat << " |\n";
    }
    return o.str();
}

void write_file(const std::string& path, const std::string& content) {
    std::ofstream f(path, std::ios::binary);
    if (!f) die("cannot write " + path);
    f << content;
}

void splice_markdown(const std::string& path, const spec& sp) {
    std::ifstream f(path, std::ios::binary);
    if (!f) die("cannot open " + path + " for --md-splice");
    std::stringstream ss;
    ss << f.rdbuf();
    const std::string text = ss.str();
    const std::string begin_marker =
        "<!-- BEGIN GENERATED (osm-decgen: " + sp.isa + ") -->";
    const std::string end_marker =
        "<!-- END GENERATED (osm-decgen: " + sp.isa + ") -->";
    const std::size_t b = text.find(begin_marker);
    const std::size_t e = text.find(end_marker);
    if (b == std::string::npos || e == std::string::npos || e < b) {
        die(path + ": missing '" + begin_marker + "' / '" + end_marker + "' markers");
    }
    const std::string out = text.substr(0, b + begin_marker.size()) + "\n" +
                            emit_markdown(sp) + text.substr(e);
    write_file(path, out);
}

}  // namespace

int main(int argc, char** argv) {
    std::string spec_path, out_dir, md_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--out") {
            if (++i >= argc) die("--out needs a directory");
            out_dir = argv[i];
        } else if (arg == "--md-splice") {
            if (++i >= argc) die("--md-splice needs a file");
            md_path = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            std::printf("usage: osm-decgen SPEC [--out DIR] [--md-splice FILE]\n");
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            die("unknown option " + arg);
        } else if (spec_path.empty()) {
            spec_path = arg;
        } else {
            die("multiple spec files given");
        }
    }
    if (spec_path.empty()) die("usage: osm-decgen SPEC [--out DIR] [--md-splice FILE]");

    const spec sp = parse_spec(spec_path);
    validate(spec_path, sp);
    const decode_plan plan = plan_decode(sp);

    if (!out_dir.empty()) {
        write_file(out_dir + "/" + sp.isa + "_ops.inc", emit_ops(sp));
        write_file(out_dir + "/" + sp.isa + "_tables.inc", emit_tables(sp, plan));
        std::fprintf(stderr, "osm-decgen: %s: %zu instructions -> %s/%s_{ops,tables}.inc\n",
                     sp.isa.c_str(), sp.insts.size(), out_dir.c_str(), sp.isa.c_str());
    }
    if (!md_path.empty()) splice_markdown(md_path, sp);
    return 0;
}
