// osm-serve: sharded campaign / lockstep service front-end.
//
//   osm-serve campaign [--seeds LO:HI] [--engines a,b,...|all] [--matrix quick|full]
//             [--max-cycles N] [--no-minimize] [--save DIR] [--replay DIR]
//             [--jobs N] [--cache-dir DIR] [--cache-capacity N]
//             [--watchdog-ms N] [--slice-cycles N] [--max-resumes N] [--json]
//             [--no-forwarding] [--no-decode-cache]
//   osm-serve lockstep [--seeds LO:HI] [--reference NAME] [--engines a,b,...|all]
//             [--interval N] [--max-retired N] [--matrix quick|full]
//             [--jobs N] [--json]
//
// `campaign` runs the differential fuzz campaign on a worker pool: seeds and
// corpus replays are sharded across --jobs workers with work stealing, engine
// runs flow through the content-addressed result cache (--cache-dir persists
// it across invocations), and long jobs are preempted at quiesced slice
// boundaries and resumed from checkpoints on another worker.  The merged
// campaign summary on stdout (--json) is byte-identical to a serial
// `osm-fuzz campaign` run whatever the worker count; everything
// scheduling-dependent (worker/cache/timeout stats) goes to stderr.
//
// `lockstep` shards (seed x engine) lockstep divergence probes across the
// pool; divergence lines merge in deterministic (seed, engine) order.
//
// Exit codes: 0 = clean, 1 = setup error, 2 = usage, 4 = divergence found.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "serve/campaign_service.hpp"
#include "sim/registry.hpp"

using namespace osm;

namespace {

constexpr int exit_ok = 0;
constexpr int exit_setup = 1;
constexpr int exit_usage = 2;
constexpr int exit_divergence = 4;

void usage() {
    std::fprintf(
        stderr,
        "usage: osm-serve campaign [--seeds LO:HI] [--engines LIST|all]\n"
        "                 [--matrix quick|full] [--max-cycles N] [--no-minimize]\n"
        "                 [--save DIR] [--replay DIR] [--jobs N]\n"
        "                 [--cache-dir DIR] [--cache-capacity N]\n"
        "                 [--watchdog-ms N] [--slice-cycles N] [--max-resumes N]\n"
        "                 [--json] [--no-forwarding] [--no-decode-cache]\n"
        "       osm-serve lockstep [--seeds LO:HI] [--reference NAME]\n"
        "                 [--engines LIST|all] [--interval N] [--max-retired N]\n"
        "                 [--matrix quick|full] [--jobs N] [--json]\n");
    std::exit(exit_usage);
}

std::vector<std::string> split_names(const std::string& list) {
    std::vector<std::string> out;
    std::istringstream in(list);
    std::string name;
    while (std::getline(in, name, ',')) {
        if (!name.empty()) out.push_back(name);
    }
    return out;
}

struct cli {
    std::string command;
    std::uint64_t seed_lo = 1, seed_hi = 100;
    std::vector<std::string> engines;
    std::string reference = "iss";
    std::uint64_t max_cycles = 50'000'000;
    std::uint64_t interval = 256;
    std::uint64_t max_retired = 100'000'000ull;
    bool quick = false;
    bool minimize = true;
    bool json = false;
    std::string save_dir;
    std::string replay_dir;
    unsigned jobs = 1;
    std::string cache_dir;
    std::size_t cache_capacity = 4096;
    std::uint64_t watchdog_ms = 0;
    std::uint64_t slice_cycles = 250'000;
    unsigned max_resumes = 8;
    sim::engine_config config;
};

cli parse_args(int argc, char** argv) {
    cli c;
    int i = 1;
    if (i < argc) {
        std::string cmd = argv[i];
        if (!cmd.empty() && cmd.rfind("--", 0) == 0) cmd = cmd.substr(2);
        if (cmd == "campaign" || cmd == "lockstep") {
            c.command = cmd;
            ++i;
        }
    }
    if (c.command.empty()) usage();
    // lockstep probes feature-matrix rows directly; quick rows keep the
    // default sweep fast.
    if (c.command == "lockstep") c.quick = true;

    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            const std::string range = argv[++i];
            const auto colon = range.find(':');
            if (colon == std::string::npos) usage();
            c.seed_lo = std::strtoull(range.substr(0, colon).c_str(), nullptr, 0);
            c.seed_hi = std::strtoull(range.substr(colon + 1).c_str(), nullptr, 0);
            if (c.seed_hi < c.seed_lo) usage();
        } else if (arg == "--engines" && i + 1 < argc) {
            const std::string list = argv[++i];
            c.engines = (list == "all") ? std::vector<std::string>{} : split_names(list);
        } else if (arg == "--reference" && i + 1 < argc) {
            c.reference = argv[++i];
        } else if (arg == "--matrix" && i + 1 < argc) {
            const std::string m = argv[++i];
            if (m == "quick") c.quick = true;
            else if (m == "full") c.quick = false;
            else usage();
        } else if (arg == "--max-cycles" && i + 1 < argc) {
            c.max_cycles = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--interval" && i + 1 < argc) {
            c.interval = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--max-retired" && i + 1 < argc) {
            c.max_retired = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--save" && i + 1 < argc) {
            c.save_dir = argv[++i];
        } else if (arg == "--replay" && i + 1 < argc) {
            c.replay_dir = argv[++i];
        } else if (arg == "--jobs" && i + 1 < argc) {
            c.jobs = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
            if (c.jobs == 0) usage();
        } else if (arg == "--cache-dir" && i + 1 < argc) {
            c.cache_dir = argv[++i];
        } else if (arg == "--cache-capacity" && i + 1 < argc) {
            c.cache_capacity = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--watchdog-ms" && i + 1 < argc) {
            c.watchdog_ms = std::strtoull(argv[++i], nullptr, 0);
        } else if (arg == "--slice-cycles" && i + 1 < argc) {
            c.slice_cycles = std::strtoull(argv[++i], nullptr, 0);
            if (c.slice_cycles == 0) usage();
        } else if (arg == "--max-resumes" && i + 1 < argc) {
            c.max_resumes = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 0));
        } else if (arg == "--no-minimize") {
            c.minimize = false;
        } else if (arg == "--json") {
            c.json = true;
        } else if (arg == "--no-forwarding") {
            c.config.forwarding = false;
        } else if (arg == "--no-decode-cache") {
            c.config.decode_cache = false;
        } else {
            usage();
        }
    }
    return c;
}

int run_campaign_cmd(const cli& c) {
    serve::serve_options so;
    so.campaign.seed_lo = c.seed_lo;
    so.campaign.seed_hi = c.seed_hi;
    so.campaign.engines = c.engines;
    so.campaign.config = c.config;
    so.campaign.max_cycles = c.max_cycles;
    so.campaign.quick = c.quick;
    so.campaign.minimize = c.minimize;
    so.campaign.save_dir = c.save_dir;
    so.campaign.replay_dir = c.replay_dir;
    so.jobs = c.jobs;
    so.cache_capacity = c.cache_capacity;
    so.cache_dir = c.cache_dir;
    so.watchdog_ms = c.watchdog_ms;
    so.slice_cycles = c.slice_cycles;
    so.max_resumes = c.max_resumes;

    const auto sr = serve::run_campaign_service(so);
    const auto& res = sr.campaign;

    std::fprintf(stderr,
                 "serve: %llu jobs on %u worker(s), %llu programs, "
                 "%llu engine runs, %zu divergence(s), %zu timeout(s)\n",
                 static_cast<unsigned long long>(sr.total_jobs), c.jobs,
                 static_cast<unsigned long long>(res.programs),
                 static_cast<unsigned long long>(res.engine_runs),
                 res.findings.size(), sr.timeouts.size());
    std::fprintf(stderr, "serve: cache %llu/%llu hit(s) (%llu disk), %llu store(s)\n",
                 static_cast<unsigned long long>(sr.cache.hits),
                 static_cast<unsigned long long>(sr.cache.lookups),
                 static_cast<unsigned long long>(sr.cache.disk_hits),
                 static_cast<unsigned long long>(sr.cache.stores));
    for (const auto& f : res.findings) {
        std::fprintf(stderr, "  seed %llu row %s: %s\n",
                     static_cast<unsigned long long>(f.seed), f.row.c_str(),
                     f.first.to_string().c_str());
    }
    for (const auto& t : sr.timeouts) {
        std::fprintf(stderr, "  job %llu timed out: %s\n",
                     static_cast<unsigned long long>(t.id), t.detail.c_str());
    }
    std::fprintf(stderr, "%s", sr.serve_report().to_json().c_str());
    if (c.json) std::printf("%s", res.summary().to_json().c_str());
    return res.ok() && sr.timeouts.empty() ? exit_ok : exit_divergence;
}

int run_lockstep_cmd(const cli& c) {
    serve::lockstep_sweep_options lo;
    lo.seed_lo = c.seed_lo;
    lo.seed_hi = c.seed_hi;
    lo.reference = c.reference;
    lo.engines = c.engines;
    lo.config = c.config;
    lo.interval = c.interval;
    lo.max_retired = c.max_retired;
    lo.quick = c.quick;
    lo.jobs = c.jobs;

    const auto res = serve::run_lockstep_sweep(lo);
    std::fprintf(stderr,
                 "lockstep: %llu probe(s) on %u worker(s), %llu compare(s), "
                 "%llu diverged\n",
                 static_cast<unsigned long long>(res.probes), c.jobs,
                 static_cast<unsigned long long>(res.compares),
                 static_cast<unsigned long long>(res.diverged));
    for (const auto& line : res.divergences) {
        std::fprintf(stderr, "  %s\n", line.c_str());
    }
    if (c.json) std::printf("%s", res.summary().to_json().c_str());
    return res.diverged == 0 ? exit_ok : exit_divergence;
}

}  // namespace

int main(int argc, char** argv) {
    try {
        const cli c = parse_args(argc, argv);
        if (c.command == "campaign") return run_campaign_cmd(c);
        return run_lockstep_cmd(c);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "osm-serve: %s\n", e.what());
        return exit_setup;
    }
}
