// Property tests for the random program generator (workloads/randprog):
// every program across the fuzzing feature matrix halts by itself under an
// instruction budget and prints its register checksum; generation is
// bit-deterministic; the hazard/FP knobs actually change what is emitted;
// and the shared --rand-* CLI surface round-trips the option struct.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "fuzz/campaign.hpp"
#include "isa/decoded_inst.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "mem/main_memory.hpp"
#include "workloads/randprog.hpp"
#include "workloads/randprog_cli.hpp"

namespace {

using namespace osm;

struct run_outcome {
    bool halted = false;
    std::uint64_t retired = 0;
    std::string console;
};

run_outcome run_on_iss(const isa::program_image& img, std::uint64_t budget) {
    mem::main_memory m;
    isa::iss sim(m);
    sim.load(img);
    while (!sim.state().halted && sim.instret() < budget) sim.step();
    return {sim.state().halted, sim.instret(), sim.host().console()};
}

std::vector<isa::decoded_inst> decode_text(const isa::program_image& img) {
    std::vector<isa::decoded_inst> out;
    for (const auto& seg : img.segments) {
        if (img.entry < seg.base || img.entry >= seg.base + seg.bytes.size())
            continue;
        for (std::size_t i = 0; i + 4 <= seg.bytes.size(); i += 4) {
            const std::uint32_t w = static_cast<std::uint32_t>(seg.bytes[i]) |
                                    static_cast<std::uint32_t>(seg.bytes[i + 1]) << 8 |
                                    static_cast<std::uint32_t>(seg.bytes[i + 2]) << 16 |
                                    static_cast<std::uint32_t>(seg.bytes[i + 3]) << 24;
            out.push_back(isa::decode(w));
        }
    }
    return out;
}

// Every feature-matrix row, many seeds: the program must halt on its own
// well under the budget and print a checksum.  This is the termination
// guarantee the whole fuzzing subsystem leans on.
TEST(RandProg, EveryMatrixRowHaltsAndPrintsChecksum) {
    constexpr std::uint64_t budget = 2'000'000;
    for (const auto& row : fuzz::feature_matrix(false)) {
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            auto opt = row.options;
            opt.seed = seed;
            const auto img = workloads::make_random_program(opt);
            const auto out = run_on_iss(img, budget);
            EXPECT_TRUE(out.halted) << row.name << " seed " << seed
                                    << " did not halt in " << budget;
            EXPECT_LT(out.retired, budget) << row.name << " seed " << seed;
            EXPECT_FALSE(out.console.empty())
                << row.name << " seed " << seed << " printed no checksum";
        }
    }
}

TEST(RandProg, GenerationIsBitDeterministic) {
    workloads::randprog_options opt;
    opt.seed = 99;
    opt.with_fp = true;
    opt.hazard_load_use = true;
    opt.hazard_branch_dense = true;
    const auto a = workloads::make_random_program(opt);
    const auto b = workloads::make_random_program(opt);
    ASSERT_EQ(a.segments.size(), b.segments.size());
    for (std::size_t s = 0; s < a.segments.size(); ++s) {
        EXPECT_EQ(a.segments[s].bytes, b.segments[s].bytes);
    }
}

TEST(RandProg, DistinctSeedsProduceDistinctPrograms) {
    std::set<std::string> images;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        workloads::randprog_options opt;
        opt.seed = seed;
        const auto img = workloads::make_random_program(opt);
        std::string bytes;
        for (const auto& seg : img.segments) {
            bytes.append(reinterpret_cast<const char*>(seg.bytes.data()),
                         seg.bytes.size());
        }
        images.insert(bytes);
    }
    EXPECT_EQ(images.size(), 6u);
}

TEST(RandProg, FpKnobEmitsCompareAndConvertOps) {
    // Aggregated over a few seeds the FP mix must include the PR 4
    // additions: compares (feq/flt/fle) and converts/moves.
    bool saw_compare = false, saw_convert = false, saw_fp_mem = false;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        workloads::randprog_options opt;
        opt.seed = seed;
        opt.with_fp = true;
        for (const auto& di : decode_text(workloads::make_random_program(opt))) {
            switch (di.code) {
                case isa::op::feq:
                case isa::op::flt_f:
                case isa::op::fle: saw_compare = true; break;
                case isa::op::fcvt_w_s:
                case isa::op::fcvt_s_w:
                case isa::op::fmv_x_w:
                case isa::op::fmv_w_x: saw_convert = true; break;
                case isa::op::flw:
                case isa::op::fsw: saw_fp_mem = true; break;
                default: break;
            }
        }
    }
    EXPECT_TRUE(saw_compare);
    EXPECT_TRUE(saw_convert);
    EXPECT_TRUE(saw_fp_mem);
}

TEST(RandProg, HazardKnobsChangeTheEmittedProgram) {
    workloads::randprog_options base;
    base.seed = 5;
    auto load_use = base;
    load_use.hazard_load_use = true;
    auto branchy = base;
    branchy.hazard_branch_dense = true;

    const auto count = [](const isa::program_image& img, auto pred) {
        std::size_t n = 0;
        for (const auto& di : decode_text(img))
            if (pred(di.code)) ++n;
        return n;
    };
    const auto base_img = workloads::make_random_program(base);
    const auto lu_img = workloads::make_random_program(load_use);
    const auto br_img = workloads::make_random_program(branchy);

    EXPECT_GT(count(lu_img, isa::is_load), count(base_img, isa::is_load))
        << "load-use hazard blocks should raise the load density";
    EXPECT_GT(count(br_img, isa::is_branch), count(base_img, isa::is_branch))
        << "branch-dense hazard blocks should raise the branch density";
}

// ---- shared CLI surface (workloads/randprog_cli) ----

workloads::randprog_options parse_tokens(std::vector<std::string> tokens) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>("test"));
    for (auto& t : tokens) argv.push_back(t.data());
    workloads::randprog_options opt;
    for (int i = 1; i < static_cast<int>(argv.size()); ++i) {
        EXPECT_TRUE(workloads::parse_randprog_flag(
            static_cast<int>(argv.size()), argv.data(), i, opt))
            << "unrecognized token " << argv[i];
    }
    return opt;
}

TEST(RandProgCli, CanonicalFlagStringRoundTrips) {
    workloads::randprog_options opt;
    opt.blocks = 24;
    opt.block_len = 3;
    opt.loop_count = 9;
    opt.with_fp = true;
    opt.with_mul_div = false;
    opt.hazard_load_use = true;
    opt.hazard_branch_dense = true;

    const auto flags = workloads::randprog_flags(opt);
    ASSERT_FALSE(flags.empty());
    std::vector<std::string> tokens;
    std::size_t pos = 0;
    while (pos < flags.size()) {
        const auto sp = flags.find(' ', pos);
        tokens.push_back(flags.substr(pos, sp - pos));
        if (sp == std::string::npos) break;
        pos = sp + 1;
    }
    EXPECT_EQ(parse_tokens(tokens), opt);
}

TEST(RandProgCli, DefaultOptionsRenderToNoFlags) {
    EXPECT_TRUE(workloads::randprog_flags(workloads::randprog_options{}).empty());
}

TEST(RandProgCli, RejectsGarbageValues) {
    workloads::randprog_options opt;
    char prog[] = "test";
    char flag[] = "--rand-blocks";
    char bad[] = "zero";
    char* argv[] = {prog, flag, bad};
    int i = 1;
    EXPECT_THROW(workloads::parse_randprog_flag(3, argv, i, opt),
                 std::invalid_argument);
    char missing[] = "--rand-block-len";
    char* argv2[] = {prog, missing};
    i = 1;
    EXPECT_THROW(workloads::parse_randprog_flag(2, argv2, i, opt),
                 std::invalid_argument);
}

TEST(RandProgCli, LeavesUnknownFlagsAlone) {
    workloads::randprog_options opt;
    const workloads::randprog_options before = opt;
    char prog[] = "test";
    char other[] = "--engine";
    char* argv[] = {prog, other};
    int i = 1;
    EXPECT_FALSE(workloads::parse_randprog_flag(2, argv, i, opt));
    EXPECT_EQ(i, 1);
    EXPECT_EQ(opt, before);
}

}  // namespace
