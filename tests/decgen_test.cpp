// Bit-identity of the generated VR32 decoder against the retired
// hand-written one.
//
// When the VR32 front-end moved onto the osm-decgen tables
// (src/isa/specs/vr32.spec -> src/isa/gen/), the acceptance bar was that
// the generated decode/encode/immediate-range/predicate behaviour is
// *bit-identical* to the hand-written switch code it replaced.  This file
// keeps a frozen copy of that hand-written implementation as the
// reference and sweeps the comparison:
//   - decode: every primary opcode x full secondary/funct space x
//     randomized operand fields, plus millions of LCG-random words;
//   - encode + immediate_fits: every op over boundary and random operands;
//   - classification predicates and latency classes: every op value.
// A spec edit that changes any observable VR32 behaviour fails here even
// if it is self-consistent (assembler and disassembler would drift
// together and a pure round-trip test would miss it).
#include <gtest/gtest.h>

#include <cstdint>

#include "common/bits.hpp"
#include "isa/decoded_inst.hpp"
#include "isa/encoding.hpp"
#include "isa/vr32_tables.hpp"

namespace {

using namespace osm;
using isa::decoded_inst;
using isa::op;

// ---------------------------------------------------------------------------
// Frozen hand-written VR32 reference (pre-decgen src/isa/encoding.cpp and
// decoded_inst.cpp).  Do not modernize: its behaviour IS the contract.
namespace ref {

enum popc : std::uint32_t {
    p_r_alu = 0x00,
    p_addi = 0x01, p_andi = 0x02, p_ori = 0x03, p_xori = 0x04,
    p_slti = 0x05, p_sltiu = 0x06, p_slli = 0x07, p_srli = 0x08,
    p_srai = 0x09, p_lui = 0x0A, p_auipc = 0x0B,
    p_lb = 0x10, p_lbu = 0x11, p_lh = 0x12, p_lhu = 0x13, p_lw = 0x14,
    p_sb = 0x15, p_sh = 0x16, p_sw = 0x17,
    p_beq = 0x18, p_bne = 0x19, p_blt = 0x1A, p_bge = 0x1B,
    p_bltu = 0x1C, p_bgeu = 0x1D,
    p_jal = 0x1E, p_jalr = 0x1F,
    p_f_alu = 0x20, p_flw = 0x21, p_fsw = 0x22,
    p_syscall = 0x3E, p_halt = 0x3F,
    // Multi-hart extension (this PR): hand-written alongside the spec so
    // the generated decoder is still checked against an independent
    // description of every encoding.
    p_lr = 0x38, p_sc = 0x39, p_amoadd = 0x3A, p_amoswap = 0x3B,
    p_fence = 0x3C,
};

enum r_funct : std::uint32_t {
    f_add = 0, f_sub = 1, f_and = 2, f_or = 3, f_xor = 4, f_nor = 5,
    f_sll = 6, f_srl = 7, f_sra = 8, f_slt = 9, f_sltu = 10,
    f_mul = 11, f_mulh = 12, f_mulhu = 13,
    f_div = 14, f_divu = 15, f_rem = 16, f_remu = 17,
    r_funct_count = 18,
};

enum fp_funct : std::uint32_t {
    ff_add = 0, ff_sub = 1, ff_mul = 2, ff_div = 3, ff_min = 4, ff_max = 5,
    ff_abs = 6, ff_neg = 7, ff_eq = 8, ff_lt = 9, ff_le = 10,
    ff_cvt_w_s = 11, ff_cvt_s_w = 12, ff_mv_x_w = 13, ff_mv_w_x = 14,
    fp_funct_count = 15,
};

constexpr op k_r_ops[r_funct_count] = {
    op::add_r, op::sub_r, op::and_r, op::or_r, op::xor_r, op::nor_r,
    op::sll_r, op::srl_r, op::sra_r, op::slt_r, op::sltu_r,
    op::mul, op::mulh, op::mulhu, op::div_s, op::div_u, op::rem_s, op::rem_u};

constexpr op k_fp_ops[fp_funct_count] = {
    op::fadd, op::fsub, op::fmul, op::fdiv, op::fmin, op::fmax,
    op::fabs_f, op::fneg_f, op::feq, op::flt_f, op::fle,
    op::fcvt_w_s, op::fcvt_s_w, op::fmv_x_w, op::fmv_w_x};

struct op_info {
    std::uint32_t primary;
    std::uint32_t funct;
    // amo  = rd/rs1/rs2 register form, funct bits ignored on decode;
    // amo1 = rd/rs1 only (lr.w); sync = opcode-only (fence).
    enum class fmt { r, i, s, b, j, sys, amo, amo1, sync, none } format;
};

op_info info_for(op code) {
    using fmt = op_info::fmt;
    switch (code) {
        case op::add_r: return {p_r_alu, f_add, fmt::r};
        case op::sub_r: return {p_r_alu, f_sub, fmt::r};
        case op::and_r: return {p_r_alu, f_and, fmt::r};
        case op::or_r: return {p_r_alu, f_or, fmt::r};
        case op::xor_r: return {p_r_alu, f_xor, fmt::r};
        case op::nor_r: return {p_r_alu, f_nor, fmt::r};
        case op::sll_r: return {p_r_alu, f_sll, fmt::r};
        case op::srl_r: return {p_r_alu, f_srl, fmt::r};
        case op::sra_r: return {p_r_alu, f_sra, fmt::r};
        case op::slt_r: return {p_r_alu, f_slt, fmt::r};
        case op::sltu_r: return {p_r_alu, f_sltu, fmt::r};
        case op::mul: return {p_r_alu, f_mul, fmt::r};
        case op::mulh: return {p_r_alu, f_mulh, fmt::r};
        case op::mulhu: return {p_r_alu, f_mulhu, fmt::r};
        case op::div_s: return {p_r_alu, f_div, fmt::r};
        case op::div_u: return {p_r_alu, f_divu, fmt::r};
        case op::rem_s: return {p_r_alu, f_rem, fmt::r};
        case op::rem_u: return {p_r_alu, f_remu, fmt::r};
        case op::addi: return {p_addi, 0, fmt::i};
        case op::andi: return {p_andi, 0, fmt::i};
        case op::ori: return {p_ori, 0, fmt::i};
        case op::xori: return {p_xori, 0, fmt::i};
        case op::slti: return {p_slti, 0, fmt::i};
        case op::sltiu: return {p_sltiu, 0, fmt::i};
        case op::slli: return {p_slli, 0, fmt::i};
        case op::srli: return {p_srli, 0, fmt::i};
        case op::srai: return {p_srai, 0, fmt::i};
        case op::lui: return {p_lui, 0, fmt::i};
        case op::auipc: return {p_auipc, 0, fmt::i};
        case op::lb: return {p_lb, 0, fmt::i};
        case op::lbu: return {p_lbu, 0, fmt::i};
        case op::lh: return {p_lh, 0, fmt::i};
        case op::lhu: return {p_lhu, 0, fmt::i};
        case op::lw: return {p_lw, 0, fmt::i};
        case op::flw: return {p_flw, 0, fmt::i};
        case op::sb: return {p_sb, 0, fmt::s};
        case op::sh: return {p_sh, 0, fmt::s};
        case op::sw: return {p_sw, 0, fmt::s};
        case op::fsw: return {p_fsw, 0, fmt::s};
        case op::beq: return {p_beq, 0, fmt::b};
        case op::bne: return {p_bne, 0, fmt::b};
        case op::blt: return {p_blt, 0, fmt::b};
        case op::bge: return {p_bge, 0, fmt::b};
        case op::bltu: return {p_bltu, 0, fmt::b};
        case op::bgeu: return {p_bgeu, 0, fmt::b};
        case op::jal: return {p_jal, 0, fmt::j};
        case op::jalr: return {p_jalr, 0, fmt::i};
        case op::fadd: return {p_f_alu, ff_add, fmt::r};
        case op::fsub: return {p_f_alu, ff_sub, fmt::r};
        case op::fmul: return {p_f_alu, ff_mul, fmt::r};
        case op::fdiv: return {p_f_alu, ff_div, fmt::r};
        case op::fmin: return {p_f_alu, ff_min, fmt::r};
        case op::fmax: return {p_f_alu, ff_max, fmt::r};
        case op::fabs_f: return {p_f_alu, ff_abs, fmt::r};
        case op::fneg_f: return {p_f_alu, ff_neg, fmt::r};
        case op::feq: return {p_f_alu, ff_eq, fmt::r};
        case op::flt_f: return {p_f_alu, ff_lt, fmt::r};
        case op::fle: return {p_f_alu, ff_le, fmt::r};
        case op::fcvt_w_s: return {p_f_alu, ff_cvt_w_s, fmt::r};
        case op::fcvt_s_w: return {p_f_alu, ff_cvt_s_w, fmt::r};
        case op::fmv_x_w: return {p_f_alu, ff_mv_x_w, fmt::r};
        case op::fmv_w_x: return {p_f_alu, ff_mv_w_x, fmt::r};
        case op::syscall_op: return {p_syscall, 0, fmt::sys};
        case op::halt: return {p_halt, 0, fmt::sys};
        case op::lr_w: return {p_lr, 0, fmt::amo1};
        case op::sc_w: return {p_sc, 0, fmt::amo};
        case op::amoadd_w: return {p_amoadd, 0, fmt::amo};
        case op::amoswap_w: return {p_amoswap, 0, fmt::amo};
        case op::fence: return {p_fence, 0, fmt::sync};
        default: return {0, 0, fmt::none};
    }
}

bool immediate_fits(op code, std::int64_t imm) {
    const op_info info = info_for(code);
    using fmt = op_info::fmt;
    switch (info.format) {
        case fmt::i:
            if (code == op::lui || code == op::auipc) {
                return imm >= 0 && imm <= 0xFFFF;
            }
            if (code == op::andi || code == op::ori || code == op::xori) {
                return imm >= 0 && imm <= 0xFFFF;
            }
            return imm >= -32768 && imm <= 32767;
        case fmt::s:
            return imm >= -32768 && imm <= 32767;
        case fmt::b:
            return imm % 4 == 0 && imm / 4 >= -32768 && imm / 4 <= 32767;
        case fmt::j:
            return imm % 4 == 0 && imm / 4 >= -(1 << 20) && imm / 4 < (1 << 20);
        case fmt::sys:
            return imm >= 0 && imm <= 0xFFFF;
        case fmt::r:
        case fmt::amo:
        case fmt::amo1:
        case fmt::sync:
            return imm == 0;
        case fmt::none:
            return false;
    }
    return false;
}

std::uint32_t encode(const decoded_inst& di) {
    const op_info info = info_for(di.code);
    using fmt = op_info::fmt;
    std::uint32_t w = info.primary << 26;
    switch (info.format) {
        case fmt::r:
            w = insert_bits(w, di.rd, 21, 5);
            w = insert_bits(w, di.rs1, 16, 5);
            w = insert_bits(w, di.rs2, 11, 5);
            w = insert_bits(w, info.funct, 0, 11);
            break;
        case fmt::i:
            w = insert_bits(w, di.rd, 21, 5);
            w = insert_bits(w, di.rs1, 16, 5);
            w = insert_bits(w, static_cast<std::uint32_t>(di.imm), 0, 16);
            break;
        case fmt::s:
            w = insert_bits(w, di.rs2, 21, 5);
            w = insert_bits(w, di.rs1, 16, 5);
            w = insert_bits(w, static_cast<std::uint32_t>(di.imm), 0, 16);
            break;
        case fmt::b:
            w = insert_bits(w, di.rs1, 21, 5);
            w = insert_bits(w, di.rs2, 16, 5);
            w = insert_bits(w, static_cast<std::uint32_t>(di.imm / 4), 0, 16);
            break;
        case fmt::j:
            w = insert_bits(w, di.rd, 21, 5);
            w = insert_bits(w, static_cast<std::uint32_t>(di.imm / 4), 0, 21);
            break;
        case fmt::sys:
            w = insert_bits(w, static_cast<std::uint32_t>(di.imm), 0, 16);
            break;
        case fmt::amo:
            w = insert_bits(w, di.rd, 21, 5);
            w = insert_bits(w, di.rs1, 16, 5);
            w = insert_bits(w, di.rs2, 11, 5);
            break;
        case fmt::amo1:
            w = insert_bits(w, di.rd, 21, 5);
            w = insert_bits(w, di.rs1, 16, 5);
            break;
        case fmt::sync:
        case fmt::none:
            break;
    }
    return w;
}

decoded_inst decode(std::uint32_t word) {
    decoded_inst di;
    di.raw = word;
    const std::uint32_t primary = bits(word, 26, 6);

    const auto r_fields = [&] {
        di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
        di.rs1 = static_cast<std::uint8_t>(bits(word, 16, 5));
        di.rs2 = static_cast<std::uint8_t>(bits(word, 11, 5));
    };
    const auto i_fields = [&] {
        di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
        di.rs1 = static_cast<std::uint8_t>(bits(word, 16, 5));
        di.imm = sign_extend(word, 16);
    };
    const auto s_fields = [&] {
        di.rs2 = static_cast<std::uint8_t>(bits(word, 21, 5));
        di.rs1 = static_cast<std::uint8_t>(bits(word, 16, 5));
        di.imm = sign_extend(word, 16);
    };
    const auto b_fields = [&] {
        di.rs1 = static_cast<std::uint8_t>(bits(word, 21, 5));
        di.rs2 = static_cast<std::uint8_t>(bits(word, 16, 5));
        di.imm = sign_extend(word, 16) * 4;
    };

    switch (primary) {
        case p_r_alu: {
            const std::uint32_t funct = bits(word, 0, 11);
            if (funct >= r_funct_count) return di;
            di.code = k_r_ops[funct];
            r_fields();
            return di;
        }
        case p_f_alu: {
            const std::uint32_t funct = bits(word, 0, 11);
            if (funct >= fp_funct_count) return di;
            di.code = k_fp_ops[funct];
            r_fields();
            return di;
        }
        case p_addi: di.code = op::addi; i_fields(); return di;
        case p_andi:
            di.code = op::andi;
            i_fields();
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_ori:
            di.code = op::ori;
            i_fields();
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_xori:
            di.code = op::xori;
            i_fields();
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_slti: di.code = op::slti; i_fields(); return di;
        case p_sltiu: di.code = op::sltiu; i_fields(); return di;
        case p_slli: di.code = op::slli; i_fields(); return di;
        case p_srli: di.code = op::srli; i_fields(); return di;
        case p_srai: di.code = op::srai; i_fields(); return di;
        case p_lui:
            di.code = op::lui;
            di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_auipc:
            di.code = op::auipc;
            di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_lb: di.code = op::lb; i_fields(); return di;
        case p_lbu: di.code = op::lbu; i_fields(); return di;
        case p_lh: di.code = op::lh; i_fields(); return di;
        case p_lhu: di.code = op::lhu; i_fields(); return di;
        case p_lw: di.code = op::lw; i_fields(); return di;
        case p_flw: di.code = op::flw; i_fields(); return di;
        case p_sb: di.code = op::sb; s_fields(); return di;
        case p_sh: di.code = op::sh; s_fields(); return di;
        case p_sw: di.code = op::sw; s_fields(); return di;
        case p_fsw: di.code = op::fsw; s_fields(); return di;
        case p_beq: di.code = op::beq; b_fields(); return di;
        case p_bne: di.code = op::bne; b_fields(); return di;
        case p_blt: di.code = op::blt; b_fields(); return di;
        case p_bge: di.code = op::bge; b_fields(); return di;
        case p_bltu: di.code = op::bltu; b_fields(); return di;
        case p_bgeu: di.code = op::bgeu; b_fields(); return di;
        case p_jal:
            di.code = op::jal;
            di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
            di.imm = sign_extend(word, 21) * 4;
            return di;
        case p_jalr: di.code = op::jalr; i_fields(); return di;
        case p_syscall:
            di.code = op::syscall_op;
            di.imm = static_cast<std::int32_t>(bits(word, 0, 16));
            return di;
        case p_halt:
            di.code = op::halt;
            return di;
        case p_lr:
            di.code = op::lr_w;
            di.rd = static_cast<std::uint8_t>(bits(word, 21, 5));
            di.rs1 = static_cast<std::uint8_t>(bits(word, 16, 5));
            return di;
        case p_sc: di.code = op::sc_w; r_fields(); return di;
        case p_amoadd: di.code = op::amoadd_w; r_fields(); return di;
        case p_amoswap: di.code = op::amoswap_w; r_fields(); return di;
        case p_fence:
            di.code = op::fence;
            return di;
        default:
            return di;
    }
}

bool is_branch(op code) {
    switch (code) {
        case op::beq: case op::bne: case op::blt:
        case op::bge: case op::bltu: case op::bgeu: return true;
        default: return false;
    }
}
bool is_jump(op code) { return code == op::jal || code == op::jalr; }
bool is_load(op code) {
    switch (code) {
        case op::lb: case op::lbu: case op::lh: case op::lhu: case op::lw:
        case op::flw: return true;
        default: return false;
    }
}
bool is_store(op code) {
    switch (code) {
        case op::sb: case op::sh: case op::sw: case op::fsw: return true;
        default: return false;
    }
}
bool is_mul_div(op code) {
    switch (code) {
        case op::mul: case op::mulh: case op::mulhu:
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
            return true;
        default: return false;
    }
}
bool is_fp_compute(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
            return true;
        default: return false;
    }
}
bool is_fp(op code) {
    if (ref::is_fp_compute(code)) return true;
    switch (code) {
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fcvt_s_w:
        case op::fmv_x_w: case op::fmv_w_x:
        case op::flw: case op::fsw: return true;
        default: return false;
    }
}
bool is_system(op code) { return code == op::syscall_op || code == op::halt; }
bool writes_rd(op code) {
    if (ref::is_store(code) || ref::is_branch(code) || ref::is_system(code) ||
        code == op::invalid || code == op::fence) {
        return false;
    }
    return true;
}
bool rd_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
        case op::fcvt_s_w: case op::fmv_w_x: case op::flw: return true;
        default: return false;
    }
}
bool uses_rs1(op code) {
    switch (code) {
        case op::lui: case op::auipc: case op::jal:
        case op::syscall_op: case op::halt: case op::invalid:
        case op::fence: return false;
        default: return true;
    }
}
bool rs1_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax: case op::fabs_f: case op::fneg_f:
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fmv_x_w: return true;
        default: return false;
    }
}
bool uses_rs2(op code) {
    switch (code) {
        case op::add_r: case op::sub_r: case op::and_r: case op::or_r:
        case op::xor_r: case op::nor_r: case op::sll_r: case op::srl_r:
        case op::sra_r: case op::slt_r: case op::sltu_r:
        case op::mul: case op::mulh: case op::mulhu:
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
        case op::sb: case op::sh: case op::sw: case op::fsw:
        case op::beq: case op::bne: case op::blt: case op::bge:
        case op::bltu: case op::bgeu:
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax:
        case op::feq: case op::flt_f: case op::fle:
        case op::sc_w: case op::amoadd_w: case op::amoswap_w: return true;
        default: return false;
    }
}
bool rs2_is_fpr(op code) {
    switch (code) {
        case op::fadd: case op::fsub: case op::fmul: case op::fdiv:
        case op::fmin: case op::fmax:
        case op::feq: case op::flt_f: case op::fle:
        case op::fsw: return true;
        default: return false;
    }
}
unsigned extra_exec_cycles(op code) {
    switch (code) {
        case op::mul: case op::mulh: case op::mulhu: return 2;
        case op::div_s: case op::div_u: case op::rem_s: case op::rem_u:
            return 11;
        case op::fadd: case op::fsub: case op::fmin: case op::fmax:
        case op::fabs_f: case op::fneg_f:
        case op::feq: case op::flt_f: case op::fle:
        case op::fcvt_w_s: case op::fcvt_s_w: return 2;
        case op::fmul: return 3;
        case op::fdiv: return 17;
        case op::lr_w: case op::sc_w:
        case op::amoadd_w: case op::amoswap_w: return 2;
        default: return 0;
    }
}

}  // namespace ref
// ---------------------------------------------------------------------------

std::uint32_t lcg(std::uint64_t& s) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<std::uint32_t>(s >> 32);
}

void expect_same_decode(std::uint32_t word) {
    const decoded_inst got = isa::decode(word);
    const decoded_inst want = ref::decode(word);
    ASSERT_EQ(got, want) << "word 0x" << std::hex << word << " decoded as "
                         << isa::op_name(got.code) << " vs reference "
                         << isa::op_name(want.code);
}

TEST(DecgenVR32, DecodeExhaustiveOverOpcodeSpace) {
    // Every primary opcode x the full 11-bit secondary (funct) space x a
    // randomized sample of the operand-field bits [25:11].
    std::uint64_t seed = 0x5eed0001;
    for (std::uint32_t primary = 0; primary < 64; ++primary) {
        for (std::uint32_t funct = 0; funct < 2048; ++funct) {
            const std::uint32_t base = (primary << 26) | funct;
            expect_same_decode(base);
            expect_same_decode(base | 0x03FFF800u);  // all operand bits set
            for (int r = 0; r < 6; ++r) {
                expect_same_decode(base | (lcg(seed) & 0x03FFF800u));
            }
        }
    }
}

TEST(DecgenVR32, DecodeRandomWords) {
    std::uint64_t seed = 0xdecdecde;
    for (int i = 0; i < 2'000'000; ++i) expect_same_decode(lcg(seed));
    expect_same_decode(0u);
    expect_same_decode(~0u);
}

TEST(DecgenVR32, EncodeAndRangeCheckMatchReference) {
    // Boundary + random immediates per op; where the reference accepts the
    // operand combination, the generated encoder must produce the same word.
    const std::int64_t imm_samples[] = {
        0, 1, -1, 2, -2, 3, 4, -4, 8, 100, -100, 255, 256, 0x7FF, 0x800,
        32767, -32768, 32768, -32769, 65535, 65536, -65536,
        131068, -131072, 131072,
        0xFFFF, 0x10000, (1 << 20) * 4 - 4, -(1 << 20) * 4, (1 << 20) * 4,
        0x7FFFFFFF, -0x7FFFFFFF};
    std::uint64_t seed = 0xc0de;
    for (unsigned oi = 1; oi < static_cast<unsigned>(op::count_); ++oi) {
        const op code = static_cast<op>(oi);
        for (const std::int64_t imm : imm_samples) {
            ASSERT_EQ(isa::immediate_fits(code, imm),
                      ref::immediate_fits(code, imm))
                << isa::op_name(code) << " imm=" << imm;
            if (!ref::immediate_fits(code, imm)) continue;
            for (int r = 0; r < 8; ++r) {
                decoded_inst di;
                di.code = code;
                di.rd = static_cast<std::uint8_t>(lcg(seed) % 32);
                di.rs1 = static_cast<std::uint8_t>(lcg(seed) % 32);
                di.rs2 = static_cast<std::uint8_t>(lcg(seed) % 32);
                di.imm = static_cast<std::int32_t>(imm);
                ASSERT_EQ(isa::encode(di), ref::encode(di))
                    << isa::op_name(code) << " imm=" << imm;
            }
        }
    }
    // invalid never fits.
    EXPECT_FALSE(isa::immediate_fits(op::invalid, 0));
}

TEST(DecgenVR32, PredicatesMatchReference) {
    // Every real op plus invalid; count_ is a sentinel, not an op value.
    for (unsigned oi = 0; oi < static_cast<unsigned>(op::count_); ++oi) {
        const op code = static_cast<op>(oi);
        EXPECT_EQ(isa::is_branch(code), ref::is_branch(code)) << oi;
        EXPECT_EQ(isa::is_jump(code), ref::is_jump(code)) << oi;
        EXPECT_EQ(isa::is_load(code), ref::is_load(code)) << oi;
        EXPECT_EQ(isa::is_store(code), ref::is_store(code)) << oi;
        EXPECT_EQ(isa::is_mul_div(code), ref::is_mul_div(code)) << oi;
        EXPECT_EQ(isa::is_fp(code), ref::is_fp(code)) << oi;
        EXPECT_EQ(isa::is_fp_compute(code), ref::is_fp_compute(code)) << oi;
        EXPECT_EQ(isa::is_system(code), ref::is_system(code)) << oi;
        EXPECT_EQ(isa::writes_rd(code), ref::writes_rd(code)) << oi;
        EXPECT_EQ(isa::rd_is_fpr(code), ref::rd_is_fpr(code)) << oi;
        EXPECT_EQ(isa::uses_rs1(code), ref::uses_rs1(code)) << oi;
        EXPECT_EQ(isa::rs1_is_fpr(code), ref::rs1_is_fpr(code)) << oi;
        EXPECT_EQ(isa::uses_rs2(code), ref::uses_rs2(code)) << oi;
        EXPECT_EQ(isa::rs2_is_fpr(code), ref::rs2_is_fpr(code)) << oi;
        EXPECT_EQ(isa::extra_exec_cycles(code), ref::extra_exec_cycles(code)) << oi;
    }
}

TEST(DecgenVR32, TableShapeIsSound) {
    const auto& t = isa::vr32_tables();
    EXPECT_STREQ(t.isa_name, "vr32");
    ASSERT_EQ(t.ninsts, static_cast<unsigned>(op::count_) - 1);
    for (unsigned i = 0; i < t.ninsts; ++i) {
        EXPECT_EQ(t.insts[i].id, i + 1);
        // Every instruction's canonical encoding decodes back to itself.
        EXPECT_EQ(isa::tbl::lookup(t, t.insts[i].match), &t.insts[i])
            << t.insts[i].mnemonic;
    }
}

}  // namespace
