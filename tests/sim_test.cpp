// Tests for the sim::engine layer: the registry, the adapter contract
// (uniform state accessors + stats_report schema), and the differential
// runner.  The last test registers a deliberately-broken eighth engine to
// prove diff_engines catches a divergence — it mutates the process-wide
// registry, so it must stay the final test in this binary.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "isa/assembler.hpp"
#include "sim/diff_runner.hpp"
#include "sim/engine.hpp"
#include "sim/registry.hpp"
#include "workloads/randprog.hpp"

namespace {

using namespace osm;

constexpr const char* k_sum_src = R"(
        li a0, 0
        li a1, 1
        li a2, 100
loop:   add a0, a0, a1
        addi a1, a1, 1
        bge a2, a1, loop
        syscall 2
        syscall 3
        syscall 0
)";

constexpr const char* k_fp_src = R"(
        li t0, 3
        fcvt.s.w f1, t0
        fadd f2, f1, f1
        fcvt.w.s a0, f2
        syscall 2
        syscall 0
)";

isa::program_image sum_image() { return isa::assemble(k_sum_src); }

TEST(Registry, ListsAllBuiltinEngines) {
    const auto names = sim::engine_registry::instance().names();
    const std::set<std::string> have(names.begin(), names.end());
    for (const char* n : {"iss", "sarm", "hw", "adl", "smt", "p750", "port",
                          "ppc32", "ppc32-750"}) {
        EXPECT_TRUE(have.count(n)) << "missing engine " << n;
    }
    // Every entry carries a description for --list-engines.
    for (const auto& e : sim::engine_registry::instance().entries()) {
        EXPECT_FALSE(e.description.empty()) << e.name;
    }
}

TEST(Registry, UnknownEngineThrowsWithRegisteredList) {
    try {
        sim::make_engine("spim");
        FAIL() << "expected unknown_engine";
    } catch (const sim::unknown_engine& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("spim"), std::string::npos) << msg;
        // The message must name the alternatives.
        EXPECT_NE(msg.find("sarm"), std::string::npos) << msg;
        EXPECT_NE(msg.find("p750"), std::string::npos) << msg;
    }
}

TEST(Registry, CreatedEngineReportsItsName) {
    for (const auto& name : sim::engine_registry::instance().names()) {
        auto e = sim::make_engine(name);
        ASSERT_NE(e, nullptr) << name;
        EXPECT_EQ(e->name(), name);
    }
}

TEST(EngineAdapters, RunSmallProgramOnEveryEngine) {
    const auto img = sum_image();
    for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
        auto e = sim::make_engine(name);
        e->load(img);
        e->run(1'000'000);
        EXPECT_TRUE(e->halted()) << name;
        EXPECT_EQ(e->gpr(4), 5050u) << name;  // a0 = x4
        EXPECT_EQ(e->console(), "5050\n") << name;
        EXPECT_GT(e->retired(), 0u) << name;
        EXPECT_GT(e->cycles(), 0u) << name;
        if (!e->models_timing()) {
            EXPECT_EQ(e->cycles(), e->retired()) << name << " is untimed";
        }
    }
}

TEST(EngineAdapters, StatsReportCarriesUniformSchema) {
    const auto img = sum_image();
    for (const auto& name : sim::engine_registry::instance().names_for_isa("vr32")) {
        auto e = sim::make_engine(name);
        e->load(img);
        e->run(1'000'000);
        const auto rep = e->stats_report();
        // The adapter contract: these keys exist for every engine, so
        // `osm-run --json` emits one stable schema.
        EXPECT_EQ(std::get<std::string>(rep.at("engine", "name")), name);
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "cycles")), e->cycles());
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "retired")), e->retired());
        EXPECT_EQ(std::get<std::uint64_t>(rep.at("run", "halted")), 1u) << name;
        EXPECT_NO_THROW(rep.at("run", "ipc")) << name;
        EXPECT_NO_THROW(rep.at("run", "console_bytes")) << name;
        EXPECT_FALSE(rep.to_json().empty()) << name;
    }
}

TEST(EngineConfig, ForwardingPlumbsThrough) {
    const auto img = sum_image();
    sim::engine_config fwd, nofwd;
    nofwd.forwarding = false;
    auto a = sim::make_engine("sarm", fwd);
    auto b = sim::make_engine("sarm", nofwd);
    a->load(img);
    b->load(img);
    a->run(1'000'000);
    b->run(1'000'000);
    EXPECT_TRUE(a->halted());
    EXPECT_TRUE(b->halted());
    EXPECT_EQ(a->gpr(4), b->gpr(4));
    // Dependent adds in the loop body stall without forwarding.
    EXPECT_GT(b->cycles(), a->cycles());
}

TEST(DiffRunner, DetectsFpPrograms) {
    EXPECT_FALSE(sim::program_uses_fp(sum_image()));
    EXPECT_TRUE(sim::program_uses_fp(isa::assemble(k_fp_src)));
}

TEST(DiffRunner, AllEnginesAgreeOnIntegerProgram) {
    const auto res =
        sim::diff_engines(sim::engine_registry::instance().names_for_isa("vr32"), sum_image());
    EXPECT_TRUE(res.ok());
    for (const auto& r : res.runs) {
        EXPECT_TRUE(r.ran) << r.engine;
        EXPECT_TRUE(r.halted) << r.engine;
    }
}

TEST(DiffRunner, IntegerOnlyEnginesSitOutFpPrograms) {
    const auto res = sim::diff_engines(sim::engine_registry::instance().names_for_isa("vr32"),
                                       isa::assemble(k_fp_src));
    EXPECT_TRUE(res.ok());
    bool saw_skip = false;
    for (const auto& r : res.runs) {
        if (!r.ran) {
            saw_skip = true;
            EXPECT_FALSE(r.skip_reason.empty()) << r.engine;
        }
    }
    EXPECT_TRUE(saw_skip) << "smt should skip FP programs";
}

TEST(DiffRunner, RandomProgramsDiffClean) {
    for (std::uint64_t seed : {3u, 21u}) {
        workloads::randprog_options opt;
        opt.seed = seed;
        opt.blocks = 8;
        opt.block_len = 8;
        const auto img = workloads::make_random_program(opt);
        const auto res =
            sim::diff_engines(sim::engine_registry::instance().names_for_isa("vr32"), img);
        EXPECT_TRUE(res.ok()) << "seed " << seed
                              << (res.ok() ? ""
                                           : ": " + res.divergences[0].to_string());
    }
}

TEST(DiffRunner, UnknownNameFailsBeforeRunning) {
    EXPECT_THROW(sim::diff_engines({"iss", "mips"}, sum_image()),
                 sim::unknown_engine);
}

// A deliberately-wrong eighth engine: wraps the ISS but corrupts x10 on
// read.  Registering it exercises the documented extension point
// (docs/engines.md) and proves the differential runner reports the exact
// divergent register.  KEEP LAST: it replaces nothing but adds "bogus" to
// the process-wide registry for the remainder of the test binary.
class bogus_engine final : public sim::engine {
public:
    explicit bogus_engine(const sim::engine_config& cfg)
        : inner_(sim::make_engine("iss", cfg)) {}
    std::string_view name() const override { return "bogus"; }
    void load(const isa::program_image& img) override { inner_->load(img); }
    std::uint64_t run(std::uint64_t max_cycles) override {
        return inner_->run(max_cycles);
    }
    bool halted() const override { return inner_->halted(); }
    std::uint32_t gpr(unsigned r) const override {
        return inner_->gpr(r) ^ (r == 10 ? 0xdead0000u : 0u);
    }
    std::uint32_t fpr(unsigned r) const override { return inner_->fpr(r); }
    std::uint32_t pc() const override { return inner_->pc(); }
    const std::string& console() const override { return inner_->console(); }
    std::uint64_t cycles() const override { return inner_->cycles(); }
    std::uint64_t retired() const override { return inner_->retired(); }
    bool models_timing() const override { return false; }

private:
    std::unique_ptr<sim::engine> inner_;
};

TEST(DiffRunner, ReportsFirstDivergentRegister) {
    sim::engine_registry::instance().add(
        {"bogus", "ISS wrapper that corrupts x10 (test only)",
         [](const sim::engine_config& cfg) {
             return std::make_unique<bogus_engine>(cfg);
         }});
    const auto res = sim::diff_engines({"iss", "bogus"}, sum_image());
    ASSERT_FALSE(res.ok());
    const auto& d = res.divergences.front();
    EXPECT_EQ(d.engine, "bogus");
    EXPECT_EQ(d.reference, "iss");
    EXPECT_EQ(d.kind, "gpr");
    EXPECT_EQ(d.index, 10u);
    EXPECT_NE(d.to_string().find("gpr[10]"), std::string::npos);
}

}  // namespace
