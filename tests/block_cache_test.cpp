// Translated-basic-block cache: formation and termination rules, the
// direct-mapped/eviction/stats contract, SMC-safe invalidation (including
// a store that rewrites a later instruction of the *currently executing*
// block), and checkpoint interactions — restore must flush translated
// blocks so a checkpoint restored into a modified image re-decodes.
#include <gtest/gtest.h>

#include <cstring>

#include "isa/block_cache.hpp"
#include "isa/encoding.hpp"
#include "isa/iss.hpp"
#include "isa/program.hpp"
#include "mem/main_memory.hpp"
#include "sim/checkpoint.hpp"
#include "sim/registry.hpp"

namespace {

using namespace osm;
using isa::basic_block;
using isa::block_cache;
using isa::decoded_inst;
using isa::op;

std::uint32_t enc(op code, unsigned rd, unsigned rs1, unsigned rs2,
                  std::int32_t imm = 0) {
    return isa::encode(decoded_inst{code, static_cast<std::uint8_t>(rd),
                                    static_cast<std::uint8_t>(rs1),
                                    static_cast<std::uint8_t>(rs2), imm, 0});
}

// ---- formation / termination ----------------------------------------------

TEST(BlockCache, ForwardBranchesExtendBackwardBranchesTerminate) {
    mem::main_memory m;
    const std::uint32_t base = 0x1000;
    m.write32(base + 0, enc(op::addi, 5, 5, 0, 1));
    m.write32(base + 4, enc(op::beq, 0, 5, 6, 8));     // forward: side exit
    m.write32(base + 8, enc(op::add_r, 6, 5, 5));
    m.write32(base + 12, enc(op::blt, 0, 6, 5, -16));  // backward: terminator
    m.write32(base + 16, enc(op::addi, 7, 7, 0, 9));   // next block, not ours

    block_cache bc(64);
    EXPECT_EQ(bc.lookup(base), nullptr);
    const basic_block& b = bc.build(base, m, nullptr);
    EXPECT_EQ(b.entry_pc, base);
    EXPECT_EQ(b.n, 4u);  // the forward branch stays inside the superblock
    EXPECT_EQ(b.ops[0].pc, base);
    EXPECT_EQ(b.ops[1].kind, static_cast<std::uint8_t>(op::beq));
    EXPECT_EQ(b.ops[3].pc, base + 12);
    EXPECT_EQ(b.ops[3].kind, static_cast<std::uint8_t>(op::blt));

    const basic_block* hit = bc.lookup(base);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->n, 4u);
    EXPECT_EQ(bc.stats().hits, 1u);
    EXPECT_EQ(bc.stats().misses, 1u);
    EXPECT_EQ(bc.stats().blocks_built, 1u);
}

TEST(BlockCache, JumpSystemAndInvalidAllTerminate) {
    mem::main_memory m;
    block_cache bc(64);
    // Find a word that actually decodes to op::invalid (the all-ones word
    // may alias a real encoding).
    std::uint32_t bad = 0xFFFFFFFFu;
    while (isa::decode(bad).code != op::invalid) --bad;
    const struct {
        std::uint32_t word;
        op code;
    } terms[] = {
        {enc(op::jal, 1, 0, 0, 16), op::jal},
        {enc(op::jalr, 0, 1, 0, 0), op::jalr},
        {enc(op::halt, 0, 0, 0), op::halt},
        {bad, op::invalid},
    };
    std::uint32_t pc = 0x2000;
    for (const auto& t : terms) {
        m.write32(pc, enc(op::addi, 5, 5, 0, 1));
        m.write32(pc + 4, t.word);
        const basic_block& b = bc.build(pc, m, nullptr);
        EXPECT_EQ(b.n, 2u) << "terminator " << static_cast<int>(t.code);
        EXPECT_EQ(b.ops[1].kind, static_cast<std::uint8_t>(t.code));
        pc += 0x100;
    }
}

TEST(BlockCache, StraightLineCodeIsCutAtTheCap) {
    mem::main_memory m;
    const std::uint32_t base = 0x3000;
    for (unsigned i = 0; i < 2 * block_cache::k_max_block_len; ++i) {
        m.write32(base + 4 * i, enc(op::addi, 5, 5, 0, 1));
    }
    block_cache bc(64);
    const basic_block& b = bc.build(base, m, nullptr);
    EXPECT_EQ(b.n, block_cache::k_max_block_len);
    // No terminator: the last op is an ordinary fall-through instruction.
    EXPECT_EQ(b.ops[b.n - 1].kind, static_cast<std::uint8_t>(op::addi));
}

TEST(BlockCache, PureX0WritesAreRemappedToNop) {
    mem::main_memory m;
    const std::uint32_t base = 0x4000;
    m.write32(base + 0, enc(op::addi, 0, 0, 0, 0));   // canonical nop
    m.write32(base + 4, enc(op::add_r, 0, 5, 6));     // dead ALU write
    m.write32(base + 8, enc(op::lw, 0, 5, 0, 0));     // load: keeps access
    m.write32(base + 12, enc(op::jal, 0, 0, 0, 8));   // jump: keeps redirect

    block_cache bc(64);
    const basic_block& b = bc.build(base, m, nullptr);
    ASSERT_EQ(b.n, 4u);
    EXPECT_EQ(b.ops[0].kind, block_cache::k_nop);
    EXPECT_EQ(b.ops[1].kind, block_cache::k_nop);
    EXPECT_EQ(b.ops[2].kind, static_cast<std::uint8_t>(op::lw));
    EXPECT_EQ(b.ops[3].kind, static_cast<std::uint8_t>(op::jal));
}

// ---- cache mechanics / stats ----------------------------------------------

TEST(BlockCache, DirectMappedConflictEvicts) {
    mem::main_memory m;
    // 4 entries: pcs 16 bytes apart share a line.
    m.write32(0x1000, enc(op::halt, 0, 0, 0));
    m.write32(0x1010, enc(op::halt, 0, 0, 0));
    block_cache bc(4);
    EXPECT_EQ(bc.entries(), 4u);
    bc.build(0x1000, m, nullptr);
    bc.build(0x1010, m, nullptr);
    EXPECT_EQ(bc.stats().evictions, 1u);
    EXPECT_EQ(bc.lookup(0x1000), nullptr);  // displaced
    ASSERT_NE(bc.lookup(0x1010), nullptr);
}

TEST(BlockCache, InvalidateAllPreservesCountersResetStatsClearsThem) {
    mem::main_memory m;
    m.write32(0x1000, enc(op::halt, 0, 0, 0));
    block_cache bc(16);
    bc.build(0x1000, m, nullptr);
    bc.lookup(0x1000);
    EXPECT_EQ(bc.stats().hits, 1u);
    EXPECT_EQ(bc.stats().misses, 1u);

    // invalidate_all drops entries but must NOT conflate that with a stats
    // reset — ablation reports depend on counters surviving flushes.
    bc.invalidate_all();
    EXPECT_EQ(bc.lookup(0x1000), nullptr);
    EXPECT_EQ(bc.stats().hits, 1u);
    EXPECT_EQ(bc.stats().misses, 1u);
    EXPECT_EQ(bc.stats().blocks_built, 1u);

    bc.reset_stats();
    EXPECT_EQ(bc.stats().hits, 0u);
    EXPECT_EQ(bc.stats().misses, 0u);
    EXPECT_EQ(bc.stats().blocks_built, 0u);
}

TEST(BlockCache, NotifyStoreKillsOverlappingBlocksOnly) {
    mem::main_memory m;
    // Different 4K pages AND different direct-mapped slots (0x9000 would
    // collide with 0x1000 in a 64-entry table; 0x9004 does not).
    m.write32(0x1000, enc(op::halt, 0, 0, 0));
    m.write32(0x9004, enc(op::halt, 0, 0, 0));
    block_cache bc(64);
    bc.build(0x1000, m, nullptr);
    bc.build(0x9004, m, nullptr);

    // A store far outside the watch range is screened out by one branch.
    EXPECT_FALSE(bc.store_may_hit(0x00200000));
    // A store inside the range but on a code-free page is a false positive
    // the page map resolves (0x5000 lies between the two code pages).
    EXPECT_TRUE(bc.store_may_hit(0x5000));
    EXPECT_FALSE(bc.notify_store(0x5000, 4));
    EXPECT_EQ(bc.stats().invalidations, 0u);

    // A store onto the first code page kills that block and only it.
    EXPECT_TRUE(bc.notify_store(0x1002, 1));
    EXPECT_EQ(bc.lookup(0x1000), nullptr);
    ASSERT_NE(bc.lookup(0x9004), nullptr);
    EXPECT_EQ(bc.stats().invalidations, 1u);
    EXPECT_EQ(bc.stats().smc_stores, 1u);
    const std::uint64_t gen = bc.generation();
    EXPECT_GT(gen, 0u);
}

// ---- ISS integration: SMC mid-block ----------------------------------------

// A store that rewrites a *later instruction of its own block* must abort
// the block after the store: the new word — not the translated stale one —
// executes.  Mirrors the decode cache's SelfModifyingCodeRedecodes at the
// block level.
TEST(BlockCacheIss, SelfModifyingStoreMidBlockAborts) {
    isa::program_builder b;
    const std::uint32_t new_word = enc(op::addi, 8, 8, 0, 41);
    b.li(7, new_word);
    // After li(6, ...): sw (4 bytes) + addi x9 (4) puts the patchee at
    // text_pos + 12 (li of a small text address is one instruction).
    const std::uint32_t patchee = b.text_pos() + 12;
    b.li(6, patchee);
    b.emit_store(op::sw, 7, 6, 0);
    b.emit_i(op::addi, 9, 9, 1);           // executes interpretively post-abort
    const std::uint32_t at = b.emit_i(op::addi, 8, 8, 1);  // the patchee
    b.halt_op();
    const auto img = b.finish();
    ASSERT_EQ(at, patchee);

    mem::main_memory m;
    isa::iss sim(m, true, true);
    sim.load(img);
    sim.run(1000);
    EXPECT_TRUE(sim.state().halted);
    EXPECT_EQ(sim.state().gpr[8], 41u);  // the rewritten word ran
    EXPECT_EQ(sim.state().gpr[9], 1u);
    EXPECT_GE(sim.block_stats().smc_stores, 1u);
    EXPECT_GE(sim.block_stats().invalidations, 1u);

    // Block-cache-off reference: bit-identical architectural outcome.
    mem::main_memory m2;
    isa::iss ref(m2, true, false);
    ref.load(img);
    ref.run(1000);
    EXPECT_EQ(sim.state().gpr, ref.state().gpr);
    EXPECT_EQ(sim.state().fpr, ref.state().fpr);
    EXPECT_EQ(sim.instret(), ref.instret());
}

// A taken conditional branch inside a superblock leaves the block early; a
// not-taken one falls through to the ops translated behind it.  Both paths
// must match the block-cache-off interpreter bit for bit.
TEST(BlockCacheIss, SuperblockSideExitsExecuteCorrectly) {
    isa::program_builder b;
    b.li(5, 3);  // x5 = trip count
    const auto loop = b.here();
    auto done = b.new_label();
    b.emit_i(op::addi, 6, 6, 1);          // x6 += 1
    b.emit_branch(op::beq, 6, 5, done);   // taken on the last trip only
    b.emit_i(op::addi, 7, 7, 1);          // x7 += 1, skipped on the last trip
    b.emit_branch(op::blt, 6, 5, loop);   // backward side exit
    b.bind(done);
    b.emit_i(op::addi, 8, 8, 1);
    b.halt_op();
    const auto img = b.finish();

    mem::main_memory m;
    isa::iss sim(m, true, true);
    sim.load(img);
    sim.run(1000);
    ASSERT_TRUE(sim.state().halted);
    EXPECT_EQ(sim.state().gpr[6], 3u);
    EXPECT_EQ(sim.state().gpr[7], 2u);
    EXPECT_EQ(sim.state().gpr[8], 1u);

    mem::main_memory m2;
    isa::iss ref(m2, true, false);
    ref.load(img);
    ref.run(1000);
    EXPECT_EQ(sim.state().gpr, ref.state().gpr);
    EXPECT_EQ(sim.state().pc, ref.state().pc);
    EXPECT_EQ(sim.instret(), ref.instret());
}

// ---- checkpoint interactions -----------------------------------------------

namespace ck_prog {

/// li t0,5; loop: addi t1+=1; addi t2+=1 (patchee); blt t1,t0 -> loop; halt.
/// Returns the image and the patchee's address.
isa::program_image make(std::uint32_t& patchee_addr) {
    isa::program_builder b;
    b.li(5, 5);  // x5 = trip count
    const auto loop = b.here();
    b.emit_i(op::addi, 6, 6, 1);
    patchee_addr = b.emit_i(op::addi, 7, 7, 1);
    b.emit_branch(op::blt, 6, 5, loop);
    b.halt_op();
    return b.finish();
}

}  // namespace ck_prog

// Save mid-loop with the block cache hot, restore, run to completion: the
// restored run must match an uninterrupted one exactly.
TEST(BlockCacheIss, CheckpointSaveRestoreRunEquality) {
    std::uint32_t patchee = 0;
    const auto img = ck_prog::make(patchee);

    sim::engine_config cfg;
    cfg.block_cache = true;
    auto straight = sim::make_engine("iss", cfg);
    straight->load(img);
    straight->run(100000);
    ASSERT_TRUE(straight->halted());

    auto eng = sim::make_engine("iss", cfg);
    eng->load(img);
    eng->run_until_retired(7);  // setup + two full trips, pc back at loop
    const sim::checkpoint ck = eng->save_state();
    eng->run(100000);
    ASSERT_TRUE(eng->halted());

    auto resumed = sim::make_engine("iss", cfg);
    resumed->restore_state(ck);
    resumed->run(100000);
    ASSERT_TRUE(resumed->halted());

    for (unsigned r = 0; r < 32; ++r) {
        EXPECT_EQ(resumed->gpr(r), straight->gpr(r)) << "x" << r;
        EXPECT_EQ(resumed->gpr(r), eng->gpr(r)) << "x" << r;
    }
    EXPECT_EQ(resumed->retired(), straight->retired());
    EXPECT_EQ(resumed->console(), straight->console());
}

// Restoring a checkpoint whose memory image holds *different program
// bytes* at an already-translated (and already-decoded) pc must re-decode:
// restore_arch flushes both the decode cache and the block cache, so the
// stale translation can never run.  This is the re-emplacement audit test:
// the same engine instance keeps its caches hot across restore_state().
TEST(BlockCacheIss, RestoreIntoModifiedImageRedecodes) {
    std::uint32_t patchee = 0;
    const auto img = ck_prog::make(patchee);

    sim::engine_config cfg;
    cfg.block_cache = true;
    auto eng = sim::make_engine("iss", cfg);
    eng->load(img);
    // Two of five trips done: the loop body's block is hot in the cache.
    eng->run_until_retired(7);
    EXPECT_EQ(eng->gpr(7), 2u);
    sim::checkpoint ck = eng->save_state();

    // Patch the loop-body instruction inside the checkpoint's memory image:
    // x7 += 100 per remaining trip instead of += 1.
    const std::uint32_t new_word = enc(op::addi, 7, 7, 0, 100);
    bool patched = false;
    for (auto& page : ck.pages) {
        if (patchee < page.base || patchee + 4 > page.base + page.bytes.size())
            continue;
        const std::size_t off = patchee - page.base;
        page.bytes[off + 0] = static_cast<std::uint8_t>(new_word);
        page.bytes[off + 1] = static_cast<std::uint8_t>(new_word >> 8);
        page.bytes[off + 2] = static_cast<std::uint8_t>(new_word >> 16);
        page.bytes[off + 3] = static_cast<std::uint8_t>(new_word >> 24);
        patched = true;
    }
    ASSERT_TRUE(patched) << "patchee page not in checkpoint image";

    // Restore into the SAME engine: its caches still hold the old decode
    // and the old translated block for the loop body.
    eng->restore_state(ck);
    eng->run(100000);
    ASSERT_TRUE(eng->halted());
    // 2 trips of +1 before the snapshot, 3 trips of +100 after it.  Any
    // stale cached decode/translation would leave x7 at 5.
    EXPECT_EQ(eng->gpr(7), 2u + 3u * 100u);
    EXPECT_EQ(eng->gpr(6), 5u);
}

}  // namespace
